"""Choosing a partitioning before running anything (Section VI-B applied).

The advisor turns the paper's analysis into predictions: for a linear
problem it computes the exact per-best-effort-round contraction
ρ(I − B⁻¹A) for each candidate partition count; for a graph it compares
the partitioners' cross-edge fractions.  The linear predictions are then
checked against the engine's measured best-effort rounds.

    python examples/partition_advisor.py
"""

from repro.analysis import advise_graph, advise_linear
from repro.apps.linsolve import LinearSolverProgram, diagonally_dominant_system
from repro.apps.linsolve.datagen import system_records
from repro.apps.pagerank import local_web_graph
from repro.cluster.presets import small_cluster
from repro.pic.engine import BestEffortEngine
from repro.util.formatting import render_table


def main() -> None:
    # --- linear problem: predicted vs measured best-effort rounds -----
    A, b, _x = diagonally_dominant_system(120, bandwidth=2, dominance=1.1, seed=7)
    records = system_records(A, b)
    candidates = [2, 4, 6, 12]
    rows = []
    for advice in advise_linear(A, candidates, tolerance=1e-6):
        program = LinearSolverProgram(threshold=1e-6, overlap=0)
        engine = BestEffortEngine(
            small_cluster(), program,
            num_partitions=advice.num_partitions, be_max_iterations=200,
        )
        measured = engine.run(records, program.initial_model(records))
        rows.append([
            advice.num_partitions,
            f"{advice.epsilon:.3f}",
            f"{advice.rho_per_round:.3f}",
            advice.predicted_be_rounds,
            measured.be_iterations,
        ])
    print(render_table(
        ["partitions", "epsilon", "rho per round",
         "predicted BE rounds", "measured BE rounds"],
        rows,
        title="Linear solver: Section VI-B predictions vs the engine",
    ))

    # --- graph problem: which partitioner to use ----------------------
    graph = local_web_graph(5000, seed=5)
    rows = [
        [a.partitioner, f"{a.epsilon:.3f}"]
        for a in advise_graph(graph, 18, seed=3)
    ]
    print()
    print(render_table(
        ["partitioner", "cross-edge fraction"],
        rows,
        title="PageRank web graph: partitioner comparison (lower is better)",
    ))


if __name__ == "__main__":
    main()
