"""Quickstart: K-means under PIC vs conventional MapReduce.

Runs the paper's primary case study at toy scale on the simulated 6-node
research cluster and prints the two-phase breakdown, the iteration
profile (Table I style) and the speedup.

    python examples/quickstart.py
"""

import numpy as np

from repro.apps.kmeans import KMeansProgram, gaussian_mixture, jagota_index
from repro.cluster.presets import small_cluster
from repro.pic.runner import PICRunner, run_ic_baseline
from repro.util.formatting import human_bytes, human_time


def main() -> None:
    # 1. A clustered dataset: 100k points from 10 well-separated Gaussians.
    records, _centers = gaussian_mixture(
        100_000, num_clusters=10, dim=3, separation=6.0, seed=1
    )

    # 2. The application, expressed once: the conventional MapReduce
    #    pieces (map/combine/reduce/converged) plus PIC's three extras
    #    (partition/merge/be_converged — here the library defaults).
    program = KMeansProgram(k=10, dim=3, threshold=0.1)
    model0 = program.initial_model(records, seed=2)

    # 3. Conventional iterative convergence (Figure 1(b)): one MapReduce
    #    job per iteration on a fresh simulated cluster.
    ic = run_ic_baseline(
        small_cluster(), program, records, initial_model=dict(model0)
    )
    print(f"conventional IC : {ic.iterations} iterations, "
          f"{human_time(ic.total_time)} simulated")

    # 4. PIC (Figure 3): best-effort phase + top-off phase.
    runner = PICRunner(small_cluster(), program, num_partitions=24, seed=3)
    pic = runner.run(records, initial_model=dict(model0))
    locals_per_round = pic.best_effort.max_local_iterations_by_round
    print(f"PIC best-effort : {pic.be_iterations} rounds, "
          f"local iterations per round {locals_per_round}, "
          f"{human_time(pic.be_time)}")
    print(f"PIC top-off     : {pic.topoff_iterations} iterations, "
          f"{human_time(pic.topoff_time)}")
    print(f"speedup         : {ic.total_time / pic.total_time:.2f}x")

    # 5. Traffic — the quantity PIC is designed to collapse.
    print(f"shuffle volume  : IC {human_bytes(ic.total_shuffle_bytes)} "
          f"vs PIC {human_bytes(pic.shuffle_bytes)}")

    # 6. Quality: both models cluster the data equally tightly.
    points = np.stack([v for _k, v in records])
    q_ic = jagota_index(points, program.centroid_array(ic.model))
    q_pic = jagota_index(points, program.centroid_array(pic.model))
    print(f"Jagota index    : IC {q_ic:.3f} vs PIC {q_pic:.3f} "
          f"({abs(q_pic - q_ic) / q_ic * 100:.2f}% apart)")


if __name__ == "__main__":
    main()
