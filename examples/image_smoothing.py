"""Stencil image smoothing under PIC (paper Figures 10 and 11).

The model is the image itself, so conventional MapReduce rewrites the
whole (replicated) image every iteration; PIC's row bands exchange
nothing during local iterations.  Also sweeps cluster sizes to show the
Figure 11 strong-scaling behaviour at small scale.

    python examples/image_smoothing.py
"""

import numpy as np

from repro.apps.smoothing import (
    ImageSmoothingProgram,
    smooth_reference,
    synthetic_image,
)
from repro.apps.smoothing.datagen import image_records
from repro.cluster.cluster import Cluster
from repro.cluster.presets import small_cluster
from repro.pic.runner import PICRunner, run_ic_baseline
from repro.util.formatting import human_time, render_table


def run_once(cluster_factory, records, side, partitions):
    program = ImageSmoothingProgram(side, side)
    model0 = program.initial_model(records)
    ic = run_ic_baseline(cluster_factory(), program, records,
                         initial_model={k: v.copy() for k, v in model0.items()})
    pic = PICRunner(cluster_factory(), program, num_partitions=partitions,
                    seed=3).run(
        records, initial_model={k: v.copy() for k, v in model0.items()}
    )
    return program, ic, pic


def main() -> None:
    side = 256
    image = synthetic_image(side, side, seed=13)
    records = image_records(image)

    program, ic, pic = run_once(small_cluster, records, side, partitions=12)
    golden = smooth_reference(image)
    u_pic = program.image_array(pic.model)
    print(f"image {side}x{side}: IC {ic.iterations} sweeps "
          f"({human_time(ic.total_time)}) vs PIC {pic.be_iterations} rounds + "
          f"{pic.topoff_iterations} top-off ({human_time(pic.total_time)})")
    print(f"speedup {ic.total_time / pic.total_time:.2f}x, "
          f"max |u - golden| = {np.abs(u_pic - golden).max():.2e}")

    # Mini strong-scaling sweep (Figure 11 at example scale).
    rows = []
    for nodes in (4, 8, 16):
        factory = lambda n=nodes: Cluster(num_nodes=n, nodes_per_rack=8,
                                          name=f"scale-{n}")
        _prog, ic_n, pic_n = run_once(factory, records, side, partitions=nodes)
        rows.append([nodes, f"{ic_n.total_time:.3f}", f"{pic_n.total_time:.3f}",
                     f"{ic_n.total_time / pic_n.total_time:.2f}x"])
    print()
    print(render_table(["nodes", "IC time (s)", "PIC time (s)", "speedup"],
                       rows, title="Strong scaling (Figure 11 style)"))


if __name__ == "__main__":
    main()
