"""PIC on a YARN-style cluster (paper Section VII's future work, done).

The paper: "its design architecture (resource manager, node managers and
containers) is a good fit for PIC, and PIC can be easily ported to it."
Here the port is literal: swap the slot-based job runner for the
container-based one and run the exact same PIC program — zero PIC-level
changes.  Containers also make resource heterogeneity visible: a
low-memory node runs fewer concurrent tasks, which fixed slots cannot
express.

    python examples/pic_on_yarn.py
"""

from repro.apps.kmeans import KMeansProgram, gaussian_mixture
from repro.cluster.cluster import Cluster
from repro.cluster.topology import NodeSpec
from repro.dfs.dfs import DistributedFileSystem
from repro.pic.engine import BestEffortEngine
from repro.util.formatting import human_time, render_table
from repro.yarn import MAP_PROFILE, YarnJobRunner


def heterogeneous_memory_cluster() -> Cluster:
    """Six nodes, two of them memory-starved (YARN sees the difference)."""
    specs = [
        NodeSpec(cores=8, ram_bytes=(6 if i < 2 else 48) * 2**30)
        for i in range(6)
    ]
    return Cluster(num_nodes=6, nodes_per_rack=6, node_specs=specs,
                   name="yarn-6")


def main() -> None:
    records, _ = gaussian_mixture(50_000, num_clusters=10, separation=6.0, seed=1)
    program = KMeansProgram(k=10, threshold=0.1)
    model0 = program.initial_model(records, seed=2)

    cluster = heterogeneous_memory_cluster()
    dfs = DistributedFileSystem(cluster)
    runner = YarnJobRunner(cluster, dfs)

    rows = []
    for node in cluster.nodes:
        cap = runner.rm.capacity(node.node_id)
        concurrent = min(cap.memory_mb // MAP_PROFILE.memory_mb, cap.vcores)
        rows.append([node.node_id, f"{cap.memory_mb} MB", cap.vcores, concurrent])
    print(render_table(
        ["node", "container memory", "vcores", "concurrent map containers"],
        rows, title="ResourceManager view of the cluster"))

    engine = BestEffortEngine(
        cluster, program, num_partitions=24, seed=3, runner=runner, dfs=dfs
    )
    result = engine.run(records, model0)
    print(f"\nPIC best-effort phase on YARN containers: "
          f"{result.be_iterations} rounds "
          f"(locals {result.max_local_iterations_by_round}), "
          f"{human_time(result.total_time)} simulated")
    print(f"containers granted: {runner.rm.containers_granted}")
    print("the PICProgram, engine and driver are byte-for-byte the same "
          "code that runs on the slot-based cluster.")


if __name__ == "__main__":
    main()
