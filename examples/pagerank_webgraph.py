"""PageRank over a synthetic local web graph (paper Section IV-B).

Shows the paper's large-model case: the model carries a score for every
edge, so conventional MapReduce pays model-sized traffic every
iteration.  PIC runs local PageRank on vertex-disjoint sub-graphs and
factors cross-partition edges in only at each merge.

    python examples/pagerank_webgraph.py
"""

import numpy as np

from repro.analysis.coupling import graph_coupling_epsilon
from repro.apps.pagerank import PageRankProgram, local_web_graph, nutch_pagerank
from repro.cluster.presets import small_cluster
from repro.pic.runner import PICRunner, run_ic_baseline
from repro.util.formatting import human_bytes, human_time


def main() -> None:
    records = local_web_graph(
        10_000, avg_out_degree=8.0, locality_scale=50.0, seed=5
    )
    program = PageRankProgram()
    model0 = program.initial_model(records)
    print(f"web graph: {len(records)} vertices, "
          f"{sum(len(o) for _v, o in records)} edges, "
          f"model = {human_bytes(program.model_bytes(model0))}")

    # How nearly uncoupled is the contiguous 18-way partition?
    n = len(records)
    assignment = {v: min(v * 18 // n, 17) for v, _ in records}
    eps = graph_coupling_epsilon(records, assignment)
    print(f"cross-partition edge fraction (epsilon): {eps:.3f}")

    ic = run_ic_baseline(small_cluster(), program, records,
                         initial_model=dict(model0))
    print(f"\nconventional IC : {ic.iterations} iterations "
          f"(Nutch's fixed limit), {human_time(ic.total_time)}")
    print(f"  model updates : {human_bytes(ic.total_model_update_bytes)}")

    pic = PICRunner(small_cluster(), program, num_partitions=18,
                    seed=3).run(records, initial_model=dict(model0))
    print(f"PIC             : {pic.be_iterations} best-effort rounds + "
          f"{pic.topoff_iterations} top-off iterations, "
          f"{human_time(pic.total_time)}")
    print(f"  model updates : {human_bytes(pic.model_update_bytes)}")
    print(f"speedup         : {ic.total_time / pic.total_time:.2f}x")

    # Rank quality against the serial Nutch reference.
    reference = nutch_pagerank(records)
    ranks = program.rank_vector(pic.model, len(records))
    rel_l1 = float(np.abs(ranks - reference).sum() / reference.sum())
    top = np.argsort(reference)[-20:]
    overlap = len(set(top) & set(np.argsort(ranks)[-20:]))
    print(f"rank quality    : relative L1 distance {rel_l1:.3f}, "
          f"top-20 overlap {overlap}/20")


if __name__ == "__main__":
    main()
