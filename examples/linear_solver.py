"""Solving a weakly diagonally dominant system with PIC (Figure 12(c)).

Also demonstrates the Section VI-B analysis: the best-effort phase of a
linear iterative method is an additive-Schwarz/block-Jacobi iteration
whose per-round contraction the library computes exactly.

    python examples/linear_solver.py
"""

import numpy as np

from repro.analysis import (
    contiguous_assignment,
    coupling_epsilon,
    schwarz_convergence_factor,
    spectral_radius,
)
from repro.apps.linsolve import (
    LinearSolverProgram,
    diagonally_dominant_system,
    jacobi_iteration_matrix,
)
from repro.apps.linsolve.datagen import system_records
from repro.cluster.presets import small_cluster
from repro.pic.runner import PICRunner, run_ic_baseline
from repro.util.formatting import human_time


def main() -> None:
    n, partitions = 100, 6
    A, b, x_star = diagonally_dominant_system(
        n, bandwidth=2, dominance=1.05, seed=11
    )
    records = system_records(A, b)
    program = LinearSolverProgram(threshold=1e-6)
    model0 = program.initial_model(records)

    # The theory of Section VI-B, computed exactly for this system.
    assignment = contiguous_assignment(n, partitions)
    rho_jacobi = spectral_radius(jacobi_iteration_matrix(A))
    rho_schwarz = schwarz_convergence_factor(A, assignment)
    eps = coupling_epsilon(A, assignment, partitions)
    print(f"Jacobi spectral radius          : {rho_jacobi:.4f} (per iteration)")
    print(f"block-Jacobi (best-effort) rate : {rho_schwarz:.4f} (per round)")
    print(f"cross-block coupling epsilon    : {eps:.4f}")

    ic = run_ic_baseline(small_cluster(), program, records,
                         initial_model=dict(model0), max_iterations=1000)
    x_ic = program.solution_vector(ic.model, n)
    print(f"\nconventional IC : {ic.iterations} Jacobi sweeps, "
          f"{human_time(ic.total_time)}, "
          f"|x - x*| = {np.linalg.norm(x_ic - x_star):.2e}")

    pic = PICRunner(small_cluster(), program, num_partitions=partitions,
                    seed=3, be_max_iterations=100).run(
        records, initial_model=dict(model0)
    )
    x_pic = program.solution_vector(pic.model, n)
    print(f"PIC             : {pic.be_iterations} best-effort rounds "
          f"(locals {pic.best_effort.max_local_iterations_by_round}) + "
          f"{pic.topoff_iterations} top-off sweeps, "
          f"{human_time(pic.total_time)}, "
          f"|x - x*| = {np.linalg.norm(x_pic - x_star):.2e}")
    print(f"speedup         : {ic.total_time / pic.total_time:.2f}x")


if __name__ == "__main__":
    main()
