"""Neural-network training on OCR-style data (paper Figure 12(a)).

Traces validation error against simulated time for conventional
data-parallel training and for PIC, reproducing the Figure 12(a) story:
PIC reaches the baseline's final error in a fraction of the time.

    python examples/neural_net_ocr.py
"""

from repro.apps.neuralnet import MLP, NeuralNetProgram, ocr_dataset
from repro.cluster.presets import small_cluster
from repro.pic.runner import PICRunner, run_ic_baseline
from repro.util.formatting import render_table


def main() -> None:
    records, X, y = ocr_dataset(21_000, seed=7)
    train, Xv, yv = records[:20_000], X[20_000:], y[20_000:]
    program = NeuralNetProgram(MLP(64, 32, 10), validation=(Xv, yv))
    model0 = program.initial_model(train, seed=9)

    # Instrument convergence checks to capture (time, error) points.
    ic_curve: list[tuple[float, float]] = []
    pic_curve: list[tuple[float, float]] = []

    def tracer(cluster, curve):
        base = program.converged

        def traced(prev, cur, it):
            curve.append((cluster.now, program.validation_error(cur, Xv, yv)))
            return base(prev, cur, it)

        return traced

    ic_cluster = small_cluster()
    program.converged = tracer(ic_cluster, ic_curve)  # type: ignore[method-assign]
    ic = run_ic_baseline(ic_cluster, program, train,
                         initial_model={k: v.copy() for k, v in model0.items()})

    program.converged = NeuralNetProgram.converged.__get__(program)  # restore
    pic_cluster = small_cluster()
    orig_be = program.be_converged
    orig_topoff = program.topoff_converged

    def traced_be(prev, cur, it):
        pic_curve.append((pic_cluster.now, program.validation_error(cur, Xv, yv)))
        return orig_be(prev, cur, it)

    def traced_topoff(prev, cur, it):
        pic_curve.append((pic_cluster.now, program.validation_error(cur, Xv, yv)))
        return orig_topoff(prev, cur, it)

    program.be_converged = traced_be      # type: ignore[method-assign]
    program.topoff_converged = traced_topoff  # type: ignore[method-assign]
    pic = PICRunner(pic_cluster, program, num_partitions=18, seed=3).run(
        train, initial_model={k: v.copy() for k, v in model0.items()}
    )

    rows = []
    for label, curve in (("IC", ic_curve), ("PIC", pic_curve)):
        for t, err in curve:
            rows.append([label, f"{t:.3f}", f"{err:.4f}"])
    print(render_table(["run", "sim time (s)", "validation error"], rows,
                       title="Error vs time (Figure 12(a) style)"))
    print(f"\nIC  : {ic.iterations} epochs, final error "
          f"{program.validation_error(ic.model, Xv, yv):.4f}")
    print(f"PIC : {pic.be_iterations} best-effort rounds + "
          f"{pic.topoff_iterations} top-off epochs, final error "
          f"{program.validation_error(pic.model, Xv, yv):.4f}")
    print(f"speedup: {ic.total_time / pic.total_time:.2f}x")


if __name__ == "__main__":
    main()
