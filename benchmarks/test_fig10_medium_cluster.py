"""Figure 10 — Performance of PIC vs baseline IC on the medium (64-node)
cluster: K-means, neural-network training, and image smoothing.

Paper result: PIC outperforms the baseline by 2.5x-4x.  The K-means bar
shares the Figure 2 run (same workload, memoized); the neural network
and smoothing runs are this bench's own.
"""

from benchmarks.conftest import cached, run_once
from benchmarks.test_fig02_kmeans_breakdown import comparison as kmeans_comparison
from repro.harness import compare_ic_pic
from repro.harness.workloads import neuralnet_medium, smoothing_medium
from repro.util.formatting import human_time, render_table


def neuralnet_comparison():
    def compute():
        w = neuralnet_medium()
        result = compare_ic_pic(
            w.cluster_factory, w.program, w.records, w.initial_model,
            w.num_partitions,
        )
        err_ic = w.program.validation_error(
            result.ic.model, w.extras["Xv"], w.extras["yv"]
        )
        err_pic = w.program.validation_error(
            result.pic.model, w.extras["Xv"], w.extras["yv"]
        )
        return result, err_ic, err_pic

    return cached("fig10-neuralnet", compute)


def smoothing_comparison():
    def compute():
        w = smoothing_medium()
        return compare_ic_pic(
            w.cluster_factory, w.program, w.records, w.initial_model,
            w.num_partitions,
        )

    return cached("fig10-smoothing", compute)


def test_fig10_neuralnet(benchmark):
    result, err_ic, err_pic = run_once(benchmark, neuralnet_comparison)
    assert result.speedup > 1.8
    # PIC's model must be as good as the baseline's (Fig 12(a) story).
    assert err_pic <= err_ic + 0.02


def test_fig10_smoothing(benchmark):
    result = run_once(benchmark, smoothing_comparison)
    assert 1.8 < result.speedup < 6.0


def test_fig10_report(benchmark, report):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    nn_result, err_ic, err_pic = neuralnet_comparison()
    rows = []
    for name, result in (
        ("K-means", kmeans_comparison()),
        ("Neural net", nn_result),
        ("Image smoothing", smoothing_comparison()),
    ):
        rows.append(
            [
                name,
                human_time(result.ic_time),
                human_time(result.pic_time),
                f"{result.speedup:.2f}x",
            ]
        )
    table = render_table(
        ["application", "IC time", "PIC time", "speedup"],
        rows,
        title="Figure 10 — medium (64-node) cluster, paper band: 2.5x-4x",
    )
    table += (
        f"\nneural net validation error: IC {err_ic:.3f} vs PIC {err_pic:.3f}"
        "\nnote: the K-means row is timing-limited by dataset scale on this"
        "\ncluster (see EXPERIMENTS.md); its paper-ratio timing appears in"
        "\nFigure 9 / Figure 2(left), its traffic panel in Figure 2(right)."
    )
    report("Figure 10 medium cluster", table)
