"""Table I — Iterations required for IC and the best-effort phase of PIC
(K-means) as the dataset grows.

Paper result (0.5M/5M/50M/500M points): the IC iteration count stays
~31-32 across sizes; the number of best-effort iterations *falls* as the
data grows (5 -> 4 -> 3 -> 3); and except for the first best-effort
iteration, only 2-3 local iterations are needed in any round
("34 3 3 2 2" -> "33 2 2").

We reproduce the same size-ladder shape at scaled sizes: a roughly
size-independent IC count, shrinking best-effort rounds with size, and a
first-round-heavy local iteration profile.
"""

from benchmarks.conftest import cached, run_once
from repro.harness import compare_ic_pic
from repro.harness.workloads import kmeans_table1, kmeans_table1_sizes
from repro.util.formatting import render_table


def row(num_points: int):
    def compute():
        w = kmeans_table1(num_points)
        return compare_ic_pic(
            w.cluster_factory, w.program, w.records, w.initial_model,
            w.num_partitions,
        )

    return cached(f"table1-{num_points}", compute)


def test_table1_smallest(benchmark):
    run_once(benchmark, lambda: row(kmeans_table1_sizes()[0]))


def test_table1_small(benchmark):
    run_once(benchmark, lambda: row(kmeans_table1_sizes()[1]))


def test_table1_medium(benchmark):
    run_once(benchmark, lambda: row(kmeans_table1_sizes()[2]))


def test_table1_large(benchmark):
    run_once(benchmark, lambda: row(kmeans_table1_sizes()[3]))


def test_table1_report(benchmark, report):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    sizes = kmeans_table1_sizes()
    rows = []
    be_counts = []
    for size in sizes:
        result = row(size)
        locals_by_round = result.pic.best_effort.max_local_iterations_by_round
        be_counts.append(result.pic.be_iterations)
        rows.append(
            [
                f"{size:,}",
                result.ic.iterations,
                result.pic.be_iterations,
                " ".join(str(x) for x in locals_by_round),
                result.pic.topoff_iterations,
            ]
        )
    table = render_table(
        ["dataset size", "IC iterations", "best-effort iterations",
         "(max) local iterations per round", "top-off iterations"],
        rows,
        title="Table I — iterations for IC and PIC best-effort (K-means)",
    )
    report("Table I iterations", table)

    # Shape assertions mirroring the paper's observations.
    largest = row(sizes[-1])
    locals_by_round = largest.pic.best_effort.max_local_iterations_by_round
    # The first best-effort round does the bulk of the local work...
    assert locals_by_round[0] >= 2 * max(locals_by_round[1:] or [1])
    # ...and later rounds need only a few local iterations.
    assert all(x <= 8 for x in locals_by_round[1:])
    # Best-effort rounds do not grow with dataset size (paper: they fall).
    assert be_counts[-1] <= be_counts[0]
