"""Ablation — partition-count sweep (Section III-B's design discussion).

"More sub-problems of smaller size can increase the number of best-effort
iterations that the best-effort phase may require to converge."  We sweep
the partition count for K-means on the small cluster and report
best-effort rounds, local-iteration profile, speedup, and quality.
"""

import numpy as np

from benchmarks.conftest import cached, run_once
from repro.apps.kmeans import jagota_index
from repro.harness import compare_ic_pic
from repro.harness.workloads import kmeans_small
from repro.util.formatting import render_table

PARTITION_COUNTS = (6, 12, 24, 48)


def sweep_point(num_partitions: int):
    def compute():
        w = kmeans_small(num_points=100_000, num_partitions=num_partitions)
        result = compare_ic_pic(
            w.cluster_factory, w.program, w.records, w.initial_model,
            num_partitions,
        )
        points = np.stack([v for _k, v in w.records])
        quality = jagota_index(points, w.program.centroid_array(result.pic.model))
        return result, quality

    return cached(f"ablation-partitions-{num_partitions}", compute)


def test_partition_sweep(benchmark):
    def run_all():
        return [sweep_point(p) for p in PARTITION_COUNTS]

    run_once(benchmark, run_all)


def test_partition_sweep_report(benchmark, report):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = []
    be_rounds = []
    for p in PARTITION_COUNTS:
        result, quality = sweep_point(p)
        be_rounds.append(result.pic.be_iterations)
        rows.append(
            [
                p,
                result.pic.be_iterations,
                " ".join(
                    str(x)
                    for x in result.pic.best_effort.max_local_iterations_by_round
                ),
                f"{result.speedup:.2f}x",
                f"{quality:.3f}",
            ]
        )
    table = render_table(
        ["partitions", "best-effort rounds", "(max) locals per round",
         "speedup", "Jagota index"],
        rows,
        title="Ablation — partition count (K-means, 100k points, 6 nodes)",
    )
    report("Ablation partition count", table)
    # Smaller partitions never *reduce* the best-effort round count.
    assert be_rounds[-1] >= be_rounds[0]
