"""Table III — Quality of PIC's best-effort phase in terms of the Jagota
index (K-means).

Paper result: the best-effort model's Jagota index is within 0.14% /
2.75% of the conventional IC model's on its two datasets — "the
best-effort phase of PIC is able to produce a solution that is within 3%
of the quality of the baseline IC implementation".
"""

import numpy as np

from benchmarks.conftest import cached, run_once
from repro.apps.kmeans import jagota_index
from repro.harness.workloads import kmeans_table3
from repro.pic.engine import BestEffortEngine
from repro.pic.runner import run_ic_baseline
from repro.util.formatting import render_table


def dataset_row(dataset: int):
    def compute():
        w = kmeans_table3(dataset)
        prog = w.program
        points = np.stack([v for _k, v in w.records])

        ic = run_ic_baseline(
            w.cluster_factory(), prog, w.records,
            initial_model={k: v.copy() for k, v in w.initial_model.items()},
        )
        engine = BestEffortEngine(
            w.cluster_factory(), prog, num_partitions=w.num_partitions, seed=3,
        )
        be = engine.run(
            w.records, {k: v.copy() for k, v in w.initial_model.items()}
        )
        q_ic = jagota_index(points, prog.centroid_array(ic.model))
        q_be = jagota_index(points, prog.centroid_array(be.model))
        return q_ic, q_be

    return cached(f"table3-ds{dataset}", compute)


def test_table3_dataset1(benchmark):
    q_ic, q_be = run_once(benchmark, lambda: dataset_row(1))
    assert abs(q_be - q_ic) / q_ic < 0.03


def test_table3_dataset2(benchmark):
    q_ic, q_be = run_once(benchmark, lambda: dataset_row(2))
    assert abs(q_be - q_ic) / q_ic < 0.03


def test_table3_report(benchmark, report):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = []
    for ds in (1, 2):
        q_ic, q_be = dataset_row(ds)
        diff = abs(q_be - q_ic) / q_ic * 100
        rows.append(
            [f"dataset {ds}", f"{q_ic:.3f}", f"{q_be:.3f}", f"{diff:.2f}%"]
        )
    table = render_table(
        ["dataset", "IC K-means", "PIC BE-phase K-means", "difference"],
        rows,
        title=(
            "Table III — Jagota index of the best-effort model "
            "(paper: 0.14% and 2.75%, both < 3%)"
        ),
    )
    report("Table III jagota index", table)
