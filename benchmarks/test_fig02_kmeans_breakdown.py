"""Figure 2 — Run time and shuffle traffic for K-means clustering.

Paper result (100M points into 100 clusters, 64-node cluster): the
best-effort phase executes in ~1/5 the conventional time, the top-off
phase needs ~1/6 the conventional iterations, ~3x overall; the
intermediate-data and model-update volumes collapse by orders of
magnitude.

Scaling note (see EXPERIMENTS.md): the paper's runtime shape requires
its points-per-cluster-per-partition ratio (~3,000), which at 320 map
slots would need ~10^7-10^8 points — beyond a pure-Python bench.  The
two panels are therefore reproduced at the configurations that preserve
their governing ratios:

* the **runtime breakdown** panel runs at the paper's per-partition
  ratio on the 6-node research cluster (breakdown shape is
  cluster-size-independent; the 64-node cluster's timing behaviour is
  covered by Figures 10/11);
* the **traffic** panel runs on the 64-node cluster at scaled size —
  byte volumes are measured, and the orders-of-magnitude collapse does
  not depend on the ratio above.
"""

from benchmarks.conftest import cached, run_once
from repro.harness import compare_ic_pic
from repro.harness.workloads import kmeans_fig2, kmeans_small
from repro.util.formatting import human_bytes, human_time, render_table


def breakdown_comparison():
    """Paper-ratio run (runtime panel): 200k pts, 10 clusters, 24 slots."""
    def compute():
        w = kmeans_small()
        return compare_ic_pic(
            w.cluster_factory, w.program, w.records, w.initial_model,
            w.num_partitions,
        )

    return cached("fig9-kmeans", compute)  # shared with Figure 9


def comparison():
    """Scaled 64-node run (traffic panel + Figure 10's K-means bar)."""
    def compute():
        w = kmeans_fig2()
        return compare_ic_pic(
            w.cluster_factory, w.program, w.records, w.initial_model,
            w.num_partitions,
        )

    return cached("fig2-kmeans-medium", compute)


def test_fig02_runtime_breakdown(benchmark, report):
    result = run_once(benchmark, breakdown_comparison)
    ic, pic = result.ic, result.pic
    table = render_table(
        ["run", "phase", "time", "iterations"],
        [
            ["IC", "whole run", human_time(ic.total_time), ic.iterations],
            ["PIC", "best-effort", human_time(pic.be_time), pic.be_iterations],
            ["PIC", "top-off", human_time(pic.topoff_time), pic.topoff_iterations],
            ["PIC", "total", human_time(pic.total_time),
             f"speedup {result.speedup:.2f}x"],
        ],
        title=(
            "Figure 2 (left) — K-means run time breakdown at the paper's "
            "per-partition ratio (paper: BE ~1/5 IC, top-off ~1/6 IC's "
            "iterations, ~3x overall)"
        ),
    )
    report("Figure 2 runtime breakdown", table)

    # The paper's three observations about the left panel:
    assert pic.be_time < ic.total_time / 2          # BE phase much shorter
    assert pic.topoff_iterations <= ic.iterations / 3  # few top-off iterations
    assert result.speedup > 2.0                     # ~3x overall


def test_fig02_traffic(benchmark, report):
    result = run_once(benchmark, comparison)
    ic, pic = result.ic, result.pic

    ic_intermediate = sum(
        jr.map_output_bytes_raw for t in ic.traces for jr in t.job_results
    )
    ic_models = result.ic_traffic.get("model_update", {}).get("total_bytes", 0)
    pic_be_shuffle = pic.phases[0].shuffle_bytes
    pic_models = pic.model_update_bytes
    table = render_table(
        ["volume", "IC total", "PIC (best-effort phase)"],
        [
            ["intermediate data", human_bytes(ic_intermediate),
             human_bytes(pic_be_shuffle)],
            ["model updates", human_bytes(ic_models), human_bytes(pic_models)],
        ],
        title=(
            "Figure 2 (right) — interconnect volumes, 64-node cluster "
            "(640k points; measured from real records)"
        ),
    )
    table += (
        f"\n(iterations: IC {ic.iterations}; PIC {pic.be_iterations} "
        f"best-effort rounds, locals "
        f"{pic.best_effort.max_local_iterations_by_round}, "
        f"{pic.topoff_iterations} top-off)"
    )
    report("Figure 2 traffic", table)

    # The paper's core argument: intermediate data collapses by orders
    # of magnitude; model updates stay the same order.
    assert pic_be_shuffle < ic_intermediate / 100
    assert pic.topoff_iterations <= max(1, ic.iterations / 3)
