"""Figure 12 — Accuracy of results vs time for (a) neural-network
training, (b) K-means clustering, and (c) the linear-equation solver.

Paper results:

* (a) PIC reaches a validation error "virtually identical" to the
  baseline's final error in less than a quarter of the time;
* (b) the centroids converge much faster in PIC's best-effort phase;
* (c) PIC produces comparable quality in one-third the time.
"""

import numpy as np

from benchmarks.conftest import cached, run_once
from repro.apps.kmeans import centroid_displacement, lloyd
from repro.harness.tracing import trace_ic, trace_pic
from repro.harness.workloads import (
    kmeans_small,
    linsolve_small,
    neuralnet_medium,
)
from repro.util.formatting import render_table


def _series_table(title, ic_curve, pic_curves, value_name):
    rows = []
    for t, err in ic_curve:
        rows.append(["IC", f"{t:.4f}", f"{err:.5f}"])
    for label, curve in pic_curves:
        for t, err in curve:
            rows.append([label, f"{t:.4f}", f"{err:.5f}"])
    return render_table(["run", "sim time (s)", value_name], rows, title=title)


def _time_to_reach(curve, target):
    for t, err in curve:
        if err <= target:
            return t
    return float("inf")


# -- (a) neural network ------------------------------------------------------

def fig12a():
    def compute():
        # The error-vs-time study runs at the small-cluster scale (the
        # paper does not tie Figure 12 to a cluster size); 21k samples
        # over 24 splits keeps per-split SGD meaningful.
        from repro.cluster.presets import small_cluster

        w = neuralnet_medium(num_samples=21_000, num_partitions=18)
        Xv, yv = w.extras["Xv"], w.extras["yv"]
        error_fn = lambda model: w.program.validation_error(model, Xv, yv)
        ic, ic_curve = trace_ic(
            small_cluster(), w.program, w.records, w.initial_model, error_fn
        )
        pic, be_curve, topoff_curve = trace_pic(
            small_cluster(), w.program, w.records, w.initial_model, error_fn,
            w.num_partitions,
        )
        return ic, ic_curve, pic, be_curve, topoff_curve

    return cached("fig12a", compute)


def test_fig12a_neuralnet(benchmark, report):
    ic, ic_curve, pic, be_curve, topoff_curve = run_once(benchmark, fig12a)
    table = _series_table(
        "Figure 12(a) — NN validation error vs time",
        ic_curve,
        [("PIC/best-effort", be_curve), ("PIC/top-off", topoff_curve)],
        "validation error",
    )
    report("Figure 12a nn error vs time", table)

    ic_final = ic_curve[-1][1]
    pic_all = be_curve + topoff_curve
    # PIC reaches (near) the IC final error well before IC finishes.
    t_pic = _time_to_reach(pic_all, ic_final + 0.01)
    t_ic = ic_curve[-1][0]
    assert t_pic < t_ic / 2


# -- (b) K-means -------------------------------------------------------------

def fig12b():
    def compute():
        w = kmeans_small(num_points=100_000)
        points = np.stack([v for _k, v in w.records])
        reference = lloyd(
            points, w.program.k, threshold=w.program.threshold,
            initial=w.program.centroid_array(w.initial_model),
        ).centroids

        def error_fn(model):
            return centroid_displacement(
                w.program.centroid_array(model), reference
            )

        ic_cluster = w.cluster_factory()
        ic, ic_curve = trace_ic(
            ic_cluster, w.program, w.records, w.initial_model, error_fn
        )
        pic_cluster = w.cluster_factory()
        pic, be_curve, topoff_curve = trace_pic(
            pic_cluster, w.program, w.records, w.initial_model, error_fn,
            w.num_partitions,
        )
        return ic, ic_curve, pic, be_curve, topoff_curve

    return cached("fig12b", compute)


def test_fig12b_kmeans(benchmark, report):
    ic, ic_curve, pic, be_curve, topoff_curve = run_once(benchmark, fig12b)
    table = _series_table(
        "Figure 12(b) — K-means centroid displacement from the sequential "
        "reference vs time",
        ic_curve,
        [("PIC/best-effort", be_curve), ("PIC/top-off", topoff_curve)],
        "centroid displacement",
    )
    report("Figure 12b kmeans error vs time", table)

    # The best-effort phase converges (much) faster than IC.
    ic_final = ic_curve[-1][1]
    t_pic = _time_to_reach(be_curve + topoff_curve, max(ic_final, 0.05) * 2)
    assert t_pic < ic_curve[-1][0]


# -- (c) linear solver --------------------------------------------------------

def fig12c():
    def compute():
        w = linsolve_small()
        x_star = w.extras["x_star"]
        n = len(x_star)

        def error_fn(model):
            return float(
                np.linalg.norm(w.program.solution_vector(model, n) - x_star)
            )

        ic_cluster = w.cluster_factory()
        ic, ic_curve = trace_ic(
            ic_cluster, w.program, w.records, w.initial_model, error_fn,
            max_iterations=1000,
        )
        pic_cluster = w.cluster_factory()
        pic, be_curve, topoff_curve = trace_pic(
            pic_cluster, w.program, w.records, w.initial_model, error_fn,
            w.num_partitions, be_max_iterations=100,
        )
        return ic, ic_curve, pic, be_curve, topoff_curve

    return cached("fig12c", compute)


def test_fig12c_linsolve(benchmark, report):
    ic, ic_curve, pic, be_curve, topoff_curve = run_once(benchmark, fig12c)
    table = _series_table(
        "Figure 12(c) — linear solver distance to the golden solution vs time",
        ic_curve,
        [("PIC/best-effort", be_curve), ("PIC/top-off", topoff_curve)],
        "|x - x*|",
    )
    report("Figure 12c linsolve error vs time", table)

    # Paper: comparable quality in about one-third the time.
    ic_final_time = ic_curve[-1][0]
    ic_final_err = ic_curve[-1][1]
    t_pic = _time_to_reach(be_curve + topoff_curve, ic_final_err * 10)
    assert t_pic < ic_final_time / 2
