"""Ablation — centralized vs distributed merge (Section III-C).

The paper notes that the key/value model representation "allows the
merge function itself to execute in a distributed fashion as a MapReduce
job".  For the large-model smoothing workload the single merge reducer
is a genuine funnel (every sub-model streams to one node); distributing
the merge spreads that traffic over the reduce fleet.  Results are
bit-identical either way.
"""

import numpy as np

from benchmarks.conftest import cached, run_once
from repro.apps.smoothing import ImageSmoothingProgram, synthetic_image
from repro.apps.smoothing.datagen import image_records
from repro.cluster.presets import small_cluster
from repro.pic.runner import PICRunner
from repro.util.formatting import human_time, render_table

SIDE = 256


def merge_point(distributed: bool):
    def compute():
        img = synthetic_image(SIDE, SIDE, seed=13)
        records = image_records(img)
        prog = ImageSmoothingProgram(SIDE, SIDE)
        model0 = prog.initial_model(records)
        result = PICRunner(
            small_cluster(), prog, num_partitions=12, seed=3,
            distributed_merge=distributed,
        ).run(records, initial_model=model0)
        image = prog.image_array(result.model)
        return result, image

    return cached(f"ablation-merge-{distributed}", compute)


def test_centralized_merge(benchmark):
    result, _img = run_once(benchmark, lambda: merge_point(False))
    assert result.be_iterations >= 1


def test_distributed_merge(benchmark):
    result, _img = run_once(benchmark, lambda: merge_point(True))
    assert result.be_iterations >= 1


def test_merge_report(benchmark, report):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    central, img_c = merge_point(False)
    distributed, img_d = merge_point(True)
    table = render_table(
        ["merge strategy", "best-effort time", "total time", "BE rounds"],
        [
            ["centralized (1 reducer)", human_time(central.be_time),
             human_time(central.total_time), central.be_iterations],
            ["distributed (MapReduce job)", human_time(distributed.be_time),
             human_time(distributed.total_time), distributed.be_iterations],
        ],
        title=(
            "Ablation — merge as a distributed MapReduce job "
            "(image smoothing, model = whole image)"
        ),
    )
    report("Ablation distributed merge", table)
    # Same model either way; the distributed merge removes the
    # single-reducer funnel so the best-effort phase is no slower.
    assert np.allclose(img_c, img_d)
    assert distributed.be_time <= central.be_time * 1.1
