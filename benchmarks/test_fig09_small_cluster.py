"""Figure 9 — Performance of PIC and baseline IC on the small (6-node)
cluster: K-means, PageRank, and the linear equation solver.

Paper result: PIC achieves 2.5x-4x over the strengthened IC baseline.
We reproduce the same three applications at scaled size and report the
same bars: runtime (IC vs PIC) and speedup.
"""

from benchmarks.conftest import cached, run_once
from repro.harness import compare_ic_pic
from repro.harness.workloads import kmeans_small, linsolve_small, pagerank_small
from repro.util.formatting import human_time, render_table

SPEEDUP_BAND = (1.8, 6.0)  # generous envelope around the paper's 2.5-4x


def _compare(workload, **kw):
    return compare_ic_pic(
        workload.cluster_factory,
        workload.program,
        workload.records,
        workload.initial_model,
        workload.num_partitions,
        **kw,
    )


def kmeans_comparison():
    return cached("fig9-kmeans", lambda: _compare(kmeans_small()))


def pagerank_comparison():
    return cached("fig9-pagerank", lambda: _compare(pagerank_small()))


def linsolve_comparison():
    return cached(
        "fig9-linsolve",
        lambda: _compare(linsolve_small(), max_iterations=1000, be_max_iterations=100),
    )


def test_fig09_kmeans(benchmark):
    result = run_once(benchmark, kmeans_comparison)
    assert SPEEDUP_BAND[0] < result.speedup < SPEEDUP_BAND[1]


def test_fig09_pagerank(benchmark):
    result = run_once(benchmark, pagerank_comparison)
    assert SPEEDUP_BAND[0] < result.speedup < SPEEDUP_BAND[1]


def test_fig09_linsolve(benchmark):
    result = run_once(benchmark, linsolve_comparison)
    assert SPEEDUP_BAND[0] < result.speedup < SPEEDUP_BAND[1]


def test_fig09_report(benchmark, report):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = []
    for name, result in (
        ("K-means", kmeans_comparison()),
        ("PageRank", pagerank_comparison()),
        ("Linear solver", linsolve_comparison()),
    ):
        rows.append(
            [
                name,
                human_time(result.ic_time),
                human_time(result.pic.be_time),
                human_time(result.pic.topoff_time),
                f"{result.speedup:.2f}x",
            ]
        )
    table = render_table(
        ["application", "IC time", "PIC best-effort", "PIC top-off", "speedup"],
        rows,
        title="Figure 9 — small (6-node) cluster, paper band: 2.5x-4x",
    )
    report("Figure 9 small cluster", table)
    speedups = [
        kmeans_comparison().speedup,
        pagerank_comparison().speedup,
        linsolve_comparison().speedup,
    ]
    assert all(s > 1.5 for s in speedups)
