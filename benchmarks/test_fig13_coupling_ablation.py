"""Figure 13 / Section VI-B — the nearly-uncoupled property.

The paper's Figure 13 is conceptual: PIC targets problems whose
dependency matrix is nearly block diagonal (small ε between partitions),
and Section VI-B predicts the best-effort phase converges at a rate
governed by the cross-block coupling.

This ablation makes the claim quantitative on the linear solver.  We
take one weakly diagonally dominant banded system, fix the partitioning,
and scale *only the cross-partition entries* by γ ∈ {0.1, 0.5, 1.0}
(the diagonal is unchanged, so dominance — and hence convergence — is
preserved).  Larger γ ⇒ larger measured ε ⇒ larger per-round contraction
factor ρ(I − B⁻¹A) ⇒ more best-effort rounds; the theory quantities from
``repro.analysis`` track the measured round counts.
"""

import numpy as np

from benchmarks.conftest import cached, run_once
from repro.analysis import (
    contiguous_assignment,
    coupling_epsilon,
    schwarz_convergence_factor,
)
from repro.apps.linsolve import LinearSolverProgram, diagonally_dominant_system
from repro.apps.linsolve.datagen import system_records
from repro.cluster.presets import small_cluster
from repro.pic.engine import BestEffortEngine
from repro.util.formatting import render_table

GAMMAS = (0.1, 0.5, 1.0)
N = 120
PARTITIONS = 6


def _scaled_system(gamma: float):
    A, _b, _x = diagonally_dominant_system(
        N, bandwidth=3, dominance=1.05, seed=11
    )
    assignment = contiguous_assignment(N, PARTITIONS)
    A = A.copy()
    cross = assignment[:, None] != assignment[None, :]
    A[cross] *= gamma
    rng = np.random.default_rng(7)
    x_star = rng.normal(size=N)
    return A, A @ x_star, x_star, assignment


def ablation_point(gamma: float):
    def compute():
        A, b, x_star, assignment = _scaled_system(gamma)
        eps = coupling_epsilon(A, assignment, PARTITIONS)
        rho = schwarz_convergence_factor(A, assignment)

        program = LinearSolverProgram(threshold=1e-6, overlap=0)
        engine = BestEffortEngine(
            small_cluster(), program, num_partitions=PARTITIONS, seed=3,
            be_max_iterations=300,
        )
        records = system_records(A, b)
        be = engine.run(records, program.initial_model(records))
        x = program.solution_vector(be.model, N)
        return {
            "epsilon": eps,
            "rho": rho,
            "be_rounds": be.be_iterations,
            "residual": float(np.linalg.norm(x - x_star)),
        }

    return cached(f"fig13-{gamma}", compute)


def test_fig13_weak_coupling(benchmark):
    point = run_once(benchmark, lambda: ablation_point(GAMMAS[0]))
    assert point["rho"] < 1.0


def test_fig13_medium_coupling(benchmark):
    point = run_once(benchmark, lambda: ablation_point(GAMMAS[1]))
    assert point["rho"] < 1.0


def test_fig13_full_coupling(benchmark):
    point = run_once(benchmark, lambda: ablation_point(GAMMAS[2]))
    assert point["rho"] < 1.0


def test_fig13_report(benchmark, report):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = []
    points = []
    for gamma in GAMMAS:
        p = ablation_point(gamma)
        points.append(p)
        rows.append(
            [
                f"{gamma:.1f}",
                f"{p['epsilon']:.3f}",
                f"{p['rho']:.3f}",
                p["be_rounds"],
                f"{p['residual']:.2e}",
            ]
        )
    table = render_table(
        ["cross-block coupling scale", "coupling epsilon", "per-round rho",
         "best-effort rounds", "final |x - x*|"],
        rows,
        title=(
            "Figure 13 ablation — more cross-block coupling => larger epsilon "
            "=> slower best-effort convergence (Section VI-B)"
        ),
    )
    report("Figure 13 coupling ablation", table)

    eps = [p["epsilon"] for p in points]
    rho = [p["rho"] for p in points]
    rounds = [p["be_rounds"] for p in points]
    assert eps == sorted(eps)
    assert rho == sorted(rho)
    assert rounds == sorted(rounds)
    # All runs still reach the solution (diagonal dominance holds).
    assert all(p["residual"] < 1e-4 for p in points)
