"""Ablation — sensitivity to the in-memory/pipeline cost ratio.

The one modeled (not measured) constant in this reproduction is the cost
of an in-memory local iteration relative to a full MapReduce record-
pipeline pass (DESIGN.md §5).  The default 0.1 is what the paper's own
iteration counts imply; this bench sweeps it so readers can see how the
headline speedup depends on it.  Even at a very conservative 0.5 the
best-effort phase still wins on traffic and global-synchronisation
counts.
"""

import dataclasses

from benchmarks.conftest import cached, run_once
from repro.harness import compare_ic_pic
from repro.harness.workloads import kmeans_small
from repro.util.formatting import render_table

RATIOS = (0.05, 0.1, 0.25, 0.5)


def ratio_point(ratio: float):
    def compute():
        w = kmeans_small(num_points=100_000)
        base = w.program.costs
        w.program.costs = dataclasses.replace(
            base,
            inmemory_seconds_per_record=base.map_seconds_per_record * ratio,
        )
        return compare_ic_pic(
            w.cluster_factory, w.program, w.records, w.initial_model,
            w.num_partitions,
        )

    return cached(f"ablation-ratio-{ratio}", compute)


def test_ratio_sweep(benchmark):
    run_once(benchmark, lambda: [ratio_point(r) for r in RATIOS])


def test_ratio_report(benchmark, report):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = []
    speedups = []
    for ratio in RATIOS:
        result = ratio_point(ratio)
        speedups.append(result.speedup)
        rows.append([f"{ratio:.2f}", f"{result.speedup:.2f}x"])
    table = render_table(
        ["in-memory / pipeline cost ratio", "PIC speedup"],
        rows,
        title=(
            "Ablation — speedup sensitivity to the in-memory cost ratio "
            "(default 0.1; K-means, 100k points, 6 nodes)"
        ),
    )
    report("Ablation inmemory ratio", table)
    # Monotone: cheaper local iterations => larger speedup.
    assert speedups == sorted(speedups, reverse=True)
    # PIC still wins even at the most conservative ratio.
    assert speedups[-1] > 1.0
