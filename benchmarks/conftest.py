"""Shared benchmark infrastructure.

Every bench runs its experiment exactly once (``benchmark.pedantic``
with one round — the experiments are deterministic simulations, so
repetition adds nothing), renders the paper-shaped table, and registers
it here; the tables are echoed into the terminal summary so the tee'd
bench output contains every reproduced figure/table.
"""

from __future__ import annotations

import os
from typing import Any, Callable

import pytest

_REPORTS: list[tuple[str, str]] = []
_CACHE: dict[str, Any] = {}

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def register_report(title: str, text: str) -> None:
    """Record a rendered table for the terminal summary + results dir."""
    _REPORTS.append((title, text))
    os.makedirs(RESULTS_DIR, exist_ok=True)
    slug = title.lower().replace(" ", "-").replace("/", "-")
    with open(os.path.join(RESULTS_DIR, f"{slug}.txt"), "w") as fh:
        fh.write(text + "\n")


def cached(key: str, compute: Callable[[], Any]) -> Any:
    """Memoize expensive comparisons shared between bench files
    (e.g. the medium-cluster K-means used by both Figure 2 and 10)."""
    if key not in _CACHE:
        _CACHE[key] = compute()
    return _CACHE[key]


def run_once(benchmark, fn: Callable[[], Any]) -> Any:
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    box: dict[str, Any] = {}

    def target():
        box["result"] = fn()

    benchmark.pedantic(target, rounds=1, iterations=1)
    return box["result"]


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    for title, text in _REPORTS:
        terminalreporter.write_sep("=", title)
        for line in text.splitlines():
            terminalreporter.write_line(line)


@pytest.fixture
def report():
    return register_report
