"""Figure 11 — Strong scalability of the PIC speedup for image smoothing.

Paper result: with the dataset fixed and the cluster scaled from 64 to
256 nodes, the PIC-over-IC speedup is maintained (~2.8-3.3x across the
sweep) — "the PIC library does not have any negative impact on the
scalability of Hadoop".
"""

from benchmarks.conftest import cached, run_once
from repro.harness import compare_ic_pic
from repro.harness.workloads import smoothing_large
from repro.util.formatting import human_time, render_table

NODE_COUNTS = (64, 128, 192, 256)


def scaling_point(num_nodes: int):
    def compute():
        w = smoothing_large(num_nodes)
        return compare_ic_pic(
            w.cluster_factory, w.program, w.records, w.initial_model,
            w.num_partitions,
        )

    return cached(f"fig11-{num_nodes}", compute)


def test_fig11_64(benchmark):
    assert run_once(benchmark, lambda: scaling_point(64)).speedup > 1.5


def test_fig11_128(benchmark):
    assert run_once(benchmark, lambda: scaling_point(128)).speedup > 1.5


def test_fig11_192(benchmark):
    assert run_once(benchmark, lambda: scaling_point(192)).speedup > 1.5


def test_fig11_256(benchmark):
    assert run_once(benchmark, lambda: scaling_point(256)).speedup > 1.5


def test_fig11_report(benchmark, report):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = []
    speedups = []
    for nodes in NODE_COUNTS:
        result = scaling_point(nodes)
        speedups.append(result.speedup)
        rows.append(
            [
                nodes,
                human_time(result.ic_time),
                human_time(result.pic_time),
                f"{result.speedup:.2f}x",
            ]
        )
    table = render_table(
        ["nodes", "IC time", "PIC time", "speedup"],
        rows,
        title=(
            "Figure 11 — strong scaling, image smoothing (fixed 1024x1024 "
            "image), paper: speedup maintained to 256 nodes"
        ),
    )
    report("Figure 11 strong scaling", table)
    # The paper's claim: the speedup is *maintained* as nodes grow.
    assert max(speedups) / min(speedups) < 2.5
    assert min(speedups) > 1.5
