"""Ablation — stragglers and speculative execution.

Not in the paper, but implied by its design: a best-effort round lasts
as long as its *slowest* sub-problem, so PIC is more exposed to slow
nodes than a conventional iteration (whose waves amortize stragglers
across many short tasks).  Hadoop's speculative execution — which PIC
inherits unchanged (Section VII) — recovers most of the loss by racing
backups of straggler tasks on fast nodes.

Setup: K-means on the 6-node cluster with one node running at 1/4
speed; IC and PIC each measured with and without speculative execution.
"""

from benchmarks.conftest import cached, run_once
from repro.apps.kmeans import KMeansProgram, gaussian_mixture
from repro.cluster.cluster import Cluster
from repro.cluster.topology import NodeSpec
from repro.pic.runner import PICRunner, run_ic_baseline
from repro.util.formatting import human_time, render_table

SLOWDOWN = 4.0


def slow_node_cluster():
    specs = [
        NodeSpec(
            cores=8, map_slots=4, reduce_slots=4,
            cpu_speed=(1.0 / SLOWDOWN) if i == 5 else 1.0,
            ram_bytes=48 * 2**30,
        )
        for i in range(6)
    ]
    return Cluster(num_nodes=6, nodes_per_rack=6, node_specs=specs,
                   name="small-6-hetero")


def experiment():
    def compute():
        records, _ = gaussian_mixture(100_000, 10, dim=3, separation=6.0, seed=1)
        prog = KMeansProgram(k=10, dim=3, threshold=0.1)
        model0 = prog.initial_model(records, seed=2)
        out = {}
        for speculative in (False, True):
            ic = run_ic_baseline(
                slow_node_cluster(), prog, records,
                initial_model={k: v.copy() for k, v in model0.items()},
                speculative=speculative,
            )
            pic = PICRunner(
                slow_node_cluster(), prog, num_partitions=24, seed=3,
                speculative=speculative,
            ).run(records, initial_model={k: v.copy() for k, v in model0.items()})
            out[speculative] = (ic, pic)
        return out

    return cached("ablation-stragglers", compute)


def test_stragglers(benchmark):
    out = run_once(benchmark, experiment)
    ic_plain, pic_plain = out[False]
    ic_spec, pic_spec = out[True]
    # Speculation never hurts, and it shortens PIC's straggler-bound
    # best-effort rounds.
    assert ic_spec.total_time <= ic_plain.total_time * 1.01
    assert pic_spec.total_time < pic_plain.total_time


def test_stragglers_report(benchmark, report):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    out = experiment()
    rows = []
    for speculative in (False, True):
        ic, pic = out[speculative]
        rows.append(
            [
                "on" if speculative else "off",
                human_time(ic.total_time),
                human_time(pic.total_time),
                f"{ic.total_time / pic.total_time:.2f}x",
            ]
        )
    table = render_table(
        ["speculative execution", "IC time", "PIC time", "PIC speedup"],
        rows,
        title=(
            "Ablation — stragglers (one node at 1/4 speed, K-means, "
            "6-node cluster): speculation restores PIC's edge"
        ),
    )
    report("Ablation stragglers", table)
