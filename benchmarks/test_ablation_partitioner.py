"""Ablation — partitioning strategy for PageRank (Section VI-B).

The paper: "by properly partitioning [the web graph] (for example using
the METIS package), the connectivity matrix of the graph becomes nearly
uncoupled"; its experiments nonetheless used random vertex partitioning.
We compare both on the same graph: the locality-preserving (contiguous)
partitioner cuts far fewer edges and yields a more accurate best-effort
model at the same cost.
"""

import numpy as np

from benchmarks.conftest import cached, run_once
from repro.analysis.coupling import graph_coupling_epsilon
from repro.apps.pagerank import PageRankProgram, local_web_graph, nutch_pagerank
from repro.cluster.presets import small_cluster
from repro.harness import compare_ic_pic
from repro.util.formatting import render_table

NUM_VERTICES = 10_000
PARTITIONS = 18


def mode_point(mode: str):
    def compute():
        records = local_web_graph(NUM_VERTICES, avg_out_degree=8.0, seed=5)
        program = PageRankProgram(partition_mode=mode)
        model0 = program.initial_model(records)
        result = compare_ic_pic(
            small_cluster, program, records, model0, PARTITIONS
        )
        # Measure the cut the partitioner produced.
        program.partition(records, model0, PARTITIONS, seed=3)
        eps = graph_coupling_epsilon(records, program._assignment)
        ranks = program.rank_vector(result.pic.model, NUM_VERTICES)
        reference = nutch_pagerank(records)
        rel_l1 = float(np.abs(ranks - reference).sum() / reference.sum())
        return result, eps, rel_l1

    return cached(f"ablation-partitioner-{mode}", compute)


def test_contiguous_mode(benchmark):
    result, eps, rel_l1 = run_once(benchmark, lambda: mode_point("contiguous"))
    assert rel_l1 < 0.15


def test_mincut_mode(benchmark):
    result, eps, rel_l1 = run_once(benchmark, lambda: mode_point("mincut"))
    assert rel_l1 < 0.2


def test_random_mode(benchmark):
    result, eps, rel_l1 = run_once(benchmark, lambda: mode_point("random"))
    assert result.speedup > 1.0


def test_partitioner_report(benchmark, report):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = []
    data = {}
    for mode in ("contiguous", "mincut", "random"):
        result, eps, rel_l1 = mode_point(mode)
        data[mode] = (eps, rel_l1)
        rows.append(
            [mode, f"{eps:.3f}", f"{result.speedup:.2f}x", f"{rel_l1:.4f}"]
        )
    table = render_table(
        ["partitioner", "cross-edge fraction", "speedup",
         "rank error (rel L1 vs serial)"],
        rows,
        title="Ablation — PageRank partitioning strategy (Section VI-B)",
    )
    report("Ablation pagerank partitioner", table)
    # Locality-aware partitioning cuts fewer edges and is more accurate;
    # min-cut recovers (most of) the same structure without needing
    # vertex ids to encode locality.
    assert data["contiguous"][0] < data["random"][0]
    assert data["contiguous"][1] < data["random"][1]
    assert data["mincut"][0] < data["random"][0] / 2
    assert data["mincut"][1] < data["random"][1]
