"""Wall-clock performance microbenchmarks (host time, not simulated time).

Unlike ``benchmarks/test_*`` — which reproduce the paper's *simulated*
figures — this package times the reproduction's own hot paths on the
host: partition → solve → merge, shuffle-size accounting, and the
end-to-end harness.  ``python -m benchmarks.perf.wallclock`` writes
``BENCH_wallclock.json`` so every future PR has a perf trajectory to
regress against.
"""
