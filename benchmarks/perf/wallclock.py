"""Wall-clock microbenchmark suite with a regression gate.

Times the host-side hot paths of the reproduction:

* ``sizing_homogeneous`` / ``sizing_mixed`` — the shuffle-accounting
  record sizer (batched fast path vs generic recursion);
* ``partition_solve_merge`` — one best-effort round's real computation
  (partition the data, solve every sub-problem in memory, merge);
* ``shuffle_accounting_job`` — a full MapReduce job on the simulated
  cluster, dominated by map output bucketing/sizing/shuffle bookkeeping;
* ``end_to_end_pic`` — a complete two-phase PIC run;
* ``flow_fanout_64`` / ``flow_fanout_256`` — an all-to-all shuffle wave
  on the flow simulator (64/256 nodes, heterogeneous sizes), timing the
  structure-of-arrays rate recomputation and same-horizon completion
  batching at scale (the 256-node wave is slow-tier: full mode only);
* ``multijob_flows_16`` / ``multijob_flows_64`` — K independent jobs
  (churny intra-rack shuffles over standing bulk transfers) on one
  flow simulator, timing component-scoped rebalancing: per-event cost
  must not scale with the K-1 unaffected jobs (64 is slow-tier);
* ``concurrent_pic_16`` — sixteen whole MapReduce jobs submitted
  concurrently through ``submit_many`` against one shared cluster,
  exercising the fair slot interleaving and the per-component
  completion timers end-to-end;
* ``kmeans_500k_columnar`` / ``kmeans_500k_row`` — one full MapReduce
  job over 500k 3-d points with the columnar data plane on vs off
  (same simulated seconds and bytes; the wall-clock gap is the point);
* ``kmeans_500k_pipelined`` — the columnar 500k job again, through the
  pipelined scheduler (per-split gates, eager reduce merges, the node
  cache): pins the host-side cost of that bookkeeping vs the barrier;
* ``iterative_cache_hot`` — a three-iteration pipelined driver sharing
  one node-memory cache across repeats, timing the loop-aware warm
  path (cache lookups, skipped input flows, stripped overheads);
* ``shuffle_columnar_vs_row`` / ``shuffle_row`` — the shuffle hot path
  in isolation: hash-partition + bucket + size one big record batch,
  columnar vs scalar;
* ``solve_parallel_w{N}`` — the same solves through the process pool
  (reported for trajectory; multi-core hosts should see < serial).

Usage::

    python -m benchmarks.perf.wallclock --mode smoke --output BENCH_wallclock.json
    python -m benchmarks.perf.wallclock --mode smoke --check BENCH_wallclock.json

Regression checking is *calibration-normalized*: every run also times a
fixed pure-Python loop and compares ``bench / calibration`` ratios, so
a faster or slower host does not masquerade as a code change.  A bench
regresses when its normalized time exceeds the baseline's by more than
``--tolerance`` (default 0.25, i.e. 25%).
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from typing import Any, Callable

import numpy as np

DEFAULT_BASELINE = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__)))),
    "BENCH_wallclock.json",
)

SIZES = {
    "smoke": dict(sizing_records=20_000, points=4_000, k=5, partitions=6,
                  job_records=8_000, e2e_points=4_000, fanout_classes=11,
                  bulk_points=500_000, shuffle_records=200_000,
                  multijob_chain=24, multijob_bulk=48, concurrent_records=3_000,
                  repeats=5),
    "full": dict(sizing_records=200_000, points=40_000, k=10, partitions=24,
                 job_records=40_000, e2e_points=20_000, fanout_classes=23,
                 bulk_points=500_000, shuffle_records=1_000_000,
                 multijob_chain=48, multijob_bulk=48, concurrent_records=12_000,
                 repeats=5),
}


def _time_best_of(fn: Callable[[], Any], repeats: int) -> float:
    """Best-of-N wall-clock seconds for one bench (min is the standard
    noise-robust statistic for microbenchmarks)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()  # pic: noqa: PIC001 (host time IS the measurand)
        fn()
        best = min(best, time.perf_counter() - start)  # pic: noqa: PIC001
    return best


def _calibration() -> None:
    """Fixed pure-Python workload used to normalize across hosts."""
    acc = 0
    for i in range(2_000_000):
        acc += i % 7
    assert acc > 0


# -- benches -----------------------------------------------------------------


def bench_sizing_homogeneous(cfg) -> Callable[[], None]:
    records = [(i, np.full(3, 0.5)) for i in range(cfg["sizing_records"])]

    def run() -> None:
        from repro.util.sizing import sizeof_records

        sizeof_records(records)

    return run


def bench_sizing_mixed(cfg) -> Callable[[], None]:
    n = cfg["sizing_records"] // 4
    records = []
    for i in range(n):
        records.append((i, (i, float(i))))
        records.append((f"k{i}", {"a": 1, "b": [1.0, 2.0]}))

    def run() -> None:
        from repro.util.sizing import sizeof_records

        sizeof_records(records)

    return run


def _kmeans_fixture(points: int, k: int):
    from repro.apps.kmeans import KMeansProgram, gaussian_mixture

    records, _ = gaussian_mixture(points, k, dim=3, separation=6.0, seed=1)
    program = KMeansProgram(k=k, dim=3, threshold=0.1)
    model0 = program.initial_model(records, seed=2)
    return program, records, model0


def bench_partition_solve_merge(cfg) -> Callable[[], None]:
    program, records, model0 = _kmeans_fixture(cfg["points"], cfg["k"])
    num_partitions = cfg["partitions"]

    def run() -> None:
        pairs = program.partition(records, model0, num_partitions, seed=3)
        solved = [
            program.solve_in_memory(recs, model)[0] for recs, model in pairs
        ]
        program.merge(solved)

    return run


def _make_solve_parallel(workers: int):
    def bench(cfg) -> Callable[[], None]:
        from repro.parallel import get_executor, solve_subproblem

        program, records, model0 = _kmeans_fixture(cfg["points"], cfg["k"])
        pairs = program.partition(records, model0, cfg["partitions"], seed=3)
        executor = get_executor(workers)
        payloads = [(program, recs, model, None) for recs, model in pairs]

        def run() -> None:
            executor.map(solve_subproblem, payloads)

        return run

    return bench


def bench_shuffle_accounting_job(cfg) -> Callable[[], None]:
    from repro.apps.kmeans import gaussian_mixture
    from repro.cluster.cluster import Cluster
    from repro.dfs.dfs import DistributedFileSystem
    from repro.mapreduce.records import DistributedDataset

    records, _ = gaussian_mixture(cfg["job_records"], 4, dim=3,
                                  separation=6.0, seed=1)
    # Materialized once, outside the timed region, like the bulk k-means
    # bench: drivers load input a single time and run jobs over it, and
    # keeping the row->columnar conversion out of the loop measures the
    # same job body in both PIC_COLUMNAR modes.
    cluster = Cluster(num_nodes=4, nodes_per_rack=4)
    dfs = DistributedFileSystem(cluster, replication=2, seed=5)
    dataset = DistributedDataset.materialize(
        dfs, "/perf/input", records, num_splits=8
    )
    waves = iter(range(1_000_000))

    def run() -> None:
        from repro.mapreduce.job import JobSpec
        from repro.mapreduce.runner import JobRunner
        from repro.parallel import SerialExecutor

        spec = JobSpec(
            # unique name per repeat: job output paths must not collide
            name=f"perf-shuffle-{next(waves)}",
            batch_mapper=_perf_mapper,
            batch_reducer=_perf_reducer,
            num_reducers=4,
        )
        runner = JobRunner(cluster, dfs, executor=SerialExecutor())
        runner.run(spec, dataset)

    return run


def _perf_mapper(ctx, records) -> None:
    for key, value in records:
        ctx.emit(key % 16, value)


def _perf_reducer(ctx, grouped) -> None:
    for key, values in grouped:
        ctx.emit(key, np.sum(np.stack(values), axis=0))


def bench_end_to_end_pic(cfg) -> Callable[[], None]:
    program, records, model0 = _kmeans_fixture(cfg["e2e_points"], cfg["k"])

    def run() -> None:
        import copy

        from repro.cluster.cluster import Cluster
        from repro.pic.runner import PICRunner

        cluster = Cluster(num_nodes=6, nodes_per_rack=6)
        PICRunner(
            cluster, program, num_partitions=cfg["partitions"], seed=3,
            be_max_iterations=10, max_iterations=50, workers=1,
        ).run(records, initial_model=copy.deepcopy(model0))

    return run


def _make_flow_fanout(num_nodes: int):
    """All-to-all shuffle wave on the flow simulator.

    Every node sends one flow to every other node; byte counts cycle
    through ``fanout_classes`` distinct sizes (a prime count keeps the
    completion horizons heterogeneous — avoid 7 and 13, which divide
    the hash multipliers and collapse the class pattern).  This is the
    workload the structure-of-arrays rewrite targets: tens of thousands
    of concurrent flows contending for oversubscribed rack uplinks.
    """

    def bench(cfg) -> Callable[[], None]:
        classes = cfg["fanout_classes"]

        def run() -> None:
            from repro.cluster.cluster import Cluster

            cluster = Cluster(
                num_nodes=num_nodes, nodes_per_rack=16, oversubscription=4.0
            )
            requests = [
                (
                    src,
                    dst,
                    2e7 * (1 + ((7 * src + 13 * dst) % classes) / classes),
                    "shuffle",
                )
                for src in range(num_nodes)
                for dst in range(num_nodes)
                if src != dst
            ]
            cluster.transfer_batch(requests)
            cluster.run()

        return run

    return bench


def _make_multijob_flows(num_jobs: int):
    """K independent jobs, each a churny shuffle plus a bulk transfer.

    Each "job" owns one 8-node rack.  Nodes 0–3 run the *churn* phase:
    12 intra-rack flows kept alive for ``multijob_chain`` ping-pong hops
    each — every completion starts the reverse transfer, so the event
    stream interleaves thousands of arrivals/departures across jobs.
    Nodes 4–7 carry ``multijob_bulk`` long bulk flows (sized to outlast
    the churn) on disjoint links, the standing load a busy shared
    cluster always has.  This is the workload component-scoped
    rebalancing targets: an event in one job's churn component must not
    pay for — or perturb the timers of — the other K-1 jobs or any of
    the bulk components, while a global recompute pays for every active
    flow on every event.  Sizes are skewed per (job, endpoint, hop) so
    completion horizons never align.
    """

    def bench(cfg) -> Callable[[], None]:
        chain = cfg["multijob_chain"]
        bulk = cfg["multijob_bulk"]

        def run() -> None:
            from repro.cluster.cluster import Cluster

            cluster = Cluster(
                num_nodes=num_jobs * 8, nodes_per_rack=8, oversubscription=4.0
            )

            def launch(job: int, src: int, dst: int, hops_left: int) -> None:
                size = (
                    1e7
                    * (1 + ((3 * src + 5 * dst + hops_left) % 7) / 7)
                    * (1 + job / (2 * num_jobs))
                )

                def done(_flow) -> None:
                    if hops_left > 0:
                        launch(job, dst, src, hops_left - 1)

                cluster.transfer(src, dst, size, "shuffle", done)

            for job in range(num_jobs):
                base = job * 8
                for a in range(4):
                    for b in range(4):
                        if a != b:
                            launch(job, base + a, base + b, chain)
                # Uniform size within a job: the whole bulk component
                # drains in one batched completion event (skewed per
                # job so jobs never drain at the same instant).
                bulk_size = 4e9 * (1 + job / (2 * num_jobs))
                for i in range(bulk):
                    pair = i % 12
                    src = base + 4 + pair // 3
                    dst = base + 4 + (pair // 3 + 1 + pair % 3) % 4
                    cluster.transfer(src, dst, bulk_size, "bulk")
            cluster.run()

        return run

    return bench


def _make_concurrent_jobs(num_jobs: int):
    """K whole MapReduce jobs submitted concurrently to one cluster.

    Each job is a single k-means iteration over its own dataset,
    launched through ``JobRunner.submit_many``: all K jobs contend for
    the same map slots, the same simulation clock, and — the point —
    the same ``FlowNetwork``.  Every job's shuffle lives in its own
    flow–link component most of the time, so component-scoped
    rebalancing keeps per-event cost independent of K while the
    least-granted slot interleaving keeps the jobs genuinely
    concurrent rather than serialized.
    """

    def bench(cfg) -> Callable[[], None]:
        from repro.cluster.cluster import Cluster
        from repro.dfs.dfs import DistributedFileSystem
        from repro.mapreduce.records import DistributedDataset
        from repro.mapreduce.runner import JobRunner
        from repro.parallel import SerialExecutor

        program, records, model0 = _kmeans_fixture(
            cfg["concurrent_records"], cfg["k"]
        )
        cluster = Cluster(num_nodes=32, nodes_per_rack=8, oversubscription=4.0)
        dfs = DistributedFileSystem(cluster, replication=2, seed=5)
        datasets = [
            DistributedDataset.materialize(
                dfs, f"/perf/concurrent-{j}", records, num_splits=4
            )
            for j in range(num_jobs)
        ]
        model_bytes = program.model_bytes(model0)
        waves = iter(range(1_000_000))

        def run() -> None:
            runner = JobRunner(cluster, dfs, executor=SerialExecutor())
            wave = next(waves)
            runner.run_many([
                (
                    # unique name per repeat: output paths must not collide
                    program.job_spec(suffix=f"-{wave}-{j}"),
                    datasets[j],
                    {
                        "model": model0,
                        "model_bytes": model_bytes,
                        "model_locations": (j % cluster.num_nodes,),
                    },
                )
                for j in range(num_jobs)
            ])

        return run

    return bench


def _make_kmeans_bulk(columnar: bool, pipeline: bool = False):
    """One full MapReduce job over ``bulk_points`` k-means records.

    Simulated seconds/bytes are identical in both columnar modes (that
    is tested elsewhere); the bench times the host-side data plane —
    vectorized assignment, batched hashing/bucketing/sizing, vectorized
    combine — against the per-record loops of the row path.  The
    ``pipeline`` variant runs the same job through the pipelined
    scheduler (per-split gates, eager reduce merges, the node-memory
    cache), pinning the host-side cost of that bookkeeping against the
    barrier bench.
    """

    def bench(cfg) -> Callable[[], None]:
        from repro.cluster.cluster import Cluster
        from repro.dfs.dfs import DistributedFileSystem
        from repro.mapreduce.records import DistributedDataset
        from repro.mapreduce.runner import JobRunner
        from repro.parallel import SerialExecutor

        program, records, model0 = _kmeans_fixture(cfg["bulk_points"], cfg["k"])
        mode = "1" if columnar else "0"
        # The dataset is materialized once, outside the timed region:
        # iterative drivers load input a single time and then run a job
        # per iteration over it, which is the path being measured.
        saved = os.environ.get("PIC_COLUMNAR")
        os.environ["PIC_COLUMNAR"] = mode
        try:
            cluster = Cluster(num_nodes=4, nodes_per_rack=4)
            dfs = DistributedFileSystem(cluster, replication=2, seed=5)
            dataset = DistributedDataset.materialize(
                dfs, "/perf/kmeans-bulk", records, num_splits=8
            )
        finally:
            if saved is None:
                os.environ.pop("PIC_COLUMNAR", None)
            else:
                os.environ["PIC_COLUMNAR"] = saved

        waves = iter(range(1_000_000))

        def run() -> None:
            runner = JobRunner(
                cluster, dfs, executor=SerialExecutor(), pipeline=pipeline
            )
            runner.run(
                # unique name per repeat: job output paths must not collide
                spec=program.job_spec(suffix=f"-{next(waves)}"),
                dataset=dataset,
                model=model0,
                model_bytes=program.model_bytes(model0),
            )

        return run

    return bench


def bench_iterative_cache_hot(cfg) -> Callable[[], None]:
    """A multi-iteration pipelined driver whose input stays resident.

    One ``JobRunner`` (and therefore one node-memory cache) is shared
    across repeats, so after the warm-up pass *every* iteration runs
    out of node memory: the bench times the loop-aware warm path —
    cache lookups, skipped input flows, stripped launch overheads —
    rather than the first cold scan.
    """
    import copy

    from repro.cluster.cluster import Cluster
    from repro.dfs.dfs import DistributedFileSystem
    from repro.mapreduce.driver import IterativeDriver
    from repro.mapreduce.records import DistributedDataset
    from repro.mapreduce.runner import JobRunner
    from repro.parallel import SerialExecutor

    from repro.apps.kmeans import KMeansProgram, gaussian_mixture

    records, _ = gaussian_mixture(cfg["points"], cfg["k"], dim=3,
                                  separation=6.0, seed=1)
    # A threshold the centroids never reach keeps every repeat at
    # exactly max_iterations, so the timed work is constant.
    program = KMeansProgram(k=cfg["k"], dim=3, threshold=1e-12)
    model0 = program.initial_model(records, seed=2)
    cluster = Cluster(num_nodes=4, nodes_per_rack=4)
    dfs = DistributedFileSystem(cluster, replication=2, seed=5)
    dataset = DistributedDataset.materialize(
        dfs, "/perf/kmeans-hot", records, num_splits=8
    )
    runner = JobRunner(
        cluster, dfs, executor=SerialExecutor(), pipeline=True
    )

    def run() -> None:
        driver = IterativeDriver(
            runner=runner,
            dataset=dataset,
            jobs=program.jobs,
            build_model=program.build_model,
            converged=program.converged,
            model_sizer=program.model_bytes,
            max_iterations=3,
            optimized_baseline=False,
            model_mode=program.model_mode,
        )
        driver.run(copy.deepcopy(model0))

    return run


def _make_shuffle(columnar: bool):
    """The shuffle hot path in isolation: partition + bucket + size.

    Records mirror k-means map output (int key, (vector, count) value);
    both variants compute the same partition ids, the same bucket
    membership, and the same wire bytes.
    """

    def bench(cfg) -> Callable[[], None]:
        from repro.mapreduce.columnar import ColumnBatch

        n = cfg["shuffle_records"]
        rng = np.random.default_rng(9)
        vectors = rng.standard_normal((n, 3))
        rows = [(i % 1024, (vectors[i], 1)) for i in range(n)]
        batch = ColumnBatch.from_rows(rows)
        num_buckets = 8

        def run() -> None:
            from repro.mapreduce.records import hash_partitioner
            from repro.util.sizing import sizeof_records

            if columnar:
                pids = batch.partition_ids(num_buckets)
                order = np.argsort(pids, kind="stable")
                in_order = batch.take(order)
                counts = np.bincount(pids, minlength=num_buckets)
                bounds = np.concatenate(([0], np.cumsum(counts)))
                total = sum(
                    in_order.slice(int(bounds[p]), int(bounds[p + 1])).nbytes_wire()
                    for p in range(num_buckets)
                )
            else:
                buckets: list[list] = [[] for _ in range(num_buckets)]
                for record in rows:
                    buckets[hash_partitioner(record[0], num_buckets)].append(record)
                total = sum(sizeof_records(bucket) for bucket in buckets)
            assert total > 0

        return run

    return bench


BENCHES: dict[str, Callable[[dict], Callable[[], None]]] = {
    "sizing_homogeneous": bench_sizing_homogeneous,
    "sizing_mixed": bench_sizing_mixed,
    "partition_solve_merge": bench_partition_solve_merge,
    "shuffle_accounting_job": bench_shuffle_accounting_job,
    "end_to_end_pic": bench_end_to_end_pic,
    "flow_fanout_64": _make_flow_fanout(64),
    "flow_fanout_256": _make_flow_fanout(256),
    "multijob_flows_16": _make_multijob_flows(16),
    "multijob_flows_64": _make_multijob_flows(64),
    "concurrent_pic_16": _make_concurrent_jobs(16),
    "kmeans_500k_columnar": _make_kmeans_bulk(True),
    "kmeans_500k_row": _make_kmeans_bulk(False),
    "kmeans_500k_pipelined": _make_kmeans_bulk(True, pipeline=True),
    "iterative_cache_hot": bench_iterative_cache_hot,
    "shuffle_columnar_vs_row": _make_shuffle(True),
    "shuffle_row": _make_shuffle(False),
}

# Pool benches are trajectory-only: their wall-clock depends on host
# core count, so the regression gate skips them (see check_against).
TRAJECTORY_ONLY = {"solve_parallel_w4"}
BENCHES["solve_parallel_w4"] = _make_solve_parallel(4)

# Slow tier: heavyweight benches that only run in ``--mode full``.
# Smoke mode — the CI regression gate — skips them, so they never
# appear in a smoke baseline and the gate ignores them.
SLOW_TIER = {"flow_fanout_256", "multijob_flows_64"}


def run_suite(mode: str) -> dict[str, Any]:
    """Run every bench in ``mode`` and return the result document."""
    cfg = SIZES[mode]
    repeats = cfg["repeats"]
    calibration = _time_best_of(_calibration, repeats)
    benches: dict[str, float] = {}
    for name, factory in BENCHES.items():
        if mode == "smoke" and name in SLOW_TIER:
            print(f"  {name:30s}   skipped (slow tier)", file=sys.stderr)
            continue
        fn = factory(cfg)
        fn()  # warm-up: imports, allocator, caches
        benches[name] = _time_best_of(fn, repeats)
        print(f"  {name:30s} {benches[name] * 1e3:10.2f} ms", file=sys.stderr)
    return {
        "meta": {
            "mode": mode,
            "python": platform.python_version(),
            "machine": platform.machine(),
            "calibration_seconds": calibration,
        },
        "benches": benches,
    }


def check_against(
    current: dict[str, Any], baseline: dict[str, Any], tolerance: float
) -> list[str]:
    """Return regression messages (empty when the gate passes)."""
    failures: list[str] = []
    if current["meta"]["mode"] != baseline["meta"].get("mode"):
        return [
            f"mode mismatch: current {current['meta']['mode']!r} vs "
            f"baseline {baseline['meta'].get('mode')!r}; regenerate the baseline"
        ]
    cal_now = current["meta"]["calibration_seconds"]
    cal_base = baseline["meta"]["calibration_seconds"]
    for name, base_seconds in baseline["benches"].items():
        if name in TRAJECTORY_ONLY or name not in current["benches"]:
            continue
        now_norm = current["benches"][name] / cal_now
        base_norm = base_seconds / cal_base
        if now_norm > base_norm * (1.0 + tolerance):
            failures.append(
                f"{name}: {now_norm:.2f}x calibration vs baseline "
                f"{base_norm:.2f}x (> {tolerance:.0%} regression)"
            )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="PIC reproduction wall-clock microbenchmarks"
    )
    parser.add_argument("--mode", choices=sorted(SIZES), default="smoke")
    parser.add_argument(
        "--output", metavar="FILE", default=None,
        help="write current timings as JSON (the BENCH_wallclock.json format)",
    )
    parser.add_argument(
        "--check", metavar="BASELINE", default=None,
        help="compare against a baseline JSON; exit 1 on regression",
    )
    parser.add_argument(
        "--tolerance", type=float, default=0.25,
        help="allowed fractional slowdown per bench (default 0.25)",
    )
    args = parser.parse_args(argv)

    print(f"running perf suite (mode={args.mode})...", file=sys.stderr)
    current = run_suite(args.mode)

    if args.output:
        with open(args.output, "w") as fh:
            json.dump(current, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.output}", file=sys.stderr)

    if args.check:
        with open(args.check) as fh:
            baseline = json.load(fh)
        failures = check_against(current, baseline, args.tolerance)
        if failures:
            print("PERF REGRESSION:", file=sys.stderr)
            for line in failures:
                print(f"  {line}", file=sys.stderr)
            return 1
        print(
            f"perf gate passed ({len(baseline['benches'])} benches, "
            f"tolerance {args.tolerance:.0%})",
            file=sys.stderr,
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
