"""Table II — Breakdown of data read or generated during K-means
clustering on the small (6-node) cluster.

Paper result (500M points): one baseline iteration produces 9.21 GB of
intermediate (mapper-output) data and 30 KB of model updates; the whole
baseline run 285.68 GB / 959 KB; the whole PIC run only 80.9 KB / 92 KB
— three-to-four orders of magnitude less intermediate data, "in spite of
the fact that all our baseline implementations utilize combiner
optimizations".

We report the identical three columns at scaled size.  As in the paper,
the PIC column is the best-effort phase (the top-off iterations are
conventional iterations and are reported separately for honesty).
"""

from benchmarks.conftest import cached, run_once
from repro.harness import compare_ic_pic
from repro.harness.workloads import kmeans_table1, kmeans_table1_sizes
from repro.util.formatting import human_bytes, render_table


def comparison():
    def compute():
        w = kmeans_table1(kmeans_table1_sizes()[-1])  # 320k points
        return compare_ic_pic(
            w.cluster_factory, w.program, w.records, w.initial_model,
            w.num_partitions,
        )

    return cached(f"table1-{kmeans_table1_sizes()[-1]}", compute)


def test_table2_traffic(benchmark, report):
    result = run_once(benchmark, comparison)
    ic, pic = result.ic, result.pic

    per_iter_intermediate = [
        sum(jr.map_output_bytes_raw for jr in t.job_results) for t in ic.traces
    ]
    per_iter_models = [t.model_update_bytes for t in ic.traces]
    ic_intermediate = sum(per_iter_intermediate)
    ic_models = sum(per_iter_models)
    be_intermediate = pic.phases[0].shuffle_bytes
    be_models = pic.phases[0].model_update_bytes
    topoff_intermediate = sum(
        jr.map_output_bytes_raw for t in pic.topoff.traces for jr in t.job_results
    )

    table = render_table(
        ["volume", "1 baseline it. (IC)", "total baseline (IC)",
         "total PIC (best-effort)"],
        [
            [
                "intermediate data",
                human_bytes(per_iter_intermediate[0]),
                human_bytes(ic_intermediate),
                human_bytes(be_intermediate),
            ],
            [
                "model updates",
                human_bytes(per_iter_models[0]),
                human_bytes(ic_models),
                human_bytes(be_models),
            ],
        ],
        title="Table II — data read or generated during K-means clustering",
    )
    table += (
        f"\n(top-off phase: {pic.topoff_iterations} conventional iteration(s), "
        f"{human_bytes(topoff_intermediate)} intermediate data)"
    )
    report("Table II traffic breakdown", table)

    # The paper's headline: intermediate data collapses by orders of
    # magnitude, model updates stay the same order.
    assert be_intermediate < ic_intermediate / 1000
    assert be_models < ic_models * 2
