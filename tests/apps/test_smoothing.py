"""Tests for the image smoothing application."""

import numpy as np
import pytest

from repro.apps.smoothing import (
    ImageSmoothingProgram,
    jacobi_smooth,
    smooth_reference,
    synthetic_image,
)
from repro.apps.smoothing.datagen import image_records
from repro.apps.smoothing.serial import jacobi_smooth_step


class TestDatagen:
    def test_shape_and_range(self):
        img = synthetic_image(32, 48, seed=0)
        assert img.shape == (32, 48)
        assert img.std() > 0.01  # has structure

    def test_deterministic(self):
        assert np.array_equal(
            synthetic_image(16, 16, seed=3), synthetic_image(16, 16, seed=3)
        )

    def test_noise_zero_is_smooth_er(self):
        clean = synthetic_image(32, 32, noise=0.0, seed=1)
        noisy = synthetic_image(32, 32, noise=0.5, seed=1)
        def roughness(u):
            return np.abs(np.diff(u, axis=0)).mean()
        assert roughness(noisy) > roughness(clean)

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            synthetic_image(2, 10)

    def test_records_roundtrip(self):
        img = synthetic_image(8, 8, seed=0)
        records = image_records(img)
        assert len(records) == 8
        rebuilt = np.stack([row for _i, row in sorted(records)])
        assert np.array_equal(rebuilt, img)

    def test_records_require_2d(self):
        with pytest.raises(ValueError):
            image_records(np.zeros(5))


class TestSerialSmoothing:
    def test_converges_to_golden(self):
        img = synthetic_image(24, 24, seed=1)
        result = jacobi_smooth(img, threshold=1e-10)
        golden = smooth_reference(img)
        assert np.abs(result.u - golden).max() < 1e-7

    def test_smoothing_reduces_roughness(self):
        img = synthetic_image(24, 24, noise=0.3, seed=2)
        result = jacobi_smooth(img, threshold=1e-6)
        rough_before = np.abs(np.diff(img, axis=0)).mean()
        rough_after = np.abs(np.diff(result.u, axis=0)).mean()
        assert rough_after < rough_before

    def test_constant_image_is_fixed_point(self):
        img = np.full((10, 10), 3.0)
        out = jacobi_smooth_step(img, img, lam=2.0)
        assert np.allclose(out, 3.0)

    def test_change_trace_contracts(self):
        img = synthetic_image(24, 24, seed=3)
        result = jacobi_smooth(img, threshold=1e-8)
        trace = result.change_trace
        assert trace[-1] < trace[0]

    def test_invalid_lambda(self):
        with pytest.raises(ValueError):
            jacobi_smooth(np.zeros((5, 5)), lam=0.0)


class TestProgram:
    def make(self, side=16, **kw):
        img = synthetic_image(side, side, seed=4)
        records = image_records(img)
        prog = ImageSmoothingProgram(side, side, **kw)
        return img, records, prog

    def test_one_iteration_matches_serial_step(self):
        img, records, prog = self.make()
        model = prog.initial_model(records)
        new_model, _cost = prog.run_iteration_in_memory(records, model, 0)
        expected = jacobi_smooth_step(img, img, prog.lam)
        assert np.allclose(prog.image_array(new_model), expected)

    def test_solve_matches_golden(self):
        img, records, prog = self.make()
        prog.threshold = 1e-8
        model, _iters, _cost = prog.solve_in_memory(
            records, prog.initial_model(records)
        )
        golden = smooth_reference(img)
        assert np.abs(prog.image_array(model) - golden).max() < 1e-5

    def test_partition_bands_disjoint_cover(self):
        _img, records, prog = self.make()
        prog.partition(records, prog.initial_model(records), 4, seed=0)
        seen: set[int] = set()
        for owned in prog._owned_keys:
            assert not owned & seen
            seen |= owned
        assert seen == set(range(16))

    def test_sub_model_includes_halo(self):
        _img, records, prog = self.make(overlap=0)
        pairs = prog.partition(records, prog.initial_model(records), 4, seed=0)
        _band, sub_model = pairs[1]
        owned = prog._owned_keys[1]
        # One halo row on each side of the band.
        assert min(sub_model) == min(owned) - 1
        assert max(sub_model) == max(owned) + 1

    def test_merge_reassembles_image(self):
        _img, records, prog = self.make()
        pairs = prog.partition(records, prog.initial_model(records), 4, seed=0)
        merged = prog.merge([m for _r, m in pairs])
        assert set(merged) == set(range(16))

    def test_merge_count_mismatch(self):
        _img, records, prog = self.make()
        prog.partition(records, prog.initial_model(records), 4, seed=0)
        with pytest.raises(ValueError):
            prog.merge([{}, {}])

    def test_converged_semantics(self):
        _img, _records, prog = self.make()
        a = {i: np.zeros(16) for i in range(16)}
        b = {i: np.zeros(16) for i in range(16)}
        assert prog.converged(a, b, 0)
        b[3] = np.full(16, prog.threshold * 2)
        assert not prog.converged(a, b, 0)

    def test_model_mode_partitioned(self):
        _img, _records, prog = self.make()
        assert prog.model_mode == "partitioned"

    @pytest.mark.parametrize(
        "kw", [{"lam": 0}, {"threshold": 0}, {"overlap": -1}]
    )
    def test_invalid_params(self, kw):
        with pytest.raises(ValueError):
            ImageSmoothingProgram(16, 16, **kw)

    def test_tiny_image_rejected(self):
        with pytest.raises(ValueError):
            ImageSmoothingProgram(1, 16)
