"""Tests for the neural-network training application."""

import numpy as np
import pytest

from repro.apps.neuralnet import (
    MLP,
    NeuralNetProgram,
    forward,
    init_params,
    loss_and_gradients,
    ocr_dataset,
)
from repro.apps.neuralnet.mlp import PARAM_KEYS, misclassification
from repro.mapreduce.job import TaskContext


class TestDatagen:
    def test_shapes(self):
        records, X, y = ocr_dataset(100, seed=0)
        assert len(records) == 100
        assert X.shape == (100, 64)
        assert y.shape == (100,)
        assert set(np.unique(y)) <= set(range(10))

    def test_deterministic(self):
        _r1, X1, y1 = ocr_dataset(50, seed=3)
        _r2, X2, y2 = ocr_dataset(50, seed=3)
        assert np.array_equal(X1, X2)
        assert np.array_equal(y1, y2)

    def test_classes_separable_without_noise(self):
        _r, X, y = ocr_dataset(500, noise=0.01, label_noise=0.0, seed=1)
        # Nearest-class-mean classification should be near perfect.
        means = np.stack([X[y == c].mean(axis=0) for c in range(10)])
        pred = np.argmin(
            ((X[:, None, :] - means[None]) ** 2).sum(axis=2), axis=1
        )
        assert (pred == y).mean() >= 0.9

    def test_label_noise_flips_labels(self):
        _r1, _X1, clean = ocr_dataset(2000, label_noise=0.0, seed=5)
        _r2, _X2, noisy = ocr_dataset(2000, label_noise=0.3, seed=5)
        assert (clean != noisy).mean() > 0.1

    @pytest.mark.parametrize(
        "kw",
        [
            {"num_samples": 5, "num_classes": 10},
            {"num_samples": 10, "num_classes": 1},
            {"num_samples": 10, "label_noise": 1.0},
        ],
    )
    def test_invalid_rejected(self, kw):
        with pytest.raises(ValueError):
            ocr_dataset(**kw)


class TestMLP:
    def test_param_shapes(self):
        params = init_params(MLP(64, 32, 10), seed=0)
        assert params["W1"].shape == (64, 32)
        assert params["b1"].shape == (32,)
        assert params["W2"].shape == (32, 10)
        assert params["b2"].shape == (10,)

    def test_forward_probabilities(self):
        params = init_params(MLP(8, 4, 3), seed=0)
        X = np.random.default_rng(0).normal(size=(5, 8))
        _H, probs = forward(params, X)
        assert probs.shape == (5, 3)
        assert np.allclose(probs.sum(axis=1), 1.0)
        assert np.all(probs >= 0)

    def test_gradients_match_finite_differences(self):
        shape = MLP(4, 3, 2)
        params = init_params(shape, seed=1)
        rng = np.random.default_rng(2)
        X = rng.normal(size=(6, 4))
        y = rng.integers(0, 2, size=6)
        _loss, grads = loss_and_gradients(params, X, y)
        eps = 1e-6
        for key in PARAM_KEYS:
            idx = 0  # check the first coordinate of each tensor
            bumped = {k: v.copy() for k, v in params.items()}
            bumped[key].ravel()[idx] += eps
            up, _ = loss_and_gradients(bumped, X, y)
            bumped[key].ravel()[idx] -= 2 * eps
            down, _ = loss_and_gradients(bumped, X, y)
            numeric = (up - down) / (2 * eps)
            assert grads[key].ravel()[idx] == pytest.approx(numeric, abs=1e-5)

    def test_empty_batch_rejected(self):
        params = init_params(MLP(4, 3, 2), seed=0)
        with pytest.raises(ValueError):
            loss_and_gradients(params, np.zeros((0, 4)), np.zeros(0, dtype=int))

    def test_misclassification_bounds(self):
        params = init_params(MLP(8, 4, 3), seed=0)
        rng = np.random.default_rng(1)
        X = rng.normal(size=(20, 8))
        y = rng.integers(0, 3, size=20)
        err = misclassification(params, X, y)
        assert 0.0 <= err <= 1.0

    def test_invalid_shape(self):
        with pytest.raises(ValueError):
            MLP(0, 4, 2)


def make_program(**kw):
    _r, Xv, yv = ocr_dataset(200, seed=99)
    defaults = dict(shape=MLP(64, 32, 10), validation=(Xv, yv))
    defaults.update(kw)
    return NeuralNetProgram(**defaults)


class TestProgram:
    def test_initial_model_keys(self):
        prog = make_program()
        model = prog.initial_model([], seed=0)
        assert set(model) == set(PARAM_KEYS)

    def test_sgd_epoch_reduces_loss(self):
        prog = make_program()
        records, X, y = ocr_dataset(500, seed=1)
        params = prog.initial_model(records, seed=2)
        before, _ = loss_and_gradients(params, X, y)
        trained = prog.sgd_epoch(params, X, y)
        after, _ = loss_and_gradients(trained, X, y)
        assert after < before

    def test_sgd_epoch_does_not_mutate_input(self):
        prog = make_program()
        _r, X, y = ocr_dataset(100, seed=1)
        params = prog.initial_model([], seed=2)
        snapshot = {k: v.copy() for k, v in params.items()}
        prog.sgd_epoch(params, X, y)
        for key in PARAM_KEYS:
            assert np.array_equal(params[key], snapshot[key])

    def test_batch_map_emits_weighted_weights(self):
        prog = make_program()
        records, _X, _y = ocr_dataset(50, seed=1)
        ctx = TaskContext(model=prog.initial_model(records, seed=2))
        prog.batch_map(ctx, records)
        assert {k for k, _v in ctx.output} == set(PARAM_KEYS)
        for _k, (weighted, n) in ctx.output:
            assert n == 50

    def test_reduce_weight_average(self):
        prog = make_program()
        w_a, w_b = np.ones((2, 2)), np.full((2, 2), 3.0)
        ctx = TaskContext()
        prog.reduce(ctx, "W1", [(w_a * 10, 10), (w_b * 30, 30)])
        key, averaged = ctx.output[0]
        assert np.allclose(averaged, (10 * 1 + 30 * 3) / 40)

    def test_converged_on_error_plateau(self):
        prog = make_program(min_improvement=0.01, min_epochs=2)
        model = prog.initial_model([], seed=0)
        # Same model twice: zero improvement -> converged after min_epochs.
        assert prog.converged(model, model, 2)
        assert not prog.converged(model, model, 0)

    def test_converged_at_epoch_cap(self):
        prog = make_program(max_epochs=5)
        model = prog.initial_model([], seed=0)
        assert prog.converged(model, model, 4)

    @pytest.mark.parametrize(
        "kw",
        [
            {"learning_rate": 0},
            {"min_improvement": 0},
            {"l2": -1},
            {"batch_size": 0},
        ],
    )
    def test_invalid_params(self, kw):
        with pytest.raises(ValueError):
            make_program(**kw)

    def test_empty_validation_rejected(self):
        with pytest.raises(ValueError):
            NeuralNetProgram(MLP(64, 32, 10), validation=(np.zeros((0, 64)), np.zeros(0)))

    def test_training_improves_validation_error(self):
        records, X, y = ocr_dataset(2000, seed=3)
        prog = NeuralNetProgram(
            MLP(64, 32, 10), validation=(X[1500:], y[1500:])
        )
        train = records[:1500]
        model = prog.initial_model(train, seed=4)
        before = prog.validation_error(model, X[1500:], y[1500:])
        trained, iters, _cost = prog.solve_in_memory(train, model)
        after = prog.validation_error(trained, X[1500:], y[1500:])
        assert after < before
        assert after < 0.35
