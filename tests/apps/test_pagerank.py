"""Tests for the PageRank application."""

import numpy as np
import pytest

from repro.apps.pagerank import PageRankProgram, local_web_graph, nutch_pagerank
from repro.apps.pagerank.datagen import cross_edge_fraction
from repro.apps.pagerank.program import EDGE, PR
from repro.mapreduce.job import TaskContext


class TestDatagen:
    def test_every_vertex_has_out_links(self):
        records = local_web_graph(200, seed=1)
        assert len(records) == 200
        assert all(len(outs) >= 1 for _v, outs in records)

    def test_no_self_loops_or_duplicates(self):
        records = local_web_graph(300, seed=2)
        for v, outs in records:
            assert v not in outs
            assert len(set(outs)) == len(outs)

    def test_locality(self):
        records = local_web_graph(
            2000, locality_scale=10.0, long_range_fraction=0.0, seed=3
        )
        distances = [abs(t - v) for v, outs in records for t in outs]
        assert np.median(distances) < 30

    def test_long_range_fraction_increases_cross_edges(self):
        n, p = 2000, 10
        assign = {v: v * p // n for v in range(n)}
        local = local_web_graph(n, long_range_fraction=0.0, seed=4)
        mixed = local_web_graph(n, long_range_fraction=0.5, seed=4)
        assert cross_edge_fraction(mixed, assign) > cross_edge_fraction(local, assign)

    def test_deterministic(self):
        assert local_web_graph(100, seed=5) == local_web_graph(100, seed=5)

    @pytest.mark.parametrize(
        "kw",
        [
            {"num_vertices": 1},
            {"num_vertices": 10, "avg_out_degree": 0},
            {"num_vertices": 10, "long_range_fraction": 1.5},
            {"num_vertices": 10, "locality_scale": 0},
        ],
    )
    def test_invalid_rejected(self, kw):
        with pytest.raises(ValueError):
            local_web_graph(**kw)


class TestSerialReference:
    def test_ranks_positive_with_floor(self):
        records = local_web_graph(500, seed=1)
        pr = nutch_pagerank(records)
        assert np.all(pr >= 1.0 - 0.85 - 1e-9)

    def test_popular_vertex_ranks_higher(self):
        # Star: everyone links to 0; 0 links to 1.  The 0<->1 cycle needs
        # more than Nutch's default 10 iterations to damp out.
        records = [(0, (1,))] + [(v, (0,)) for v in range(1, 20)]
        pr = nutch_pagerank(records, iterations=50)
        assert pr[0] == max(pr)
        assert pr[1] > pr[2]

    def test_more_iterations_converge(self):
        records = local_web_graph(500, seed=1)
        a = nutch_pagerank(records, iterations=30)
        b = nutch_pagerank(records, iterations=31)
        assert np.abs(a - b).max() < 1e-3

    def test_invalid_params(self):
        records = [(0, (1,)), (1, (0,))]
        with pytest.raises(ValueError):
            nutch_pagerank(records, iterations=0)
        with pytest.raises(ValueError):
            nutch_pagerank(records, damping=1.0)


class TestProgramIC:
    def test_ic_matches_serial_reference(self):
        records = local_web_graph(300, seed=2)
        prog = PageRankProgram()
        model = prog.initial_model(records)
        for it in range(prog.iteration_limit):
            model, _cost = prog.run_iteration_in_memory(records, model, it)
        ours = prog.rank_vector(model, len(records))
        reference = nutch_pagerank(records)
        assert np.allclose(ours, reference, atol=1e-9)

    def test_initial_model_has_pr_and_edges(self):
        records = [(0, (1,)), (1, (0,))]
        model = PageRankProgram().initial_model(records)
        assert model[(PR, 0)] == 1.0
        assert (EDGE, 0, 1) in model

    def test_jobs_chain_two_phases(self):
        prog = PageRankProgram()
        specs = prog.jobs({}, 0)
        assert [s.name for s in specs] == ["pagerank-aggregate", "pagerank-propagate"]

    def test_aggregate_mapper_emits_incoming_scores(self):
        prog = PageRankProgram()
        records = [(0, (1,))]
        model = {(PR, 0): 1.0, (EDGE, 0, 1): 0.5}
        ctx = TaskContext(model=model)
        prog._map_aggregate(ctx, records)
        assert (1, 0.5) in ctx.output
        assert (0, 0.0) in ctx.output

    def test_propagate_splits_rank_over_outdegree(self):
        prog = PageRankProgram()
        records = [(0, (1, 2))]
        ctx = TaskContext(model={(PR, 0): 1.0})
        prog._map_propagate(ctx, records)
        assert ((EDGE, 0, 1), 0.5) in ctx.output
        assert ((EDGE, 0, 2), 0.5) in ctx.output

    def test_converged_is_fixed_iterations(self):
        prog = PageRankProgram(iteration_limit=10)
        assert not prog.converged({}, {}, 8)
        assert prog.converged({}, {}, 9)

    def test_model_mode_partitioned(self):
        assert PageRankProgram().model_mode == "partitioned"

    @pytest.mark.parametrize(
        "kw",
        [{"damping": 0.0}, {"damping": 1.0}, {"iteration_limit": 0},
         {"partition_mode": "magic"}],
    )
    def test_invalid_params(self, kw):
        with pytest.raises(ValueError):
            PageRankProgram(**kw)


class TestProgramPIC:
    def test_partition_vertex_disjoint(self):
        records = local_web_graph(200, seed=3)
        prog = PageRankProgram(partition_mode="contiguous")
        pairs = prog.partition(records, prog.initial_model(records), 4, seed=0)
        seen: set[int] = set()
        for recs, _model in pairs:
            vertices = {v for v, _o in recs}
            assert not vertices & seen
            seen |= vertices
        assert len(seen) == 200

    def test_partition_filters_cross_edges(self):
        records = local_web_graph(200, seed=3)
        prog = PageRankProgram(partition_mode="contiguous")
        pairs = prog.partition(records, prog.initial_model(records), 4, seed=0)
        for recs, _model in pairs:
            vertices = {v for v, _o in recs}
            for _v, outs in recs:
                assert all(t in vertices for t in outs)

    def test_cross_edges_recorded(self):
        records = local_web_graph(200, long_range_fraction=0.3, seed=3)
        prog = PageRankProgram(partition_mode="contiguous")
        prog.partition(records, prog.initial_model(records), 4, seed=0)
        total_edges = sum(len(o) for _v, o in records)
        internal = total_edges - len(prog._cross_edges)
        assert len(prog._cross_edges) > 0
        assert internal > 0

    def test_random_mode_differs_from_contiguous(self):
        records = local_web_graph(200, seed=3)
        rand = PageRankProgram(partition_mode="random")
        cont = PageRankProgram(partition_mode="contiguous")
        model = rand.initial_model(records)
        rand.partition(records, model, 4, seed=0)
        cont.partition(records, model, 4, seed=0)
        assert len(rand._cross_edges) > len(cont._cross_edges)

    def test_merge_scores_cross_edges_and_bumps_destinations(self):
        # Two partitions: {0}, {1}; edge 0 -> 1 crosses.
        records = [(0, (1,)), (1, (0,))]
        prog = PageRankProgram(partition_mode="contiguous")
        pairs = prog.partition(records, prog.initial_model(records), 2, seed=0)
        models = [m for _r, m in pairs]
        base_pr1 = models[1][(PR, 1)]
        merged = prog.merge(models)
        assert (EDGE, 0, 1) in merged
        assert merged[(PR, 1)] > base_pr1

    def test_merge_count_mismatch_rejected(self):
        records = [(0, (1,)), (1, (0,))]
        prog = PageRankProgram()
        prog.partition(records, prog.initial_model(records), 2, seed=0)
        with pytest.raises(ValueError):
            prog.merge([{}])

    def test_be_and_topoff_limits(self):
        prog = PageRankProgram(be_iteration_limit=2, topoff_iteration_limit=3)
        assert prog.be_converged({}, {}, 1)
        assert not prog.be_converged({}, {}, 0)
        assert prog.topoff_converged({}, {}, 2)
        assert not prog.topoff_converged({}, {}, 1)

    def test_rank_vector_extraction(self):
        prog = PageRankProgram()
        model = {(PR, 0): 1.5, (PR, 2): 0.5, (EDGE, 0, 2): 0.1}
        vec = prog.rank_vector(model, 3)
        assert np.allclose(vec, [1.5, 0.0, 0.5])
