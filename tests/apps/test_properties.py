"""Property-based tests on the applications' mathematical invariants.

These hold for the serial references, the MapReduce realisations, AND
the PIC best-effort phase — they are what "the algorithms still compute
the right thing under PIC's re-structuring" means formally.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.kmeans import KMeansProgram, gaussian_mixture
from repro.apps.linsolve import LinearSolverProgram, diagonally_dominant_system
from repro.apps.linsolve.datagen import system_records
from repro.apps.pagerank import PageRankProgram, local_web_graph
from repro.apps.smoothing import ImageSmoothingProgram, synthetic_image
from repro.apps.smoothing.datagen import image_records


class TestKMeansInvariants:
    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 100), st.integers(2, 5))
    def test_centroids_stay_in_data_bounding_box(self, seed, k):
        records, _ = gaussian_mixture(400, k, dim=2, seed=seed)
        points = np.stack([v for _k, v in records])
        prog = KMeansProgram(k=k, dim=2, threshold=1e-3)
        model, _iters, _c = prog.solve_in_memory(
            records, prog.initial_model(records, seed=seed + 1)
        )
        centroids = prog.centroid_array(model)
        lo, hi = points.min(axis=0), points.max(axis=0)
        assert np.all(centroids >= lo - 1e-9)
        assert np.all(centroids <= hi + 1e-9)

    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 50))
    def test_iteration_never_increases_distortion(self, seed):
        """Each Lloyd step (map+reduce round trip) weakly decreases the
        within-cluster sum of squares — k-means' defining invariant."""
        from repro.apps.kmeans.serial import assign_points

        records, _ = gaussian_mixture(500, 4, dim=2, seed=seed)
        points = np.stack([v for _k, v in records])
        prog = KMeansProgram(k=4, dim=2, threshold=1e-6)
        model = prog.initial_model(records, seed=seed + 1)

        def distortion(m):
            centroids = prog.centroid_array(m)
            assignment = assign_points(points, centroids)
            return float(((points - centroids[assignment]) ** 2).sum())

        for it in range(6):
            previous = distortion(model)
            model, _cost = prog.run_iteration_in_memory(records, model, it)
            assert distortion(model) <= previous + 1e-6


class TestPageRankInvariants:
    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 50))
    def test_rank_floor(self, seed):
        """Every vertex keeps at least the (1 − c) teleport mass."""
        records = local_web_graph(300, seed=seed)
        prog = PageRankProgram()
        model = prog.initial_model(records)
        for it in range(prog.iteration_limit):
            model, _cost = prog.run_iteration_in_memory(records, model, it)
        ranks = prog.rank_vector(model, len(records))
        assert np.all(ranks >= (1 - prog.damping) - 1e-12)

    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 50))
    def test_merge_preserves_rank_floor(self, seed):
        """The PIC merge (cross-edge pass) can only add rank mass."""
        records = local_web_graph(200, seed=seed)
        prog = PageRankProgram(partition_mode="contiguous")
        model = prog.initial_model(records)
        pairs = prog.partition(records, model, 4, seed=seed)
        models = []
        for recs, sub_model in pairs:
            solved, _i, _c = prog.solve_in_memory(recs, sub_model, max_iterations=3)
            models.append(solved)
        before = {
            k: v for m in models for k, v in m.items()
            if isinstance(k, tuple) and k[0] == "pr"
        }
        merged = prog.merge(models)
        for key, value in before.items():
            assert merged[key] >= value - 1e-12


class TestLinearSolverInvariants:
    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 50), st.integers(2, 6))
    def test_block_solve_residual_shrinks(self, seed, partitions):
        """One best-effort round (block solves + merge) reduces the
        residual for diagonally dominant systems — the §VI-B guarantee."""
        A, b, _x = diagonally_dominant_system(48, dominance=1.2, seed=seed)
        records = system_records(A, b)
        prog = LinearSolverProgram(threshold=1e-10, overlap=0)
        model = prog.initial_model(records)
        pairs = prog.partition(records, model, partitions, seed=seed)
        models = []
        for recs, sub_model in pairs:
            solved, _i, _c = prog.solve_in_memory(recs, sub_model)
            models.append(solved)
        merged = prog.merge(models)
        x_before = prog.solution_vector(model, 48)
        x_after = prog.solution_vector(merged, 48)
        assert np.linalg.norm(b - A @ x_after) < np.linalg.norm(b - A @ x_before)


class TestSmoothingInvariants:
    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 50))
    def test_maximum_principle(self, seed):
        """The smoothed image stays within the input's value range
        ((I + λL)⁻¹ is an averaging operator)."""
        img = synthetic_image(16, 16, seed=seed)
        records = image_records(img)
        prog = ImageSmoothingProgram(16, 16, threshold=1e-6)
        model, _i, _c = prog.solve_in_memory(records, prog.initial_model(records))
        out = prog.image_array(model)
        assert out.min() >= img.min() - 1e-9
        assert out.max() <= img.max() + 1e-9

    def test_mass_approximately_conserved(self):
        """With replicated boundaries L has zero row sums, so smoothing
        preserves the total intensity of the fixed point equation's
        solution up to solver tolerance."""
        img = synthetic_image(16, 16, seed=3)
        records = image_records(img)
        prog = ImageSmoothingProgram(16, 16, threshold=1e-10)
        model, _i, _c = prog.solve_in_memory(records, prog.initial_model(records))
        out = prog.image_array(model)
        assert out.sum() == pytest.approx(img.sum(), rel=1e-6)
