"""Tests for the K-means application (datagen, serial, program, quality)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.kmeans import (
    KMeansProgram,
    centroid_displacement,
    gaussian_mixture,
    jagota_index,
    lloyd,
    match_centroids,
)
from repro.apps.kmeans.serial import assign_points, init_centroids, update_centroids
from repro.mapreduce.job import TaskContext


class TestDatagen:
    def test_shapes(self):
        records, centers = gaussian_mixture(100, 5, dim=3, seed=0)
        assert len(records) == 100
        assert centers.shape == (5, 3)
        assert records[0][1].shape == (3,)

    def test_deterministic(self):
        a, _ = gaussian_mixture(50, 3, seed=7)
        b, _ = gaussian_mixture(50, 3, seed=7)
        assert all(np.array_equal(x[1], y[1]) for x, y in zip(a, b))

    def test_separation_controls_spread(self):
        _, tight = gaussian_mixture(10, 8, separation=2.0, seed=0)
        _, loose = gaussian_mixture(10, 8, separation=20.0, seed=0)
        assert np.abs(loose).max() > np.abs(tight).max()

    @pytest.mark.parametrize(
        "kw",
        [
            {"num_points": 0, "num_clusters": 1},
            {"num_points": 1, "num_clusters": 0},
            {"num_points": 1, "num_clusters": 1, "dim": 0},
            {"num_points": 1, "num_clusters": 1, "spread": 0},
        ],
    )
    def test_invalid_rejected(self, kw):
        with pytest.raises(ValueError):
            gaussian_mixture(**kw)


class TestSerialLloyd:
    def test_recovers_separated_clusters(self):
        records, centers = gaussian_mixture(2000, 4, separation=12.0, seed=1)
        points = np.stack([v for _k, v in records])
        result = lloyd(points, 4, seed=3)
        assert centroid_displacement(result.centroids, centers) < 0.5

    def test_assignment_is_nearest(self):
        points = np.array([[0.0, 0.0], [10.0, 10.0]])
        centroids = np.array([[1.0, 1.0], [9.0, 9.0]])
        assert list(assign_points(points, centroids)) == [0, 1]

    def test_update_keeps_empty_cluster_centroid(self):
        points = np.array([[0.0, 0.0]])
        assignment = np.array([0])
        previous = np.array([[5.0, 5.0], [7.0, 7.0]])
        updated = update_centroids(points, assignment, 2, previous)
        assert np.allclose(updated[1], [7.0, 7.0])
        assert np.allclose(updated[0], [0.0, 0.0])

    def test_displacement_trace_monotone_tail(self):
        records, _ = gaussian_mixture(2000, 4, separation=12.0, seed=1)
        points = np.stack([v for _k, v in records])
        result = lloyd(points, 4, seed=3)
        assert result.displacement_trace[-1] < result.displacement_trace[0]

    def test_init_requires_enough_points(self):
        with pytest.raises(ValueError):
            init_centroids(np.zeros((3, 2)), 5)

    def test_bad_initial_shape_rejected(self):
        with pytest.raises(ValueError):
            lloyd(np.zeros((10, 2)), 3, initial=np.zeros((2, 2)))


class TestProgram:
    def make(self, **kw):
        defaults = dict(k=3, dim=2, threshold=0.05)
        defaults.update(kw)
        return KMeansProgram(**defaults)

    def test_initial_model_is_k_points(self):
        prog = self.make()
        records = [(i, np.array([float(i), 0.0])) for i in range(10)]
        model = prog.initial_model(records, seed=1)
        assert set(model) == {0, 1, 2}

    def test_batch_map_assigns_nearest(self):
        prog = self.make(k=2)
        model = {0: np.array([0.0, 0.0]), 1: np.array([10.0, 10.0])}
        ctx = TaskContext(model=model)
        prog.batch_map(ctx, [(0, np.array([1.0, 1.0])), (1, np.array([9.0, 9.0]))])
        assert [k for k, _v in ctx.output] == [0, 1]

    def test_map_reduce_roundtrip_is_lloyd_step(self):
        records, _ = gaussian_mixture(500, 3, dim=2, separation=8.0, seed=2)
        prog = self.make()
        model = prog.initial_model(records, seed=4)
        new_model, _cost = prog.run_iteration_in_memory(records, model, 0)
        points = np.stack([v for _k, v in records])
        centroids = prog.centroid_array(model)
        expected = update_centroids(
            points, assign_points(points, centroids), 3, centroids
        )
        assert np.allclose(prog.centroid_array(new_model), expected)

    def test_combiner_sums(self):
        prog = self.make(dim=2)
        combined = prog.combine(0, [(np.array([1.0, 1.0]), 1), (np.array([2.0, 0.0]), 2)])
        assert np.allclose(combined[0], [3.0, 1.0])
        assert combined[1] == 3

    def test_empty_cluster_keeps_centroid(self):
        prog = self.make()
        model = {0: np.zeros(2), 1: np.ones(2), 2: np.full(2, 5.0)}
        new_model = prog.build_model(model, [(0, np.full(2, 2.0))])
        assert np.allclose(new_model[2], [5.0, 5.0])

    def test_converged_on_threshold(self):
        prog = self.make(threshold=0.1)
        a = {0: np.zeros(2), 1: np.ones(2), 2: np.ones(2)}
        b = {0: np.full(2, 0.01), 1: np.ones(2), 2: np.ones(2)}
        assert prog.converged(a, b, 3)
        assert not prog.converged(a, {**b, 0: np.ones(2)}, 3)

    def test_converged_at_max_iterations(self):
        prog = self.make(max_iterations=5)
        a = {0: np.zeros(2), 1: np.zeros(2), 2: np.zeros(2)}
        b = {0: np.ones(2), 1: np.zeros(2), 2: np.zeros(2)}
        assert prog.converged(a, b, 4)

    @pytest.mark.parametrize("kw", [{"k": 0}, {"dim": 0}, {"threshold": 0}])
    def test_invalid_params(self, kw):
        with pytest.raises(ValueError):
            self.make(**kw)

    def test_model_mode_is_broadcast(self):
        assert self.make().model_mode == "broadcast"


class TestQuality:
    def test_jagota_tighter_for_true_centers(self):
        records, centers = gaussian_mixture(2000, 4, separation=10.0, seed=1)
        points = np.stack([v for _k, v in records])
        rng = np.random.default_rng(0)
        random_centroids = rng.uniform(-20, 20, size=centers.shape)
        assert jagota_index(points, centers) < jagota_index(points, random_centroids)

    def test_jagota_of_perfect_model(self):
        points = np.array([[0.0, 0.0], [0.0, 0.0], [5.0, 5.0]])
        centroids = np.array([[0.0, 0.0], [5.0, 5.0]])
        assert jagota_index(points, centroids) == pytest.approx(0.0)

    def test_match_centroids_undoes_permutation(self):
        rng = np.random.default_rng(3)
        a = rng.normal(size=(6, 3))
        perm = rng.permutation(6)
        b = a[perm]
        matched = match_centroids(a, b)
        assert np.allclose(b[matched], a)

    def test_displacement_zero_for_permuted_copy(self):
        rng = np.random.default_rng(4)
        a = rng.normal(size=(5, 2))
        b = a[::-1].copy()
        assert centroid_displacement(a, b) == pytest.approx(0.0)

    def test_displacement_positive_for_different_sets(self):
        a = np.zeros((3, 2))
        b = np.ones((3, 2))
        assert centroid_displacement(a, b) == pytest.approx(np.sqrt(2))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            match_centroids(np.zeros((3, 2)), np.zeros((4, 2)))

    @settings(max_examples=20, deadline=None)
    @given(st.integers(2, 6), st.integers(0, 100))
    def test_displacement_is_symmetric(self, k, seed):
        rng = np.random.default_rng(seed)
        a = rng.normal(size=(k, 3))
        b = rng.normal(size=(k, 3))
        assert centroid_displacement(a, b) == pytest.approx(
            centroid_displacement(b, a)
        )
