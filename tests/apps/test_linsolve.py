"""Tests for the linear-equation solver application."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.linsolve import (
    LinearSolverProgram,
    diagonally_dominant_system,
    jacobi,
    jacobi_iteration_matrix,
)
from repro.apps.linsolve.datagen import system_records
from repro.mapreduce.job import TaskContext


class TestDatagen:
    def test_system_is_consistent(self):
        A, b, x_star = diagonally_dominant_system(50, seed=0)
        assert np.allclose(A @ x_star, b)

    def test_diagonal_dominance(self):
        A, _b, _x = diagonally_dominant_system(50, dominance=1.25, seed=0)
        off = np.abs(A).sum(axis=1) - np.abs(np.diag(A))
        assert np.all(np.abs(np.diag(A)) >= 1.25 * off - 1e-12)

    def test_banded_structure(self):
        A, _b, _x = diagonally_dominant_system(30, bandwidth=2, seed=0)
        for i in range(30):
            for j in range(30):
                if abs(i - j) > 2:
                    assert A[i, j] == 0.0

    def test_long_range_entries_added(self):
        A, _b, _x = diagonally_dominant_system(
            60, bandwidth=2, long_range_entries=30, seed=1
        )
        off_band = sum(
            1 for i in range(60) for j in range(60)
            if abs(i - j) > 2 and A[i, j] != 0
        )
        assert off_band > 0

    @settings(max_examples=15, deadline=None)
    @given(st.integers(10, 60), st.integers(0, 50))
    def test_jacobi_always_converges_on_generated_systems(self, n, seed):
        A, b, x_star = diagonally_dominant_system(n, seed=seed)
        rho = np.max(np.abs(np.linalg.eigvals(jacobi_iteration_matrix(A))))
        assert rho < 1.0

    @pytest.mark.parametrize(
        "kw", [{"n": 1}, {"bandwidth": 0}, {"dominance": 1.0},
               {"long_range_entries": -1}]
    )
    def test_invalid_rejected(self, kw):
        with pytest.raises(ValueError):
            diagonally_dominant_system(**{"n": 20, **kw})


class TestSerialJacobi:
    def test_solves_system(self):
        A, b, x_star = diagonally_dominant_system(40, seed=2)
        result = jacobi(A, b, threshold=1e-10, x_star=x_star)
        assert np.linalg.norm(result.x - x_star) < 1e-8

    def test_traces_recorded(self):
        A, b, x_star = diagonally_dominant_system(40, seed=2)
        result = jacobi(A, b, threshold=1e-8, x_star=x_star)
        assert len(result.change_trace) == result.iterations
        assert len(result.error_trace) == result.iterations
        assert result.error_trace[-1] < result.error_trace[0]

    def test_warm_start_converges_faster(self):
        A, b, x_star = diagonally_dominant_system(40, seed=2)
        cold = jacobi(A, b, threshold=1e-8)
        warm = jacobi(A, b, x0=x_star + 1e-4, threshold=1e-8)
        assert warm.iterations < cold.iterations

    def test_zero_diagonal_rejected(self):
        A = np.array([[0.0, 1.0], [1.0, 2.0]])
        with pytest.raises(ValueError):
            jacobi(A, np.ones(2))


class TestRecords:
    def test_row_records_roundtrip(self):
        A, b, _x = diagonally_dominant_system(10, seed=3)
        records = system_records(A, b)
        assert len(records) == 10
        i, (cols, vals, b_i) = records[4]
        assert i == 4
        assert b_i == b[4]
        dense = np.zeros(10)
        dense[cols] = vals
        assert np.allclose(dense, A[4])

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            system_records(np.zeros((3, 3)), np.zeros(4))


class TestProgram:
    def make_env(self, n=40, partitions=4, **kw):
        A, b, x_star = diagonally_dominant_system(n, seed=4)
        records = system_records(A, b)
        prog = LinearSolverProgram(**kw)
        return A, b, x_star, records, prog

    def test_one_iteration_is_jacobi_sweep(self):
        A, b, _x, records, prog = self.make_env()
        model = prog.initial_model(records)
        new_model, _cost = prog.run_iteration_in_memory(records, model, 0)
        x0 = np.zeros(len(b))
        expected = (b - (A - np.diag(np.diag(A))) @ x0) / np.diag(A)
        ours = prog.solution_vector(new_model, len(b))
        assert np.allclose(ours, expected)

    def test_solve_in_memory_matches_serial(self):
        A, b, x_star, records, prog = self.make_env()
        model, _iters, _cost = prog.solve_in_memory(
            records, prog.initial_model(records)
        )
        assert np.linalg.norm(prog.solution_vector(model, 40) - x_star) < 1e-4

    def test_partition_owned_keys_disjoint_cover(self):
        _A, _b, _x, records, prog = self.make_env(partitions=4)
        prog.partition(records, prog.initial_model(records), 4, seed=0)
        seen: set[int] = set()
        for owned in prog._owned_keys:
            assert not owned & seen
            seen |= owned
        assert seen == set(range(40))

    def test_partition_overlap_extends_blocks(self):
        _A, _b, _x, records, prog = self.make_env(overlap=3)
        pairs = prog.partition(records, prog.initial_model(records), 4, seed=0)
        # The second block's records should start before its owned range.
        block_rows = sorted(i for i, _row in pairs[1][0])
        owned = sorted(prog._owned_keys[1])
        assert block_rows[0] < owned[0]

    def test_merge_keeps_only_owned(self):
        _A, _b, _x, records, prog = self.make_env(overlap=2)
        pairs = prog.partition(records, prog.initial_model(records), 4, seed=0)
        models = [dict(m) for _r, m in pairs]
        merged = prog.merge(models)
        assert set(merged) == set(range(40))

    def test_merge_count_mismatch_rejected(self):
        _A, _b, _x, records, prog = self.make_env()
        prog.partition(records, prog.initial_model(records), 4, seed=0)
        with pytest.raises(ValueError):
            prog.merge([{}])

    def test_missing_diagonal_detected(self):
        prog = LinearSolverProgram()
        records = [(0, (np.array([1]), np.array([2.0]), 1.0))]  # no diag
        ctx = TaskContext(model={0: 0.0, 1: 0.0})
        with pytest.raises(ZeroDivisionError):
            prog.batch_map(ctx, records)

    def test_model_mode_partitioned(self):
        assert LinearSolverProgram().model_mode == "partitioned"

    @pytest.mark.parametrize("kw", [{"threshold": 0}, {"overlap": -1}])
    def test_invalid_params(self, kw):
        with pytest.raises(ValueError):
            LinearSolverProgram(**kw)
