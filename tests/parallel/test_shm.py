"""Unit tests for the shared-memory batch hand-off.

The handle contract: pickling an :class:`ShmBatch` is cheap, and
*unpickling* it yields the original ``ColumnBatch`` back — so task
functions never see the transport.  The submitting side owns the block
and can unlink it as soon as the map completes; rebuilt batches must
survive that because workers copy the segments out.
"""

import os
import pickle

import numpy as np
import pytest

from repro.mapreduce.columnar import ArrayColumn, ColumnBatch, int_column
from repro.parallel.shm import (
    MIN_SHM_BYTES,
    ShmBatch,
    export_batch,
    release_batches,
    swap_out_batches,
)


def _big_batch(rows: int = 200, width: int = 80) -> ColumnBatch:
    keys = int_column(np.arange(rows, dtype=np.int64))
    values = ArrayColumn(
        np.arange(rows * width, dtype=np.float64).reshape(rows, width)
    )
    batch = ColumnBatch(keys, values)
    assert batch.values.data.nbytes >= MIN_SHM_BYTES
    return batch


def _same_batch(a: ColumnBatch, b: ColumnBatch) -> bool:
    if len(a) != len(b):
        return False
    for (ka, va), (kb, vb) in zip(a.to_rows(), b.to_rows()):
        if ka != kb or not np.array_equal(va, vb):
            return False
    return True


class TestExportBatch:
    def test_round_trip_through_pickle(self):
        batch = _big_batch()
        handle = export_batch(batch)
        assert isinstance(handle, ShmBatch)
        try:
            wire = pickle.dumps(handle)
            # The handle is a skeleton, not the data: orders of magnitude
            # smaller than the ~128 KiB of array payload.
            assert len(wire) < 4096
            rebuilt = pickle.loads(wire)
            assert isinstance(rebuilt, ColumnBatch)
            assert _same_batch(rebuilt, batch)
        finally:
            handle.release()

    def test_rebuilt_batch_outlives_the_block(self):
        batch = _big_batch()
        handle = export_batch(batch)
        assert handle is not None
        rebuilt = pickle.loads(pickle.dumps(handle))
        handle.release()  # unlink the block...
        assert _same_batch(rebuilt, batch)  # ...the copy is unaffected
        rebuilt.values.data[0, 0] = -1.0  # and writable
        assert batch.values.data[0, 0] == 0.0

    def test_small_batches_decline(self):
        batch = ColumnBatch.from_rows([(1, 2.0), (3, 4.0)])
        assert export_batch(batch) is None

    def test_release_is_idempotent(self):
        handle = export_batch(_big_batch())
        assert handle is not None
        handle.release()
        handle.release()  # second unlink swallowed


class TestSwapOutBatches:
    def test_batches_inside_tuples_are_swapped(self):
        batch = _big_batch()
        payloads = [("spec", batch, 0), ("spec", batch, 1), "other"]
        swapped, exported = swap_out_batches(payloads)
        try:
            assert len(exported) == 1  # same object exported once
            assert swapped[0][1] is exported[0]
            assert swapped[1][1] is exported[0]
            assert swapped[0][0] == "spec" and swapped[0][2] == 0
            assert swapped[2] == "other"
        finally:
            release_batches(exported)

    def test_small_batches_ride_the_pipe(self):
        batch = ColumnBatch.from_rows([(1, 2.0)])
        swapped, exported = swap_out_batches([("spec", batch)])
        assert exported == []
        assert swapped[0][1] is batch

    def test_disabled_by_env(self, monkeypatch):
        monkeypatch.setenv("PIC_SHM", "0")
        batch = _big_batch()
        swapped, exported = swap_out_batches([("spec", batch)])
        assert exported == []
        assert swapped[0][1] is batch

    @pytest.mark.parametrize("raw,swaps", [
        ("", True), ("1", True), ("on", True),
        ("0", False), ("off", False), ("no", False), ("FALSE", False),
    ])
    def test_env_parsing(self, monkeypatch, raw, swaps):
        monkeypatch.setenv("PIC_SHM", raw)
        swapped, exported = swap_out_batches([("s", _big_batch())])
        try:
            assert bool(exported) is swaps
        finally:
            release_batches(exported)

    def test_row_payloads_untouched(self):
        payloads = [("spec", [(1, 2.0)], 0), (3, 4)]
        swapped, exported = swap_out_batches(payloads)
        assert exported == []
        assert swapped == payloads


# -- exception paths ---------------------------------------------------------

SHM_DIR = "/dev/shm"

needs_dev_shm = pytest.mark.skipif(
    not os.path.isdir(SHM_DIR), reason="no /dev/shm on this platform"
)


def _shm_path(name: str) -> str:
    # SharedMemory names may carry a leading slash; the file does not.
    return os.path.join(SHM_DIR, name.lstrip("/"))


def _crash(payload):
    raise RuntimeError("injected worker crash")


def _first_of_pair(payload):
    return payload[0]


class TestExceptionPaths:
    """No shm block survives a failed map, wherever the failure lands.

    Each test records the block names the run creates (by wrapping
    ``swap_out_batches`` or the block constructor) and then scans
    ``/dev/shm`` to prove every one of them was unlinked.
    """

    @pytest.fixture()
    def recorded_names(self, monkeypatch):
        from repro.parallel import shm as shm_mod

        names: list[str] = []
        real = shm_mod.swap_out_batches

        def recording(payloads, cache=None):
            swapped, exported = real(payloads, cache=cache)
            names.extend(handle._shm.name for handle in exported)
            return swapped, exported

        monkeypatch.setattr(shm_mod, "swap_out_batches", recording)
        return names

    @needs_dev_shm
    def test_worker_crash_mid_map_leaves_no_block(self, recorded_names):
        from repro.parallel.executor import ProcessPoolTaskExecutor

        payloads = [("a", _big_batch()), ("b", _big_batch())]
        with pytest.raises(RuntimeError, match="injected worker crash"):
            ProcessPoolTaskExecutor(2).map_or_none(_crash, payloads)
        assert len(recorded_names) == 2
        for name in recorded_names:
            assert not os.path.exists(_shm_path(name))

    @needs_dev_shm
    def test_submitter_failure_before_submit_leaves_no_block(
        self, recorded_names, monkeypatch
    ):
        # The window between export and pool submit: the batches are
        # already in shared memory when acquiring the pool blows up.
        from repro.parallel import executor as executor_mod

        def no_pool(workers):
            raise RuntimeError("injected submit failure")

        monkeypatch.setattr(executor_mod, "_shared_pool", no_pool)
        payloads = [("a", _big_batch()), ("b", _big_batch())]
        with pytest.raises(RuntimeError, match="injected submit failure"):
            executor_mod.ProcessPoolTaskExecutor(2).map_or_none(
                _first_of_pair, payloads
            )
        assert len(recorded_names) == 2
        for name in recorded_names:
            assert not os.path.exists(_shm_path(name))

    @needs_dev_shm
    def test_export_copy_failure_releases_the_block(self, monkeypatch):
        # A copy failure between block creation and handle construction
        # must unlink the block before the exception escapes.
        from repro.parallel import shm as shm_mod

        real_cls = shm_mod.shared_memory.SharedMemory
        created: list[str] = []

        class FailingCopy:
            def __init__(self, *args, **kwargs):
                self._real = real_cls(*args, **kwargs)
                created.append(self._real.name)

            @property
            def name(self):
                return self._real.name

            @property
            def buf(self):
                raise MemoryError("injected copy failure")

            def close(self):
                self._real.close()

            def unlink(self):
                self._real.unlink()

        monkeypatch.setattr(shm_mod.shared_memory, "SharedMemory", FailingCopy)
        with pytest.raises(MemoryError, match="injected copy failure"):
            export_batch(_big_batch())
        assert len(created) == 1
        assert not os.path.exists(_shm_path(created[0]))


class TestBatchExportCache:
    def _cache(self, **kwargs):
        from repro.parallel.shm import BatchExportCache

        return BatchExportCache(**kwargs)

    def test_lease_reuses_the_handle_across_maps(self):
        batch = _big_batch()
        cache = self._cache()
        try:
            first = cache.lease(batch)
            assert isinstance(first, ShmBatch)
            cache.begin()
            second = cache.lease(batch)
            assert second is first
            assert (cache.hits, cache.misses) == (1, 1)
            assert cache.nbytes == first.nbytes > 0
        finally:
            cache.release()

    def test_swap_out_leaves_cached_handles_off_the_release_list(self):
        batch = _big_batch()
        cache = self._cache()
        try:
            swapped, exported = swap_out_batches(
                [("a", batch), ("b", batch)], cache=cache
            )
            assert exported == []
            handle = swapped[0][1]
            assert isinstance(handle, ShmBatch)
            assert swapped[1][1] is handle
            # release_batches on the (empty) list must not kill the block
            release_batches(exported)
            assert os.path.exists(_shm_path(handle._shm.name))
        finally:
            cache.release()

    def test_small_batches_decline(self):
        cache = self._cache()
        try:
            keys = int_column(np.arange(4, dtype=np.int64))
            small = ColumnBatch(keys, int_column(np.arange(4, dtype=np.int64)))
            assert cache.lease(small) is None
            assert len(cache) == 0 and cache.nbytes == 0
        finally:
            cache.release()

    def test_collected_batch_releases_its_block(self):
        import gc

        batch = _big_batch()
        cache = self._cache()
        try:
            handle = cache.lease(batch)
            name = handle._shm.name
            cache.begin()  # unpin the previous map's strong reference
            del batch
            gc.collect()
            assert len(cache) == 0 and cache.nbytes == 0
            assert not os.path.exists(_shm_path(name))
        finally:
            cache.release()

    def test_active_pin_outlives_caller_drop_until_next_begin(self):
        """A batch dropped by the caller mid-map must keep its block:
        the in-flight pool map still reads it."""
        import gc

        cache = self._cache()
        try:
            handle = cache.lease(_big_batch())  # caller ref dies at once
            name = handle._shm.name
            gc.collect()
            assert os.path.exists(_shm_path(name))  # epoch pin holds it
            cache.begin()
            gc.collect()
            assert not os.path.exists(_shm_path(name))
        finally:
            cache.release()

    def test_budget_trims_lru_first_at_begin(self):
        a, b = _big_batch(), _big_batch()
        one = a.values.data.nbytes  # per-entry payload scale
        cache = self._cache(max_bytes=int(one * 1.5))
        try:
            ha = cache.lease(a)
            cache.begin()
            cache.lease(a)  # refresh a
            hb = cache.lease(b)
            name_a, name_b = ha._shm.name, hb._shm.name
            assert cache.nbytes > cache.max_bytes  # over budget mid-map: ok
            cache.begin()  # trim point: b was touched last, a goes
            assert not os.path.exists(_shm_path(name_a))
            assert os.path.exists(_shm_path(name_b))
        finally:
            cache.release()

    def test_release_is_terminal(self):
        batch = _big_batch()
        cache = self._cache()
        handle = cache.lease(batch)
        name = handle._shm.name
        cache.release()
        assert not os.path.exists(_shm_path(name))
        assert cache.lease(batch) is None  # no unowned blocks post-release
        cache.release()  # idempotent

    def test_executor_singleton_follows_pipeline_env(self, monkeypatch):
        from repro.parallel import executor

        monkeypatch.setenv("PIC_PIPELINE", "0")
        executor.release_export_cache()
        assert executor._export_cache() is None
        monkeypatch.setenv("PIC_PIPELINE", "1")
        cache = executor._export_cache()
        assert cache is not None and executor._export_cache() is cache
        executor.release_export_cache()
        assert executor._export_cache() is not cache  # fresh after release
        executor.release_export_cache()
