"""Unit tests for the host-side task executors."""

import pickle

import pytest

from repro.parallel import (
    ProcessPoolTaskExecutor,
    SerialExecutor,
    TaskExecutor,
    get_executor,
    resolve_workers,
)
from repro.parallel import executor as executor_mod


def _square(x):
    return x * x


def _first_element(payload):
    return payload[0]


class TestResolveWorkers:
    def test_explicit_value_wins(self, monkeypatch):
        monkeypatch.setenv("PIC_WORKERS", "8")
        assert resolve_workers(3) == 3

    def test_env_var_used_when_unspecified(self, monkeypatch):
        monkeypatch.setenv("PIC_WORKERS", "4")
        assert resolve_workers() == 4

    def test_defaults_to_serial(self, monkeypatch):
        monkeypatch.delenv("PIC_WORKERS", raising=False)
        assert resolve_workers() == 1

    def test_blank_env_means_serial(self, monkeypatch):
        monkeypatch.setenv("PIC_WORKERS", "  ")
        assert resolve_workers() == 1

    def test_non_integer_env_rejected(self, monkeypatch):
        monkeypatch.setenv("PIC_WORKERS", "many")
        with pytest.raises(ValueError, match="PIC_WORKERS"):
            resolve_workers()

    def test_zero_rejected(self):
        with pytest.raises(ValueError, match=">= 1"):
            resolve_workers(0)


class TestGetExecutor:
    def test_one_worker_is_serial(self):
        assert isinstance(get_executor(1), SerialExecutor)

    def test_many_workers_is_pool(self):
        ex = get_executor(3)
        assert isinstance(ex, ProcessPoolTaskExecutor)
        assert ex.workers == 3
        assert ex.is_parallel

    def test_env_default(self, monkeypatch):
        monkeypatch.delenv("PIC_WORKERS", raising=False)
        assert isinstance(get_executor(), SerialExecutor)


class TestSerialExecutor:
    def test_map_preserves_order(self):
        assert SerialExecutor().map(_square, [3, 1, 2]) == [9, 1, 4]

    def test_map_or_none_declines(self):
        assert SerialExecutor().map_or_none(_square, [1, 2]) is None

    def test_not_parallel(self):
        ex = SerialExecutor()
        assert not ex.is_parallel
        assert ex.workers == 1


class TestProcessPoolExecutor:
    def test_map_matches_serial(self):
        payloads = list(range(20))
        parallel = ProcessPoolTaskExecutor(2).map(_square, payloads)
        assert parallel == SerialExecutor().map(_square, payloads)

    def test_map_or_none_returns_ordered_results(self):
        results = ProcessPoolTaskExecutor(2).map_or_none(
            _first_element, [(i, "x") for i in range(10)]
        )
        assert results == list(range(10))

    def test_unpicklable_fn_falls_back_to_serial(self):
        captured = []

        def closure(x):  # closes over captured -> unpicklable
            captured.append(x)
            return -x

        ex = ProcessPoolTaskExecutor(2)
        assert ex.map_or_none(closure, [1, 2, 3]) is None
        assert ex.map(closure, [1, 2, 3]) == [-1, -2, -3]
        assert captured == [1, 2, 3]  # ran in this process

    def test_unpicklable_payload_falls_back(self):
        payloads = [lambda: 1, lambda: 2]
        ex = ProcessPoolTaskExecutor(2)
        assert ex.map_or_none(_first_element, [(p,) for p in payloads]) is None

    def test_single_payload_stays_in_process(self):
        # One task gains nothing from a pool round-trip.
        assert ProcessPoolTaskExecutor(2).map_or_none(_square, [5]) is None

    def test_base_class_contract(self):
        assert isinstance(ProcessPoolTaskExecutor(2), TaskExecutor)


class TestProbeCache:
    """The picklability probe runs once per function, not once per wave."""

    @pytest.fixture(autouse=True)
    def _fresh_cache(self):
        saved = dict(executor_mod._PROBE_CACHE)
        executor_mod._PROBE_CACHE.clear()
        yield
        executor_mod._PROBE_CACHE.clear()
        executor_mod._PROBE_CACHE.update(saved)

    @pytest.fixture
    def dumps_calls(self, monkeypatch):
        calls = []
        real_dumps = pickle.dumps

        def counting_dumps(obj, *args, **kwargs):
            calls.append(obj)
            return real_dumps(obj, *args, **kwargs)

        monkeypatch.setattr(pickle, "dumps", counting_dumps)
        return calls

    def test_picklable_verdict_probed_once(self, dumps_calls):
        probe = ProcessPoolTaskExecutor._picklable
        assert probe(_square, (1, "x"))
        assert len(dumps_calls) == 2  # fn + payload probe
        assert probe(_square, (2, "y"))
        assert len(dumps_calls) == 2  # cache hit: no new pickling

    def test_unpicklable_fn_cached_false(self, dumps_calls):
        def closure(x):
            return x

        probe = ProcessPoolTaskExecutor._picklable
        assert not probe(closure, (1,))
        assert len(dumps_calls) == 1  # fn failed; payload never probed
        assert not probe(closure, (2,))
        assert len(dumps_calls) == 1  # negative verdict cached too

    def test_distinct_closures_probed_independently(self, dumps_calls):
        def make(n):
            def closure(x):
                return x + n

            return closure

        probe = ProcessPoolTaskExecutor._picklable
        assert not probe(make(1), (1,))
        assert not probe(make(2), (1,))
        assert len(dumps_calls) == 2  # two identities, two probes

    def test_payload_failure_is_not_cached_against_fn(self, dumps_calls):
        probe = ProcessPoolTaskExecutor._picklable
        assert not probe(_square, (lambda: 1,))  # payload unpicklable
        # The function must not be condemned: a picklable payload from
        # the next job still goes to the pool.
        assert probe(_square, (1,))
        assert ProcessPoolTaskExecutor(2).map(_square, [2, 3]) == [4, 9]

    def test_cached_fallback_still_runs_in_process(self):
        captured = []

        def closure(x):
            captured.append(x)
            return -x

        ex = ProcessPoolTaskExecutor(2)
        assert ex.map(closure, [1, 2]) == [-1, -2]
        assert ex.map(closure, [3, 4]) == [-3, -4]  # cached False path
        assert captured == [1, 2, 3, 4]
