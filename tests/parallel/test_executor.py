"""Unit tests for the host-side task executors."""

import pytest

from repro.parallel import (
    ProcessPoolTaskExecutor,
    SerialExecutor,
    TaskExecutor,
    get_executor,
    resolve_workers,
)


def _square(x):
    return x * x


def _first_element(payload):
    return payload[0]


class TestResolveWorkers:
    def test_explicit_value_wins(self, monkeypatch):
        monkeypatch.setenv("PIC_WORKERS", "8")
        assert resolve_workers(3) == 3

    def test_env_var_used_when_unspecified(self, monkeypatch):
        monkeypatch.setenv("PIC_WORKERS", "4")
        assert resolve_workers() == 4

    def test_defaults_to_serial(self, monkeypatch):
        monkeypatch.delenv("PIC_WORKERS", raising=False)
        assert resolve_workers() == 1

    def test_blank_env_means_serial(self, monkeypatch):
        monkeypatch.setenv("PIC_WORKERS", "  ")
        assert resolve_workers() == 1

    def test_non_integer_env_rejected(self, monkeypatch):
        monkeypatch.setenv("PIC_WORKERS", "many")
        with pytest.raises(ValueError, match="PIC_WORKERS"):
            resolve_workers()

    def test_zero_rejected(self):
        with pytest.raises(ValueError, match=">= 1"):
            resolve_workers(0)


class TestGetExecutor:
    def test_one_worker_is_serial(self):
        assert isinstance(get_executor(1), SerialExecutor)

    def test_many_workers_is_pool(self):
        ex = get_executor(3)
        assert isinstance(ex, ProcessPoolTaskExecutor)
        assert ex.workers == 3
        assert ex.is_parallel

    def test_env_default(self, monkeypatch):
        monkeypatch.delenv("PIC_WORKERS", raising=False)
        assert isinstance(get_executor(), SerialExecutor)


class TestSerialExecutor:
    def test_map_preserves_order(self):
        assert SerialExecutor().map(_square, [3, 1, 2]) == [9, 1, 4]

    def test_map_or_none_declines(self):
        assert SerialExecutor().map_or_none(_square, [1, 2]) is None

    def test_not_parallel(self):
        ex = SerialExecutor()
        assert not ex.is_parallel
        assert ex.workers == 1


class TestProcessPoolExecutor:
    def test_map_matches_serial(self):
        payloads = list(range(20))
        parallel = ProcessPoolTaskExecutor(2).map(_square, payloads)
        assert parallel == SerialExecutor().map(_square, payloads)

    def test_map_or_none_returns_ordered_results(self):
        results = ProcessPoolTaskExecutor(2).map_or_none(
            _first_element, [(i, "x") for i in range(10)]
        )
        assert results == list(range(10))

    def test_unpicklable_fn_falls_back_to_serial(self):
        captured = []

        def closure(x):  # closes over captured -> unpicklable
            captured.append(x)
            return -x

        ex = ProcessPoolTaskExecutor(2)
        assert ex.map_or_none(closure, [1, 2, 3]) is None
        assert ex.map(closure, [1, 2, 3]) == [-1, -2, -3]
        assert captured == [1, 2, 3]  # ran in this process

    def test_unpicklable_payload_falls_back(self):
        payloads = [lambda: 1, lambda: 2]
        ex = ProcessPoolTaskExecutor(2)
        assert ex.map_or_none(_first_element, [(p,) for p in payloads]) is None

    def test_single_payload_stays_in_process(self):
        # One task gains nothing from a pool round-trip.
        assert ProcessPoolTaskExecutor(2).map_or_none(_square, [5]) is None

    def test_base_class_contract(self):
        assert isinstance(ProcessPoolTaskExecutor(2), TaskExecutor)
