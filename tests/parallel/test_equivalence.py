"""Parallel-vs-serial bit-identity for all five applications.

The contract of ``repro.parallel``: any ``PIC_WORKERS`` value changes
host wall-clock only.  Running each app's full PIC pipeline (partition,
co-locate, best-effort solves, merge, top-off) under ``PIC_WORKERS=1``
and ``PIC_WORKERS=4`` must produce the same merged model, the same
per-round ``BEIterationStats``, and the same traffic-meter snapshot —
bit for bit, not approximately.
"""

import numpy as np
import pytest

from repro.cluster.cluster import Cluster
from repro.pic.runner import PICRunner


def _deep_equal(a, b) -> bool:
    if type(a) is not type(b):
        return False
    if isinstance(a, np.ndarray):
        return (
            a.dtype == b.dtype
            and a.shape == b.shape
            and np.array_equal(a, b, equal_nan=True)
        )
    if isinstance(a, dict):
        return set(a) == set(b) and all(_deep_equal(a[k], b[k]) for k in a)
    if isinstance(a, (list, tuple)):
        return len(a) == len(b) and all(_deep_equal(x, y) for x, y in zip(a, b))
    return a == b


def _kmeans():
    from repro.apps.kmeans import KMeansProgram, gaussian_mixture

    records, _ = gaussian_mixture(600, 3, dim=3, separation=6.0, seed=2)
    program = KMeansProgram(k=3, dim=3, threshold=0.1)
    return program, records, program.initial_model(records, seed=3)


def _pagerank():
    from repro.apps.pagerank import PageRankProgram, local_web_graph

    records = local_web_graph(300, avg_out_degree=4.0, seed=2)
    program = PageRankProgram()
    return program, records, program.initial_model(records)


def _linsolve():
    from repro.apps.linsolve import LinearSolverProgram, diagonally_dominant_system
    from repro.apps.linsolve.datagen import system_records

    A, b, _ = diagonally_dominant_system(40, bandwidth=2, dominance=1.1, seed=2)
    records = system_records(A, b)
    program = LinearSolverProgram(threshold=1e-4)
    return program, records, program.initial_model(records)


def _neuralnet():
    from repro.apps.neuralnet import MLP, NeuralNetProgram, ocr_dataset

    records, X, y = ocr_dataset(210, seed=2)
    train, Xv, yv = records[:200], X[200:], y[200:]
    program = NeuralNetProgram(MLP(64, 8, 10), validation=(Xv, yv))
    return program, train, program.initial_model(train, seed=4)


def _smoothing():
    from repro.apps.smoothing import ImageSmoothingProgram, synthetic_image
    from repro.apps.smoothing.datagen import image_records

    img = synthetic_image(24, 24, seed=2)
    records = image_records(img)
    program = ImageSmoothingProgram(24, 24)
    return program, records, program.initial_model(records)


APPS = {
    "kmeans": _kmeans,
    "pagerank": _pagerank,
    "linsolve": _linsolve,
    "neuralnet": _neuralnet,
    "smoothing": _smoothing,
}


def _run_app(factory, monkeypatch, workers_env: str):
    import copy

    monkeypatch.setenv("PIC_WORKERS", workers_env)
    program, records, model0 = factory()
    cluster = Cluster(num_nodes=4, nodes_per_rack=4)
    runner = PICRunner(
        cluster,
        program,
        num_partitions=4,
        seed=7,
        be_max_iterations=3,
        max_iterations=3,
    )
    result = runner.run(records, initial_model=copy.deepcopy(model0))
    return result, cluster.meter.snapshot()


@pytest.mark.parametrize("app", sorted(APPS))
def test_parallel_matches_serial_bit_for_bit(app, monkeypatch):
    serial, serial_meter = _run_app(APPS[app], monkeypatch, "1")
    parallel, parallel_meter = _run_app(APPS[app], monkeypatch, "4")

    assert _deep_equal(serial.model, parallel.model)
    assert serial.total_time == parallel.total_time

    assert serial.best_effort.be_iterations == parallel.best_effort.be_iterations
    for s_stat, p_stat in zip(serial.best_effort.stats, parallel.best_effort.stats):
        assert s_stat == p_stat  # dataclass equality: every field, exactly

    assert serial_meter == parallel_meter

    assert serial.topoff.iterations == parallel.topoff.iterations
    for s_trace, p_trace in zip(serial.topoff.traces, parallel.topoff.traces):
        assert s_trace.duration == p_trace.duration
        assert s_trace.shuffle_bytes == p_trace.shuffle_bytes
        assert s_trace.model_update_bytes == p_trace.model_update_bytes
