"""Tests for the RNG discipline helpers."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.util.rng import Seeded, as_generator, spawn_rngs


class TestAsGenerator:
    def test_int_seed_is_deterministic(self):
        a = as_generator(42).integers(0, 1_000_000, size=10)
        b = as_generator(42).integers(0, 1_000_000, size=10)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = as_generator(1).integers(0, 1_000_000, size=10)
        b = as_generator(2).integers(0, 1_000_000, size=10)
        assert not np.array_equal(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(7)
        assert as_generator(gen) is gen

    def test_seed_sequence_accepted(self):
        ss = np.random.SeedSequence(5)
        gen = as_generator(ss)
        assert isinstance(gen, np.random.Generator)

    def test_none_gives_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(0, 5)) == 5

    def test_zero_spawn(self):
        assert spawn_rngs(0, 0) == []

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_children_independent(self):
        a, b = spawn_rngs(3, 2)
        assert not np.array_equal(
            a.integers(0, 2**31, size=20), b.integers(0, 2**31, size=20)
        )

    def test_deterministic_across_calls(self):
        first = [g.integers(0, 2**31, size=4) for g in spawn_rngs(9, 3)]
        second = [g.integers(0, 2**31, size=4) for g in spawn_rngs(9, 3)]
        for x, y in zip(first, second):
            assert np.array_equal(x, y)

    def test_spawn_from_generator(self):
        parent = np.random.default_rng(11)
        children = spawn_rngs(parent, 3)
        assert len(children) == 3

    def test_spawn_from_seed_sequence(self):
        children = spawn_rngs(np.random.SeedSequence(2), 2)
        assert len(children) == 2

    @given(st.integers(min_value=0, max_value=2**32 - 1), st.integers(1, 8))
    def test_children_pairwise_distinct_streams(self, seed, n):
        draws = [g.integers(0, 2**63, size=4) for g in spawn_rngs(seed, n)]
        for i in range(n):
            for j in range(i + 1, n):
                assert not np.array_equal(draws[i], draws[j])


class TestSeeded:
    def test_mixin_gives_rng(self):
        class Thing(Seeded):
            pass

        t = Thing(seed=5)
        assert isinstance(t.rng, np.random.Generator)
