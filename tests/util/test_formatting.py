"""Tests for human-readable formatting."""

import pytest
from hypothesis import given, strategies as st

from repro.util.formatting import human_bytes, human_time, render_table


class TestHumanBytes:
    def test_bytes(self):
        assert human_bytes(512) == "512 B"

    def test_kb(self):
        assert human_bytes(2048) == "2.00 KB"

    def test_mb(self):
        assert human_bytes(9.21 * 2**30) == "9.21 GB"

    def test_zero(self):
        assert human_bytes(0) == "0 B"

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            human_bytes(-1)

    @given(st.floats(min_value=0, max_value=1e18))
    def test_never_crashes_and_has_unit(self, n):
        out = human_bytes(n)
        assert any(out.endswith(u) for u in ("B", "KB", "MB", "GB", "TB", "PB"))


class TestHumanTime:
    def test_microseconds(self):
        assert human_time(5e-6) == "5.0 us"

    def test_milliseconds(self):
        assert human_time(0.25) == "250.0 ms"

    def test_seconds(self):
        assert human_time(42.0) == "42.0 s"

    def test_minutes(self):
        assert human_time(600) == "10.0 min"

    def test_hours(self):
        assert human_time(7200) == "2.00 h"

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            human_time(-0.1)


class TestRenderTable:
    def test_basic_render(self):
        out = render_table(["a", "bb"], [[1, 2], [33, 4]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert "a" in lines[0] and "bb" in lines[0]
        assert set(lines[1]) <= {"-", "+"}

    def test_title(self):
        out = render_table(["x"], [[1]], title="T")
        assert out.splitlines()[0] == "T"

    def test_column_mismatch_rejected(self):
        with pytest.raises(ValueError, match="row 0"):
            render_table(["a", "b"], [[1]])

    def test_columns_align(self):
        out = render_table(["col", "c"], [["x", "yyyy"], ["zz", "w"]])
        lines = out.splitlines()
        widths = {len(line) for line in lines}
        assert len(widths) == 1
