"""Tests for wire-size estimation."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.util.sizing import sizeof_record, sizeof_records, sizeof_value


class TestScalars:
    def test_int(self):
        assert sizeof_value(5) == 8

    def test_float(self):
        assert sizeof_value(3.14) == 8

    def test_bool(self):
        assert sizeof_value(True) == 1

    def test_none(self):
        assert sizeof_value(None) == 1

    def test_numpy_scalar(self):
        assert sizeof_value(np.float32(1.0)) == 4
        assert sizeof_value(np.int64(1)) == 8


class TestStrings:
    def test_ascii(self):
        assert sizeof_value("abc") == 3 + 2

    def test_utf8_multibyte(self):
        assert sizeof_value("é") == 2 + 2

    def test_bytes(self):
        assert sizeof_value(b"xyz") == 3 + 2

    def test_empty_string(self):
        assert sizeof_value("") == 2


class TestArrays:
    def test_float64_array(self):
        arr = np.zeros(10)
        assert sizeof_value(arr) == 80 + 8

    def test_2d_array(self):
        arr = np.zeros((4, 4), dtype=np.float32)
        assert sizeof_value(arr) == 64 + 8

    def test_empty_array(self):
        assert sizeof_value(np.zeros(0)) == 8


class TestContainers:
    def test_tuple(self):
        assert sizeof_value((1, 2.0)) == 4 + 8 + 8

    def test_list(self):
        assert sizeof_value([1, 2, 3]) == 4 + 24

    def test_dict(self):
        assert sizeof_value({1: 2.0}) == 4 + 16

    def test_nested(self):
        value = (np.zeros(2), 1)
        assert sizeof_value(value) == 4 + (16 + 8) + 8

    def test_unsupported_type_raises(self):
        with pytest.raises(TypeError, match="cannot size"):
            sizeof_value(object())


class TestRecords:
    def test_record_is_key_plus_value(self):
        assert sizeof_record(1, 2.0) == 16

    def test_records_sum(self):
        records = [(1, 1.0), (2, 2.0), (3, 3.0)]
        assert sizeof_records(records) == 48

    def test_empty_records(self):
        assert sizeof_records([]) == 0

    @given(st.lists(st.tuples(st.integers(), st.floats(allow_nan=False))))
    def test_total_matches_per_record_sum(self, records):
        assert sizeof_records(records) == sum(
            sizeof_record(k, v) for k, v in records
        )

    @given(st.lists(st.tuples(st.integers(), st.floats(allow_nan=False)), min_size=1))
    def test_positive_and_monotone(self, records):
        total = sizeof_records(records)
        assert total > 0
        assert sizeof_records(records[:-1]) < total


def _reference_size(records):
    return sum(sizeof_record(k, v) for k, v in records)


# Value pools mirroring what the five apps emit, plus the odd shapes
# (bools, None, nested containers) that must punt to the generic path.
_keys = st.one_of(
    st.integers(),
    st.floats(allow_nan=False),
    st.text(max_size=8),
    st.booleans(),
)
_values = st.one_of(
    st.integers(),
    st.floats(allow_nan=False),
    st.text(max_size=8),
    st.booleans(),
    st.none(),
    st.builds(lambda n: np.arange(n, dtype=np.float64), st.integers(0, 5)),
    st.builds(lambda n: np.arange(n, dtype=np.float32), st.integers(0, 5)),
    st.lists(st.integers(), max_size=3),
)


class TestFastPath:
    """The vectorized homogeneous-batch path must equal the reference."""

    @given(st.lists(st.tuples(_keys, _values), max_size=64))
    def test_mixed_batches_match_reference(self, records):
        assert sizeof_records(records) == _reference_size(records)

    @given(
        st.lists(
            st.tuples(
                st.integers(),
                st.builds(lambda n: np.arange(n, dtype=np.float64), st.integers(0, 8)),
            ),
            min_size=20,
            max_size=64,
        )
    )
    def test_homogeneous_int_ndarray_batch(self, records):
        assert sizeof_records(records) == _reference_size(records)

    @given(
        st.lists(
            st.tuples(st.text(max_size=12), st.floats(allow_nan=False)),
            min_size=20,
            max_size=64,
        )
    )
    def test_homogeneous_str_float_batch(self, records):
        assert sizeof_records(records) == _reference_size(records)

    def test_bool_tail_bails_to_generic(self):
        # bool is an int subclass but sizes to 1 byte; a stray bool in a
        # large "int" batch must not be sized as a fixed 8-byte scalar.
        records = [(i, float(i)) for i in range(40)] + [(True, 1.0)]
        assert sizeof_records(records) == _reference_size(records)

    def test_numpy_scalar_tail_bails_to_generic(self):
        records = [(i, float(i)) for i in range(40)] + [(np.int64(1), 2.0)]
        assert sizeof_records(records) == _reference_size(records)
