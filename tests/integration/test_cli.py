"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_kmeans_defaults(self):
        args = build_parser().parse_args(["kmeans"])
        assert args.points == 100_000
        assert args.cluster == "small"
        assert args.partitions == 24

    def test_pagerank_partition_modes(self):
        args = build_parser().parse_args(
            ["pagerank", "--partition-mode", "mincut"]
        )
        assert args.partition_mode == "mincut"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["pagerank", "--partition-mode", "magic"])

    def test_bad_cluster_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["kmeans", "--cluster", "gigantic"])


class TestExecution:
    def test_linsolve_end_to_end(self, capsys):
        assert main(["linsolve", "--variables", "60"]) == 0
        out = capsys.readouterr().out
        assert "speedup" in out
        assert "|x - x*|" in out

    def test_kmeans_small_run(self, capsys):
        assert main([
            "kmeans", "--points", "5000", "--clusters", "4",
            "--partitions", "6",
        ]) == 0
        out = capsys.readouterr().out
        assert "Jagota index" in out
        assert "PIC best-effort" in out

    def test_pagerank_small_run(self, capsys):
        assert main([
            "pagerank", "--vertices", "2000", "--partitions", "6",
        ]) == 0
        out = capsys.readouterr().out
        assert "rank error" in out

    def test_smoothing_small_run(self, capsys):
        assert main(["smoothing", "--side", "48", "--partitions", "4"]) == 0
        assert "speedup" in capsys.readouterr().out

    def test_neuralnet_small_run(self, capsys):
        assert main([
            "neuralnet", "--samples", "2100", "--partitions", "6",
        ]) == 0
        assert "validation error" in capsys.readouterr().out
