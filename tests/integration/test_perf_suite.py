"""Smoke tests for the wall-clock perf suite (benchmarks/perf)."""

import json

import pytest

wallclock = pytest.importorskip("benchmarks.perf.wallclock")

# A scaled-down config so the suite itself stays fast under pytest.
# fanout_classes=4 collapses most completion horizons by symmetry, so
# the 64/256-node fan-outs exercise the batch path in a few events.
TINY = dict(sizing_records=2_000, points=400, k=3, partitions=4,
            job_records=800, e2e_points=400, fanout_classes=4,
            bulk_points=400, shuffle_records=400,
            multijob_chain=2, multijob_bulk=2, concurrent_records=200,
            repeats=1)


@pytest.fixture
def tiny_mode():
    wallclock.SIZES["tiny"] = TINY
    yield "tiny"
    wallclock.SIZES.pop("tiny", None)


def test_suite_runs_and_reports_every_bench(tiny_mode):
    doc = wallclock.run_suite(tiny_mode)
    assert set(doc["benches"]) == set(wallclock.BENCHES)
    assert all(t > 0 for t in doc["benches"].values())
    assert doc["meta"]["calibration_seconds"] > 0


def test_check_passes_against_itself(tiny_mode, tmp_path):
    doc = wallclock.run_suite(tiny_mode)
    path = tmp_path / "baseline.json"
    path.write_text(json.dumps(doc))
    baseline = json.loads(path.read_text())
    assert wallclock.check_against(doc, baseline, tolerance=0.25) == []


def test_check_flags_regression(tiny_mode):
    doc = wallclock.run_suite(tiny_mode)
    slower = json.loads(json.dumps(doc))
    slower["benches"]["sizing_homogeneous"] *= 10
    failures = wallclock.check_against(slower, doc, tolerance=0.25)
    assert len(failures) == 1
    assert "sizing_homogeneous" in failures[0]


def test_check_rejects_mode_mismatch(tiny_mode):
    doc = wallclock.run_suite(tiny_mode)
    other = json.loads(json.dumps(doc))
    other["meta"]["mode"] = "full"
    failures = wallclock.check_against(doc, other, tolerance=0.25)
    assert failures and "mode mismatch" in failures[0]


def test_trajectory_benches_exempt_from_gate(tiny_mode):
    doc = wallclock.run_suite(tiny_mode)
    slower = json.loads(json.dumps(doc))
    for name in wallclock.TRAJECTORY_ONLY:
        slower["benches"][name] *= 100
    assert wallclock.check_against(slower, doc, tolerance=0.25) == []
