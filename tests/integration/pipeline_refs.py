"""Frozen-reference summaries for barrier vs pipelined execution.

``PIC_PIPELINE`` deliberately changes *simulated timing* (unlike
``PIC_WORKERS`` / ``PIC_COLUMNAR`` / ``PIC_SHM``, which are wall-clock
only), so pipelined runs cannot be checked against barrier runs for
bit-identity.  Instead each mode gets its own frozen reference: a
digest of the final model plus the exact simulated clock and traffic
ledger, committed to ``data/pipeline_references.json``.  The
equivalence suite replays every app in both modes and compares against
these summaries bit for bit — a timing regression or an accidental
semantic change in *either* mode fails loudly.

Regenerate (after an intentional timing change) with::

    PYTHONPATH=src python -m tests.integration.pipeline_refs
"""

from __future__ import annotations

import copy
import hashlib
import json
import struct
from pathlib import Path

import numpy as np

DATA_PATH = Path(__file__).parent / "data" / "pipeline_references.json"


def _digest_into(h, obj) -> None:
    """Canonical structural hash: type tags + exact byte content.

    Floats hash their IEEE-754 bytes, arrays their dtype/shape/raw
    buffer — two models digest equal iff ``_deep_equal`` would accept
    them, with no tolerance.
    """
    if isinstance(obj, np.ndarray):
        h.update(b"A")
        h.update(str(obj.dtype).encode())
        h.update(str(obj.shape).encode())
        h.update(np.ascontiguousarray(obj).tobytes())
    elif isinstance(obj, dict):
        h.update(b"D%d" % len(obj))
        for key in sorted(obj, key=repr):
            _digest_into(h, key)
            _digest_into(h, obj[key])
    elif isinstance(obj, (list, tuple)):
        h.update(b"L%d" % len(obj))
        for item in obj:
            _digest_into(h, item)
    elif isinstance(obj, bool):
        h.update(b"B1" if obj else b"B0")
    elif isinstance(obj, (int, np.integer)):
        h.update(b"I" + str(int(obj)).encode())
    elif isinstance(obj, (float, np.floating)):
        h.update(b"F" + struct.pack("<d", float(obj)))
    elif isinstance(obj, str):
        h.update(b"S" + obj.encode())
    elif obj is None:
        h.update(b"N")
    else:
        h.update(b"O" + repr(obj).encode())


def model_digest(model) -> str:
    """Hex digest of a model under the canonical structural hash."""
    h = hashlib.sha256()
    _digest_into(h, model)
    return h.hexdigest()


def run_app(app: str, pipeline: bool):
    """One full PIC run of ``app`` (same shape as the columnar suite).

    Returns the :class:`~repro.pic.runner.PICResult` and the cluster's
    traffic snapshot.  ``pipeline`` is passed explicitly so the run is
    independent of the ambient ``PIC_PIPELINE`` value.
    """
    from repro.cluster.cluster import Cluster
    from repro.pic.runner import PICRunner
    from tests.parallel.test_equivalence import APPS

    program, records, model0 = APPS[app]()
    cluster = Cluster(num_nodes=4, nodes_per_rack=4)
    runner = PICRunner(
        cluster,
        program,
        num_partitions=4,
        seed=7,
        be_max_iterations=3,
        max_iterations=3,
        pipeline=pipeline,
    )
    result = runner.run(records, initial_model=copy.deepcopy(model0))
    return result, cluster.meter.snapshot()


def summarize(result, meter) -> dict:
    """The frozen-reference summary of one run (JSON-safe, exact)."""
    return {
        "model_sha256": model_digest(result.model),
        "total_time": result.total_time,
        "be_iterations": result.best_effort.be_iterations,
        "topoff_iterations": result.topoff.iterations,
        "be_cache": [
            [s.cache_hits, s.cache_misses, s.cache_evictions]
            for s in result.best_effort.stats
        ],
        "topoff_cache": [
            [t.cache_hits, t.cache_misses, t.cache_evictions]
            for t in result.topoff.traces
        ],
        "traffic": meter,
    }


def load_references() -> dict:
    """The committed reference table: ``{app: {mode: summary}}``."""
    with DATA_PATH.open() as fh:
        return json.load(fh)


def main() -> None:
    from tests.parallel.test_equivalence import APPS

    table: dict[str, dict[str, dict]] = {}
    for app in sorted(APPS):
        table[app] = {}
        for mode, pipeline in (("barrier", False), ("pipelined", True)):
            result, meter = run_app(app, pipeline)
            table[app][mode] = summarize(result, meter)
            print(f"{app:10s} {mode:9s} time={result.total_time:.3f}")
    DATA_PATH.parent.mkdir(parents=True, exist_ok=True)
    with DATA_PATH.open("w") as fh:
        json.dump(table, fh, indent=1, sort_keys=True)
        fh.write("\n")
    print(f"wrote {DATA_PATH}")


if __name__ == "__main__":
    main()
