"""End-to-end integration: every application through IC and PIC.

Sizes are kept small so the whole suite stays fast; the paper-scale
shapes are exercised by the benchmark harness instead.
"""

import numpy as np
import pytest

from repro.apps.kmeans import KMeansProgram, gaussian_mixture, jagota_index, lloyd
from repro.apps.linsolve import LinearSolverProgram, diagonally_dominant_system
from repro.apps.linsolve.datagen import system_records
from repro.apps.neuralnet import MLP, NeuralNetProgram, ocr_dataset
from repro.apps.pagerank import PageRankProgram, local_web_graph, nutch_pagerank
from repro.apps.smoothing import (
    ImageSmoothingProgram,
    smooth_reference,
    synthetic_image,
)
from repro.apps.smoothing.datagen import image_records
from repro.cluster.presets import small_cluster
from repro.pic.runner import PICRunner, run_ic_baseline


class TestKMeans:
    @pytest.fixture(scope="class")
    def setup(self):
        records, _ = gaussian_mixture(6000, 5, dim=3, separation=8.0, seed=1)
        prog = KMeansProgram(k=5, dim=3, threshold=0.05)
        model0 = prog.initial_model(records, seed=2)
        return records, prog, model0

    def test_cluster_ic_equals_serial_lloyd(self, setup):
        """The MapReduce realisation is numerically the serial algorithm."""
        records, prog, model0 = setup
        ic = run_ic_baseline(small_cluster(), prog, records, initial_model=dict(model0))
        points = np.stack([v for _k, v in records])
        ref = lloyd(points, 5, threshold=0.05,
                    initial=prog.centroid_array(model0))
        assert np.allclose(prog.centroid_array(ic.model), ref.centroids)
        assert ic.iterations == ref.iterations

    def test_pic_quality_within_percent(self, setup):
        records, prog, model0 = setup
        ic = run_ic_baseline(small_cluster(), prog, records, initial_model=dict(model0))
        pic = PICRunner(small_cluster(), prog, num_partitions=6, seed=3).run(
            records, initial_model=dict(model0)
        )
        points = np.stack([v for _k, v in records])
        q_ic = jagota_index(points, prog.centroid_array(ic.model))
        q_pic = jagota_index(points, prog.centroid_array(pic.model))
        assert abs(q_pic - q_ic) / q_ic < 0.03  # Table III band

    def test_pic_reduces_traffic_per_round(self, setup):
        """Table II's mechanism: a best-effort round moves only
        sub-models; an IC iteration moves per-point intermediate data."""
        records, prog, model0 = setup
        ic_cluster = small_cluster()
        ic = run_ic_baseline(ic_cluster, prog, records, initial_model=dict(model0))
        pic_cluster = small_cluster()
        pic = PICRunner(pic_cluster, prog, num_partitions=6, seed=3).run(
            records, initial_model=dict(model0)
        )
        ic_shuffle_per_iter = ic_cluster.meter.total("shuffle") / ic.iterations
        be_shuffle_per_round = pic.phases[0].shuffle_bytes / pic.be_iterations
        assert be_shuffle_per_round < ic_shuffle_per_iter / 3
        # The intermediate-data (raw mapper output) gap is the dramatic
        # one: per-point records vs a handful of centroids.
        ic_raw_per_iter = sum(
            jr.map_output_bytes_raw for t in ic.traces for jr in t.job_results
        ) / ic.iterations
        assert pic.phases[0].shuffle_bytes < ic_raw_per_iter / 10


class TestPageRank:
    @pytest.fixture(scope="class")
    def setup(self):
        records = local_web_graph(2000, avg_out_degree=6, seed=5)
        prog = PageRankProgram()
        return records, prog, prog.initial_model(records)

    def test_cluster_ic_equals_serial_nutch(self, setup):
        records, prog, model0 = setup
        ic = run_ic_baseline(small_cluster(), prog, records, initial_model=dict(model0))
        ours = prog.rank_vector(ic.model, len(records))
        assert np.allclose(ours, nutch_pagerank(records), atol=1e-9)

    def test_pic_rank_quality(self, setup):
        records, prog, model0 = setup
        pic = PICRunner(small_cluster(), prog, num_partitions=6, seed=3).run(
            records, initial_model=dict(model0)
        )
        ranks = prog.rank_vector(pic.model, len(records))
        reference = nutch_pagerank(records)
        rel_l1 = np.abs(ranks - reference).sum() / reference.sum()
        assert rel_l1 < 0.15
        top_ref = set(np.argsort(reference)[-50:])
        top_pic = set(np.argsort(ranks)[-50:])
        assert len(top_ref & top_pic) >= 40


class TestLinearSolver:
    def test_both_paths_reach_golden_solution(self):
        A, b, x_star = diagonally_dominant_system(
            80, bandwidth=2, dominance=1.1, seed=11
        )
        records = system_records(A, b)
        prog = LinearSolverProgram(threshold=1e-6)
        model0 = prog.initial_model(records)
        ic = run_ic_baseline(
            small_cluster(), prog, records, initial_model=dict(model0),
            max_iterations=1000,
        )
        pic = PICRunner(
            small_cluster(), prog, num_partitions=6, seed=3, be_max_iterations=60
        ).run(records, initial_model=dict(model0))
        assert np.linalg.norm(prog.solution_vector(ic.model, 80) - x_star) < 1e-4
        assert np.linalg.norm(prog.solution_vector(pic.model, 80) - x_star) < 1e-4

    def test_pic_needs_fewer_global_syncs(self):
        A, b, _x = diagonally_dominant_system(80, bandwidth=2, dominance=1.1, seed=11)
        records = system_records(A, b)
        prog = LinearSolverProgram(threshold=1e-6)
        model0 = prog.initial_model(records)
        ic = run_ic_baseline(
            small_cluster(), prog, records, initial_model=dict(model0),
            max_iterations=1000,
        )
        pic = PICRunner(
            small_cluster(), prog, num_partitions=6, seed=3, be_max_iterations=60
        ).run(records, initial_model=dict(model0))
        global_syncs = pic.be_iterations + pic.topoff_iterations
        assert global_syncs < ic.iterations


class TestImageSmoothing:
    def test_both_paths_match_golden(self):
        img = synthetic_image(48, 48, seed=13)
        records = image_records(img)
        prog = ImageSmoothingProgram(48, 48, threshold=1e-4)
        model0 = prog.initial_model(records)
        golden = smooth_reference(img)
        ic = run_ic_baseline(
            small_cluster(), prog, records,
            initial_model={k: v.copy() for k, v in model0.items()},
        )
        pic = PICRunner(small_cluster(), prog, num_partitions=6, seed=3).run(
            records, initial_model={k: v.copy() for k, v in model0.items()}
        )
        assert np.abs(prog.image_array(ic.model) - golden).max() < 1e-3
        assert np.abs(prog.image_array(pic.model) - golden).max() < 1e-3


class TestNeuralNet:
    def test_pic_matches_ic_error(self):
        records, X, y = ocr_dataset(4200, seed=7)
        train, Xv, yv = records[:4000], X[4000:], y[4000:]
        prog = NeuralNetProgram(MLP(64, 32, 10), validation=(Xv, yv))
        model0 = prog.initial_model(train, seed=9)
        ic = run_ic_baseline(
            small_cluster(), prog, train,
            initial_model={k: v.copy() for k, v in model0.items()},
        )
        pic = PICRunner(small_cluster(), prog, num_partitions=6, seed=3).run(
            train, initial_model={k: v.copy() for k, v in model0.items()}
        )
        err_ic = prog.validation_error(ic.model, Xv, yv)
        err_pic = prog.validation_error(pic.model, Xv, yv)
        assert err_pic <= err_ic + 0.05
