"""Schedule-sanitizer equivalence: ``PIC_SANITIZE`` must not change results.

The sanitizer (``PIC_SANITIZE=<seed>``) permutes the dispatch order of
same-timestamp events scheduled from *different* handlers while
preserving program order within a handler, submission order at the
root, and batch-internal order.  A correct layer above the simulator
serializes or keys every cross-handler interaction, so its simulated
seconds, traffic bytes and models are bit-identical under every seed.

Two halves:

* Equivalence — the five reference apps (both pipeline modes) and a
  16-job concurrent ``run_many`` produce identical summaries across
  the unsanitized run and three seeds.
* Sensitivity — toy simulations with exactly the PIC701/PIC702 bug
  shapes (a handler writing a sibling's state; two co-schedulable
  handlers last-write-winning an unkeyed field) *do* diverge across
  seeds, while their keyed/serialized fixes stay stable.  This is what
  makes the lint family falsifiable: the sanitizer independently
  catches what PIC701/702 flag statically.

The seed is read once, when a ``Simulation`` is constructed, so the
env var is toggled around each cluster build — no subprocesses needed.
"""

from __future__ import annotations

import copy
import os
from contextlib import contextmanager

import pytest

from repro.cluster.events import Simulation

SEEDS = (None, 1, 2, 3)


@contextmanager
def sanitize(seed):
    """Set ``PIC_SANITIZE`` for the duration of one run."""
    old = os.environ.pop("PIC_SANITIZE", None)
    if seed is not None:
        os.environ["PIC_SANITIZE"] = str(seed)
    try:
        yield
    finally:
        os.environ.pop("PIC_SANITIZE", None)
        if old is not None:
            os.environ["PIC_SANITIZE"] = old


def _diff(base: dict, other: dict) -> list[str]:
    return [k for k in base if other.get(k) != base[k]]


class TestFiveAppEquivalence:
    @pytest.mark.parametrize(
        "app", ["kmeans", "pagerank", "linsolve", "neuralnet", "smoothing"]
    )
    @pytest.mark.parametrize("pipeline", [False, True], ids=["barrier", "pipelined"])
    def test_app_is_bit_identical_across_seeds(self, app, pipeline):
        from tests.integration.pipeline_refs import run_app, summarize

        summaries = {}
        for seed in SEEDS:
            with sanitize(seed):
                result, meter = run_app(app, pipeline)
            summaries[seed] = summarize(result, meter)
        base = summaries[None]
        for seed in SEEDS[1:]:
            assert _diff(base, summaries[seed]) == [], (
                f"{app} diverged under PIC_SANITIZE={seed}"
            )


class TestConcurrentRunManyEquivalence:
    NUM_JOBS = 16

    def _run(self) -> dict:
        from repro.apps.kmeans import KMeansProgram, gaussian_mixture
        from repro.cluster.cluster import Cluster
        from repro.dfs.dfs import DistributedFileSystem
        from repro.mapreduce.records import DistributedDataset
        from repro.mapreduce.runner import JobRunner
        from repro.parallel import SerialExecutor

        records, _ = gaussian_mixture(3_000, 4, dim=3, separation=6.0, seed=1)
        program = KMeansProgram(k=4, dim=3, threshold=0.1)
        model0 = program.initial_model(records, seed=2)
        cluster = Cluster(num_nodes=32, nodes_per_rack=8, oversubscription=4.0)
        dfs = DistributedFileSystem(cluster, replication=2, seed=5)
        runner = JobRunner(cluster, dfs, executor=SerialExecutor())
        results = runner.run_many([
            (
                program.job_spec(suffix=f"-0-{j}"),
                DistributedDataset.materialize(
                    dfs, f"/perf/concurrent-{j}", records, num_splits=4
                ),
                {
                    "model": copy.deepcopy(model0),
                    "model_bytes": program.model_bytes(model0),
                    "model_locations": (j % cluster.num_nodes,),
                },
            )
            for j in range(self.NUM_JOBS)
        ])
        return {
            "clock": cluster.now,
            "jobs": [
                {
                    "finished_at": r.finished_at,
                    "counters": dict(sorted(r.counters.as_dict().items())),
                    "output_locations": list(r.output_locations),
                }
                for r in results
            ],
        }

    def test_sixteen_concurrent_jobs_are_bit_identical_across_seeds(self):
        summaries = {}
        for seed in SEEDS:
            with sanitize(seed):
                summaries[seed] = self._run()
        base = summaries[None]
        for seed in SEEDS[1:]:
            assert summaries[seed] == base, (
                f"run_many diverged under PIC_SANITIZE={seed}"
            )


# -- sensitivity: the sanitizer catches what PIC701/702 flag -------------

# Enough seeds that a permutation-sensitive bug flips at least once.
PROBE_SEEDS = range(1, 11)


def _two_handler_race(seed, fix: str):
    """Two handlers fired from different parents at the same instant.

    ``fix=None`` reproduces the PIC702 fixture: both last-write-win one
    unkeyed field.  ``fix='keyed'`` writes per-handler keys;
    ``fix='serialized'`` funnels both through one serialization point
    that applies a canonical (min) arbitration.
    """
    sim = Simulation(tie_seed=seed)
    shared: dict = {"last": None, "pending": [], "resolve_armed": False}

    def make_handler(tag: str):
        def fire() -> None:
            if fix is None:
                shared["last"] = tag
            elif fix == "keyed":
                shared[tag] = tag
            else:
                shared["pending"].append(tag)
                if not shared["resolve_armed"]:
                    shared["resolve_armed"] = True
                    sim.schedule_serialized(resolve)
        return fire

    def resolve() -> None:
        shared["resolve_armed"] = False
        shared["last"] = min(shared["pending"])
        shared["pending"].clear()

    # Each root event is a distinct parent; the two t=2.0 followers
    # carry independent tie keys and may dispatch either way.
    sim.schedule(1.0, lambda: sim.schedule(1.0, make_handler("a")))
    sim.schedule(1.0, lambda: sim.schedule(1.0, make_handler("b")))
    sim.run()
    shared.pop("pending")
    shared.pop("resolve_armed")
    return shared


def _cross_job_write(seed, keyed: bool):
    """The PIC701 fixture shape: each job's completion handler stamps
    its own state *and* its sibling's, so a job's surviving stamp is
    whichever handler ran last at the shared instant.  The keyed fix
    gives each writer its own slot, making the writes commutative."""
    sim = Simulation(tie_seed=seed)
    jobs: list[dict] = [{"stamp": None, "stamps": {}} for _ in range(2)]

    def make_finish(j: int):
        def finish() -> None:
            sibling = jobs[1 - j]
            if keyed:
                jobs[j]["stamps"]["self"] = j
                sibling["stamps"]["peer"] = j
            else:
                jobs[j]["stamp"] = "self"
                sibling["stamp"] = f"peer{j}"
        return finish

    for j in range(2):
        sim.schedule(1.0, lambda j=j: sim.schedule(1.0, make_finish(j)))
    sim.run()
    return [(job["stamp"], tuple(sorted(job["stamps"].items()))) for job in jobs]


class TestSanitizerCatchesInterference:
    def test_unkeyed_shared_store_is_seed_dependent(self):
        # The PIC702 shape: some seed must order the pair each way.
        outcomes = {_two_handler_race(s, fix=None)["last"] for s in PROBE_SEEDS}
        assert outcomes == {"a", "b"}

    def test_unsanitized_run_hides_the_race(self):
        # Without a seed the tie falls back to submission order every
        # time — exactly why the bug class survives normal test runs.
        outcomes = {_two_handler_race(None, fix=None)["last"] for _ in range(5)}
        assert len(outcomes) == 1

    def test_keyed_writes_are_seed_independent(self):
        results = {
            tuple(sorted(_two_handler_race(s, fix="keyed").items()))
            for s in PROBE_SEEDS
        }
        assert len(results) == 1

    def test_serialized_arbitration_is_seed_independent(self):
        results = {
            _two_handler_race(s, fix="serialized")["last"] for s in PROBE_SEEDS
        }
        assert results == {"a"}

    def test_cross_job_write_is_seed_dependent(self):
        # The PIC701 shape: which sibling's field survives varies.
        outcomes = {
            tuple(r[0] for r in _cross_job_write(s, keyed=False))
            for s in PROBE_SEEDS
        }
        assert len(outcomes) > 1

    def test_cross_job_keyed_write_is_seed_independent(self):
        outcomes = {
            tuple(repr(r) for r in _cross_job_write(s, keyed=True))
            for s in PROBE_SEEDS
        }
        assert len(outcomes) == 1


if __name__ == "__main__":
    # CI spot-check hook: print a digest of the 16-job concurrent run
    # under the *ambient* PIC_SANITIZE, so a shell step can assert the
    # digest is identical across seeds without a pytest session.
    import hashlib
    import json

    summary = TestConcurrentRunManyEquivalence()._run()
    blob = json.dumps(summary, sort_keys=True, default=repr)
    print(hashlib.sha256(blob.encode()).hexdigest()[:16])
