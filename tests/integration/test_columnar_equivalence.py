"""Row-vs-columnar bit-identity for all five applications.

The contract of the columnar data plane mirrors ``repro.parallel``'s:
``PIC_COLUMNAR`` changes host wall-clock only.  Running each app's full
PIC pipeline under ``PIC_COLUMNAR=1`` and ``PIC_COLUMNAR=0`` must
produce the same merged model, the same per-round best-effort stats,
and the same traffic-meter snapshot — bit for bit, not approximately.

The app factories are shared with the parallel-vs-serial equivalence
suite; only the toggled environment variable differs.
"""

import copy

import pytest

from repro.cluster.cluster import Cluster
from repro.pic.runner import PICRunner
from tests.parallel.test_equivalence import APPS, _deep_equal


def _run_app(factory, monkeypatch, columnar_env: str):
    monkeypatch.setenv("PIC_COLUMNAR", columnar_env)
    program, records, model0 = factory()
    cluster = Cluster(num_nodes=4, nodes_per_rack=4)
    runner = PICRunner(
        cluster,
        program,
        num_partitions=4,
        seed=7,
        be_max_iterations=3,
        max_iterations=3,
    )
    result = runner.run(records, initial_model=copy.deepcopy(model0))
    return result, cluster.meter.snapshot()


@pytest.mark.parametrize("app", sorted(APPS))
def test_columnar_matches_rows_bit_for_bit(app, monkeypatch):
    rows, rows_meter = _run_app(APPS[app], monkeypatch, "0")
    cols, cols_meter = _run_app(APPS[app], monkeypatch, "1")

    assert _deep_equal(rows.model, cols.model)
    assert rows.total_time == cols.total_time

    assert rows.best_effort.be_iterations == cols.best_effort.be_iterations
    for r_stat, c_stat in zip(rows.best_effort.stats, cols.best_effort.stats):
        assert r_stat == c_stat  # dataclass equality: every field, exactly

    assert rows_meter == cols_meter

    assert rows.topoff.iterations == cols.topoff.iterations
    for r_trace, c_trace in zip(rows.topoff.traces, cols.topoff.traces):
        assert r_trace.duration == c_trace.duration
        assert r_trace.shuffle_bytes == c_trace.shuffle_bytes
        assert r_trace.model_update_bytes == c_trace.model_update_bytes
