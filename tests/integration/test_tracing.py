"""Tests for the error-vs-time tracing instrumentation."""

import pytest

from repro.cluster.cluster import Cluster
from repro.harness.tracing import trace_ic, trace_pic
from tests.pic.toy import MeanProgram

RECORDS = [(i, float(i)) for i in range(40)]  # mean 19.5


def error_fn(model):
    return abs(model["mean"] - 19.5)


def make_cluster():
    return Cluster(num_nodes=4, nodes_per_rack=4)


class TestTraceIC:
    def test_curve_has_one_point_per_iteration(self):
        result, curve = trace_ic(
            make_cluster(), MeanProgram(), RECORDS, {"mean": 0.0}, error_fn
        )
        # initial point + one per convergence check
        assert len(curve) == result.iterations + 1

    def test_curve_times_monotone(self):
        _result, curve = trace_ic(
            make_cluster(), MeanProgram(), RECORDS, {"mean": 0.0}, error_fn
        )
        times = [t for t, _e in curve]
        assert times == sorted(times)

    def test_error_decreases(self):
        _result, curve = trace_ic(
            make_cluster(), MeanProgram(), RECORDS, {"mean": 0.0}, error_fn
        )
        assert curve[-1][1] < curve[0][1]

    def test_program_method_restored(self):
        prog = MeanProgram()
        original = prog.converged
        trace_ic(make_cluster(), prog, RECORDS, {"mean": 0.0}, error_fn)
        assert prog.converged == original

    def test_initial_model_not_mutated(self):
        model = {"mean": 0.0}
        trace_ic(make_cluster(), MeanProgram(), RECORDS, model, error_fn)
        assert model == {"mean": 0.0}


class TestTracePIC:
    def test_two_phase_curves(self):
        result, be_curve, topoff_curve = trace_pic(
            make_cluster(), MeanProgram(), RECORDS, {"mean": 0.0}, error_fn,
            num_partitions=4,
        )
        assert len(be_curve) == result.be_iterations + 1
        assert len(topoff_curve) == result.topoff_iterations

    def test_topoff_follows_best_effort_in_time(self):
        _result, be_curve, topoff_curve = trace_pic(
            make_cluster(), MeanProgram(), RECORDS, {"mean": 0.0}, error_fn,
            num_partitions=4,
        )
        assert topoff_curve[0][0] >= be_curve[-1][0]

    def test_tracing_does_not_change_outcome(self):
        from repro.pic.runner import PICRunner

        plain = PICRunner(
            make_cluster(), MeanProgram(), num_partitions=4, seed=3
        ).run(RECORDS, initial_model={"mean": 0.0})
        traced, _be, _to = trace_pic(
            make_cluster(), MeanProgram(), RECORDS, {"mean": 0.0}, error_fn,
            num_partitions=4, seed=3,
        )
        assert traced.model["mean"] == pytest.approx(plain.model["mean"])
        assert traced.total_time == pytest.approx(plain.total_time)
