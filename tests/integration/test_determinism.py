"""Whole-stack determinism: identical runs produce identical numbers.

EXPERIMENTS.md promises bit-for-bit reproducibility; these tests pin it
for a representative slice of each application.
"""

import numpy as np

from repro.apps.kmeans import KMeansProgram, gaussian_mixture
from repro.apps.pagerank import PageRankProgram, local_web_graph
from repro.cluster.presets import small_cluster
from repro.harness import compare_ic_pic
from repro.pic.runner import PICRunner


def kmeans_setup():
    records, _ = gaussian_mixture(4000, 4, dim=2, separation=8.0, seed=1)
    prog = KMeansProgram(k=4, dim=2, threshold=0.05)
    return records, prog, prog.initial_model(records, seed=2)


class TestDeterminism:
    def test_kmeans_full_comparison_reproducible(self):
        records, prog, model0 = kmeans_setup()

        def run():
            return compare_ic_pic(
                small_cluster, prog, records, model0, num_partitions=6
            )

        a, b = run(), run()
        assert a.ic_time == b.ic_time
        assert a.pic_time == b.pic_time
        assert a.speedup == b.speedup
        for key in a.ic.model:
            assert np.array_equal(a.ic.model[key], b.ic.model[key])
        assert a.ic_traffic == b.ic_traffic
        assert a.pic.traffic == b.pic.traffic

    def test_pagerank_trace_reproducible(self):
        records = local_web_graph(1500, seed=5)
        prog = PageRankProgram()
        model0 = prog.initial_model(records)

        def run():
            return PICRunner(
                small_cluster(), prog, num_partitions=6, seed=3
            ).run(records, initial_model=dict(model0))

        a, b = run(), run()
        assert a.total_time == b.total_time
        assert a.best_effort.local_iterations_by_round == (
            b.best_effort.local_iterations_by_round
        )
        ra = prog.rank_vector(a.model, 1500)
        rb = prog.rank_vector(b.model, 1500)
        assert np.array_equal(ra, rb)

    def test_event_counts_reproducible(self):
        """Even the simulator's internal event count is stable — no
        hidden iteration-order or hash-seed dependence."""
        records, prog, model0 = kmeans_setup()

        def run():
            cluster = small_cluster()
            PICRunner(cluster, prog, num_partitions=6, seed=3).run(
                records, initial_model={k: v.copy() for k, v in model0.items()}
            )
            return cluster.sim.events_processed

        assert run() == run()
