"""Barrier-vs-pipelined contracts for all five applications.

``PIC_PIPELINE`` is the one knob that may change *simulated* results —
but only in bounded, provable ways:

* **Default off is frozen.**  With the knob off, every app must match
  the committed barrier reference bit for bit (model digest, simulated
  clock, full traffic ledger).  A refactor that nudges default-mode
  timing fails here, not in production figures.
* **Pipelined is frozen too.**  The pipelined schedule is deterministic;
  it gets its own committed reference.
* **Invariants across modes.**  Same final model; identical bytes in
  every traffic category except ``input`` (where loop-aware caching may
  only *save* reads — chained jobs hit splits the barrier would
  re-read); completion time no worse than barrier mode, up to float
  associativity in the merge/apply split of reduce compute.
"""

import os

import pytest

from tests.integration.pipeline_refs import (
    load_references,
    model_digest,
    run_app,
    summarize,
)
from tests.parallel.test_equivalence import APPS, _deep_equal

# reduce_compute(n) == n*(r+s) while the pipelined path charges
# n*s + n*r in two steps; the sums may differ in the last ulp.
TIME_SLACK = 1e-9


@pytest.fixture(autouse=True)
def _no_ambient_pipeline(monkeypatch):
    """run_app passes ``pipeline`` explicitly, but keep the env clean so
    nothing downstream (e.g. the shm export cache) flips modes."""
    monkeypatch.delenv("PIC_PIPELINE", raising=False)


@pytest.mark.parametrize("app", sorted(APPS))
def test_default_mode_matches_frozen_reference(app, monkeypatch):
    monkeypatch.setenv("PIC_PIPELINE", "0")
    assert "PIC_PIPELINE" in os.environ  # the knob under test is truly off
    result, meter = run_app(app, pipeline=False)
    assert summarize(result, meter) == load_references()[app]["barrier"]


@pytest.mark.parametrize("app", sorted(APPS))
def test_pipelined_mode_matches_frozen_reference(app):
    result, meter = run_app(app, pipeline=True)
    assert summarize(result, meter) == load_references()[app]["pipelined"]


@pytest.mark.parametrize("app", sorted(APPS))
def test_pipelined_invariants_vs_barrier(app):
    barrier, barrier_meter = run_app(app, pipeline=False)
    piped, piped_meter = run_app(app, pipeline=True)

    # Same computation: the final merged model is bit-identical.
    assert _deep_equal(barrier.model, piped.model)
    assert model_digest(barrier.model) == model_digest(piped.model)
    assert barrier.best_effort.be_iterations == piped.best_effort.be_iterations
    assert barrier.topoff.iterations == piped.topoff.iterations

    # Same data movement: byte-for-byte equal in every category except
    # input, where the cache may only reduce reads (never add them).
    assert set(barrier_meter) >= set(piped_meter)
    for category, stats in barrier_meter.items():
        if category == "input":
            assert (
                piped_meter[category]["total_bytes"] <= stats["total_bytes"]
            )
        else:
            assert piped_meter[category] == stats

    # Pipelining never loses time: no barrier stall is *added*, so the
    # simulated clock can only move left (modulo float associativity).
    assert piped.total_time <= barrier.total_time * (1 + TIME_SLACK)


def test_pipelined_cache_hits_after_first_iteration():
    """Iteration 0 faults every split in; later iterations run hot."""
    result, _meter = run_app("kmeans", pipeline=True)
    stats = result.best_effort.stats
    assert len(stats) >= 2
    first, rest = stats[0], stats[1:]
    assert first.cache_misses > 0
    assert first.cache_evictions == 0
    for stat in rest:
        assert stat.cache_hits > 0
        assert stat.cache_misses == 0

    # Barrier mode must not touch a cache at all.
    barrier, _ = run_app("kmeans", pipeline=False)
    for stat in barrier.best_effort.stats:
        assert (stat.cache_hits, stat.cache_misses, stat.cache_evictions) == (
            0,
            0,
            0,
        )


def _kmeans_500k_driver(pipeline: bool):
    """One multi-iteration IC-style run over 500k k-means points.

    ``optimized_baseline=False`` is the honest comparison: the barrier
    baseline pays per-iteration launch + input costs, exactly the costs
    pipelining + loop-aware caching are built to remove.
    """
    import copy

    from repro.apps.kmeans import KMeansProgram, gaussian_mixture
    from repro.cluster.cluster import Cluster
    from repro.dfs.dfs import DistributedFileSystem
    from repro.mapreduce.driver import IterativeDriver
    from repro.mapreduce.records import DistributedDataset
    from repro.mapreduce.runner import JobRunner
    from repro.parallel import SerialExecutor

    records, _ = gaussian_mixture(500_000, 10, dim=3, separation=6.0, seed=4)
    program = KMeansProgram(k=10, dim=3, threshold=1e-12)
    model0 = program.initial_model(records, seed=5)
    cluster = Cluster(num_nodes=4, nodes_per_rack=4)
    dfs = DistributedFileSystem(cluster, replication=2, seed=5)
    dataset = DistributedDataset.materialize(
        dfs, "/accept/kmeans-500k", records, num_splits=8
    )
    runner = JobRunner(
        cluster, dfs, executor=SerialExecutor(), pipeline=pipeline
    )
    driver = IterativeDriver(
        runner=runner,
        dataset=dataset,
        jobs=program.jobs,
        build_model=program.build_model,
        converged=program.converged,
        model_sizer=program.model_bytes,
        max_iterations=4,
        optimized_baseline=False,
        model_mode=program.model_mode,
    )
    return driver.run(copy.deepcopy(model0))


def test_kmeans_500k_warm_iterations_at_least_2x_faster():
    """Acceptance floor from the issue: on a multi-iteration 500k-point
    k-means, iterations >= 2 complete at least 2x faster simulated in
    pipelined+cached mode than in barrier mode (measured: ~25x — the
    warm iterations skip job launch, task overheads, and input scans)."""
    barrier = _kmeans_500k_driver(pipeline=False)
    piped = _kmeans_500k_driver(pipeline=True)

    assert barrier.iterations == piped.iterations >= 3
    assert _deep_equal(barrier.model, piped.model)
    for index in range(2, piped.iterations):
        cold = barrier.traces[index].duration
        warm = piped.traces[index].duration
        assert warm * 2 <= cold, (index, warm, cold)
        # Warm iterations run fully out of node memory.
        assert piped.traces[index].cache_hits > 0
        assert piped.traces[index].cache_misses == 0
    # Iteration 0 is identical work in both modes: the first scan
    # always pays, pipelined or not.
    assert piped.traces[0].cache_misses > 0
