"""Smoke tests: the fast example scripts run end to end.

(The heavier examples — quickstart, pagerank_webgraph, neural_net_ocr,
image_smoothing — exercise the same code paths as the benchmarks and
are exercised there; these three finish in seconds.)
"""

import runpy
from pathlib import Path

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str, capsys) -> str:
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return capsys.readouterr().out


class TestFastExamples:
    def test_linear_solver(self, capsys):
        out = run_example("linear_solver.py", capsys)
        assert "Jacobi spectral radius" in out
        assert "speedup" in out

    def test_pic_on_yarn(self, capsys):
        out = run_example("pic_on_yarn.py", capsys)
        assert "ResourceManager view" in out
        assert "containers granted" in out

    def test_partition_advisor(self, capsys):
        out = run_example("partition_advisor.py", capsys)
        assert "predicted BE rounds" in out
        assert "partitioner comparison" in out.lower() or "partitioner" in out
