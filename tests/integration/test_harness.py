"""Tests for the benchmark harness plumbing."""

from repro.harness import compare_ic_pic
from repro.harness.workloads import (
    Workload,
    kmeans_small,
    kmeans_table1_sizes,
    kmeans_table3,
    linsolve_small,
    neuralnet_medium,
    pagerank_small,
    smoothing_large,
    smoothing_medium,
)


class TestWorkloadFactories:
    def test_kmeans_small_shape(self):
        w = kmeans_small(num_points=500, k=3)
        assert isinstance(w, Workload)
        assert len(w.records) == 500
        assert set(w.initial_model) == {0, 1, 2}
        assert w.cluster_factory().num_nodes == 6

    def test_table1_sizes_geometric(self):
        sizes = kmeans_table1_sizes()
        assert len(sizes) == 4
        ratios = [b / a for a, b in zip(sizes, sizes[1:])]
        assert all(r == 4 for r in ratios)

    def test_table3_datasets_differ(self):
        a = kmeans_table3(1)
        b = kmeans_table3(2)
        assert a.name != b.name
        assert a.records[0][1].tolist() != b.records[0][1].tolist()

    def test_pagerank_workload(self):
        w = pagerank_small(num_vertices=100)
        assert len(w.records) == 100
        assert w.num_partitions == 18

    def test_linsolve_carries_golden(self):
        w = linsolve_small()
        assert "x_star" in w.extras
        assert len(w.records) == 100

    def test_neuralnet_holds_out_validation(self):
        w = neuralnet_medium(num_samples=210)
        assert len(w.records) == 200
        assert len(w.extras["Xv"]) == 10

    def test_smoothing_cluster_sizes(self):
        assert smoothing_medium(side=32).cluster_factory().num_nodes == 64
        assert smoothing_large(128, side=32).cluster_factory().num_nodes == 128

    def test_workloads_deterministic(self):
        a = kmeans_small(num_points=100, k=3, seed=5)
        b = kmeans_small(num_points=100, k=3, seed=5)
        assert a.records[7][1].tolist() == b.records[7][1].tolist()


class TestCompare:
    def test_compare_runs_both_sides(self):
        w = kmeans_small(num_points=3000, k=4, num_partitions=6)
        result = compare_ic_pic(
            w.cluster_factory, w.program, w.records, w.initial_model,
            w.num_partitions,
        )
        assert result.ic.iterations >= 1
        assert result.pic.be_iterations >= 1
        assert result.speedup > 0
        assert result.ic_time > 0 and result.pic_time > 0

    def test_initial_model_not_mutated(self):
        w = kmeans_small(num_points=3000, k=4, num_partitions=6)
        before = {k: v.copy() for k, v in w.initial_model.items()}
        compare_ic_pic(
            w.cluster_factory, w.program, w.records, w.initial_model,
            w.num_partitions,
        )
        for key, value in before.items():
            assert (w.initial_model[key] == value).all()

    def test_traffic_rows(self):
        w = kmeans_small(num_points=3000, k=4, num_partitions=6)
        result = compare_ic_pic(
            w.cluster_factory, w.program, w.records, w.initial_model,
            w.num_partitions,
        )
        ic_shuffle, pic_shuffle = result.traffic_row("shuffle")
        assert ic_shuffle > 0
        assert pic_shuffle >= 0
