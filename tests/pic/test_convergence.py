"""Tests for the convergence criteria helpers."""

import numpy as np
import pytest

from repro.pic.convergence import (
    either,
    fixed_iterations,
    kv_model_max_change,
    max_change_below,
)


class TestKvModelMaxChange:
    def test_scalar_change(self):
        assert kv_model_max_change({0: 1.0}, {0: 1.5}) == pytest.approx(0.5)

    def test_vector_change_uses_norm(self):
        prev = {0: np.array([0.0, 0.0])}
        cur = {0: np.array([3.0, 4.0])}
        assert kv_model_max_change(prev, cur) == pytest.approx(5.0)

    def test_max_over_keys(self):
        prev = {0: 0.0, 1: 0.0}
        cur = {0: 0.1, 1: 2.0}
        assert kv_model_max_change(prev, cur) == pytest.approx(2.0)

    def test_key_mismatch_is_infinite(self):
        assert kv_model_max_change({0: 1.0}, {1: 1.0}) == float("inf")

    def test_shape_mismatch_is_infinite(self):
        prev = {0: np.zeros(2)}
        cur = {0: np.zeros(3)}
        assert kv_model_max_change(prev, cur) == float("inf")

    def test_identical_models_zero(self):
        m = {0: np.ones(4), 1: 2.0}
        assert kv_model_max_change(m, m) == 0.0


class TestMaxChangeBelow:
    def test_threshold_behaviour(self):
        crit = max_change_below(0.1)
        assert crit({0: 1.0}, {0: 1.05}, 3)
        assert not crit({0: 1.0}, {0: 1.2}, 3)

    def test_custom_distance(self):
        crit = max_change_below(1.0, distance=lambda a, b: abs(a - b))
        assert crit(0.0, 0.5, 0)

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            max_change_below(0.0)


class TestFixedIterations:
    def test_stops_exactly_at_limit(self):
        crit = fixed_iterations(10)
        assert not crit(None, None, 8)
        assert crit(None, None, 9)

    def test_invalid_limit(self):
        with pytest.raises(ValueError):
            fixed_iterations(0)


class TestEither:
    def test_any_criterion_suffices(self):
        crit = either(fixed_iterations(100), max_change_below(0.1))
        assert crit({0: 1.0}, {0: 1.0}, 0)       # change criterion
        assert crit({0: 0.0}, {0: 99.0}, 99)     # iteration criterion
        assert not crit({0: 0.0}, {0: 99.0}, 0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            either()
