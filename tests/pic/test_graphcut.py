"""Tests for the min-cut graph partitioner (METIS substitute)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.coupling import graph_coupling_epsilon
from repro.apps.pagerank import local_web_graph
from repro.pic.graphcut import cut_size, mincut_partition


def ring_edges(n):
    return [(v, (v + 1) % n) for v in range(n)]


class TestBasics:
    def test_assignment_covers_all_vertices(self):
        assignment = mincut_partition(20, ring_edges(20), 4, seed=0)
        assert set(assignment) == set(range(20))
        assert set(assignment.values()) <= set(range(4))

    def test_balance_respected(self):
        assignment = mincut_partition(40, ring_edges(40), 4, seed=0)
        sizes = np.bincount(list(assignment.values()), minlength=4)
        cap = int(np.ceil(40 / 4) * 1.1)
        assert sizes.max() <= cap
        assert sizes.min() >= 1

    def test_single_partition(self):
        assignment = mincut_partition(10, ring_edges(10), 1, seed=0)
        assert set(assignment.values()) == {0}

    def test_deterministic(self):
        a = mincut_partition(30, ring_edges(30), 3, seed=7)
        b = mincut_partition(30, ring_edges(30), 3, seed=7)
        assert a == b

    def test_isolated_vertices_assigned(self):
        assignment = mincut_partition(10, [], 2, seed=0)
        assert set(assignment) == set(range(10))

    @pytest.mark.parametrize(
        "kw",
        [
            {"num_vertices": 0, "num_partitions": 1},
            {"num_vertices": 3, "num_partitions": 0},
            {"num_vertices": 3, "num_partitions": 5},
            {"num_vertices": 3, "num_partitions": 2, "balance_slack": -0.1},
        ],
    )
    def test_invalid_rejected(self, kw):
        with pytest.raises(ValueError):
            mincut_partition(edges=[], **kw)

    def test_out_of_range_edge_rejected(self):
        with pytest.raises(ValueError):
            mincut_partition(3, [(0, 9)], 2, seed=0)


class TestCutQuality:
    def test_ring_cut_is_near_optimal(self):
        # A ring split into k contiguous arcs has exactly k cut edges.
        n, k = 60, 4
        assignment = mincut_partition(n, ring_edges(n), k, seed=1)
        assert cut_size(ring_edges(n), assignment) <= 2 * k

    def test_two_cliques_separated(self):
        # Two 10-cliques joined by one bridge: the optimal 2-cut is 1.
        edges = [(u, v) for u in range(10) for v in range(u + 1, 10)]
        edges += [(u, v) for u in range(10, 20) for v in range(u + 1, 20)]
        edges += [(0, 10)]
        assignment = mincut_partition(20, edges, 2, seed=2)
        assert cut_size(edges, assignment) <= 3

    def test_beats_random_on_local_web_graph(self):
        records = local_web_graph(3000, seed=5)
        edges = [(v, t) for v, outs in records for t in outs]
        assignment = mincut_partition(3000, edges, 12, seed=3)
        eps = graph_coupling_epsilon(records, assignment)
        # Random 12-way partitioning cuts ~11/12 of the edges.
        assert eps < 0.5

    def test_works_without_vertex_id_locality(self):
        """Unlike contiguous range partitioning, min-cut finds structure
        even when vertex ids are shuffled."""
        records = local_web_graph(2000, seed=6)
        rng = np.random.default_rng(0)
        relabel = rng.permutation(2000)
        shuffled = [
            (int(relabel[v]), tuple(int(relabel[t]) for t in outs))
            for v, outs in records
        ]
        edges = [(v, t) for v, outs in shuffled for t in outs]
        mincut_assign = mincut_partition(2000, edges, 8, seed=3)
        contiguous_assign = {v: min(v * 8 // 2000, 7) for v, _o in shuffled}
        eps_mincut = graph_coupling_epsilon(shuffled, mincut_assign)
        eps_contig = graph_coupling_epsilon(shuffled, contiguous_assign)
        assert eps_mincut < eps_contig / 2

    @settings(max_examples=15, deadline=None)
    @given(st.integers(8, 60), st.integers(2, 5), st.integers(0, 50))
    def test_always_valid_partition(self, n, k, seed):
        rng = np.random.default_rng(seed)
        edges = [
            (int(rng.integers(0, n)), int(rng.integers(0, n))) for _ in range(2 * n)
        ]
        assignment = mincut_partition(n, edges, k, seed=seed)
        assert set(assignment) == set(range(n))
        sizes = np.bincount(list(assignment.values()), minlength=k)
        assert sizes.max() <= int(np.ceil(n / k) * 1.1)


class TestPageRankIntegration:
    def test_mincut_mode_reduces_cut_vs_random(self):
        from repro.apps.pagerank import PageRankProgram

        records = local_web_graph(2000, seed=5)
        results = {}
        for mode in ("random", "mincut"):
            prog = PageRankProgram(partition_mode=mode)
            prog.partition(records, prog.initial_model(records), 8, seed=3)
            results[mode] = graph_coupling_epsilon(records, prog._assignment)
        assert results["mincut"] < results["random"] / 2
