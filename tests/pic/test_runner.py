"""Tests for the two-phase PIC orchestration and the IC baseline."""

import pytest

from repro.cluster.cluster import Cluster
from repro.pic.runner import PICRunner, run_ic_baseline
from tests.pic.toy import MeanProgram

RECORDS = [(i, float(i)) for i in range(40)]  # mean 19.5


def make_cluster():
    return Cluster(num_nodes=4, nodes_per_rack=4)


class TestICBaseline:
    def test_converges_to_mean(self):
        result = run_ic_baseline(
            make_cluster(), MeanProgram(), RECORDS, initial_model={"mean": 0.0}
        )
        assert result.model["mean"] == pytest.approx(19.5, abs=1e-4)

    def test_uses_program_initial_model_when_omitted(self):
        result = run_ic_baseline(make_cluster(), MeanProgram(), RECORDS)
        assert result.model["mean"] == pytest.approx(19.5, abs=1e-4)

    def test_traces_and_time(self):
        result = run_ic_baseline(
            make_cluster(), MeanProgram(), RECORDS, initial_model={"mean": 0.0}
        )
        assert result.total_time > 0
        assert len(result.traces) == result.iterations


class TestPICRunner:
    def test_final_model_matches_ic_quality(self):
        ic = run_ic_baseline(
            make_cluster(), MeanProgram(), RECORDS, initial_model={"mean": 0.0}
        )
        pic = PICRunner(make_cluster(), MeanProgram(), num_partitions=4).run(
            RECORDS, initial_model={"mean": 0.0}
        )
        assert pic.model["mean"] == pytest.approx(ic.model["mean"], abs=1e-3)

    def test_phases_reported(self):
        pic = PICRunner(make_cluster(), MeanProgram(), num_partitions=4).run(
            RECORDS, initial_model={"mean": 0.0}
        )
        assert [p.name for p in pic.phases] == ["best-effort", "top-off"]
        assert pic.be_time > 0
        assert pic.total_time == pytest.approx(pic.be_time + pic.topoff_time)

    def test_iteration_properties(self):
        pic = PICRunner(make_cluster(), MeanProgram(), num_partitions=4).run(
            RECORDS, initial_model={"mean": 0.0}
        )
        assert pic.be_iterations == pic.best_effort.be_iterations
        assert pic.topoff_iterations == pic.topoff.iterations
        assert pic.topoff_iterations >= 1

    def test_topoff_needs_few_iterations(self):
        ic = run_ic_baseline(
            make_cluster(), MeanProgram(), RECORDS, initial_model={"mean": 0.0}
        )
        pic = PICRunner(make_cluster(), MeanProgram(), num_partitions=4).run(
            RECORDS, initial_model={"mean": 0.0}
        )
        assert pic.topoff_iterations < ic.iterations / 2

    def test_traffic_snapshot_included(self):
        pic = PICRunner(make_cluster(), MeanProgram(), num_partitions=4).run(
            RECORDS, initial_model={"mean": 0.0}
        )
        assert "model_update" in pic.traffic
        assert pic.shuffle_bytes >= 0
        assert pic.model_update_bytes > 0

    def test_uses_program_initial_model_when_omitted(self):
        pic = PICRunner(make_cluster(), MeanProgram(), num_partitions=4).run(RECORDS)
        assert pic.model["mean"] == pytest.approx(19.5, abs=1e-3)

    def test_determinism(self):
        a = PICRunner(make_cluster(), MeanProgram(), num_partitions=4, seed=7).run(
            RECORDS, initial_model={"mean": 0.0}
        )
        b = PICRunner(make_cluster(), MeanProgram(), num_partitions=4, seed=7).run(
            RECORDS, initial_model={"mean": 0.0}
        )
        assert a.model == b.model
        assert a.total_time == pytest.approx(b.total_time)

    def test_different_seed_changes_partitioning_not_quality(self):
        a = PICRunner(make_cluster(), MeanProgram(), num_partitions=4, seed=1).run(
            RECORDS, initial_model={"mean": 0.0}
        )
        b = PICRunner(make_cluster(), MeanProgram(), num_partitions=4, seed=2).run(
            RECORDS, initial_model={"mean": 0.0}
        )
        assert a.model["mean"] == pytest.approx(b.model["mean"], abs=1e-2)
