"""Tests for the default merge strategies."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.pic.mergers import average_merge, concat_merge, sum_merge

float_values = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False)


class TestAverageMerge:
    def test_scalar_average(self):
        merged = average_merge([{0: 1.0}, {0: 3.0}])
        assert merged[0] == pytest.approx(2.0)

    def test_vector_average(self):
        a = {0: np.array([1.0, 2.0])}
        b = {0: np.array([3.0, 4.0])}
        merged = average_merge([a, b])
        assert np.allclose(merged[0], [2.0, 3.0])

    def test_missing_keys_averaged_over_present(self):
        merged = average_merge([{0: 2.0, 1: 10.0}, {0: 4.0}])
        assert merged[0] == pytest.approx(3.0)
        assert merged[1] == pytest.approx(10.0)

    def test_single_model_identity(self):
        merged = average_merge([{0: 5.0, 1: np.array([1.0])}])
        assert merged[0] == pytest.approx(5.0)
        assert np.allclose(merged[1], [1.0])

    def test_empty_list_rejected(self):
        with pytest.raises(ValueError):
            average_merge([])

    def test_non_dict_rejected(self):
        with pytest.raises(TypeError):
            average_merge([[1, 2]])

    def test_does_not_mutate_inputs(self):
        a = {0: np.array([1.0])}
        b = {0: np.array([3.0])}
        average_merge([a, b])
        assert a[0][0] == 1.0 and b[0][0] == 3.0

    @given(st.lists(st.dictionaries(st.integers(0, 5), float_values, min_size=1),
                    min_size=1, max_size=6))
    def test_average_is_bounded_by_extremes(self, models):
        merged = average_merge(models)
        for key, value in merged.items():
            values = [m[key] for m in models if key in m]
            assert min(values) - 1e-9 <= value <= max(values) + 1e-9


class TestSumMerge:
    def test_scalar_sum(self):
        assert sum_merge([{0: 1.0}, {0: 2.0}])[0] == pytest.approx(3.0)

    def test_vector_sum(self):
        merged = sum_merge([{0: np.ones(2)}, {0: np.ones(2)}])
        assert np.allclose(merged[0], [2.0, 2.0])

    def test_union_of_keys(self):
        merged = sum_merge([{0: 1.0}, {1: 2.0}])
        assert merged == {0: pytest.approx(1.0), 1: pytest.approx(2.0)}

    @given(st.lists(st.dictionaries(st.integers(0, 5), float_values),
                    min_size=1, max_size=6))
    def test_sum_matches_manual(self, models):
        merged = sum_merge(models)
        keys = {k for m in models for k in m}
        for key in keys:
            expected = sum(m[key] for m in models if key in m)
            assert merged[key] == pytest.approx(expected)


class TestConcatMerge:
    def test_disjoint_union(self):
        merged = concat_merge([{0: "a"}, {1: "b"}])
        assert merged == {0: "a", 1: "b"}

    def test_collision_rejected(self):
        with pytest.raises(ValueError, match="more than one"):
            concat_merge([{0: "a"}, {0: "b"}])

    def test_values_not_copied_or_modified(self):
        arr = np.array([1.0])
        merged = concat_merge([{0: arr}])
        assert merged[0] is arr
