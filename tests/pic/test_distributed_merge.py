"""Tests for the distributed merge (Section III-C)."""

import numpy as np
import pytest

from repro.apps.kmeans import KMeansProgram, gaussian_mixture
from repro.apps.smoothing import ImageSmoothingProgram, synthetic_image
from repro.apps.smoothing.datagen import image_records
from repro.cluster.cluster import Cluster
from repro.pic.engine import BestEffortEngine
from repro.pic.runner import PICRunner
from tests.pic.toy import MeanProgram


def make_cluster(n=4):
    return Cluster(num_nodes=n, nodes_per_rack=n)


class DistributedMean(MeanProgram):
    def merge_element(self, key, values):
        return float(np.mean(values))


RECORDS = [(i, float(i)) for i in range(40)]


class TestEngineModes:
    def test_requires_merge_element(self):
        with pytest.raises(ValueError, match="merge_element"):
            BestEffortEngine(
                make_cluster(), MeanProgram(), num_partitions=4,
                distributed_merge=True,
            )

    def test_default_is_centralized(self):
        engine = BestEffortEngine(make_cluster(), DistributedMean(), 4)
        assert engine.distributed_merge is False

    def test_distributed_result_matches_centralized(self):
        central = BestEffortEngine(
            make_cluster(), DistributedMean(), 4, distributed_merge=False
        ).run(RECORDS, {"mean": 0.0})
        distributed = BestEffortEngine(
            make_cluster(), DistributedMean(), 4, distributed_merge=True
        ).run(RECORDS, {"mean": 0.0})
        assert distributed.model["mean"] == pytest.approx(central.model["mean"])
        assert distributed.be_iterations == central.be_iterations

    def test_distributed_uses_multiple_reducers(self):
        engine = BestEffortEngine(
            make_cluster(), DistributedMean(), 4, distributed_merge=True
        )
        spec = engine._be_job_spec(0)
        assert spec.num_reducers == DistributedMean.num_reducers
        central_spec = BestEffortEngine(
            make_cluster(), DistributedMean(), 4
        )._be_job_spec(0)
        assert central_spec.num_reducers == 1


class TestApplications:
    def test_kmeans_distributed_merge_equivalent(self):
        records, _ = gaussian_mixture(4000, 4, dim=2, separation=8.0, seed=1)
        prog = KMeansProgram(k=4, dim=2, threshold=0.05)
        model0 = prog.initial_model(records, seed=2)
        central = PICRunner(
            make_cluster(), KMeansProgram(k=4, dim=2, threshold=0.05),
            num_partitions=4, seed=3, distributed_merge=False,
        ).run(records, initial_model={k: v.copy() for k, v in model0.items()})
        distributed = PICRunner(
            make_cluster(), KMeansProgram(k=4, dim=2, threshold=0.05),
            num_partitions=4, seed=3, distributed_merge=True,
        ).run(records, initial_model={k: v.copy() for k, v in model0.items()})
        for key in model0:
            assert np.allclose(central.model[key], distributed.model[key])

    def test_smoothing_ownership_is_exclusive(self):
        img = synthetic_image(16, 16, seed=1)
        records = image_records(img)
        prog = ImageSmoothingProgram(16, 16, overlap=2)
        model0 = prog.initial_model(records)
        pairs = prog.partition(records, model0, 4, seed=0)
        all_owned = []
        for p, (_band, sub_model) in enumerate(pairs):
            all_owned.extend(k for k, _v in prog.owned_model_records(sub_model, p))
        # Every row emitted exactly once despite overlap + halo copies.
        assert sorted(all_owned) == list(range(16))

    def test_smoothing_distributed_merge_equivalent(self):
        img = synthetic_image(24, 24, seed=1)
        records = image_records(img)

        def run(dist):
            prog = ImageSmoothingProgram(24, 24)
            model0 = prog.initial_model(records)
            return PICRunner(
                make_cluster(), prog, num_partitions=4, seed=3,
                distributed_merge=dist,
            ).run(records, initial_model=model0)

        central, distributed = run(False), run(True)
        a = np.stack([central.model[i] for i in range(24)])
        b = np.stack([distributed.model[i] for i in range(24)])
        assert np.allclose(a, b)

    def test_merge_element_duplicate_owner_detected(self):
        prog = ImageSmoothingProgram(16, 16)
        with pytest.raises(ValueError, match="owner"):
            prog.merge_element(3, [np.zeros(16), np.zeros(16)])
