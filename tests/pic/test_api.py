"""Tests for the PICProgram API surface and in-memory execution."""

import pytest

from repro.mapreduce.job import JobSpec, TaskContext
from repro.pic.api import PICProgram
from tests.pic.toy import MeanProgram


class TestJobSpecDerivation:
    def test_spec_uses_program_pieces(self):
        prog = MeanProgram()
        spec = prog.job_spec()
        assert isinstance(spec, JobSpec)
        assert spec.num_reducers == 2
        assert spec.combiner is not None  # combine() is overridden

    def test_no_combiner_when_not_overridden(self):
        class NoCombiner(MeanProgram):
            combine = PICProgram.combine

        assert NoCombiner().job_spec().combiner is None

    def test_batch_map_detected(self):
        class Batch(MeanProgram):
            def batch_map(self, ctx, records):
                for k, v in records:
                    self.map(ctx, k, v)

        spec = Batch().job_spec()
        assert spec.batch_mapper is not None
        assert spec.mapper is None

    def test_default_jobs_single(self):
        assert len(MeanProgram().jobs({"mean": 0.0}, 0)) == 1


class TestDefaults:
    def test_default_partition_replicates_model(self):
        prog = MeanProgram()
        records = [(i, float(i)) for i in range(20)]
        pairs = prog.partition(records, {"mean": 1.5}, 4, seed=0)
        assert len(pairs) == 4
        for _recs, model in pairs:
            assert model == {"mean": 1.5}
        all_records = sorted(r for recs, _m in pairs for r in recs)
        assert all_records == records

    def test_default_merge_averages(self):
        merged = MeanProgram().merge([{"mean": 1.0}, {"mean": 3.0}])
        assert merged["mean"] == pytest.approx(2.0)

    def test_default_be_converged_uses_converged(self):
        prog = MeanProgram(threshold=0.5)
        assert prog.be_converged({"mean": 0.0}, {"mean": 0.2}, 0)
        assert not prog.be_converged({"mean": 0.0}, {"mean": 2.0}, 0)

    def test_default_topoff_converged_uses_converged(self):
        prog = MeanProgram(threshold=0.5)
        assert prog.topoff_converged({"mean": 0.0}, {"mean": 0.1}, 0)

    def test_model_bytes_positive(self):
        assert MeanProgram().model_bytes({"mean": 1.0}) > 0

    def test_model_records_roundtrip(self):
        prog = MeanProgram()
        model = {"mean": 2.5}
        assert prog.model_from_records(prog.model_records(model)) == model

    def test_unimplemented_mapper_raises(self):
        class Empty(PICProgram):
            def build_model(self, model, output):
                return model

            def converged(self, previous, current, iteration):
                return True

        with pytest.raises(NotImplementedError):
            Empty().map(TaskContext(), 0, 0)
        with pytest.raises(NotImplementedError):
            Empty().reduce(TaskContext(), 0, [])
        with pytest.raises(NotImplementedError):
            Empty().initial_model([])


class TestInMemoryExecution:
    def test_one_iteration_matches_closed_form(self):
        prog = MeanProgram()
        records = [(i, float(i)) for i in range(11)]  # mean 5.0
        model, compute = prog.run_iteration_in_memory(records, {"mean": 0.0}, 0)
        assert model["mean"] == pytest.approx(2.5)
        assert compute > 0

    def test_solve_reaches_fixed_point(self):
        prog = MeanProgram(threshold=1e-9)
        records = [(i, float(i)) for i in range(11)]
        model, iterations, compute = prog.solve_in_memory(records, {"mean": 0.0})
        assert model["mean"] == pytest.approx(5.0, abs=1e-6)
        assert 25 <= iterations <= 40
        assert compute > 0

    def test_solve_respects_iteration_cap(self):
        prog = MeanProgram(threshold=1e-12)
        records = [(i, float(i)) for i in range(11)]
        _model, iterations, _c = prog.solve_in_memory(
            records, {"mean": 0.0}, max_iterations=3
        )
        assert iterations == 3

    def test_inmemory_cost_below_pipeline_cost(self):
        prog = MeanProgram()
        records = [(i, float(i)) for i in range(100)]
        _m, compute = prog.run_iteration_in_memory(records, {"mean": 0.0}, 0)
        pipeline = prog.costs.map_compute(len(records), 0)
        assert compute < pipeline
