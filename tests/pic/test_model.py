"""Tests for the KV model helpers."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.pic.model import model_nbytes, model_to_records, records_to_model


class TestRoundTrip:
    def test_simple_roundtrip(self):
        model = {1: 1.0, 0: 2.0}
        assert records_to_model(model_to_records(model)) == model

    def test_records_sorted_by_key(self):
        records = model_to_records({3: "c", 1: "a", 2: "b"})
        assert [k for k, _v in records] == [1, 2, 3]

    def test_unsortable_keys_use_repr_order(self):
        model = {("pr", 1): 0.5, "x": 1.0}
        records = model_to_records(model)
        assert records_to_model(records) == model

    def test_duplicate_keys_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            records_to_model([(1, "a"), (1, "b")])

    def test_empty_model(self):
        assert model_to_records({}) == []
        assert records_to_model([]) == {}

    @given(
        st.dictionaries(
            st.integers(), st.floats(allow_nan=False), max_size=30
        )
    )
    def test_roundtrip_property(self, model):
        assert records_to_model(model_to_records(model)) == model


class TestSizing:
    def test_size_matches_records(self):
        model = {0: np.zeros(3), 1: np.zeros(3)}
        # per entry: key 8 + array (24 + 8 header)
        assert model_nbytes(model) == 2 * (8 + 32)

    def test_empty_model_is_zero(self):
        assert model_nbytes({}) == 0

    def test_size_grows_with_entries(self):
        small = model_nbytes({0: 1.0})
        big = model_nbytes({0: 1.0, 1: 2.0})
        assert big > small
