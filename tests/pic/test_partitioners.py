"""Tests (incl. property-based) for the default partition strategies."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.pic.partitioners import (
    chunk_partition,
    hash_partition,
    random_partition,
    replicate_model,
    split_model_by_key,
)

records_strategy = st.lists(
    st.tuples(st.integers(0, 1000), st.floats(allow_nan=False)), max_size=80
)


class TestRandomPartition:
    def test_near_even_sizes(self):
        records = [(i, i) for i in range(100)]
        parts = random_partition(records, 7, seed=1)
        sizes = [len(p) for p in parts]
        assert max(sizes) - min(sizes) <= 1

    def test_deterministic_for_seed(self):
        records = [(i, i) for i in range(50)]
        a = random_partition(records, 5, seed=9)
        b = random_partition(records, 5, seed=9)
        assert a == b

    def test_shuffles(self):
        records = [(i, i) for i in range(100)]
        parts = random_partition(records, 2, seed=1)
        assert parts[0] != records[:50]

    def test_zero_partitions_rejected(self):
        with pytest.raises(ValueError):
            random_partition([], 0)

    @settings(max_examples=40)
    @given(records_strategy, st.integers(1, 10), st.integers(0, 99))
    def test_partition_is_exact_cover(self, records, p, seed):
        parts = random_partition(records, p, seed=seed)
        assert len(parts) == p
        flattened = sorted(r for part in parts for r in part)
        assert flattened == sorted(records)


class TestChunkPartition:
    def test_preserves_order(self):
        records = [(i, i) for i in range(10)]
        parts = chunk_partition(records, 3)
        assert [r for p in parts for r in p] == records

    @given(records_strategy, st.integers(1, 10))
    def test_exact_cover_in_order(self, records, p):
        parts = chunk_partition(records, p)
        assert [r for part in parts for r in part] == list(records)
        sizes = [len(part) for part in parts]
        assert max(sizes) - min(sizes) <= 1 if records else True


class TestHashPartition:
    def test_equal_keys_colocated(self):
        records = [(i % 5, i) for i in range(50)]
        parts = hash_partition(records, 4)
        for part in parts:
            keys = {k for k, _v in part}
            for key in keys:
                total_with_key = sum(
                    1 for p in parts for k, _v in p if k == key
                )
                in_this = sum(1 for k, _v in part if k == key)
                assert total_with_key == in_this

    @given(records_strategy, st.integers(1, 8))
    def test_exact_cover(self, records, p):
        parts = hash_partition(records, p)
        assert sorted(r for part in parts for r in part) == sorted(records)


class TestReplicateModel:
    def test_copies_are_independent(self):
        model = {"w": np.zeros(3)}
        copies = replicate_model(model, 3)
        copies[0]["w"][0] = 99.0
        assert copies[1]["w"][0] == 0.0
        assert model["w"][0] == 0.0

    def test_count(self):
        assert len(replicate_model({}, 4)) == 4


class TestSplitModelByKey:
    def test_disjoint_split(self):
        model = {0: "a", 1: "b", 2: "c"}
        parts = split_model_by_key(model, {0: 0, 1: 1, 2: 0}, 2)
        assert parts == [{0: "a", 2: "c"}, {1: "b"}]

    def test_invalid_assignment_rejected(self):
        with pytest.raises(ValueError):
            split_model_by_key({0: "a"}, {0: 5}, 2)

    @given(
        st.dictionaries(st.integers(0, 50), st.integers(), min_size=1, max_size=30),
        st.integers(1, 5),
        st.integers(0, 9),
    )
    def test_split_is_exact_cover(self, model, p, seed):
        rng = np.random.default_rng(seed)
        assignment = {k: int(rng.integers(0, p)) for k in model}
        parts = split_model_by_key(model, assignment, p)
        rebuilt = {}
        for part in parts:
            for k, v in part.items():
                assert k not in rebuilt
                rebuilt[k] = v
        assert rebuilt == model
