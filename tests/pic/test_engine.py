"""Tests for the best-effort phase engine."""

import pytest

from repro.cluster.cluster import Cluster
from repro.pic.engine import BestEffortEngine
from tests.pic.toy import MeanProgram


def make_cluster(num_nodes=4):
    return Cluster(num_nodes=num_nodes, nodes_per_rack=num_nodes)


def make_engine(num_partitions=4, be_max_iterations=20, threshold=1e-6, **kw):
    cluster = make_cluster()
    prog = MeanProgram(threshold=threshold)
    engine = BestEffortEngine(
        cluster, prog, num_partitions=num_partitions,
        be_max_iterations=be_max_iterations, **kw
    )
    return cluster, prog, engine


RECORDS = [(i, float(i)) for i in range(40)]  # mean 19.5


class TestConstruction:
    def test_invalid_partitions_rejected(self):
        cluster = make_cluster()
        with pytest.raises(ValueError):
            BestEffortEngine(cluster, MeanProgram(), num_partitions=0)

    def test_invalid_be_cap_rejected(self):
        cluster = make_cluster()
        with pytest.raises(ValueError):
            BestEffortEngine(cluster, MeanProgram(), 2, be_max_iterations=0)

    def test_home_nodes_round_robin(self):
        _c, _p, engine = make_engine(num_partitions=6)
        assert [engine.home_node(i) for i in range(6)] == [0, 1, 2, 3, 0, 1]


class TestExecution:
    def test_converges_to_data_mean(self):
        _c, _p, engine = make_engine()
        result = engine.run(RECORDS, {"mean": 0.0})
        # Partition means differ from the global mean, but averaging the
        # local fixed points gives the global mean for equal-size parts.
        assert result.model["mean"] == pytest.approx(19.5, abs=0.05)

    def test_be_iteration_stats_recorded(self):
        _c, _p, engine = make_engine()
        result = engine.run(RECORDS, {"mean": 0.0})
        assert result.be_iterations == len(result.stats)
        for s in result.stats:
            assert len(s.local_iterations) == 4
            assert s.duration > 0
            assert s.max_local_iterations == max(s.local_iterations)

    def test_first_round_does_bulk_of_work(self):
        _c, _p, engine = make_engine()
        result = engine.run(RECORDS, {"mean": 0.0})
        rounds = result.max_local_iterations_by_round
        assert rounds[0] > rounds[-1]

    def test_respects_be_cap(self):
        _c, _p, engine = make_engine(be_max_iterations=2, threshold=1e-12)
        result = engine.run(RECORDS, {"mean": 0.0})
        assert result.be_iterations == 2

    def test_single_partition_degenerates_to_serial_solve(self):
        """Section III-B: one partition + identity merge = conventional IC.

        The engine needs one extra round to *observe* convergence (the
        BE criterion compares successive merged models), but the answer
        is exactly the serial solve's.
        """
        _c, prog, engine = make_engine(num_partitions=1)
        result = engine.run(RECORDS, {"mean": 0.0})
        serial, _iters, _c2 = prog.solve_in_memory(RECORDS, {"mean": 0.0})
        assert result.model["mean"] == pytest.approx(serial["mean"])
        assert result.be_iterations <= 2

    def test_model_locations_populated(self):
        cluster, _p, engine = make_engine()
        result = engine.run(RECORDS, {"mean": 0.0})
        assert result.model_locations
        for node in result.model_locations:
            assert 0 <= node < cluster.num_nodes

    def test_more_partitions_than_nodes(self):
        _c, _p, engine = make_engine(num_partitions=10)
        result = engine.run(RECORDS, {"mean": 0.0})
        assert result.model["mean"] == pytest.approx(19.5, abs=0.1)

    def test_partition_count_mismatch_detected(self):
        class Bad(MeanProgram):
            def partition(self, records, model, num_partitions, seed=0):
                return [(list(records), dict(model))]  # always one

        cluster = make_cluster()
        engine = BestEffortEngine(cluster, Bad(), num_partitions=3)
        with pytest.raises(ValueError, match="sub-problems"):
            engine.run(RECORDS, {"mean": 0.0})


class TestTraffic:
    def test_shuffle_is_submodels_only(self):
        cluster, prog, engine = make_engine()
        result = engine.run(RECORDS, {"mean": 0.0})
        # Each best-effort round shuffles 4 sub-models (~1 entry each,
        # plus record framing); the per-point data never hits the fabric.
        per_round_upper = 4 * (prog.model_bytes({"mean": 0.0}) + 64)
        assert cluster.meter.total("shuffle") <= per_round_upper * result.be_iterations

    def test_repartition_charged_once(self):
        from repro.util.sizing import sizeof_records

        cluster, prog, engine = make_engine(be_max_iterations=5, threshold=1e-12)
        engine.run(RECORDS, {"mean": 0.0})
        repartition = cluster.meter.total("repartition")
        assert repartition > 0
        # Co-location is a one-time cost: at most one pass over the data,
        # regardless of how many best-effort rounds ran.
        assert repartition <= sizeof_records(RECORDS)
        # The scatter is aggregated into node-pair flows, but the byte
        # total must equal the per-partition accounting exactly: each
        # partition ships (n-1)/n of its bytes to its home node.
        n = cluster.num_nodes
        pairs = prog.partition(RECORDS, {"mean": 0.0}, 4, seed=engine.seed)
        expected = sum(sizeof_records(recs) * (n - 1) / n for recs, _m in pairs)
        assert repartition == pytest.approx(expected, rel=1e-12)

    def test_colocation_scatter_aggregated_per_node_pair(self):
        # 10 partitions on 4 nodes used to issue 10*(4-1)=30 scatter
        # flows; aggregation bounds them by the n*(n-1) node pairs.
        cluster, _p, engine = make_engine(num_partitions=10)
        engine.run(RECORDS, {"mean": 0.0})
        n = cluster.num_nodes
        assert 0 < cluster.meter.transfers("repartition") <= n * (n - 1)

    def test_model_updates_per_round(self):
        cluster, _p, engine = make_engine()
        result = engine.run(RECORDS, {"mean": 0.0})
        assert cluster.meter.total("model_update") > 0
        assert cluster.meter.transfers("model_update") >= result.be_iterations

    def test_clock_advances(self):
        cluster, _p, engine = make_engine()
        engine.run(RECORDS, {"mean": 0.0})
        assert cluster.now > 0


class TestDeterminism:
    def test_identical_runs_identical_results(self):
        _c1, _p1, e1 = make_engine()
        _c2, _p2, e2 = make_engine()
        r1 = e1.run(RECORDS, {"mean": 0.0})
        r2 = e2.run(RECORDS, {"mean": 0.0})
        assert r1.model == r2.model
        assert r1.total_time == pytest.approx(r2.total_time)
        assert r1.local_iterations_by_round == r2.local_iterations_by_round
