"""A minimal PICProgram used across the PIC-layer tests.

The model is ``{"mean": m}``; each iteration moves m halfway toward the
mean of the records the task sees.  Fixed point = data mean, geometric
convergence — every behaviour is predictable in closed form.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.mapreduce.costs import CostHints
from repro.mapreduce.job import TaskContext
from repro.pic.api import PICProgram


class MeanProgram(PICProgram):
    name = "mean"
    num_reducers = 2
    costs = CostHints()

    def __init__(self, threshold: float = 1e-6):
        self.threshold = threshold

    def initial_model(self, records: Sequence[tuple[Any, Any]], seed: Any = 0):
        return {"mean": 0.0}

    def map(self, ctx: TaskContext, key: Any, value: Any) -> None:
        ctx.emit(0, (value, 1))

    def combine(self, key: Any, values: list[Any]) -> Any:
        total = sum(v for v, _n in values)
        count = sum(n for _v, n in values)
        return (total, count)

    def reduce(self, ctx: TaskContext, key: Any, values: list[Any]) -> None:
        total = sum(v for v, _n in values)
        count = sum(n for _v, n in values)
        ctx.emit("mean", (ctx.model["mean"] + total / count) / 2.0)

    def build_model(self, model, output):
        new = dict(model)
        for k, v in output:
            new[k] = v
        return new

    def converged(self, previous, current, iteration) -> bool:
        return abs(current["mean"] - previous["mean"]) < self.threshold
