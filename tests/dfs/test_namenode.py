"""Tests for namenode metadata and replica placement."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster.topology import NodeSpec, Topology
from repro.dfs.namenode import BlockMeta, Namenode


def make_namenode(num_nodes=8, nodes_per_rack=4, replication=3, block_size=64 * 2**20, seed=0):
    topo = Topology(num_nodes=num_nodes, nodes_per_rack=nodes_per_rack, node_spec=NodeSpec())
    return Namenode(topo, replication=replication, block_size=block_size, seed=seed)


class TestCreate:
    def test_block_splitting(self):
        nn = make_namenode(block_size=100)
        meta = nn.create("/f", 250, writer_node=0)
        assert [b.nbytes for b in meta.blocks] == [100, 100, 50]
        assert meta.nbytes == 250

    def test_zero_byte_file_has_one_empty_block(self):
        nn = make_namenode()
        meta = nn.create("/f", 0, writer_node=0)
        assert [b.nbytes for b in meta.blocks] == [0]

    def test_duplicate_path_rejected(self):
        nn = make_namenode()
        nn.create("/f", 10, writer_node=0)
        with pytest.raises(FileExistsError):
            nn.create("/f", 10, writer_node=0)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            make_namenode().create("/f", -1, writer_node=0)

    def test_bad_writer_rejected(self):
        with pytest.raises(ValueError):
            make_namenode().create("/f", 1, writer_node=99)

    def test_lookup_and_exists(self):
        nn = make_namenode()
        assert not nn.exists("/f")
        nn.create("/f", 10, writer_node=1)
        assert nn.exists("/f")
        assert nn.lookup("/f").path == "/f"

    def test_lookup_missing_raises(self):
        with pytest.raises(FileNotFoundError):
            make_namenode().lookup("/nope")

    def test_delete_reclaims_accounting(self):
        nn = make_namenode()
        nn.create("/f", 1000, writer_node=0)
        nn.delete("/f")
        assert not nn.exists("/f")
        assert all(v == 0 for v in nn.stored_bytes_per_node.values())

    def test_listing_sorted(self):
        nn = make_namenode()
        nn.create("/b", 1, writer_node=0)
        nn.create("/a", 1, writer_node=0)
        assert nn.listing() == ["/a", "/b"]


class TestPlacement:
    def test_first_replica_on_writer(self):
        nn = make_namenode()
        meta = nn.create("/f", 10, writer_node=3)
        assert meta.blocks[0].replicas[0] == 3

    def test_second_replica_off_rack(self):
        nn = make_namenode()
        meta = nn.create("/f", 10, writer_node=0)
        second = meta.blocks[0].replicas[1]
        assert nn.topology.nodes[second].rack_id != nn.topology.nodes[0].rack_id

    def test_third_replica_in_second_rack(self):
        nn = make_namenode()
        meta = nn.create("/f", 10, writer_node=0)
        r = meta.blocks[0].replicas
        assert nn.topology.nodes[r[2]].rack_id == nn.topology.nodes[r[1]].rack_id

    def test_replicas_distinct(self):
        nn = make_namenode()
        meta = nn.create("/f", 10, writer_node=0)
        replicas = meta.blocks[0].replicas
        assert len(set(replicas)) == len(replicas) == 3

    def test_replication_capped_at_cluster_size(self):
        nn = make_namenode(num_nodes=2, nodes_per_rack=2, replication=3)
        meta = nn.create("/f", 10, writer_node=0)
        assert len(meta.blocks[0].replicas) == 2

    def test_replication_override(self):
        nn = make_namenode()
        meta = nn.create("/f", 10, writer_node=0, replication=1)
        assert len(meta.blocks[0].replicas) == 1

    def test_single_rack_cluster_still_replicates(self):
        nn = make_namenode(num_nodes=6, nodes_per_rack=6)
        meta = nn.create("/f", 10, writer_node=0)
        assert len(meta.blocks[0].replicas) == 3

    def test_deterministic_for_seed(self):
        a = make_namenode(seed=5).create("/f", 10, writer_node=0)
        b = make_namenode(seed=5).create("/f", 10, writer_node=0)
        assert a.blocks[0].replicas == b.blocks[0].replicas

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 7), st.integers(1, 4))
    def test_placement_invariants_hold(self, writer, replication):
        nn = make_namenode(replication=replication)
        meta = nn.create("/f", 10, writer_node=writer)
        replicas = meta.blocks[0].replicas
        assert replicas[0] == writer
        assert len(set(replicas)) == len(replicas) == replication


class TestClosestReplica:
    def test_local_wins(self):
        nn = make_namenode()
        block = BlockMeta(block_id=0, nbytes=1, replicas=(1, 5, 6))
        assert nn.closest_replica(block, 5) == 5

    def test_rack_local_beats_remote(self):
        nn = make_namenode()  # racks: 0-3, 4-7
        block = BlockMeta(block_id=0, nbytes=1, replicas=(1, 6))
        assert nn.closest_replica(block, 2) == 1
        assert nn.closest_replica(block, 7) == 6

    def test_remote_fallback_deterministic(self):
        nn = make_namenode(num_nodes=12, nodes_per_rack=4)
        block = BlockMeta(block_id=0, nbytes=1, replicas=(9, 8))
        assert nn.closest_replica(block, 0) == 8
