"""Tests for the DFS data plane (pipelines and reads)."""

import pytest

from repro.cluster.cluster import Cluster
from repro.dfs.dfs import DistributedFileSystem


def make(num_nodes=8, nodes_per_rack=4, replication=3, **kw):
    cluster = Cluster(num_nodes=num_nodes, nodes_per_rack=nodes_per_rack)
    return cluster, DistributedFileSystem(cluster, replication=replication, **kw)


class TestWrite:
    def test_pipeline_fabric_bytes(self):
        cluster, dfs = make()
        dfs.write("/f", 1000, writer_node=0, category="dfs_write")
        cluster.run()
        # 3 replicas: writer's local copy is off-fabric, 2 pipeline hops on it.
        assert cluster.meter.fabric("dfs_write") == 2000
        assert cluster.meter.total("dfs_write") == 3000

    def test_completion_callback_fires_once(self):
        cluster, dfs = make()
        done = []
        dfs.write("/f", 1000, writer_node=0, on_complete=lambda m: done.append(m))
        cluster.run()
        assert len(done) == 1
        assert done[0].path == "/f"

    def test_zero_byte_write_completes(self):
        cluster, dfs = make()
        done = []
        dfs.write("/f", 0, writer_node=0, on_complete=lambda m: done.append(m))
        cluster.run()
        assert len(done) == 1

    def test_replication_override(self):
        cluster, dfs = make()
        dfs.write("/f", 1000, writer_node=0, category="w", replication=1)
        cluster.run()
        assert cluster.meter.fabric("w") == 0
        assert cluster.meter.total("w") == 1000

    def test_write_takes_time(self):
        cluster, dfs = make()
        dfs.write("/f", 100 * 2**20, writer_node=0)
        cluster.run()
        assert cluster.now > 0

    def test_overwrite_replaces(self):
        cluster, dfs = make()
        dfs.write("/f", 100, writer_node=0)
        cluster.run()
        dfs.overwrite("/f", 200, writer_node=1)
        cluster.run()
        assert dfs.namenode.lookup("/f").nbytes == 200

    def test_overwrite_creates_when_missing(self):
        cluster, dfs = make()
        dfs.overwrite("/f", 100, writer_node=0)
        cluster.run()
        assert dfs.namenode.exists("/f")


class TestRead:
    def test_local_read_off_fabric(self):
        cluster, dfs = make()
        dfs.write("/f", 1000, writer_node=2)
        cluster.run()
        snap = cluster.meter.snapshot()
        dfs.read("/f", reader_node=2, category="dfs_read")
        cluster.run()
        delta = cluster.meter.diff(snap)
        assert delta["dfs_read"]["total_bytes"] == 1000
        assert delta["dfs_read"]["fabric_bytes"] == 0

    def test_remote_read_on_fabric(self):
        cluster, dfs = make(num_nodes=8, nodes_per_rack=4, replication=1)
        dfs.write("/f", 1000, writer_node=0)
        cluster.run()
        dfs.read("/f", reader_node=5, category="dfs_read")
        cluster.run()
        assert cluster.meter.fabric("dfs_read") == 1000

    def test_read_completion_callback(self):
        cluster, dfs = make()
        dfs.write("/f", 500, writer_node=0)
        cluster.run()
        done = []
        dfs.read("/f", reader_node=1, on_complete=lambda m: done.append(m))
        cluster.run()
        assert len(done) == 1

    def test_read_block_single(self):
        cluster, dfs = make(block_size=100)
        dfs.write("/f", 250, writer_node=0)
        cluster.run()
        snap = cluster.meter.snapshot()
        dfs.read_block("/f", 2, reader_node=0, category="dfs_read")
        cluster.run()
        assert cluster.meter.diff(snap)["dfs_read"]["total_bytes"] == 50

    def test_read_block_out_of_range(self):
        cluster, dfs = make()
        dfs.write("/f", 100, writer_node=0)
        cluster.run()
        with pytest.raises(IndexError):
            dfs.read_block("/f", 5, reader_node=0)

    def test_read_missing_raises(self):
        cluster, dfs = make()
        with pytest.raises(FileNotFoundError):
            dfs.read("/nope", reader_node=0)


class TestBlockLocations:
    def test_locations_shape(self):
        cluster, dfs = make(block_size=100)
        dfs.write("/f", 250, writer_node=0)
        cluster.run()
        locs = dfs.block_locations("/f")
        assert len(locs) == 3
        assert all(len(replicas) == 3 for replicas in locs)
