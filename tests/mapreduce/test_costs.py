"""Tests for compute cost hints."""

import pytest

from repro.mapreduce.costs import CostHints


class TestValidation:
    @pytest.mark.parametrize(
        "kw",
        [
            {"map_seconds_per_record": -1},
            {"reduce_seconds_per_record": -1},
            {"sort_seconds_per_record": -1},
            {"task_overhead_seconds": -1},
            {"job_overhead_seconds": -1},
            {"inmemory_seconds_per_record": -1},
        ],
    )
    def test_negative_rejected(self, kw):
        with pytest.raises(ValueError):
            CostHints(**kw)


class TestComputation:
    def test_map_compute(self):
        hints = CostHints(map_seconds_per_record=2e-6, map_seconds_per_byte=1e-9)
        assert hints.map_compute(1000, 1_000_000) == pytest.approx(0.003)

    def test_reduce_compute_includes_sort(self):
        hints = CostHints(reduce_seconds_per_record=1e-6, sort_seconds_per_record=5e-7)
        assert hints.reduce_compute(1000) == pytest.approx(0.0015)

    def test_inmemory_default_ratio(self):
        hints = CostHints(map_seconds_per_record=1e-5)
        assert hints.inmemory_per_record == pytest.approx(1e-6)
        assert hints.inmemory_compute(100) == pytest.approx(1e-4)

    def test_inmemory_explicit_override(self):
        hints = CostHints(map_seconds_per_record=1e-5, inmemory_seconds_per_record=3e-6)
        assert hints.inmemory_per_record == 3e-6

    def test_inmemory_cheaper_than_pipeline(self):
        hints = CostHints()
        assert hints.inmemory_per_record < hints.map_seconds_per_record


class TestWithoutOverheads:
    def test_zeroes_only_overheads(self):
        hints = CostHints(
            map_seconds_per_record=2e-6,
            task_overhead_seconds=0.5,
            job_overhead_seconds=5.0,
        )
        stripped = hints.without_overheads()
        assert stripped.task_overhead_seconds == 0.0
        assert stripped.job_overhead_seconds == 0.0
        assert stripped.map_seconds_per_record == 2e-6

    def test_preserves_inmemory_override(self):
        hints = CostHints(inmemory_seconds_per_record=7e-7)
        assert hints.without_overheads().inmemory_seconds_per_record == 7e-7

    def test_idempotent(self):
        stripped = CostHints().without_overheads()
        assert stripped.without_overheads() == stripped
