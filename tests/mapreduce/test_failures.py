"""Failure injection: Hadoop-style task retry (paper Section VII)."""

import pytest

from repro.cluster.cluster import Cluster
from repro.dfs.dfs import DistributedFileSystem
from repro.mapreduce.job import JobSpec
from repro.mapreduce.records import DistributedDataset
from repro.mapreduce.runner import JobRunner
from repro.pic.engine import BestEffortEngine
from tests.pic.toy import MeanProgram


def make_env(num_nodes=4, num_splits=4):
    cluster = Cluster(num_nodes=num_nodes, nodes_per_rack=num_nodes)
    dfs = DistributedFileSystem(cluster)
    records = [(i, float(i)) for i in range(40)]
    dataset = DistributedDataset.materialize(dfs, "/in", records, num_splits)
    return cluster, JobRunner(cluster, dfs), dataset


def mean_spec() -> JobSpec:
    def mapper(ctx, k, v):
        ctx.emit(0, (v, 1))

    def reducer(ctx, key, values):
        total = sum(v for v, _n in values)
        count = sum(n for _v, n in values)
        ctx.emit("mean", total / count)

    return JobSpec(name="mean", mapper=mapper, reducer=reducer, num_reducers=1)


class TestTaskRetry:
    def test_result_unchanged_by_failures(self):
        _c, runner, dataset = make_env()
        clean = runner.run(mean_spec(), dataset)
        _c2, runner2, dataset2 = make_env()
        flaky = runner2.run(mean_spec(), dataset2, failures={0: 1, 2: 2})
        assert clean.output == flaky.output

    def test_failures_counted(self):
        _c, runner, dataset = make_env()
        result = runner.run(mean_spec(), dataset, failures={0: 1, 2: 2})
        assert result.counters.get("failed_map_attempts") == 3

    def test_failures_cost_time(self):
        _c, runner, dataset = make_env()
        clean = runner.run(mean_spec(), dataset)
        _c2, runner2, dataset2 = make_env()
        flaky = runner2.run(mean_spec(), dataset2, failures={0: 3})
        assert flaky.duration > clean.duration

    def test_slots_recovered_after_failures(self):
        _c, runner, dataset = make_env()
        runner.run(mean_spec(), dataset, failures={0: 2, 1: 2, 2: 2, 3: 2})
        assert runner.map_scheduler.free_slots() == runner.map_scheduler.total_slots

    def test_many_failures_still_complete(self):
        _c, runner, dataset = make_env()
        result = runner.run(
            mean_spec(), dataset, failures={i: 5 for i in range(4)}
        )
        assert result.output[0][1] == pytest.approx(19.5)


class TestBestEffortUnderFailures:
    def test_engine_result_identical_with_flaky_first_round(self):
        """Section VII: a failed best-effort task is simply restarted by
        the framework; the computed model is unaffected."""
        records = [(i, float(i)) for i in range(40)]
        cluster = Cluster(num_nodes=4, nodes_per_rack=4)
        clean_engine = BestEffortEngine(cluster, MeanProgram(), num_partitions=4)
        clean = clean_engine.run(records, {"mean": 0.0})

        cluster2 = Cluster(num_nodes=4, nodes_per_rack=4)
        flaky_engine = BestEffortEngine(cluster2, MeanProgram(), num_partitions=4)
        original_run = flaky_engine.runner.run
        calls = {"n": 0}

        def run_with_failures(*args, **kwargs):
            calls["n"] += 1
            if calls["n"] == 1:  # first best-effort round: kill task 1 once
                kwargs["failures"] = {1: 1}
            return original_run(*args, **kwargs)

        flaky_engine.runner.run = run_with_failures
        flaky = flaky_engine.run(records, {"mean": 0.0})
        assert flaky.model == clean.model
        assert flaky.total_time > clean.total_time
