"""Property tests for the columnar record-batch backend.

The columnar data plane is only allowed to exist because it is
*observationally identical* to the row path: same partition ids, same
groups in the same order, same wire bytes, same rows back.  These
properties are the contract, checked over adversarial key/value mixes
(bool-vs-int, float repr edge cases, >int64 integers, non-ASCII text).
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.mapreduce.columnar import (
    ArrayColumn,
    ColumnBatch,
    GroupedBatch,
    ObjectColumn,
    ScalarColumn,
    StringColumn,
    TupleColumn,
    build_column,
    columnar_enabled,
    concat_batches,
    emit_first_values,
    group_batch,
    group_records,
    singleton_groups,
)
from repro.mapreduce.job import TaskContext
from repro.mapreduce.records import group_by_key, hash_partitioner, stable_hash
from repro.util.sizing import sizeof_record, sizeof_records

# -- strategies --------------------------------------------------------------

ascii_text = st.text(
    alphabet=st.characters(min_codepoint=1, max_codepoint=127), max_size=8
)
int64_ints = st.integers(-(2**63), 2**63 - 1)
big_ints = st.integers(-(2**80), 2**80)
finite_floats = st.floats(allow_nan=False)
scalar_keys = st.one_of(
    st.booleans(), int64_ints, finite_floats, ascii_text,
    st.text(max_size=4),  # may contain non-ASCII → object fallback
)
hashable_keys = st.one_of(
    scalar_keys,
    st.tuples(int64_ints, ascii_text),
    st.tuples(ascii_text, int64_ints, int64_ints),
    big_ints,
)
plain_values = st.one_of(
    st.booleans(), int64_ints, finite_floats, ascii_text, st.none()
)


def _assert_same_rows(actual, expected):
    assert len(actual) == len(expected)
    for (ka, va), (ke, ve) in zip(actual, expected):
        assert type(ka) is type(ke) and ka == ke
        if isinstance(ve, np.ndarray):
            assert isinstance(va, np.ndarray)
            assert np.array_equal(va, ve)
        else:
            assert type(va) is type(ve) and va == ve


# -- partitioner equivalence -------------------------------------------------


class TestHashEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(st.lists(hashable_keys, min_size=1, max_size=32), st.integers(1, 16))
    def test_partition_ids_match_scalar_hash(self, keys, n):
        batch = ColumnBatch(build_column(keys), build_column([0] * len(keys)))
        pids = batch.partition_ids(n)
        assert pids.tolist() == [hash_partitioner(k, n) for k in keys]

    @settings(max_examples=40, deadline=None)
    @given(st.lists(hashable_keys, min_size=1, max_size=32))
    def test_column_hashes_match_scalar_hash(self, keys):
        hashes = build_column(keys).stable_hashes()
        assert hashes.tolist() == [stable_hash(k) for k in keys]

    def test_vectorized_int_path_is_used_and_exact(self):
        keys = [0, -1, 1, 2**62, -(2**62), 7, -7]
        col = build_column(keys)
        assert isinstance(col, ScalarColumn) and col.kind == "int"
        assert col.stable_hashes().tolist() == [stable_hash(k) for k in keys]

    def test_bool_keys_hash_differently_from_int_keys(self):
        assert stable_hash(True) != stable_hash(1)
        assert stable_hash(False) != stable_hash(0)
        mixed = [True, 1, False, 0]
        col = build_column(mixed)
        assert isinstance(col, ObjectColumn)  # not silently widened to int
        assert col.stable_hashes().tolist() == [stable_hash(k) for k in mixed]

    def test_float_repr_edge_cases(self):
        keys = [0.0, -0.0, 1e308, -1e308, 5e-324, float("inf"), float("-inf"), 0.1]
        col = build_column(keys)
        assert isinstance(col, ScalarColumn) and col.kind == "float"
        assert col.stable_hashes().tolist() == [stable_hash(k) for k in keys]
        # repr distinguishes signed zeros, so the wire hash does too —
        # on both paths equally.
        assert stable_hash(0.0) != stable_hash(-0.0)

    def test_numpy_scalars_fall_back_losslessly(self):
        keys = [np.float64(0.5), np.float64(1.5)]
        col = build_column(keys)
        assert isinstance(col, ObjectColumn)
        assert col.rows() == keys
        assert [type(v) for v in col.rows()] == [np.float64, np.float64]

    def test_oversized_ints_fall_back_losslessly(self):
        keys = [2**64, -(2**100), 3]
        col = build_column(keys)
        assert isinstance(col, ObjectColumn)
        assert col.stable_hashes().tolist() == [stable_hash(k) for k in keys]

    def test_tuple_keys_vectorize(self):
        keys = [("e", 3, 1), ("e", 1, 2), ("e", 3, 1), ("e", -4, 0)]
        col = build_column(keys)
        assert isinstance(col, TupleColumn)
        assert col.stable_hashes().tolist() == [stable_hash(k) for k in keys]


# -- row/columnar round trip -------------------------------------------------


class TestRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(
            st.tuples(hashable_keys, plain_values), min_size=0, max_size=24
        )
    )
    def test_to_rows_inverts_from_rows(self, rows):
        _assert_same_rows(ColumnBatch.from_rows(rows).to_rows(), rows)

    def test_ndarray_values_round_trip(self):
        rows = [(i, np.arange(3, dtype=float) + i) for i in range(5)]
        batch = ColumnBatch.from_rows(rows)
        assert isinstance(batch.values, ArrayColumn)
        _assert_same_rows(batch.to_rows(), rows)

    def test_tuple_of_array_and_count_round_trips(self):
        rows = [(i % 2, (np.ones(4) * i, 1)) for i in range(6)]
        batch = ColumnBatch.from_rows(rows)
        assert isinstance(batch.values, TupleColumn)
        out = batch.to_rows()
        for (k, (vec, n)), (ek, (evec, en)) in zip(out, rows):
            assert k == ek and n == en and type(n) is int
            assert np.array_equal(vec, evec)

    def test_string_column_rejects_trailing_nul(self):
        # numpy's fixed-width U dtype trims trailing NULs; those strings
        # must take the lossless object path instead.
        rows = [("a", 1), ("b\x00", 2)]
        batch = ColumnBatch.from_rows(rows)
        assert not isinstance(batch.keys, StringColumn)
        _assert_same_rows(batch.to_rows(), rows)

    def test_iteration_matches_rows(self):
        rows = [(i, float(i)) for i in range(8)]
        batch = ColumnBatch.from_rows(rows)
        assert list(batch) == rows
        assert len(batch) == 8


# -- grouping ----------------------------------------------------------------


class TestGrouping:
    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(
            st.tuples(hashable_keys, plain_values), min_size=0, max_size=24
        )
    )
    def test_group_records_matches_group_by_key(self, rows):
        grouped = group_records(ColumnBatch.from_rows(rows))
        expected = group_by_key(rows)
        assert len(grouped) == len(expected)
        for (gk, gvs), (ek, evs) in zip(grouped, expected):
            assert gk == ek
            assert gvs == evs

    def test_nan_keys_fall_back_to_row_grouping(self):
        rows = [(float("nan"), 1), (2.0, 2), (float("nan"), 3)]
        batch = ColumnBatch.from_rows(rows)
        assert group_batch(batch) is None
        # NaN != NaN, so compare structure via repr.
        assert repr(group_records(batch)) == repr(group_by_key(rows))

    def test_grouped_batch_behaves_like_group_by_key(self):
        rows = [(i % 3, i * 1.0) for i in range(9)]
        grouped = group_batch(ColumnBatch.from_rows(rows))
        assert isinstance(grouped, GroupedBatch)
        assert list(grouped) == group_by_key(rows)
        assert grouped.unique_keys().rows() == [0, 1, 2]

    def test_singleton_groups_views_combined_batch(self):
        batch = ColumnBatch.from_rows([(0, 1.5), (1, 2.5)])
        grouped = singleton_groups(batch)
        assert list(grouped) == [(0, [1.5]), (1, [2.5])]

    def test_emit_first_values_parity(self):
        rows = [(i % 4, float(i)) for i in range(12)]
        grouped = group_batch(ColumnBatch.from_rows(rows))
        ctx_batch, ctx_rows = TaskContext(), TaskContext()
        emit_first_values(ctx_batch, grouped)
        emit_first_values(ctx_rows, group_by_key(rows))
        assert ctx_batch.output == ctx_rows.output
        assert isinstance(ctx_batch.collect(), ColumnBatch)


# -- wire sizing -------------------------------------------------------------


class TestSizing:
    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(
            st.tuples(hashable_keys, plain_values), min_size=0, max_size=24
        )
    )
    def test_batch_wire_size_matches_row_sum(self, rows):
        batch = ColumnBatch.from_rows(rows)
        assert batch.nbytes_wire() == sum(sizeof_record(k, v) for k, v in rows)
        assert sizeof_records(batch) == sizeof_records(rows)

    def test_array_and_tuple_values_size_identically(self):
        rows = [(i, (np.full(5, float(i)), 1)) for i in range(7)]
        batch = ColumnBatch.from_rows(rows)
        assert batch.nbytes_wire() == sum(sizeof_record(k, v) for k, v in rows)

    def test_bucket_sizes_are_additive(self):
        rows = [(i, float(i)) for i in range(40)]
        batch = ColumnBatch.from_rows(rows)
        pids = batch.partition_ids(4)
        order = np.argsort(pids, kind="stable")
        sorted_batch = batch.take(order)
        counts = np.bincount(pids, minlength=4)
        bounds = np.concatenate(([0], np.cumsum(counts)))
        total = sum(
            sorted_batch.slice(int(bounds[p]), int(bounds[p + 1])).nbytes_wire()
            for p in range(4)
        )
        assert total == batch.nbytes_wire()


# -- concat / slice / take ---------------------------------------------------


class TestBatchAlgebra:
    def test_concat_then_group_matches_rows(self):
        a = ColumnBatch.from_rows([(1, 1.0), (2, 2.0)])
        b = ColumnBatch.from_rows([(1, 3.0), (3, 4.0)])
        merged = concat_batches([a, b])
        assert merged is not None
        assert list(group_batch(merged)) == group_by_key(
            a.to_rows() + b.to_rows()
        )

    def test_concat_mismatched_types_returns_none(self):
        a = ColumnBatch.from_rows([(1, 1.0)])
        b = ColumnBatch.from_rows([("s", 1.0)])
        assert concat_batches([a, b]) is None

    def test_take_and_slice_match_row_indexing(self):
        rows = [(i, float(i) * 2) for i in range(10)]
        batch = ColumnBatch.from_rows(rows)
        idx = np.array([7, 0, 3])
        assert batch.take(idx).to_rows() == [rows[i] for i in idx]
        assert batch.slice(2, 6).to_rows() == rows[2:6]


# -- environment gate --------------------------------------------------------


class TestEnvironmentGate:
    @pytest.mark.parametrize("raw,expected", [
        ("", True), ("1", True), ("on", True), ("yes", True),
        ("0", False), ("off", False), ("false", False), ("no", False),
        ("OFF", False),
    ])
    def test_columnar_enabled_parsing(self, monkeypatch, raw, expected):
        monkeypatch.setenv("PIC_COLUMNAR", raw)
        assert columnar_enabled() is expected

    def test_materialize_respects_gate(self, monkeypatch):
        from repro.cluster.presets import small_cluster
        from repro.dfs.dfs import DistributedFileSystem
        from repro.mapreduce.records import DistributedDataset

        records = [(i, float(i)) for i in range(10)]
        monkeypatch.setenv("PIC_COLUMNAR", "0")
        dfs = DistributedFileSystem(small_cluster())
        ds = DistributedDataset.materialize(dfs, "/rows", records, 2)
        assert isinstance(ds.splits[0].records, list)
        monkeypatch.setenv("PIC_COLUMNAR", "1")
        ds = DistributedDataset.materialize(dfs, "/cols", records, 2)
        assert isinstance(ds.splits[0].records, ColumnBatch)
        assert ds.all_records() == records
