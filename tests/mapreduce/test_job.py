"""Tests for job specification and task contexts."""

import pytest

from repro.mapreduce.job import Counters, JobSpec, TaskContext


def noop_mapper(ctx, k, v):
    ctx.emit(k, v)


def noop_reducer(ctx, k, values):
    ctx.emit(k, values[0])


class TestTaskContext:
    def test_emit_collects(self):
        ctx = TaskContext()
        ctx.emit("a", 1)
        ctx.emit("b", 2)
        assert ctx.output == [("a", 1), ("b", 2)]

    def test_model_and_split_index(self):
        ctx = TaskContext(model={"x": 1}, split_index=4)
        assert ctx.model == {"x": 1}
        assert ctx.split_index == 4

    def test_stats_scratch(self):
        ctx = TaskContext()
        ctx.stats["local_iterations"] = 7
        assert ctx.stats == {"local_iterations": 7}


class TestCounters:
    def test_add_and_get(self):
        c = Counters()
        c.add("x")
        c.add("x", 2)
        assert c.get("x") == 3

    def test_missing_is_zero(self):
        assert Counters().get("nope") == 0

    def test_as_dict_copy(self):
        c = Counters()
        c.add("x")
        d = c.as_dict()
        d["x"] = 99
        assert c.get("x") == 1


class TestJobSpecValidation:
    def test_requires_exactly_one_mapper(self):
        with pytest.raises(ValueError, match="mapper"):
            JobSpec(name="j", reducer=noop_reducer)
        with pytest.raises(ValueError, match="mapper"):
            JobSpec(
                name="j",
                mapper=noop_mapper,
                batch_mapper=lambda ctx, recs: None,
                reducer=noop_reducer,
            )

    def test_requires_exactly_one_reducer(self):
        with pytest.raises(ValueError, match="reducer"):
            JobSpec(name="j", mapper=noop_mapper)

    def test_zero_reducers_rejected(self):
        with pytest.raises(ValueError, match="num_reducers"):
            JobSpec(name="j", mapper=noop_mapper, reducer=noop_reducer, num_reducers=0)

    def test_zero_replication_rejected(self):
        with pytest.raises(ValueError, match="replication"):
            JobSpec(
                name="j", mapper=noop_mapper, reducer=noop_reducer,
                output_replication=0,
            )


class TestRunHelpers:
    def test_run_mapper_record_at_a_time(self):
        spec = JobSpec(name="j", mapper=noop_mapper, reducer=noop_reducer)
        ctx = TaskContext()
        spec.run_mapper(ctx, [("a", 1), ("b", 2)])
        assert ctx.output == [("a", 1), ("b", 2)]

    def test_run_mapper_batch(self):
        def batch(ctx, records):
            ctx.emit("n", len(records))

        spec = JobSpec(name="j", batch_mapper=batch, reducer=noop_reducer)
        ctx = TaskContext()
        spec.run_mapper(ctx, [("a", 1), ("b", 2)])
        assert ctx.output == [("n", 2)]

    def test_run_reducer_record_at_a_time(self):
        spec = JobSpec(name="j", mapper=noop_mapper, reducer=noop_reducer)
        ctx = TaskContext()
        spec.run_reducer(ctx, [("a", [1, 2])])
        assert ctx.output == [("a", 1)]

    def test_run_reducer_batch(self):
        def batch(ctx, grouped):
            ctx.emit("groups", len(grouped))

        spec = JobSpec(name="j", mapper=noop_mapper, batch_reducer=batch)
        ctx = TaskContext()
        spec.run_reducer(ctx, [("a", [1]), ("b", [2])])
        assert ctx.output == [("groups", 2)]
