"""Tests for records, partitioning helpers and datasets."""

import pytest
from hypothesis import given, strategies as st

from repro.cluster.cluster import Cluster
from repro.dfs.dfs import DistributedFileSystem
from repro.mapreduce.records import (
    DistributedDataset,
    Split,
    group_by_key,
    hash_partitioner,
    stable_hash,
)


class TestStableHash:
    def test_deterministic(self):
        assert stable_hash("foo") == stable_hash("foo")
        assert stable_hash(42) == stable_hash(42)

    def test_types_disambiguated(self):
        assert stable_hash(1) != stable_hash("1")
        assert stable_hash(True) != stable_hash(1)

    def test_tuple_keys(self):
        assert stable_hash(("pr", 3)) == stable_hash(("pr", 3))
        assert stable_hash(("pr", 3)) != stable_hash(("pr", 4))

    def test_unhashable_rejected(self):
        with pytest.raises(TypeError):
            stable_hash(object())

    def test_beyond_128_bit_ints(self):
        # 2**127 is the first int that overflows the fixed 16-byte
        # packing; arbitrary-width ints must still hash.
        for key in (2**127, -(2**127) - 1, 10**50, -(10**50)):
            assert stable_hash(key) == stable_hash(key)
            assert stable_hash(key) >= 0
        assert stable_hash(2**127) != stable_hash(2**127 + 1)

    @given(st.one_of(st.integers(), st.text(), st.floats(allow_nan=False)))
    def test_always_non_negative(self, key):
        assert stable_hash(key) >= 0


class TestHashPartitioner:
    @given(st.integers(), st.integers(1, 64))
    def test_in_range(self, key, n):
        assert 0 <= hash_partitioner(key, n) < n

    def test_zero_partitions_rejected(self):
        with pytest.raises(ValueError):
            hash_partitioner(1, 0)

    def test_spreads_keys(self):
        counts = [0] * 8
        for i in range(800):
            counts[hash_partitioner(i, 8)] += 1
        assert min(counts) > 40  # roughly uniform


class TestGroupByKey:
    def test_groups_and_sorts(self):
        out = group_by_key([("b", 1), ("a", 2), ("b", 3)])
        assert out == [("a", [2]), ("b", [1, 3])]

    def test_value_order_preserved(self):
        out = group_by_key([("k", 1), ("k", 2), ("k", 3)])
        assert out[0][1] == [1, 2, 3]

    def test_unsortable_keys_fall_back_to_repr(self):
        out = group_by_key([((1, 2), "a"), ("s", "b")])
        assert len(out) == 2

    def test_mixed_key_fallback_key_order_is_arrival_independent(self):
        # Unorderable key sets must come out in the same key order no
        # matter how records arrive (reducer input order must not depend
        # on mapper completion order). Value order within a group still
        # tracks arrival order, like Hadoop's unsorted reduce values.
        records = [(1, "a"), ("1", "b"), ((1,), "c"), (None, "d"), (1, "e")]
        baseline = group_by_key(records)
        keys = [k for k, _ in baseline]
        assert [k for k, _ in group_by_key(reversed(records))] == keys
        assert keys == sorted(
            {1, "1", (1,), None}, key=lambda k: (type(k).__qualname__, repr(k))
        )
        assert dict(baseline)[1] == ["a", "e"]

    def test_mixed_key_fallback_separates_repr_collisions(self):
        # Distinct keys of different types whose reprs collide ("1" for
        # both) would tie under a repr-only sort, letting dict insertion
        # order (= arrival order) pick the winner. Qualifying by type
        # qualname breaks the tie deterministically.
        class Alpha:
            def __init__(self, n):
                self.n = n

            def __repr__(self):
                return repr(self.n)

            def __hash__(self):
                return hash(self.n)

            def __eq__(self, other):
                return type(other) is type(self) and other.n == self.n

        class Beta(Alpha):
            pass

        records = [(Beta(1), "b"), (Alpha(1), "a"), (None, "n")]
        keys_fwd = [k for k, _ in group_by_key(records)]
        keys_rev = [k for k, _ in group_by_key(reversed(records))]
        assert keys_fwd == keys_rev
        assert len(keys_fwd) == 3
        types = [type(k).__qualname__ for k in keys_fwd]
        assert types == sorted(types)

    def test_empty(self):
        assert group_by_key([]) == []


class TestSplit:
    def test_nbytes_auto_measured(self):
        split = Split(index=0, records=[(1, 2.0)])
        assert split.nbytes == 16

    def test_nbytes_override(self):
        split = Split(index=0, records=[(1, 2.0)], nbytes=1000)
        assert split.nbytes == 1000

    def test_len(self):
        assert len(Split(index=0, records=[(1, 1), (2, 2)])) == 2


def make_dfs(num_nodes=6):
    cluster = Cluster(num_nodes=num_nodes, nodes_per_rack=num_nodes)
    return cluster, DistributedFileSystem(cluster)


class TestDistributedDataset:
    def test_even_split_sizes(self):
        _c, dfs = make_dfs()
        records = [(i, i) for i in range(10)]
        ds = DistributedDataset.materialize(dfs, "/d", records, num_splits=3)
        assert [len(s) for s in ds.splits] == [3, 4, 3]
        assert ds.num_records == 10

    def test_more_splits_than_records_clamped(self):
        _c, dfs = make_dfs()
        ds = DistributedDataset.materialize(dfs, "/d", [(1, 1)], num_splits=5)
        assert len(ds.splits) == 1

    def test_zero_splits_rejected(self):
        _c, dfs = make_dfs()
        with pytest.raises(ValueError):
            DistributedDataset.materialize(dfs, "/d", [(1, 1)], num_splits=0)

    def test_empty_dataset_rejected(self):
        with pytest.raises(ValueError):
            DistributedDataset("/d", [], None)

    def test_locations_rotate_over_nodes(self):
        _c, dfs = make_dfs()
        records = [(i, i) for i in range(12)]
        ds = DistributedDataset.materialize(dfs, "/d", records, num_splits=6)
        first_replicas = [ds.locations(i)[0] for i in range(6)]
        assert first_replicas == [0, 1, 2, 3, 4, 5]

    def test_all_records_roundtrip(self):
        _c, dfs = make_dfs()
        records = [(i, i * 2) for i in range(7)]
        ds = DistributedDataset.materialize(dfs, "/d", records, num_splits=3)
        assert ds.all_records() == records

    def test_materialize_charges_no_traffic(self):
        cluster, dfs = make_dfs()
        DistributedDataset.materialize(dfs, "/d", [(i, i) for i in range(10)], 3)
        assert cluster.meter.grand_total() == 0

    def test_from_partitions_pins_placement(self):
        _c, dfs = make_dfs()
        parts = [[(0, "a")], [(1, "b")], [(2, "c")]]
        ds = DistributedDataset.from_partitions(
            dfs, "/p", parts, placements=[4, 2, 0]
        )
        assert ds.locations(0) == (4,)
        assert ds.locations(1) == (2,)
        assert ds.locations(2) == (0,)

    def test_from_partitions_length_mismatch(self):
        _c, dfs = make_dfs()
        with pytest.raises(ValueError):
            DistributedDataset.from_partitions(dfs, "/p", [[(0, 1)]], placements=[0, 1])

    @given(st.integers(1, 50), st.integers(1, 10))
    def test_even_chunks_partition_everything(self, n, k):
        records = [(i, i) for i in range(n)]
        chunks = DistributedDataset._even_chunks(records, min(k, n))
        assert [r for c in chunks for r in c] == records
        sizes = [len(c) for c in chunks]
        assert max(sizes) - min(sizes) <= 1
