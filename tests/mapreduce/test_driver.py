"""Tests for the iterative driver (Figure 1(a) template)."""

import pytest

from repro.cluster.cluster import Cluster
from repro.dfs.dfs import DistributedFileSystem
from repro.mapreduce.costs import CostHints
from repro.mapreduce.driver import IterativeDriver
from repro.mapreduce.job import JobSpec
from repro.mapreduce.records import DistributedDataset
from repro.mapreduce.runner import JobRunner

# A toy IC computation with a known fixed point: the model is a scalar
# mean estimate; each iteration averages the records and moves the model
# halfway toward that mean.  Converges geometrically to the data mean.


def make_env(values=None, num_splits=4, pipeline=None):
    cluster = Cluster(num_nodes=4, nodes_per_rack=4)
    dfs = DistributedFileSystem(cluster)
    if values is None:
        values = [float(i) for i in range(40)]
    records = [(i, v) for i, v in enumerate(values)]
    dataset = DistributedDataset.materialize(dfs, "/in", records, num_splits)
    return cluster, JobRunner(cluster, dfs, pipeline=pipeline), dataset


def mean_job(model) -> JobSpec:
    def mapper(ctx, key, value):
        ctx.emit(0, (value, 1))

    def reducer(ctx, key, values):
        total = sum(v for v, _n in values)
        count = sum(n for _v, n in values)
        target = total / count
        ctx.emit("mean", (ctx.model["mean"] + target) / 2.0)

    return JobSpec(name="mean", mapper=mapper, reducer=reducer, num_reducers=1)


def build_model(model, output):
    new = dict(model)
    for k, v in output:
        new[k] = v
    return new


def close_enough(prev, cur, it):
    return abs(cur["mean"] - prev["mean"]) < 1e-6


def make_driver(runner, dataset, **kw):
    defaults = dict(
        jobs=lambda model, it: [mean_job(model)],
        build_model=build_model,
        converged=close_enough,
        model_sizer=lambda m: 16,
        max_iterations=100,
    )
    defaults.update(kw)
    return IterativeDriver(runner, dataset, **defaults)


class TestConvergence:
    def test_converges_to_data_mean(self):
        _c, runner, dataset = make_env()
        driver = make_driver(runner, dataset)
        result = driver.run({"mean": 0.0})
        assert result.model["mean"] == pytest.approx(19.5, abs=1e-4)

    def test_iteration_count_matches_geometric_rate(self):
        _c, runner, dataset = make_env()
        result = make_driver(runner, dataset).run({"mean": 0.0})
        # halving each step from ~19.5 to <1e-6 takes ~25 steps
        assert 20 <= result.iterations <= 30

    def test_max_iterations_cap(self):
        _c, runner, dataset = make_env()
        driver = make_driver(runner, dataset, max_iterations=3)
        result = driver.run({"mean": 0.0})
        assert result.iterations == 3

    def test_zero_max_iterations_rejected(self):
        _c, runner, dataset = make_env()
        with pytest.raises(ValueError):
            make_driver(runner, dataset, max_iterations=0)

    def test_empty_job_chain_rejected(self):
        _c, runner, dataset = make_env()
        driver = make_driver(runner, dataset, jobs=lambda m, i: [])
        with pytest.raises(ValueError, match="empty chain"):
            driver.run({"mean": 0.0})


class TestTraces:
    def test_per_iteration_traces(self):
        _c, runner, dataset = make_env()
        result = make_driver(runner, dataset, max_iterations=5).run({"mean": 0.0})
        assert len(result.traces) == 5
        for trace in result.traces:
            assert trace.duration > 0
            assert trace.shuffle_bytes > 0
            assert trace.model_update_bytes > 0

    def test_totals_are_sums(self):
        _c, runner, dataset = make_env()
        result = make_driver(runner, dataset, max_iterations=4).run({"mean": 0.0})
        assert result.total_shuffle_bytes == sum(
            t.shuffle_bytes for t in result.traces
        )

    def test_total_time_spans_iterations(self):
        cluster, runner, dataset = make_env()
        result = make_driver(runner, dataset, max_iterations=4).run({"mean": 0.0})
        assert result.total_time == pytest.approx(cluster.now)


class TestOptimizedBaseline:
    def test_input_read_once_when_optimized(self):
        cluster, runner, dataset = make_env()
        make_driver(runner, dataset, max_iterations=5).run({"mean": 0.0})
        assert cluster.meter.total("input") == pytest.approx(dataset.nbytes)

    def test_input_read_every_iteration_when_not(self):
        # Barrier semantics under test: pin the mode so an ambient
        # PIC_PIPELINE=1 (whose cache legitimately elides re-reads)
        # does not change the expected ledger.
        cluster, runner, dataset = make_env(pipeline=False)
        driver = make_driver(
            runner, dataset, max_iterations=5, optimized_baseline=False
        )
        driver.run({"mean": 0.0})
        assert cluster.meter.total("input") == pytest.approx(5 * dataset.nbytes)

    def test_job_overhead_stripped_when_optimized(self):
        def slow_jobs(model, it):
            job = mean_job(model)
            return [
                JobSpec(
                    name=job.name, mapper=job.mapper, reducer=job.reducer,
                    num_reducers=1, costs=CostHints(job_overhead_seconds=50.0),
                )
            ]

        _c, runner, dataset = make_env()
        fast = make_driver(runner, dataset, jobs=slow_jobs, max_iterations=2)
        result = fast.run({"mean": 0.0})
        assert result.total_time < 50.0

    def test_input_already_cached_flag(self):
        # The §V-A blanket credit only applies in barrier mode; the
        # pipelined cache still faults splits in on first touch.
        cluster, runner, dataset = make_env(pipeline=False)
        driver = make_driver(
            runner, dataset, max_iterations=3, input_already_cached=True
        )
        driver.run({"mean": 0.0})
        assert cluster.meter.total("input") == 0


class TestChainedJobs:
    def test_two_jobs_per_iteration(self):
        # First job computes the mean; second adds 1 to it.
        def jobs(model, it):
            def bump_mapper(ctx, key, value):
                ctx.emit(0, 0)

            def bump_reducer(ctx, key, values):
                ctx.emit("mean", ctx.model["mean"] + 1.0)

            return [
                mean_job(model),
                JobSpec(name="bump", mapper=bump_mapper, reducer=bump_reducer,
                        num_reducers=1),
            ]

        _c, runner, dataset = make_env()
        driver = make_driver(runner, dataset, jobs=jobs, max_iterations=1)
        result = driver.run({"mean": 0.0})
        # mean job: (0 + 19.5)/2 = 9.75, bump job: +1
        assert result.model["mean"] == pytest.approx(10.75)
        assert len(result.traces[0].job_results) == 2
