"""Speculative execution on heterogeneous clusters."""

import pytest

from repro.cluster.cluster import Cluster
from repro.cluster.topology import NodeSpec
from repro.dfs.dfs import DistributedFileSystem
from repro.mapreduce.job import JobSpec
from repro.mapreduce.records import DistributedDataset
from repro.mapreduce.runner import JobRunner


def heterogeneous_cluster(num_nodes=4, slow_node=2, slowdown=8.0):
    """One crippled node, the rest at reference speed."""
    specs = [
        NodeSpec(cpu_speed=(1.0 / slowdown) if i == slow_node else 1.0)
        for i in range(num_nodes)
    ]
    return Cluster(
        num_nodes=num_nodes, nodes_per_rack=num_nodes,
        node_spec=NodeSpec(), node_specs=specs,
    )


def make_env(cluster, num_splits=4):
    dfs = DistributedFileSystem(cluster)
    records = [(i, float(i)) for i in range(4000)]
    dataset = DistributedDataset.materialize(dfs, "/in", records, num_splits)
    return JobRunner(cluster, dfs), dataset


def sum_spec() -> JobSpec:
    from repro.mapreduce.costs import CostHints

    def mapper(ctx, k, v):
        ctx.emit(0, v)

    def reducer(ctx, key, values):
        ctx.emit("sum", sum(values))

    # Compute-heavy maps so the slow node is a genuine map straggler
    # (reduce tasks are placed on node 0, which stays fast).
    return JobSpec(
        name="sum", mapper=mapper, reducer=reducer, num_reducers=1,
        costs=CostHints(
            map_seconds_per_record=2e-4,
            job_overhead_seconds=0.0,
            task_overhead_seconds=0.05,
        ),
    )


class TestHeterogeneousNodes:
    def test_per_node_specs_applied(self):
        cluster = heterogeneous_cluster(slow_node=2, slowdown=4.0)
        assert cluster.nodes[2].spec.cpu_speed == pytest.approx(0.25)
        assert cluster.nodes[0].spec.cpu_speed == 1.0

    def test_spec_count_mismatch_rejected(self):
        with pytest.raises(ValueError, match="node_specs"):
            Cluster(num_nodes=3, nodes_per_rack=3,
                    node_specs=[NodeSpec(), NodeSpec()])

    def test_compute_time_scales_with_node_speed(self):
        cluster = heterogeneous_cluster(slow_node=1, slowdown=5.0)
        assert cluster.compute_time(1, 1.0) == pytest.approx(5.0)
        assert cluster.compute_time(0, 1.0) == pytest.approx(1.0)


class TestSpeculativeExecution:
    def test_same_result_with_and_without(self):
        runner_a, dataset_a = make_env(heterogeneous_cluster())
        plain = runner_a.run(sum_spec(), dataset_a)
        runner_b, dataset_b = make_env(heterogeneous_cluster())
        spec = runner_b.run(sum_spec(), dataset_b, speculative=True)
        assert plain.output == spec.output

    def test_backup_beats_straggler(self):
        """With one node 8x slower, a backup on a fast node should cut
        the job's makespan substantially."""
        runner_a, dataset_a = make_env(heterogeneous_cluster())
        plain = runner_a.run(sum_spec(), dataset_a)
        runner_b, dataset_b = make_env(heterogeneous_cluster())
        spec = runner_b.run(sum_spec(), dataset_b, speculative=True)
        assert spec.duration < plain.duration * 0.6
        assert spec.counters.get("speculative_attempts") >= 1

    def test_no_speculation_on_homogeneous_cluster_harmless(self):
        cluster = Cluster(num_nodes=4, nodes_per_rack=4)
        runner, dataset = make_env(cluster)
        result = runner.run(sum_spec(), dataset, speculative=True)
        assert result.output[0][1] == pytest.approx(sum(range(4000)))

    def test_counters_track_losses(self):
        runner, dataset = make_env(heterogeneous_cluster())
        result = runner.run(sum_spec(), dataset, speculative=True)
        attempts = result.counters.get("speculative_attempts")
        losses = result.counters.get("speculative_losses")
        assert losses <= attempts

    def test_slots_fully_recovered(self):
        runner, dataset = make_env(heterogeneous_cluster())
        runner.run(sum_spec(), dataset, speculative=True)
        assert runner.map_scheduler.free_slots() == runner.map_scheduler.total_slots

    def test_accounting_not_double_counted(self):
        runner, dataset = make_env(heterogeneous_cluster())
        result = runner.run(sum_spec(), dataset, speculative=True)
        assert result.counters.get("map_input_records") == 4000
        assert result.counters.get("map_output_records") == 4000

    def test_speculation_with_failures(self):
        runner, dataset = make_env(heterogeneous_cluster())
        result = runner.run(
            sum_spec(), dataset, speculative=True, failures={1: 1}
        )
        assert result.output[0][1] == pytest.approx(sum(range(4000)))
