"""Tests for the MapReduce job runner (word-count-style workloads)."""

import pytest

from repro.cluster.cluster import Cluster
from repro.cluster.topology import NodeSpec
from repro.dfs.dfs import DistributedFileSystem
from repro.mapreduce.costs import CostHints
from repro.mapreduce.job import JobSpec
from repro.mapreduce.records import DistributedDataset
from repro.mapreduce.runner import JobRunner


def word_mapper(ctx, key, value):
    ctx.emit(value, 1)


def sum_reducer(ctx, key, values):
    ctx.emit(key, sum(values))


def make_env(num_nodes=6, num_splits=6, num_words=10, num_records=300):
    cluster = Cluster(num_nodes=num_nodes, nodes_per_rack=num_nodes)
    dfs = DistributedFileSystem(cluster)
    records = [(i, f"word{i % num_words}") for i in range(num_records)]
    dataset = DistributedDataset.materialize(dfs, "/in", records, num_splits)
    return cluster, JobRunner(cluster, dfs), dataset


def word_spec(**kw) -> JobSpec:
    defaults = dict(
        name="wordcount", mapper=word_mapper, reducer=sum_reducer, num_reducers=4
    )
    defaults.update(kw)
    return JobSpec(**defaults)


class TestCorrectness:
    def test_word_count_exact(self):
        _c, runner, dataset = make_env()
        result = runner.run(word_spec(), dataset)
        assert sorted(result.output) == [(f"word{i}", 30) for i in range(10)]

    def test_combiner_preserves_result(self):
        _c, runner, dataset = make_env()
        plain = runner.run(word_spec(), dataset)
        _c2, runner2, dataset2 = make_env()
        combined = runner2.run(
            word_spec(combiner=lambda k, vs: sum(vs)), dataset2
        )
        assert sorted(plain.output) == sorted(combined.output)

    def test_single_reducer(self):
        _c, runner, dataset = make_env()
        result = runner.run(word_spec(num_reducers=1), dataset)
        assert len(result.output) == 10

    def test_more_reducers_than_words(self):
        _c, runner, dataset = make_env()
        result = runner.run(word_spec(num_reducers=24), dataset)
        assert sorted(result.output) == [(f"word{i}", 30) for i in range(10)]

    def test_deterministic_across_runs(self):
        _c, r1, d1 = make_env()
        _c2, r2, d2 = make_env()
        a = r1.run(word_spec(), d1)
        b = r2.run(word_spec(), d2)
        assert a.output == b.output
        assert a.duration == pytest.approx(b.duration)

    def test_batch_mapper_equivalent(self):
        def batch(ctx, records):
            for _k, v in records:
                ctx.emit(v, 1)

        _c, runner, dataset = make_env()
        result = runner.run(
            JobSpec(name="b", batch_mapper=batch, reducer=sum_reducer, num_reducers=4),
            dataset,
        )
        assert sorted(result.output) == [(f"word{i}", 30) for i in range(10)]


class TestAccounting:
    def test_counters(self):
        _c, runner, dataset = make_env()
        result = runner.run(word_spec(), dataset)
        c = result.counters
        assert c.get("map_input_records") == 300
        assert c.get("map_output_records") == 300
        assert c.get("reduce_output_records") == 10

    def test_combiner_shrinks_shuffle(self):
        _c, runner, dataset = make_env()
        plain = runner.run(word_spec(), dataset)
        _c2, runner2, dataset2 = make_env()
        combined = runner2.run(word_spec(combiner=lambda k, vs: sum(vs)), dataset2)
        assert combined.shuffle_bytes < plain.shuffle_bytes
        assert combined.map_output_bytes_raw == plain.map_output_bytes_raw

    def test_shuffle_traffic_recorded(self):
        cluster, runner, dataset = make_env()
        result = runner.run(word_spec(), dataset)
        assert cluster.meter.total("shuffle") == pytest.approx(result.shuffle_bytes)

    def test_output_written_as_model_update(self):
        cluster, runner, dataset = make_env()
        result = runner.run(word_spec(), dataset)
        # 3 replicas per output byte (1 local + 2 pipeline hops).
        assert cluster.meter.total("model_update") == pytest.approx(
            3 * result.output_bytes
        )

    def test_input_read_charged_once(self):
        cluster, runner, dataset = make_env()
        runner.run(word_spec(), dataset)
        assert cluster.meter.total("input") == pytest.approx(dataset.nbytes)

    def test_input_cached_skips_read(self):
        cluster, runner, dataset = make_env()
        runner.run(word_spec(), dataset, input_cached=True)
        assert cluster.meter.total("input") == 0

    def test_duration_positive_and_overheads_counted(self):
        _c, runner, dataset = make_env()
        slow = word_spec(costs=CostHints(job_overhead_seconds=10.0))
        result = runner.run(slow, dataset)
        assert result.duration >= 10.0

    def test_output_locations_are_replica_set(self):
        cluster, runner, dataset = make_env()
        result = runner.run(word_spec(), dataset)
        assert 1 <= len(result.output_locations) <= 3
        for node in result.output_locations:
            assert 0 <= node < cluster.num_nodes


class TestModelDistribution:
    def test_broadcast_once_per_node(self):
        cluster, runner, dataset = make_env()
        runner.run(
            word_spec(), dataset, model={"m": 1}, model_bytes=1000,
            model_locations=(0,),
        )
        # 5 non-holding nodes fetch the full model.
        assert cluster.meter.fabric("model_read") == pytest.approx(5000)

    def test_partitioned_ships_one_model_total(self):
        cluster, runner, dataset = make_env()
        runner.run(
            word_spec(), dataset, model={"m": 1}, model_bytes=1200,
            model_locations=(0,), model_mode="partitioned",
        )
        assert cluster.meter.total("model_read") == pytest.approx(1200)

    def test_bad_model_mode_rejected(self):
        _c, runner, dataset = make_env()
        with pytest.raises(ValueError):
            runner.run(word_spec(), dataset, model_mode="telepathy")


class TestDynamicCosts:
    def test_map_cost_override_used(self):
        def expensive(num_records, nbytes, ctx):
            return 100.0

        _c, runner, dataset = make_env()
        cheap = runner.run(word_spec(), dataset)
        _c2, runner2, dataset2 = make_env()
        result = runner2.run(word_spec(map_cost=expensive), dataset2)
        assert result.duration > cheap.duration + 90

    def test_map_stats_surface(self):
        def stats_mapper(ctx, records):
            ctx.stats["local_iterations"] = 5
            ctx.emit("k", 1)

        _c, runner, dataset = make_env(num_splits=3)
        spec = JobSpec(
            name="s", batch_mapper=stats_mapper, reducer=sum_reducer, num_reducers=1
        )
        result = runner.run(spec, dataset)
        assert set(result.map_stats) == {0, 1, 2}
        assert all(v["local_iterations"] == 5 for v in result.map_stats.values())


class TestSlotReuse:
    def test_runner_survives_many_jobs(self):
        _c, runner, dataset = make_env()
        for _ in range(5):
            result = runner.run(word_spec(), dataset)
            assert len(result.output) == 10

    def test_reduce_waves_when_reducers_exceed_slots(self):
        cluster = Cluster(
            num_nodes=2, nodes_per_rack=2,
            node_spec=NodeSpec(map_slots=2, reduce_slots=1),
        )
        dfs = DistributedFileSystem(cluster)
        records = [(i, f"w{i % 20}") for i in range(100)]
        dataset = DistributedDataset.materialize(dfs, "/in", records, 4)
        runner = JobRunner(cluster, dfs)
        result = runner.run(word_spec(num_reducers=8), dataset)
        assert sorted(result.output) == sorted((f"w{i}", 5) for i in range(20))


class TestConcurrentSubmission:
    def test_submit_many_runs_jobs_concurrently(self):
        cluster, runner, dataset = make_env()
        records = [(i, f"word{i % 5}") for i in range(150)]
        dataset_b = DistributedDataset.materialize(
            runner.dfs, "/in-b", records, 3
        )
        handles = runner.submit_many([
            (word_spec(), dataset),
            (word_spec(name="wordcount-b"), dataset_b),
        ])
        assert not any(h.done for h in handles)
        cluster.run()
        assert all(h.done for h in handles)
        a, b = (h.result() for h in handles)
        assert sorted(a.output) == [(f"word{i}", 30) for i in range(10)]
        assert sorted(b.output) == [(f"word{i}", 30) for i in range(5)]
        # Shared clock: both jobs started together and the cluster
        # quiesced at the later finish.
        assert a.started_at == b.started_at == 0.0
        assert cluster.now == max(a.finished_at, b.finished_at)

    def test_result_before_finish_raises(self):
        _c, runner, dataset = make_env()
        handle = runner.submit(word_spec(), dataset)
        with pytest.raises(RuntimeError, match="did not complete"):
            handle.result()

    def test_run_is_submit_plus_drain(self):
        """`run()` and submit+run+result give identical measurements."""
        _c1, r1, d1 = make_env()
        _c2, r2, d2 = make_env()
        via_run = r1.run(word_spec(), d1)
        handle = r2.submit(word_spec(), d2)
        r2.cluster.run()
        via_submit = handle.result()
        assert via_run.output == via_submit.output
        assert via_run.finished_at == via_submit.finished_at
        assert via_run.counters.as_dict() == via_submit.counters.as_dict()

    def test_concurrent_slower_than_solo_but_correct(self):
        """Contention stretches wall-clock (simulated) but never changes
        results: K concurrent copies produce the solo output."""
        _c, solo_runner, solo_dataset = make_env()
        solo = solo_runner.run(word_spec(), solo_dataset)
        cluster, runner, dataset = make_env()
        datasets = [dataset]
        for j in range(3):
            records = [(i, f"word{i % 10}") for i in range(300)]
            datasets.append(DistributedDataset.materialize(
                runner.dfs, f"/in-{j}", records, 6
            ))
        results = runner.run_many([
            (word_spec(name=f"wc-{j}"), ds) for j, ds in enumerate(datasets)
        ])
        for result in results:
            assert sorted(result.output) == sorted(solo.output)
        assert max(r.finished_at for r in results) >= solo.finished_at
