"""Unit tests for the pipelined-execution primitives.

:class:`SplitGate` is the barrier-removal mechanism: per-split latches
whose callbacks fire the moment *that split's* prerequisites land,
instead of parking the whole job behind ``cluster.run()``.
"""

import pytest

from repro.mapreduce.pipeline import SplitGate, pipeline_enabled


class TestPipelineEnabled:
    def test_default_off(self, monkeypatch):
        monkeypatch.delenv("PIC_PIPELINE", raising=False)
        assert not pipeline_enabled()

    @pytest.mark.parametrize("raw", ["1", "on", "true", "yes", "ON", " Yes "])
    def test_on_values(self, monkeypatch, raw):
        monkeypatch.setenv("PIC_PIPELINE", raw)
        assert pipeline_enabled()

    @pytest.mark.parametrize("raw", ["0", "off", "false", "no", "", "junk"])
    def test_off_values(self, monkeypatch, raw):
        monkeypatch.setenv("PIC_PIPELINE", raw)
        assert not pipeline_enabled()


class TestSplitGate:
    def test_ready_split_fires_immediately(self):
        gate = SplitGate(2)
        fired = []
        gate.on_ready(0, lambda: fired.append(0))
        assert fired == [0]  # no dependencies were ever registered

    def test_callback_waits_for_dependency(self):
        gate = SplitGate(2)
        done = gate.add_dependency(1)
        fired = []
        gate.on_ready(1, lambda: fired.append(1))
        assert fired == []
        done()
        assert fired == [1]

    def test_late_registration_after_completion(self):
        gate = SplitGate(1)
        done = gate.add_dependency(0)
        done()
        fired = []
        gate.on_ready(0, lambda: fired.append("late"))
        assert fired == ["late"]

    def test_multi_split_dependency(self):
        """One aggregated flow may gate several splits at once."""
        gate = SplitGate(3)
        done = gate.add_dependency(0, 2)
        fired = []
        gate.on_ready(0, lambda: fired.append(0))
        gate.on_ready(1, lambda: fired.append(1))  # no deps: immediate
        gate.on_ready(2, lambda: fired.append(2))
        assert fired == [1]
        done()
        assert sorted(fired) == [0, 1, 2]

    def test_completion_callback_is_idempotent(self):
        """Flow on_complete hooks may be invoked defensively more than
        once; the latch must count each dependency exactly once."""
        gate = SplitGate(1)
        first = gate.add_dependency(0)
        second = gate.add_dependency(0)
        fired = []
        gate.on_ready(0, lambda: fired.append(True))
        first()
        first()  # duplicate invocation: ignored
        assert fired == []
        assert gate.pending(0) == 1
        second()
        assert fired == [True]

    def test_independent_splits_progress_independently(self):
        gate = SplitGate(2)
        done0 = gate.add_dependency(0)
        done1 = gate.add_dependency(1)
        order = []
        gate.on_ready(0, lambda: order.append(0))
        gate.on_ready(1, lambda: order.append(1))
        done1()
        assert order == [1]  # split 1 did not wait for split 0
        done0()
        assert order == [1, 0]

    def test_callback_accepts_flow_argument(self):
        """Flow completion passes the flow object; the latch tolerates it."""
        gate = SplitGate(1)
        done = gate.add_dependency(0)
        fired = []
        gate.on_ready(0, lambda: fired.append(True))
        done(object())  # simulated Flow handed to on_complete
        assert fired == [True]
