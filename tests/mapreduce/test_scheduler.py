"""Tests for locality-aware slot scheduling."""

import pytest

from repro.cluster.cluster import Cluster
from repro.cluster.topology import NodeSpec
from repro.mapreduce.scheduler import SlotScheduler


def make_scheduler(num_nodes=4, nodes_per_rack=2, map_slots=2, kind="map"):
    cluster = Cluster(
        num_nodes=num_nodes,
        nodes_per_rack=nodes_per_rack,
        node_spec=NodeSpec(map_slots=map_slots, reduce_slots=map_slots),
    )
    return cluster, SlotScheduler(cluster, kind)


class TestBasics:
    def test_total_slots(self):
        _c, sched = make_scheduler()
        assert sched.total_slots == 8

    def test_bad_kind_rejected(self):
        cluster, _ = make_scheduler()
        with pytest.raises(ValueError):
            SlotScheduler(cluster, "gpu")

    def test_immediate_grant_when_free(self):
        _c, sched = make_scheduler()
        granted = []
        sched.request(granted.append)
        assert len(granted) == 1

    def test_queues_when_full(self):
        _c, sched = make_scheduler(num_nodes=1, nodes_per_rack=1, map_slots=1)
        granted = []
        sched.request(granted.append)
        sched.request(granted.append)
        assert granted == [0]
        sched.release(0)
        assert granted == [0, 0]

    def test_over_release_rejected(self):
        _c, sched = make_scheduler()
        with pytest.raises(RuntimeError):
            sched.release(0)

    def test_free_slots_tracking(self):
        _c, sched = make_scheduler()
        sched.request(lambda n: None)
        assert sched.free_slots() == 7


class TestLocality:
    def test_prefers_local_node(self):
        _c, sched = make_scheduler()
        granted = []
        sched.request(granted.append, preferred=(3,))
        assert granted == [3]
        assert sched.assignments_local == 1

    def test_prefers_rack_when_node_busy(self):
        _c, sched = make_scheduler(map_slots=1)
        sched.request(lambda n: None, preferred=(2,))  # takes node 2
        granted = []
        sched.request(granted.append, preferred=(2,))  # node 2 full -> rack peer 3
        assert granted == [3]
        assert sched.assignments_rack == 1

    def test_falls_back_to_any(self):
        _c, sched = make_scheduler(num_nodes=2, nodes_per_rack=1, map_slots=1)
        sched.request(lambda n: None, preferred=(0,))
        granted = []
        sched.request(granted.append, preferred=(0,))  # other rack only
        assert granted == [1]
        assert sched.assignments_remote == 1

    def test_release_serves_local_waiter_first(self):
        _c, sched = make_scheduler(num_nodes=2, nodes_per_rack=1, map_slots=1)
        sched.request(lambda n: None, preferred=(0,))
        sched.request(lambda n: None, preferred=(1,))
        waited = []
        sched.request(lambda n: waited.append(("any", n)))
        sched.request(lambda n: waited.append(("wants0", n)), preferred=(0,))
        sched.release(0)
        # The queued request preferring node 0 gets it, not the older FIFO one.
        assert waited == [("wants0", 0)]
        sched.release(1)
        assert waited == [("wants0", 0), ("any", 1)]

    def test_spreads_load_without_preference(self):
        _c, sched = make_scheduler()
        nodes = []
        for _ in range(4):
            sched.request(nodes.append)
        assert sorted(nodes) == [0, 1, 2, 3]


class TestSaturation:
    def test_all_slots_usable(self):
        _c, sched = make_scheduler()
        granted = []
        for _ in range(8):
            sched.request(granted.append)
        assert len(granted) == 8
        assert sched.free_slots() == 0
        extra = []
        sched.request(extra.append)
        assert extra == []
        sched.release(granted[0])
        assert len(extra) == 1


class TestConcurrentApps:
    def test_least_granted_app_wins_queue(self):
        """With two saturated apps queued, freed slots alternate to the
        app holding fewer slots."""
        _c, sched = make_scheduler(num_nodes=1, nodes_per_rack=1, map_slots=2)
        grants = []
        # App 1 takes both slots, then queues two more asks; app 2
        # queues two asks behind them.
        for _ in range(4):
            sched.request(lambda n: grants.append(1), app_id=1)
        for _ in range(2):
            sched.request(lambda n: grants.append(2), app_id=2)
        assert grants == [1, 1]
        # App 1 holds 2, app 2 holds 0: the first release must serve
        # app 2 even though app 1 queued first.
        sched.release(0, app_id=1)
        assert grants == [1, 1, 2]
        # Now both hold... app1=1, app2=1: FIFO tie-break -> app 1.
        sched.release(0, app_id=1)
        assert grants == [1, 1, 2, 1]
        sched.release(0, app_id=2)
        assert grants == [1, 1, 2, 1, 2]
        sched.release(0, app_id=1)
        assert grants == [1, 1, 2, 1, 2, 1]

    def test_single_app_is_fifo(self):
        """One app's schedule is the historical FIFO order exactly."""
        _c, sched = make_scheduler(num_nodes=1, nodes_per_rack=1, map_slots=1)
        order = []
        for i in range(5):
            sched.request(lambda n, i=i: order.append(i))
        for _ in range(4):
            sched.release(0)
        assert order == [0, 1, 2, 3, 4]

    def test_locality_outranks_fairness(self):
        """The locality cascade still applies before the fairness rule:
        a node-local request of the greedier app beats an off-rack
        request of the starved one."""
        _c, sched = make_scheduler(num_nodes=2, nodes_per_rack=1, map_slots=1)
        grants = []
        sched.request(lambda n: grants.append("fill0"))
        sched.request(lambda n: grants.append("fill1"))
        sched.request(lambda n: grants.append(("greedy", n)),
                      preferred=(0,), app_id=1)
        sched.request(lambda n: grants.append(("starved", n)), app_id=2)
        sched.release(0)
        assert grants[-1] == ("greedy", 0)
