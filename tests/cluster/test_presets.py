"""Tests that the presets match the paper's Section V-A testbeds."""

import pytest

from repro.cluster.presets import large_cluster, medium_cluster, small_cluster


class TestSmall:
    def test_six_nodes_one_rack(self):
        c = small_cluster()
        assert c.num_nodes == 6
        assert c.topology.num_racks == 1

    def test_24_map_24_reduce_slots(self):
        c = small_cluster()
        assert c.topology.total_map_slots() == 24
        assert c.topology.total_reduce_slots() == 24

    def test_48gb_ram(self):
        assert small_cluster().nodes[0].spec.ram_bytes == 48 * 2**30


class TestMedium:
    def test_64_nodes_6_racks(self):
        c = medium_cluster()
        assert c.num_nodes == 64
        assert c.topology.num_racks == 6

    def test_slot_counts_near_paper(self):
        c = medium_cluster()
        # Paper: 330 map / 110 reduce; nearest uniform config is 5+2/node.
        assert c.topology.total_map_slots() == 320
        assert c.topology.total_reduce_slots() == 128

    def test_e5430_speed_ratio(self):
        assert medium_cluster().nodes[0].spec.cpu_speed == pytest.approx(2.66 / 2.27)

    def test_oversubscribed_uplink(self):
        c = medium_cluster()
        agg = c.topology.nodes_per_rack * c.topology.edge_bandwidth
        assert c.topology.rack_uplink_bandwidth < agg


class TestLarge:
    def test_default_256(self):
        assert large_cluster().num_nodes == 256

    @pytest.mark.parametrize("n", [64, 128, 192, 256])
    def test_figure11_sizes(self, n):
        c = large_cluster(n)
        assert c.num_nodes == n
        assert c.nodes[0].spec.ram_bytes == 15 * 2**30

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            large_cluster(0)

    def test_racks_of_16(self):
        assert large_cluster(64).topology.num_racks == 4


class TestIsolation:
    def test_fresh_clusters_do_not_share_state(self):
        a = small_cluster()
        b = small_cluster()
        a.transfer(0, 1, 100, "t")
        a.run()
        assert b.meter.total("t") == 0
        assert b.now == 0.0
