"""Property test: the optimized flow simulator is bit-identical to the
pre-structure-of-arrays reference implementation.

For arbitrary two-tier topologies and arbitrary waves of flows (mixed
sizes from zero bytes to tens of GB, intra-node copies included), the
optimized :class:`~repro.cluster.flows.FlowNetwork` must produce exactly
the same completion order, the same completion instants (as IEEE
doubles, not approximately), the same final rates, the same per-link
byte counters, and the same traffic-meter snapshot as
:class:`tests.cluster.reference_flows.ReferenceFlowNetwork`.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.cluster.events import Simulation
from repro.cluster.flows import FlowNetwork
from repro.cluster.metrics import TrafficMeter
from repro.cluster.topology import NodeSpec, Topology
from tests.cluster.reference_flows import ReferenceFlowNetwork

# Byte counts spanning the interesting regimes: zero-byte control
# messages, sub-epsilon dribbles, ordinary shuffle buckets, and
# multi-GB flows where only the scale-aware epsilon terminates cleanly.
_SIZES = st.one_of(
    st.sampled_from([0.0, 5e-7, 1.0, 1024.0, 3.7e6, 1e9, 2.5e10]),
    st.floats(min_value=0.0, max_value=1e10, allow_nan=False,
              allow_infinity=False),
)


@st.composite
def _scenarios(draw):
    num_nodes = draw(st.integers(min_value=2, max_value=10))
    nodes_per_rack = draw(st.integers(min_value=1, max_value=num_nodes))
    oversubscription = draw(st.sampled_from([1.0, 2.0, 4.0]))
    node = st.integers(min_value=0, max_value=num_nodes - 1)
    waves = []
    start = 0.0
    for _ in range(draw(st.integers(min_value=1, max_value=3))):
        start += draw(st.floats(min_value=0.0, max_value=3.0,
                                allow_nan=False, allow_infinity=False))
        flows = draw(st.lists(st.tuples(node, node, _SIZES),
                              min_size=1, max_size=10))
        waves.append((start, flows))
    return num_nodes, nodes_per_rack, oversubscription, waves


def _run(scenario, optimized: bool):
    """Simulate one scenario; return everything observable."""
    num_nodes, nodes_per_rack, oversubscription, waves = scenario
    sim = Simulation()
    topology = Topology(
        num_nodes=num_nodes,
        nodes_per_rack=nodes_per_rack,
        node_spec=NodeSpec(),
        oversubscription=oversubscription,
    )
    meter = TrafficMeter()
    net = (FlowNetwork if optimized else ReferenceFlowNetwork)(
        sim, topology, meter
    )
    log: list[tuple[int, float, float]] = []

    def on_done(flow) -> None:
        log.append((flow.flow_id, sim.now, flow.rate))

    for start, flows in waves:
        if optimized:
            requests = [
                (src, dst, nbytes, "shuffle", on_done)
                for src, dst, nbytes in flows
            ]
            sim.schedule(start, lambda reqs=requests: net.start_flows(reqs))
        else:
            def launch(batch=flows):
                for src, dst, nbytes in batch:
                    net.start_flow(src, dst, nbytes, "shuffle", on_done)

            sim.schedule(start, launch)
    sim.run()
    carried = [link.bytes_carried for link in topology.links]
    return log, meter.snapshot(), sim.now, carried


@given(_scenarios())
@settings(max_examples=40, deadline=None)
def test_optimized_matches_reference_bit_for_bit(scenario):
    ref_log, ref_meter, ref_now, ref_carried = _run(scenario, optimized=False)
    opt_log, opt_meter, opt_now, opt_carried = _run(scenario, optimized=True)
    # Completion order, instants, and rates — exact float equality.
    assert opt_log == ref_log
    assert opt_meter == ref_meter
    assert opt_now == ref_now
    assert opt_carried == ref_carried


@st.composite
def _component_scenarios(draw):
    """Scenarios with a controlled component structure: 1–8 rack-local
    flow groups (disjoint components of the flow–link graph), plus
    optional cross-rack bridge flows that fuse some of them through the
    core links."""
    num_components = draw(st.integers(min_value=1, max_value=8))
    nodes_per_rack = draw(st.integers(min_value=2, max_value=4))
    num_nodes = num_components * nodes_per_rack
    oversubscription = draw(st.sampled_from([1.0, 4.0]))
    rack_node = st.integers(min_value=0, max_value=nodes_per_rack - 1)
    waves = []
    start = 0.0
    for _ in range(draw(st.integers(min_value=1, max_value=2))):
        start += draw(st.floats(min_value=0.0, max_value=2.0,
                                allow_nan=False, allow_infinity=False))
        flows = []
        for rack in range(num_components):
            base = rack * nodes_per_rack
            for src, dst, nbytes in draw(
                st.lists(st.tuples(rack_node, rack_node, _SIZES),
                         min_size=1, max_size=4)
            ):
                flows.append((base + src, base + dst, nbytes))
        # Bridge flows: each one crosses the core and merges the two
        # racks' components into one.
        if num_components > 1:
            for src_rack, dst_rack, src, dst, nbytes in draw(
                st.lists(
                    st.tuples(
                        st.integers(0, num_components - 1),
                        st.integers(0, num_components - 1),
                        rack_node, rack_node, _SIZES,
                    ),
                    min_size=0, max_size=3,
                )
            ):
                flows.append((
                    src_rack * nodes_per_rack + src,
                    dst_rack * nodes_per_rack + dst,
                    nbytes,
                ))
        waves.append((start, flows))
    return num_nodes, nodes_per_rack, oversubscription, waves


@given(_component_scenarios())
@settings(max_examples=40, deadline=None)
def test_component_scoped_rates_match_reference(scenario):
    """Bit-identity on graphs engineered to span 1–8 disjoint and
    bridged components — the regime the incremental union-find,
    reachability-gated splitting, and dirty-set scoping actually
    exercise."""
    ref = _run(scenario, optimized=False)
    opt = _run(scenario, optimized=True)
    assert opt == ref


def test_unrelated_job_timer_survives_other_jobs_churn():
    """Arrivals and completions in job A must not cancel or reschedule
    job B's per-component completion timer: the two jobs live in
    disjoint components, so B's timer Event must stay the *same object*
    throughout A's churn."""
    sim = Simulation()
    topology = Topology(
        num_nodes=8, nodes_per_rack=4, node_spec=NodeSpec(),
        oversubscription=2.0,
    )
    net = FlowNetwork(sim, topology, TrafficMeter())
    done_a: list[int] = []
    # Job B: one long rack-local flow in rack 1.
    flow_b = net.start_flow(4, 5, 1e9, "shuffle")
    # Job A: short churning flows in rack 0.
    for _ in range(3):
        net.start_flow(0, 1, 1e6, "shuffle",
                       lambda f: done_a.append(f.flow_id))
    # A mid-run arrival in job A, long before B finishes.
    sim.schedule(1e-4, lambda: net.start_flow(
        0, 2, 1e6, "shuffle", lambda f: done_a.append(f.flow_id)))
    sim.run_until(0.0)  # initial recompute: both components planned
    link_b = topology.path(4, 5)[0].link_id
    root_b = net._find(link_b)
    timer_b = net._comp[root_b].timer
    assert timer_b is not None
    while len(done_a) < 4:
        assert sim.step()
        assert net._comp[root_b].timer is timer_b
        assert not timer_b.cancelled
    sim.run()
    assert flow_b.done
    assert flow_b.completed_at is not None and flow_b.completed_at > 0.0


def test_reference_and_optimized_agree_on_contended_fanout():
    """A deterministic heavier case: all-to-all on an oversubscribed
    two-rack cluster, sizes spanning three orders of magnitude."""
    waves = [
        (
            0.0,
            [
                (src, dst, 1e6 * (1 + (3 * src + 5 * dst) % 7))
                for src in range(8)
                for dst in range(8)
            ],
        ),
        (0.5, [(0, 7, 2.5e10), (3, 3, 1e4), (5, 2, 0.0)]),
    ]
    scenario = (8, 4, 4.0, waves)
    ref = _run(scenario, optimized=False)
    opt = _run(scenario, optimized=True)
    assert opt == ref
