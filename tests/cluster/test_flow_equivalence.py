"""Property test: the optimized flow simulator is bit-identical to the
pre-structure-of-arrays reference implementation.

For arbitrary two-tier topologies and arbitrary waves of flows (mixed
sizes from zero bytes to tens of GB, intra-node copies included), the
optimized :class:`~repro.cluster.flows.FlowNetwork` must produce exactly
the same completion order, the same completion instants (as IEEE
doubles, not approximately), the same final rates, the same per-link
byte counters, and the same traffic-meter snapshot as
:class:`tests.cluster.reference_flows.ReferenceFlowNetwork`.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.cluster.events import Simulation
from repro.cluster.flows import FlowNetwork
from repro.cluster.metrics import TrafficMeter
from repro.cluster.topology import NodeSpec, Topology
from tests.cluster.reference_flows import ReferenceFlowNetwork

# Byte counts spanning the interesting regimes: zero-byte control
# messages, sub-epsilon dribbles, ordinary shuffle buckets, and
# multi-GB flows where only the scale-aware epsilon terminates cleanly.
_SIZES = st.one_of(
    st.sampled_from([0.0, 5e-7, 1.0, 1024.0, 3.7e6, 1e9, 2.5e10]),
    st.floats(min_value=0.0, max_value=1e10, allow_nan=False,
              allow_infinity=False),
)


@st.composite
def _scenarios(draw):
    num_nodes = draw(st.integers(min_value=2, max_value=10))
    nodes_per_rack = draw(st.integers(min_value=1, max_value=num_nodes))
    oversubscription = draw(st.sampled_from([1.0, 2.0, 4.0]))
    node = st.integers(min_value=0, max_value=num_nodes - 1)
    waves = []
    start = 0.0
    for _ in range(draw(st.integers(min_value=1, max_value=3))):
        start += draw(st.floats(min_value=0.0, max_value=3.0,
                                allow_nan=False, allow_infinity=False))
        flows = draw(st.lists(st.tuples(node, node, _SIZES),
                              min_size=1, max_size=10))
        waves.append((start, flows))
    return num_nodes, nodes_per_rack, oversubscription, waves


def _run(scenario, optimized: bool):
    """Simulate one scenario; return everything observable."""
    num_nodes, nodes_per_rack, oversubscription, waves = scenario
    sim = Simulation()
    topology = Topology(
        num_nodes=num_nodes,
        nodes_per_rack=nodes_per_rack,
        node_spec=NodeSpec(),
        oversubscription=oversubscription,
    )
    meter = TrafficMeter()
    net = (FlowNetwork if optimized else ReferenceFlowNetwork)(
        sim, topology, meter
    )
    log: list[tuple[int, float, float]] = []

    def on_done(flow) -> None:
        log.append((flow.flow_id, sim.now, flow.rate))

    for start, flows in waves:
        if optimized:
            requests = [
                (src, dst, nbytes, "shuffle", on_done)
                for src, dst, nbytes in flows
            ]
            sim.schedule(start, lambda reqs=requests: net.start_flows(reqs))
        else:
            def launch(batch=flows):
                for src, dst, nbytes in batch:
                    net.start_flow(src, dst, nbytes, "shuffle", on_done)

            sim.schedule(start, launch)
    sim.run()
    carried = [link.bytes_carried for link in topology.links]
    return log, meter.snapshot(), sim.now, carried


@given(_scenarios())
@settings(max_examples=40, deadline=None)
def test_optimized_matches_reference_bit_for_bit(scenario):
    ref_log, ref_meter, ref_now, ref_carried = _run(scenario, optimized=False)
    opt_log, opt_meter, opt_now, opt_carried = _run(scenario, optimized=True)
    # Completion order, instants, and rates — exact float equality.
    assert opt_log == ref_log
    assert opt_meter == ref_meter
    assert opt_now == ref_now
    assert opt_carried == ref_carried


def test_reference_and_optimized_agree_on_contended_fanout():
    """A deterministic heavier case: all-to-all on an oversubscribed
    two-rack cluster, sizes spanning three orders of magnitude."""
    waves = [
        (
            0.0,
            [
                (src, dst, 1e6 * (1 + (3 * src + 5 * dst) % 7))
                for src in range(8)
                for dst in range(8)
            ],
        ),
        (0.5, [(0, 7, 2.5e10), (3, 3, 1e4), (5, 2, 0.0)]),
    ]
    scenario = (8, 4, 4.0, waves)
    ref = _run(scenario, optimized=False)
    opt = _run(scenario, optimized=True)
    assert opt == ref
