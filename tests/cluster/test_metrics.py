"""Tests for traffic accounting."""

import pytest

from repro.cluster.metrics import TrafficCategory, TrafficMeter


class TestRecording:
    def test_total_accumulates(self):
        m = TrafficMeter()
        m.record("shuffle", 100, crosses_core=False)
        m.record("shuffle", 50, crosses_core=True)
        assert m.total("shuffle") == 150

    def test_core_bytes_only_cross_rack(self):
        m = TrafficMeter()
        m.record("shuffle", 100, crosses_core=False)
        m.record("shuffle", 50, crosses_core=True)
        assert m.bisection("shuffle") == 50

    def test_off_fabric_excluded_from_fabric(self):
        m = TrafficMeter()
        m.record("input", 100, crosses_core=False, on_fabric=False)
        assert m.total("input") == 100
        assert m.fabric("input") == 0

    def test_unknown_category_is_zero(self):
        m = TrafficMeter()
        assert m.total("nope") == 0
        assert m.bisection("nope") == 0
        assert m.transfers("nope") == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            TrafficMeter().record("x", -1, crosses_core=False)

    def test_transfer_count(self):
        m = TrafficMeter()
        for _ in range(3):
            m.record("x", 1, crosses_core=False)
        assert m.transfers("x") == 3

    def test_grand_total(self):
        m = TrafficMeter()
        m.record("a", 10, crosses_core=False)
        m.record("b", 20, crosses_core=True)
        assert m.grand_total() == 30

    def test_categories_sorted(self):
        m = TrafficMeter()
        m.record("b", 1, crosses_core=False)
        m.record("a", 1, crosses_core=False)
        assert m.categories() == ["a", "b"]


class TestSnapshotDiff:
    def test_diff_isolates_interval(self):
        m = TrafficMeter()
        m.record("x", 100, crosses_core=False)
        snap = m.snapshot()
        m.record("x", 40, crosses_core=True)
        delta = m.diff(snap)
        assert delta["x"]["total_bytes"] == 40
        assert delta["x"]["core_bytes"] == 40

    def test_diff_with_new_category(self):
        m = TrafficMeter()
        snap = m.snapshot()
        m.record("fresh", 7, crosses_core=False)
        assert m.diff(snap)["fresh"]["total_bytes"] == 7

    def test_snapshot_is_copy(self):
        m = TrafficMeter()
        m.record("x", 1, crosses_core=False)
        snap = m.snapshot()
        m.record("x", 1, crosses_core=False)
        assert snap["x"]["total_bytes"] == 1


class TestAbsorb:
    def test_absorb_adds_all_fields(self):
        a = TrafficMeter()
        b = TrafficMeter()
        a.record("x", 10, crosses_core=True)
        b.record("x", 5, crosses_core=False)
        b.record("y", 2, crosses_core=False, on_fabric=False)
        a.absorb(b)
        assert a.total("x") == 15
        assert a.bisection("x") == 10
        assert a.total("y") == 2
        assert a.fabric("y") == 0

    def test_absorb_empty_is_noop(self):
        a = TrafficMeter()
        a.record("x", 1, crosses_core=False)
        before = a.snapshot()
        a.absorb(TrafficMeter())
        assert a.snapshot() == before


class TestCategories:
    def test_canonical_names_unique(self):
        assert len(set(TrafficCategory.ALL)) == len(TrafficCategory.ALL)

    def test_shuffle_and_model_update_present(self):
        assert TrafficCategory.SHUFFLE in TrafficCategory.ALL
        assert TrafficCategory.MODEL_UPDATE in TrafficCategory.ALL
