"""Tests for the Cluster facade."""

import pytest

from repro.cluster.cluster import Cluster
from repro.cluster.topology import NodeSpec


class TestFacade:
    def test_defaults_single_rack(self):
        c = Cluster(num_nodes=4)
        assert c.topology.num_racks == 1
        assert c.num_nodes == 4

    def test_clock_passthrough(self):
        c = Cluster(num_nodes=2)
        assert c.now == 0.0
        c.sim.schedule(2.5, lambda: None)
        c.run()
        assert c.now == 2.5

    def test_transfer_records_traffic(self):
        c = Cluster(num_nodes=3)
        c.transfer(0, 1, 1000, "x")
        c.run()
        assert c.meter.total("x") == 1000

    def test_compute_time_scales_with_speed(self):
        c = Cluster(num_nodes=2, node_spec=NodeSpec(cpu_speed=2.0))
        assert c.compute_time(0, 1.0) == pytest.approx(0.5)

    def test_run_quiesces(self):
        c = Cluster(num_nodes=2)
        seen = []
        c.sim.schedule(1.0, lambda: seen.append(1))
        c.sim.schedule(2.0, lambda: seen.append(2))
        c.run()
        assert seen == [1, 2]

    def test_nodes_property(self):
        c = Cluster(num_nodes=5, nodes_per_rack=2)
        assert [n.node_id for n in c.nodes] == [0, 1, 2, 3, 4]
        assert c.nodes[4].rack_id == 2

    def test_independent_meters(self):
        a = Cluster(num_nodes=2)
        b = Cluster(num_nodes=2)
        a.transfer(0, 1, 10, "t")
        a.run()
        assert b.meter.grand_total() == 0
