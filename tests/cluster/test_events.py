"""Tests for the discrete-event simulation core."""

import pytest
from hypothesis import given, strategies as st

from repro.cluster.events import Simulation, sanitize_seed_from_env


class TestScheduling:
    def test_clock_starts_at_zero(self):
        assert Simulation().now == 0.0

    def test_events_run_in_time_order(self):
        sim = Simulation()
        order = []
        sim.schedule(2.0, lambda: order.append("b"))
        sim.schedule(1.0, lambda: order.append("a"))
        sim.schedule(3.0, lambda: order.append("c"))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_ties_break_by_insertion_order(self):
        sim = Simulation()
        order = []
        for name in "abc":
            sim.schedule(1.0, lambda n=name: order.append(n))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_clock_advances_to_event_time(self):
        sim = Simulation()
        sim.schedule(5.5, lambda: None)
        sim.run()
        assert sim.now == 5.5

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Simulation().schedule(-1.0, lambda: None)

    def test_schedule_at_past_rejected(self):
        sim = Simulation()
        sim.schedule(2.0, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.schedule_at(1.0, lambda: None)

    def test_events_can_schedule_events(self):
        sim = Simulation()
        seen = []

        def first():
            seen.append(sim.now)
            sim.schedule(1.0, lambda: seen.append(sim.now))

        sim.schedule(1.0, first)
        sim.run()
        assert seen == [1.0, 2.0]


class TestCancellation:
    def test_cancelled_event_does_not_run(self):
        sim = Simulation()
        ran = []
        event = sim.schedule(1.0, lambda: ran.append(1))
        event.cancel()
        sim.run()
        assert ran == []

    def test_cancelled_event_not_counted(self):
        sim = Simulation()
        sim.schedule(1.0, lambda: None).cancel()
        sim.schedule(2.0, lambda: None)
        sim.run()
        assert sim.events_processed == 1

    def test_peek_skips_cancelled(self):
        sim = Simulation()
        sim.schedule(1.0, lambda: None).cancel()
        sim.schedule(2.0, lambda: None)
        assert sim.peek_time() == 2.0


class TestHeapHygiene:
    """Compaction must be invisible: same execution order, same
    counters, cancelled events dropped, seq ties stable."""

    def test_compaction_drops_cancelled_from_heap(self):
        sim = Simulation()
        events = [sim.schedule(float(i), lambda: None) for i in range(200)]
        for event in events[:150]:
            event.cancel()
        # Compaction fired at least once mid-stream; the invariant is
        # that dead events never outnumber live ones past the floor.
        assert len(sim._queue) - sim._dead == 50
        assert sim._dead < 150
        assert sim._dead < 64 or sim._dead * 2 <= len(sim._queue)
        assert sim.events_cancelled == 150

    def test_small_queues_do_not_compact(self):
        sim = Simulation()
        events = [sim.schedule(float(i), lambda: None) for i in range(20)]
        for event in events[:15]:
            event.cancel()
        # Below the dead-count floor: lazy deletion only.
        assert len(sim._queue) == 20
        assert sim._dead == 15

    def test_compaction_preserves_execution_order(self):
        sim = Simulation()
        order = []
        kept = []
        for i in range(200):
            event = sim.schedule(float(i % 10), lambda i=i: order.append(i))
            if i % 3 == 0:
                kept.append(i)
            else:
                event.cancel()
        sim.run()
        # Survivors run sorted by (time, insertion seq): time is i % 10,
        # and insertion order breaks ties.
        assert order == sorted(kept, key=lambda i: (i % 10, i))

    def test_compaction_keeps_seq_ties_stable(self):
        sim = Simulation()
        order = []
        events = []
        for i in range(200):
            events.append(sim.schedule(1.0, lambda i=i: order.append(i)))
        for i, event in enumerate(events):
            if i % 2:
                event.cancel()
        sim.run()
        assert order == [i for i in range(200) if i % 2 == 0]

    def test_cancel_is_idempotent_in_counters(self):
        sim = Simulation()
        event = sim.schedule(1.0, lambda: None)
        event.cancel()
        event.cancel()
        assert sim.events_cancelled == 1
        assert sim._dead == 1

    def test_cancel_after_execution_is_noop(self):
        sim = Simulation()
        event = sim.schedule(1.0, lambda: None)
        sim.run()
        event.cancel()
        assert sim.events_cancelled == 0
        assert sim.events_processed == 1

    def test_run_until_drains_cancelled_without_executing(self):
        sim = Simulation()
        seen = []
        sim.schedule(1.0, lambda: seen.append(1)).cancel()
        sim.schedule(2.0, lambda: seen.append(2))
        sim.run_until(3.0)
        assert seen == [2]
        assert sim.events_processed == 1
        assert sim.events_cancelled == 1
        assert sim._dead == 0

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=100.0),
                st.booleans(),
            ),
            min_size=1,
            max_size=300,
        )
    )
    def test_random_cancellation_pattern_matches_model(self, plan):
        """Whatever compactions happen mid-stream, the executed sequence
        equals the live events sorted by (time, seq)."""
        sim = Simulation()
        order = []
        live = []
        for i, (delay, keep) in enumerate(plan):
            event = sim.schedule(delay, lambda i=i: order.append(i))
            if keep:
                live.append((event.time, event.seq, i))
            else:
                event.cancel()
        sim.run()
        assert order == [i for _, _, i in sorted(live)]
        assert sim.events_processed == len(live)
        assert sim.events_cancelled == len(plan) - len(live)


class TestCancellationChurn:
    """Cancellation-heavy multi-job patterns: compaction may rebind the
    heap mid-run, and must stay invisible to everything above it."""

    def test_compaction_mid_run_until_does_not_lose_events(self):
        # Directed regression: a callback cancels enough events to
        # trigger _compact() (which rebuilds self._queue) and then
        # schedules new work inside the run_until window.  A stale
        # local binding of the heap would silently drop that work.
        sim = Simulation()
        seen = []
        victims = [sim.schedule(5.0, lambda: seen.append("victim"))
                   for _ in range(100)]

        def churn():
            for event in victims:
                event.cancel()
            sim.schedule(1.0, lambda: seen.append("after"))

        sim.schedule(1.0, churn)
        sim.schedule(9.0, lambda: seen.append("tail"))
        sim.run_until(10.0)
        assert seen == ["after", "tail"]
        assert sim.events_processed == 3
        assert sim.events_cancelled == 100
        assert sim._dead == 0

    def test_replan_churn_keeps_counters_consistent(self):
        # The flow-network pattern across many jobs: every arrival
        # cancels the standing completion timer and schedules a fresh
        # one, so cancellations far outnumber executions and compaction
        # fires repeatedly mid-run.
        sim = Simulation()
        jobs = 8
        arrivals = 40
        completed = []
        timers = {j: None for j in range(jobs)}
        scheduled = 0

        def make_arrival(j, i):
            def arrive():
                nonlocal scheduled
                if timers[j] is not None:
                    timers[j].cancel()
                timers[j] = sim.schedule(
                    1000.0 - i, lambda: completed.append(j)
                )
                scheduled += 1
            return arrive

        for j in range(jobs):
            for i in range(arrivals):
                sim.schedule(1.0 + i, make_arrival(j, i))
                scheduled += 1
        sim.run()
        # Exactly one completion per job survives the churn.
        assert sorted(completed) == list(range(jobs))
        assert sim.events_processed + sim.events_cancelled == scheduled
        assert sim.events_cancelled == jobs * (arrivals - 1)
        assert sim._dead == 0

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=50.0),
                st.integers(min_value=0, max_value=3),
            ),
            min_size=1,
            max_size=200,
        )
    )
    def test_in_callback_cancellation_matches_model(self, plan):
        """Events cancelled *from inside callbacks* — possibly compacting
        while the loop is mid-pop — never change what else runs."""
        sim = Simulation()
        order = []
        events = []

        def make(i, kill):
            def fire():
                order.append(i)
                for k in range(kill):
                    victim = i * 4 + k + 1
                    if victim < len(events):
                        events[victim].cancel()
            return fire

        for i, (delay, kill) in enumerate(plan):
            events.append(sim.schedule(delay, make(i, kill)))
        sim.run()
        # Replay against a pure-python model of (time, seq) order with
        # the same cancellation side effects.
        model_order = []
        cancelled = set()
        pending = sorted(
            range(len(plan)), key=lambda i: (plan[i][0], i)
        )
        for i in pending:
            if i in cancelled:
                continue
            model_order.append(i)
            for k in range(plan[i][1]):
                victim = i * 4 + k + 1
                if victim < len(plan):
                    cancelled.add(victim)
        assert order == model_order


class TestSanitizedTies:
    """PIC_SANITIZE permutes only causally unrelated same-timestamp
    ties; program order, submission order and batch order survive."""

    SEEDS = range(1, 21)

    def test_seed_comes_from_env_at_construction(self, monkeypatch):
        monkeypatch.setenv("PIC_SANITIZE", "42")
        assert sanitize_seed_from_env() == 42
        assert Simulation().tie_seed == 42
        monkeypatch.setenv("PIC_SANITIZE", "  ")
        assert sanitize_seed_from_env() is None
        assert Simulation().tie_seed is None
        monkeypatch.setenv("PIC_SANITIZE", "7")
        assert Simulation(tie_seed=3).tie_seed == 3

    def test_root_submission_order_is_preserved(self):
        # All root-context events share one parent, so their program
        # order is part of the sanitizer's equivalence class.
        for seed in self.SEEDS:
            sim = Simulation(tie_seed=seed)
            order = []
            for name in "abcdef":
                sim.schedule(1.0, lambda n=name: order.append(n))
            sim.run()
            assert order == list("abcdef"), f"seed {seed}"

    def test_same_parent_events_keep_program_order(self):
        for seed in self.SEEDS:
            sim = Simulation(tie_seed=seed)
            order = []

            def parent():
                for name in "xyz":
                    sim.schedule(1.0, lambda n=name: order.append(n))

            sim.schedule(1.0, parent)
            sim.run()
            assert order == ["x", "y", "z"], f"seed {seed}"

    def test_cross_parent_ties_permute_with_the_seed(self):
        # Followers of two different parents land at one timestamp;
        # across seeds both interleavings must occur, and within each
        # parent the pair stays in program order.
        orders = set()
        for seed in self.SEEDS:
            sim = Simulation(tie_seed=seed)
            order = []

            def make_parent(tag):
                def parent():
                    sim.schedule(1.0, lambda: order.append(tag + "1"))
                    sim.schedule(1.0, lambda: order.append(tag + "2"))
                return parent

            sim.schedule(1.0, make_parent("a"))
            sim.schedule(1.0, make_parent("b"))
            sim.run()
            assert order.index("a1") < order.index("a2"), f"seed {seed}"
            assert order.index("b1") < order.index("b2"), f"seed {seed}"
            orders.add(tuple(order))
        assert len(orders) > 1
        assert ("a1", "a2", "b1", "b2") in orders
        assert any(o[0] == "b1" for o in sorted(orders))

    def test_unseeded_ties_fall_back_to_insertion_order(self):
        sim = Simulation()
        order = []
        sim.schedule(1.0, lambda: sim.schedule(1.0, lambda: order.append("a")))
        sim.schedule(1.0, lambda: sim.schedule(1.0, lambda: order.append("b")))
        sim.run()
        assert order == ["a", "b"]

    def test_serialized_point_runs_after_normal_events_under_any_seed(self):
        # Late events sort after every normal event at the instant even
        # when the normal event was scheduled *afterwards*.
        for seed in (None, *self.SEEDS):
            sim = Simulation(tie_seed=seed)
            order = []

            def parent():
                sim.schedule_serialized(lambda: order.append("late"))
                sim.schedule(0.0, lambda: order.append("normal"))

            sim.schedule(1.0, parent)
            sim.run()
            assert order == ["normal", "late"], f"seed {seed}"

    def test_batch_internal_order_is_preserved_under_seeds(self):
        for seed in self.SEEDS:
            sim = Simulation(tie_seed=seed)
            order = []
            sim.schedule(1.0, lambda: sim.schedule_batch(
                1.0, [lambda n=n: order.append(n) for n in range(5)]
            ))
            sim.run()
            assert order == [0, 1, 2, 3, 4], f"seed {seed}"

    def test_in_callback_reflects_dispatch_context(self):
        sim = Simulation()
        states = []
        assert sim.in_callback is False
        sim.schedule(1.0, lambda: states.append(sim.in_callback))
        sim.run()
        assert states == [True]
        assert sim.in_callback is False

    @given(
        st.integers(min_value=1, max_value=2**32),
        st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=10.0),
                st.floats(min_value=0.0, max_value=10.0),
            ),
            min_size=1,
            max_size=60,
        ),
    )
    def test_seeding_is_a_pure_permutation(self, seed, plan):
        """Every seed executes exactly the same events at the same
        simulated times — only same-timestamp interleaving may differ."""

        def run(tie_seed):
            sim = Simulation(tie_seed=tie_seed)
            trace = []

            def make(i, extra):
                def fire():
                    trace.append((sim.now, i))
                    sim.schedule(extra, lambda: trace.append((sim.now, ~i)))
                return fire

            for i, (delay, extra) in enumerate(plan):
                sim.schedule(delay, make(i, extra))
            sim.run()
            return sim, trace

        base_sim, base = run(None)
        seeded_sim, seeded = run(seed)
        assert sorted(base) == sorted(seeded)
        assert seeded_sim.events_processed == base_sim.events_processed
        assert [t for t, _ in seeded] == [t for t, _ in base]


class TestBatchScheduling:
    def test_batch_runs_callbacks_in_order(self):
        sim = Simulation()
        order = []
        sim.schedule_batch(1.0, [lambda n=n: order.append(n) for n in range(5)])
        sim.run()
        assert order == [0, 1, 2, 3, 4]
        # One heap entry, one processed event for the whole burst.
        assert sim.events_processed == 1

    def test_batch_interleaves_with_singleton_events(self):
        sim = Simulation()
        order = []
        sim.schedule(0.5, lambda: order.append("early"))
        sim.schedule_batch(1.0, [lambda: order.append("a"),
                                 lambda: order.append("b")])
        sim.schedule(1.0, lambda: order.append("late"))
        sim.run()
        assert order == ["early", "a", "b", "late"]

    def test_batch_can_be_cancelled(self):
        sim = Simulation()
        order = []
        event = sim.schedule_batch(1.0, [lambda: order.append("a")])
        event.cancel()
        sim.run()
        assert order == []


class TestRunControl:
    def test_step_returns_false_when_empty(self):
        assert Simulation().step() is False

    def test_run_until_stops_at_time(self):
        sim = Simulation()
        seen = []
        sim.schedule(1.0, lambda: seen.append(1))
        sim.schedule(5.0, lambda: seen.append(5))
        sim.run_until(3.0)
        assert seen == [1]
        assert sim.now == 3.0

    def test_run_until_backwards_rejected(self):
        sim = Simulation()
        sim.run_until(2.0)
        with pytest.raises(ValueError):
            sim.run_until(1.0)

    def test_run_until_includes_boundary(self):
        sim = Simulation()
        seen = []
        sim.schedule(3.0, lambda: seen.append(1))
        sim.run_until(3.0)
        assert seen == [1]

    def test_max_events_guard(self):
        sim = Simulation()

        def forever():
            sim.schedule(1.0, forever)

        sim.schedule(1.0, forever)
        with pytest.raises(RuntimeError, match="did not quiesce"):
            sim.run(max_events=100)

    @given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=1, max_size=50))
    def test_clock_is_monotone(self, delays):
        sim = Simulation()
        times = []
        for d in delays:
            sim.schedule(d, lambda: times.append(sim.now))
        sim.run()
        assert times == sorted(times)
        assert sim.now == max(delays)
