"""Tests for the discrete-event simulation core."""

import pytest
from hypothesis import given, strategies as st

from repro.cluster.events import Simulation


class TestScheduling:
    def test_clock_starts_at_zero(self):
        assert Simulation().now == 0.0

    def test_events_run_in_time_order(self):
        sim = Simulation()
        order = []
        sim.schedule(2.0, lambda: order.append("b"))
        sim.schedule(1.0, lambda: order.append("a"))
        sim.schedule(3.0, lambda: order.append("c"))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_ties_break_by_insertion_order(self):
        sim = Simulation()
        order = []
        for name in "abc":
            sim.schedule(1.0, lambda n=name: order.append(n))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_clock_advances_to_event_time(self):
        sim = Simulation()
        sim.schedule(5.5, lambda: None)
        sim.run()
        assert sim.now == 5.5

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Simulation().schedule(-1.0, lambda: None)

    def test_schedule_at_past_rejected(self):
        sim = Simulation()
        sim.schedule(2.0, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.schedule_at(1.0, lambda: None)

    def test_events_can_schedule_events(self):
        sim = Simulation()
        seen = []

        def first():
            seen.append(sim.now)
            sim.schedule(1.0, lambda: seen.append(sim.now))

        sim.schedule(1.0, first)
        sim.run()
        assert seen == [1.0, 2.0]


class TestCancellation:
    def test_cancelled_event_does_not_run(self):
        sim = Simulation()
        ran = []
        event = sim.schedule(1.0, lambda: ran.append(1))
        event.cancel()
        sim.run()
        assert ran == []

    def test_cancelled_event_not_counted(self):
        sim = Simulation()
        sim.schedule(1.0, lambda: None).cancel()
        sim.schedule(2.0, lambda: None)
        sim.run()
        assert sim.events_processed == 1

    def test_peek_skips_cancelled(self):
        sim = Simulation()
        sim.schedule(1.0, lambda: None).cancel()
        sim.schedule(2.0, lambda: None)
        assert sim.peek_time() == 2.0


class TestHeapHygiene:
    """Compaction must be invisible: same execution order, same
    counters, cancelled events dropped, seq ties stable."""

    def test_compaction_drops_cancelled_from_heap(self):
        sim = Simulation()
        events = [sim.schedule(float(i), lambda: None) for i in range(200)]
        for event in events[:150]:
            event.cancel()
        # Compaction fired at least once mid-stream; the invariant is
        # that dead events never outnumber live ones past the floor.
        assert len(sim._queue) - sim._dead == 50
        assert sim._dead < 150
        assert sim._dead < 64 or sim._dead * 2 <= len(sim._queue)
        assert sim.events_cancelled == 150

    def test_small_queues_do_not_compact(self):
        sim = Simulation()
        events = [sim.schedule(float(i), lambda: None) for i in range(20)]
        for event in events[:15]:
            event.cancel()
        # Below the dead-count floor: lazy deletion only.
        assert len(sim._queue) == 20
        assert sim._dead == 15

    def test_compaction_preserves_execution_order(self):
        sim = Simulation()
        order = []
        kept = []
        for i in range(200):
            event = sim.schedule(float(i % 10), lambda i=i: order.append(i))
            if i % 3 == 0:
                kept.append(i)
            else:
                event.cancel()
        sim.run()
        # Survivors run sorted by (time, insertion seq): time is i % 10,
        # and insertion order breaks ties.
        assert order == sorted(kept, key=lambda i: (i % 10, i))

    def test_compaction_keeps_seq_ties_stable(self):
        sim = Simulation()
        order = []
        events = []
        for i in range(200):
            events.append(sim.schedule(1.0, lambda i=i: order.append(i)))
        for i, event in enumerate(events):
            if i % 2:
                event.cancel()
        sim.run()
        assert order == [i for i in range(200) if i % 2 == 0]

    def test_cancel_is_idempotent_in_counters(self):
        sim = Simulation()
        event = sim.schedule(1.0, lambda: None)
        event.cancel()
        event.cancel()
        assert sim.events_cancelled == 1
        assert sim._dead == 1

    def test_cancel_after_execution_is_noop(self):
        sim = Simulation()
        event = sim.schedule(1.0, lambda: None)
        sim.run()
        event.cancel()
        assert sim.events_cancelled == 0
        assert sim.events_processed == 1

    def test_run_until_drains_cancelled_without_executing(self):
        sim = Simulation()
        seen = []
        sim.schedule(1.0, lambda: seen.append(1)).cancel()
        sim.schedule(2.0, lambda: seen.append(2))
        sim.run_until(3.0)
        assert seen == [2]
        assert sim.events_processed == 1
        assert sim.events_cancelled == 1
        assert sim._dead == 0

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=100.0),
                st.booleans(),
            ),
            min_size=1,
            max_size=300,
        )
    )
    def test_random_cancellation_pattern_matches_model(self, plan):
        """Whatever compactions happen mid-stream, the executed sequence
        equals the live events sorted by (time, seq)."""
        sim = Simulation()
        order = []
        live = []
        for i, (delay, keep) in enumerate(plan):
            event = sim.schedule(delay, lambda i=i: order.append(i))
            if keep:
                live.append((event.time, event.seq, i))
            else:
                event.cancel()
        sim.run()
        assert order == [i for _, _, i in sorted(live)]
        assert sim.events_processed == len(live)
        assert sim.events_cancelled == len(plan) - len(live)


class TestBatchScheduling:
    def test_batch_runs_callbacks_in_order(self):
        sim = Simulation()
        order = []
        sim.schedule_batch(1.0, [lambda n=n: order.append(n) for n in range(5)])
        sim.run()
        assert order == [0, 1, 2, 3, 4]
        # One heap entry, one processed event for the whole burst.
        assert sim.events_processed == 1

    def test_batch_interleaves_with_singleton_events(self):
        sim = Simulation()
        order = []
        sim.schedule(0.5, lambda: order.append("early"))
        sim.schedule_batch(1.0, [lambda: order.append("a"),
                                 lambda: order.append("b")])
        sim.schedule(1.0, lambda: order.append("late"))
        sim.run()
        assert order == ["early", "a", "b", "late"]

    def test_batch_can_be_cancelled(self):
        sim = Simulation()
        order = []
        event = sim.schedule_batch(1.0, [lambda: order.append("a")])
        event.cancel()
        sim.run()
        assert order == []


class TestRunControl:
    def test_step_returns_false_when_empty(self):
        assert Simulation().step() is False

    def test_run_until_stops_at_time(self):
        sim = Simulation()
        seen = []
        sim.schedule(1.0, lambda: seen.append(1))
        sim.schedule(5.0, lambda: seen.append(5))
        sim.run_until(3.0)
        assert seen == [1]
        assert sim.now == 3.0

    def test_run_until_backwards_rejected(self):
        sim = Simulation()
        sim.run_until(2.0)
        with pytest.raises(ValueError):
            sim.run_until(1.0)

    def test_run_until_includes_boundary(self):
        sim = Simulation()
        seen = []
        sim.schedule(3.0, lambda: seen.append(1))
        sim.run_until(3.0)
        assert seen == [1]

    def test_max_events_guard(self):
        sim = Simulation()

        def forever():
            sim.schedule(1.0, forever)

        sim.schedule(1.0, forever)
        with pytest.raises(RuntimeError, match="did not quiesce"):
            sim.run(max_events=100)

    @given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=1, max_size=50))
    def test_clock_is_monotone(self, delays):
        sim = Simulation()
        times = []
        for d in delays:
            sim.schedule(d, lambda: times.append(sim.now))
        sim.run()
        assert times == sorted(times)
        assert sim.now == max(delays)
