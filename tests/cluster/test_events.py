"""Tests for the discrete-event simulation core."""

import pytest
from hypothesis import given, strategies as st

from repro.cluster.events import Simulation


class TestScheduling:
    def test_clock_starts_at_zero(self):
        assert Simulation().now == 0.0

    def test_events_run_in_time_order(self):
        sim = Simulation()
        order = []
        sim.schedule(2.0, lambda: order.append("b"))
        sim.schedule(1.0, lambda: order.append("a"))
        sim.schedule(3.0, lambda: order.append("c"))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_ties_break_by_insertion_order(self):
        sim = Simulation()
        order = []
        for name in "abc":
            sim.schedule(1.0, lambda n=name: order.append(n))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_clock_advances_to_event_time(self):
        sim = Simulation()
        sim.schedule(5.5, lambda: None)
        sim.run()
        assert sim.now == 5.5

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Simulation().schedule(-1.0, lambda: None)

    def test_schedule_at_past_rejected(self):
        sim = Simulation()
        sim.schedule(2.0, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.schedule_at(1.0, lambda: None)

    def test_events_can_schedule_events(self):
        sim = Simulation()
        seen = []

        def first():
            seen.append(sim.now)
            sim.schedule(1.0, lambda: seen.append(sim.now))

        sim.schedule(1.0, first)
        sim.run()
        assert seen == [1.0, 2.0]


class TestCancellation:
    def test_cancelled_event_does_not_run(self):
        sim = Simulation()
        ran = []
        event = sim.schedule(1.0, lambda: ran.append(1))
        event.cancel()
        sim.run()
        assert ran == []

    def test_cancelled_event_not_counted(self):
        sim = Simulation()
        sim.schedule(1.0, lambda: None).cancel()
        sim.schedule(2.0, lambda: None)
        sim.run()
        assert sim.events_processed == 1

    def test_peek_skips_cancelled(self):
        sim = Simulation()
        sim.schedule(1.0, lambda: None).cancel()
        sim.schedule(2.0, lambda: None)
        assert sim.peek_time() == 2.0


class TestRunControl:
    def test_step_returns_false_when_empty(self):
        assert Simulation().step() is False

    def test_run_until_stops_at_time(self):
        sim = Simulation()
        seen = []
        sim.schedule(1.0, lambda: seen.append(1))
        sim.schedule(5.0, lambda: seen.append(5))
        sim.run_until(3.0)
        assert seen == [1]
        assert sim.now == 3.0

    def test_run_until_backwards_rejected(self):
        sim = Simulation()
        sim.run_until(2.0)
        with pytest.raises(ValueError):
            sim.run_until(1.0)

    def test_run_until_includes_boundary(self):
        sim = Simulation()
        seen = []
        sim.schedule(3.0, lambda: seen.append(1))
        sim.run_until(3.0)
        assert seen == [1]

    def test_max_events_guard(self):
        sim = Simulation()

        def forever():
            sim.schedule(1.0, forever)

        sim.schedule(1.0, forever)
        with pytest.raises(RuntimeError, match="did not quiesce"):
            sim.run(max_events=100)

    @given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=1, max_size=50))
    def test_clock_is_monotone(self, delays):
        sim = Simulation()
        times = []
        for d in delays:
            sim.schedule(d, lambda: times.append(sim.now))
        sim.run()
        assert times == sorted(times)
        assert sim.now == max(delays)
