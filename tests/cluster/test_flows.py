"""Tests for the flow-level network model (max-min fair sharing)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster.cluster import Cluster
from repro.cluster.flows import LOCAL_COPY_BANDWIDTH
from repro.cluster.topology import GIGABIT


def make_cluster(num_nodes=8, nodes_per_rack=4, **kw) -> Cluster:
    return Cluster(num_nodes=num_nodes, nodes_per_rack=nodes_per_rack, **kw)


class TestSingleFlow:
    def test_uncontended_time_is_size_over_bandwidth(self):
        c = make_cluster()
        done = []
        c.transfer(0, 1, GIGABIT, "t", lambda f: done.append(c.now))
        c.run()
        assert done == [pytest.approx(1.0)]

    def test_cross_rack_same_speed_uncontended(self):
        c = make_cluster()
        c.transfer(0, 5, GIGABIT, "t")
        c.run()
        assert c.now == pytest.approx(1.0)

    def test_local_transfer_uses_memory_bandwidth(self):
        c = make_cluster()
        c.transfer(2, 2, LOCAL_COPY_BANDWIDTH, "t")
        c.run()
        assert c.now == pytest.approx(1.0)

    def test_zero_bytes_completes_immediately(self):
        c = make_cluster()
        done = []
        c.transfer(0, 1, 0, "t", lambda f: done.append(f))
        c.run()
        assert len(done) == 1
        assert c.now == 0.0

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            make_cluster().transfer(0, 1, -5, "t")

    def test_flow_metadata(self):
        c = make_cluster()
        flow = c.transfer(0, 1, 100.0, "shuffle")
        assert flow.src == 0 and flow.dst == 1
        assert flow.category == "shuffle"
        c.run()
        assert flow.done
        assert flow.remaining == 0.0


class TestFairSharing:
    def test_two_flows_share_source_uplink(self):
        c = make_cluster()
        c.transfer(0, 1, GIGABIT, "t")
        c.transfer(0, 2, GIGABIT, "t")
        c.run()
        # Each gets half the uplink, so both finish at 2s.
        assert c.now == pytest.approx(2.0)

    def test_disjoint_flows_do_not_interact(self):
        c = make_cluster()
        c.transfer(0, 1, GIGABIT, "t")
        c.transfer(2, 3, GIGABIT, "t")
        c.run()
        assert c.now == pytest.approx(1.0)

    def test_released_bandwidth_is_reused(self):
        c = make_cluster()
        finish = {}
        c.transfer(0, 1, GIGABIT / 2, "t", lambda f: finish.__setitem__("short", c.now))
        c.transfer(0, 2, GIGABIT, "t", lambda f: finish.__setitem__("long", c.now))
        c.run()
        # Short flow: half rate until done at t=1. Long flow: 0.5 GB left
        # at t=1 at full rate -> done at 1.5s.
        assert finish["short"] == pytest.approx(1.0)
        assert finish["long"] == pytest.approx(1.5)

    def test_oversubscribed_core_is_bottleneck(self):
        c = make_cluster(oversubscription=4.0)  # rack uplink == 1 GigE
        # Four cross-rack flows from distinct sources share one rack uplink.
        for src in range(4):
            c.transfer(src, 4 + src, GIGABIT, "t")
        c.run()
        assert c.now == pytest.approx(4.0)

    def test_max_min_gives_unbottlenecked_flow_more(self):
        c = make_cluster()
        finish = {}
        # Two flows into node 1 (its downlink shared), one flow 2->3 alone.
        c.transfer(0, 1, GIGABIT, "t", lambda f: finish.__setitem__("a", c.now))
        c.transfer(2, 1, GIGABIT, "t", lambda f: finish.__setitem__("b", c.now))
        c.transfer(4, 5, GIGABIT, "t", lambda f: finish.__setitem__("c", c.now))
        c.run()
        assert finish["c"] == pytest.approx(1.0)
        assert finish["a"] == pytest.approx(2.0)
        assert finish["b"] == pytest.approx(2.0)


class TestByteConservation:
    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(0, 7),
                st.integers(0, 7),
                st.floats(min_value=1.0, max_value=1e9),
            ),
            min_size=1,
            max_size=12,
        )
    )
    def test_all_flows_complete_and_bytes_accounted(self, specs):
        c = make_cluster()
        done = []
        total = 0.0
        for src, dst, nbytes in specs:
            c.transfer(src, dst, nbytes, "t", lambda f: done.append(f))
            total += nbytes
        c.run()
        assert len(done) == len(specs)
        assert c.meter.total("t") == pytest.approx(total)
        for flow in done:
            assert flow.remaining == 0.0

    @settings(max_examples=20, deadline=None)
    @given(
        st.lists(
            st.tuples(st.integers(0, 7), st.integers(0, 7)),
            min_size=2,
            max_size=10,
        )
    )
    def test_completion_never_beats_line_rate(self, pairs):
        """No flow can finish faster than its uncontended transfer time."""
        c = make_cluster()
        nbytes = 1e8
        finishes = {}
        for i, (src, dst) in enumerate(pairs):
            lower = c.network.transfer_time(src, dst, nbytes)
            c.transfer(
                src, dst, nbytes, "t",
                lambda f, i=i, lo=lower: finishes.__setitem__(i, (c.now, lo)),
            )
        c.run()
        for t_finish, lower_bound in finishes.values():
            assert t_finish >= lower_bound - 1e-9


class TestBatchedRecompute:
    def test_rates_valid_after_simultaneous_starts(self):
        """Flows started in the same instant share one recomputation and
        the resulting rates never oversubscribe a link."""
        c = make_cluster()
        flows = [c.transfer(0, dst, GIGABIT, "t") for dst in (1, 2, 3)]
        c.network._do_recompute()  # what the batched event will run
        # Three flows share node 0's uplink: 1/3 capacity each.
        for flow in flows:
            assert flow.rate == pytest.approx(GIGABIT / 3)
        load = sum(f.rate for f in flows)
        assert load <= GIGABIT * (1 + 1e-9)

    def test_batched_equals_sequential_outcome(self):
        """Starting flows together or from separate events gives the
        same completion times (the batch is a pure optimization)."""
        def run_batched():
            c = make_cluster()
            done = {}
            for i, dst in enumerate((1, 2, 3)):
                c.transfer(0, dst, GIGABIT, "t",
                           lambda f, i=i: done.__setitem__(i, c.now))
            c.run()
            return done

        def run_staggered():
            c = make_cluster()
            done = {}

            def start(i, dst):
                c.transfer(0, dst, GIGABIT, "t",
                           lambda f: done.__setitem__(i, c.now))

            # Same simulated instant, separate events.
            for i, dst in enumerate((1, 2, 3)):
                c.sim.schedule(0.0, lambda i=i, dst=dst: start(i, dst))
            c.run()
            return done

        assert run_batched() == pytest.approx(run_staggered())

    @settings(max_examples=20, deadline=None)
    @given(
        st.lists(
            st.tuples(st.integers(0, 7), st.integers(0, 7)),
            min_size=1, max_size=16,
        )
    )
    def test_no_link_oversubscribed(self, pairs):
        """After every recompute, aggregate flow rate per link stays
        within capacity (feasibility of the max-min allocation)."""
        c = make_cluster()
        for src, dst in pairs:
            c.transfer(src, dst, 1e9, "t")
        c.network._do_recompute()
        loads: dict[int, float] = {}
        for flow in c.network.active_flows:
            for link in flow.links:
                loads[link.link_id] = loads.get(link.link_id, 0.0) + flow.rate
        for link_id, load in loads.items():
            capacity = c.topology.links[link_id].capacity
            assert load <= capacity * (1 + 1e-6)

    def test_flow_added_while_others_in_progress(self):
        c = make_cluster()
        finish = {}
        c.transfer(0, 1, 2 * GIGABIT, "t", lambda f: finish.__setitem__("a", c.now))
        c.sim.schedule(1.0, lambda: c.transfer(
            2, 1, GIGABIT, "t", lambda f: finish.__setitem__("b", c.now)))
        c.run()
        # Flow a: 1s alone (1 GB done), then shares node 1 downlink ->
        # 0.5 rate for the remaining 1 GB -> finishes at 3.0s.
        assert finish["a"] == pytest.approx(3.0)
        # Flow b: 0.5 rate from t=1 while a runs; a ends at 3 with b
        # having 1 GB left? b moved 1.0 GB by t=3 -> done exactly at 3.
        assert finish["b"] == pytest.approx(3.0)


class TestScaleAwareCompletionEpsilon:
    """The completion threshold must scale with flow size: one ULP of a
    multi-GB byte count exceeds the absolute epsilon, so a fixed
    threshold can strand a finished flow microscopically short of zero
    and spawn a cascade of near-zero-length completion events."""

    def test_epsilon_covers_float_spacing(self):
        import numpy as np

        from repro.cluster.flows import completion_eps

        for size in (1.0, 1e6, 2e10, 7.5e12):
            assert completion_eps(size) >= np.spacing(size)
        # Small flows keep the absolute floor.
        assert completion_eps(0.0) == 1e-6
        assert completion_eps(1.0) == 1e-6

    def test_huge_flow_completes_without_event_cascade(self):
        c = make_cluster(num_nodes=2, nodes_per_rack=2)
        done = {}
        c.transfer(0, 1, 2.5e10, "t", lambda f: done.setdefault("at", c.now))
        # Nudge the clock through several rate recomputes so ``remaining``
        # accumulates rounding error from repeated ``rate * dt`` updates.
        for i in range(1, 6):
            c.sim.schedule(i * 7.3, lambda: c.network._do_recompute())
        c.run()
        assert done["at"] == pytest.approx(2.5e10 / GIGABIT)
        # One completion horizon, not a tail of epsilon-chasing events.
        assert c.sim.events_processed <= 12
