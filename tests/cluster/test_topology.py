"""Tests for nodes, racks and the two-tier link graph."""

import pytest

from repro.cluster.topology import GIGABIT, NodeSpec, Topology


def make(num_nodes=8, nodes_per_rack=4, **kw) -> Topology:
    return Topology(
        num_nodes=num_nodes,
        nodes_per_rack=nodes_per_rack,
        node_spec=NodeSpec(),
        **kw,
    )


class TestNodeSpec:
    def test_defaults_valid(self):
        spec = NodeSpec()
        assert spec.cores == 8

    @pytest.mark.parametrize(
        "kw",
        [
            {"cores": 0},
            {"map_slots": -1},
            {"cpu_speed": 0},
            {"disk_bandwidth": -1},
        ],
    )
    def test_invalid_rejected(self, kw):
        with pytest.raises(ValueError):
            NodeSpec(**kw)


class TestConstruction:
    def test_rack_count(self):
        assert make(8, 4).num_racks == 2
        assert make(9, 4).num_racks == 3

    def test_rack_assignment_contiguous(self):
        topo = make(8, 4)
        assert [n.rack_id for n in topo.nodes] == [0, 0, 0, 0, 1, 1, 1, 1]

    def test_link_count(self):
        topo = make(8, 4)
        # 2 per node + 2 per rack
        assert len(topo.links) == 8 * 2 + 2 * 2

    def test_default_uplink_matches_aggregate(self):
        topo = make(8, 4)
        assert topo.rack_uplink_bandwidth == pytest.approx(4 * GIGABIT)

    def test_oversubscription_shrinks_uplink(self):
        topo = make(8, 4, oversubscription=4.0)
        assert topo.rack_uplink_bandwidth == pytest.approx(GIGABIT)

    def test_explicit_uplink_wins(self):
        topo = make(8, 4, rack_uplink_bandwidth=5e8, oversubscription=2.0)
        assert topo.rack_uplink_bandwidth == 5e8

    def test_zero_nodes_rejected(self):
        with pytest.raises(ValueError):
            make(0)

    def test_undersubscription_rejected(self):
        with pytest.raises(ValueError):
            make(oversubscription=0.5)

    def test_slot_totals(self):
        topo = make(6, 6)
        assert topo.total_map_slots() == 24
        assert topo.total_reduce_slots() == 24


class TestPaths:
    def test_same_node_empty_path(self):
        assert make().path(3, 3) == []

    def test_same_rack_two_hops(self):
        topo = make(8, 4)
        path = topo.path(0, 1)
        assert [l.name for l in path] == ["node0.up", "node1.down"]
        assert not any(l.is_core for l in path)

    def test_cross_rack_four_hops(self):
        topo = make(8, 4)
        path = topo.path(0, 5)
        assert [l.name for l in path] == [
            "node0.up", "rack0.core_up", "rack1.core_down", "node5.down",
        ]
        assert sum(l.is_core for l in path) == 2

    def test_crosses_core(self):
        topo = make(8, 4)
        assert not topo.crosses_core(0, 1)
        assert topo.crosses_core(0, 5)
        assert not topo.crosses_core(2, 2)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            make().path(0, 99)

    def test_rack_members(self):
        topo = make(8, 4)
        assert [n.node_id for n in topo.rack_members(1)] == [4, 5, 6, 7]

    def test_rack_members_out_of_range(self):
        with pytest.raises(ValueError):
            make(8, 4).rack_members(5)
