"""Per-object reference implementation of the component-scoped protocol.

This is the frozen mirror the optimized ``repro.cluster.flows``
simulator is property-tested against: a scalar, dict-of-objects
implementation of the *same* component-scoped rebalancing protocol
(DESIGN.md §13) — per-flow advancement clocks, incremental union-find
components over links, chain-pair adjacency with exact-reachability
split detection, dirty-component batched recompute, and one
next-completion timer per component, processed in canonical ascending
min-flow-id order.

The protocol being shared is the point: max-min progressive filling is
only separable across components if both sides advance, partition, and
refill with the same component-local operand sequences, so every
arithmetic step here performs the exact IEEE operation the optimized
structure-of-arrays code performs on the same component-local operands.
Property tests then assert the two are *bit-identical* — same rates,
same completion instants, same completion order, same byte accounting —
on arbitrary topologies and flow batches.

One intentional historical exception survives from the original
reference: completion uses the same scale-aware ``completion_eps`` as
the optimized network (the absolute epsilon predated multi-GB flows and
is part of that change).
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from typing import Callable

from repro.cluster.events import Event, Simulation
from repro.cluster.flows import LOCAL_COPY_BANDWIDTH, _REMAINING_EPS, completion_eps
from repro.cluster.metrics import TrafficMeter
from repro.cluster.topology import Link, Topology


@dataclass
class ReferenceFlow:
    """One in-flight transfer (per-object state)."""

    flow_id: int
    src: int
    dst: int
    size: float
    links: list[Link]
    category: str
    on_complete: Callable[["ReferenceFlow"], None] | None
    started_at: float
    remaining: float = field(init=False)
    rate: float = field(default=0.0, init=False)
    completed_at: float | None = field(default=None, init=False)
    # Last simulated time this flow's progress was applied (the lazy
    # per-flow advancement clock of the shared protocol).
    advanced_at: float = field(default=0.0, init=False)

    def __post_init__(self) -> None:
        self.remaining = float(self.size)

    @property
    def done(self) -> bool:
        return self.completed_at is not None


class _RefComponent:
    """One connected component of the link graph (reference mirror)."""

    def __init__(self, root: int, links: list[int], epoch: int) -> None:
        self.root = root
        self.links = links
        self.epoch = epoch
        self.timer: Event | None = None


class ReferenceFlowNetwork:
    """Dict-of-objects simulator of the component-scoped protocol."""

    def __init__(
        self, sim: Simulation, topology: Topology, meter: TrafficMeter | None = None
    ) -> None:
        self.sim = sim
        self.topology = topology
        self.meter = meter if meter is not None else TrafficMeter()
        self._ids = itertools.count()
        self._recompute_event: Event | None = None
        self._capacities = [float(link.capacity) for link in topology.links]
        # Same precomputed saturation thresholds as the optimized side.
        self._thresholds = [1e-9 * cap for cap in self._capacities]
        # Active fabric flows per link id.
        self._link_flows: dict[int, list[ReferenceFlow]] = {}
        # -- component tracking (mirrors FlowNetwork) ------------------
        self._parent: dict[int, int] = {}
        self._comps: dict[int, _RefComponent] = {}
        self._epochs = itertools.count()
        self._dirty_links: set[int] = set()
        self._adj: dict[int, dict[int, int]] = {}
        self._dead_pairs: list[tuple[int, int]] = []

    @property
    def active_flows(self) -> list[ReferenceFlow]:
        flows = {
            flow.flow_id: flow
            for flows in self._link_flows.values()
            for flow in flows
        }
        return [flows[fid] for fid in sorted(flows)]

    def start_flow(
        self,
        src: int,
        dst: int,
        nbytes: float,
        category: str,
        on_complete: Callable[[ReferenceFlow], None] | None = None,
    ) -> ReferenceFlow:
        if nbytes < 0:
            raise ValueError(f"cannot transfer a negative byte count: {nbytes}")
        links = self.topology.path(src, dst)
        crosses_core = self.topology.crosses_core(src, dst)
        self.meter.record(
            category, nbytes, crosses_core=crosses_core, on_fabric=bool(links)
        )
        for link in links:
            link.bytes_carried += nbytes

        flow = ReferenceFlow(
            flow_id=next(self._ids),
            src=src,
            dst=dst,
            size=float(nbytes),
            links=links,
            category=category,
            on_complete=on_complete,
            started_at=self.sim.now,
        )
        if not links:
            delay = nbytes / LOCAL_COPY_BANDWIDTH
            self.sim.schedule(delay, lambda: self._finish(flow))
            return flow
        if nbytes <= _REMAINING_EPS:
            self.sim.schedule(0.0, lambda: self._finish(flow))
            return flow

        self._attach(flow)
        if self._recompute_event is None:
            self._recompute_event = self.sim.schedule(0.0, self._do_recompute)
        return flow

    # ------------------------------------------------------------------
    # component tracking

    def _find(self, link: int) -> int:
        parent = self._parent
        root = link
        while parent.setdefault(root, root) != root:
            root = parent[root]
        while parent[link] != root:
            parent[link], link = root, parent[link]
        return root

    def _attach(self, flow: ReferenceFlow) -> None:
        flow.advanced_at = self.sim.now
        path = [link.link_id for link in flow.links]
        for link_id in path:
            self._link_flows.setdefault(link_id, []).append(flow)
        # Chain-pair adjacency increments (consecutive path links).
        adj = self._adj
        for a, b in zip(path, path[1:]):
            row_a = adj.setdefault(a, {})
            row_b = adj.setdefault(b, {})
            row_a[b] = row_a.get(b, 0) + 1
            row_b[a] = row_b.get(a, 0) + 1
        # Union the path's links into one component, merging records
        # smaller-into-larger exactly as the optimized side does.
        first = path[0]
        root = self._find(first)
        comp = self._comps.get(root)
        if comp is None:
            comp = _RefComponent(root, [root], next(self._epochs))
            self._comps[root] = comp
        for link_id in path[1:]:
            other_root = self._find(link_id)
            if other_root == root:
                continue
            other = self._comps.get(other_root)
            if other is None:
                self._parent[other_root] = root
                comp.links.append(other_root)
                continue
            if len(other.links) > len(comp.links):
                comp, other = other, comp
                root, other_root = other_root, root
            self._parent[other_root] = root
            comp.links.extend(other.links)
            if other.timer is not None:
                other.timer.cancel()
                other.timer = None
            del self._comps[other_root]
        self._dirty_links.add(first)

    def _detach(self, flow: ReferenceFlow) -> None:
        path = [link.link_id for link in flow.links]
        for link_id in path:
            self._link_flows[link_id].remove(flow)
        adj = self._adj
        for a, b in zip(path, path[1:]):
            count = adj[a][b] - 1
            if count:
                adj[a][b] = count
                adj[b][a] = count
            else:
                del adj[a][b]
                del adj[b][a]
                self._dead_pairs.append((a, b))

    def _still_connected(self, a: int, b: int) -> bool:
        adj = self._adj
        seen = {a}
        frontier = [a]
        while frontier:
            node = frontier.pop()
            for neighbour in adj.get(node, ()):
                if neighbour == b:
                    return True
                if neighbour not in seen:
                    seen.add(neighbour)
                    frontier.append(neighbour)
        return False

    def _split_component(self, comp: _RefComponent) -> None:
        del self._comps[comp.root]
        visited: set[int] = set()
        for link in comp.links:
            if link in visited:
                continue
            visited.add(link)
            if not self._link_flows.get(link):
                # Dead link: revert to a singleton union-find root.
                self._parent[link] = link
                continue
            group = [link]
            stack = [link]
            while stack:
                node = stack.pop()
                for neighbour in self._adj.get(node, ()):
                    if neighbour not in visited:
                        visited.add(neighbour)
                        group.append(neighbour)
                        stack.append(neighbour)
            root = min(group)
            for member in group:
                self._parent[member] = root
            sub = _RefComponent(root, group, next(self._epochs))
            self._comps[root] = sub
            self._dirty_links.add(root)

    def _component_flows(self, comp: _RefComponent) -> list[ReferenceFlow]:
        """Member flows of ``comp``, ascending flow id (canonical)."""
        flows: dict[int, ReferenceFlow] = {}
        for link in comp.links:
            for flow in self._link_flows.get(link, ()):
                flows[flow.flow_id] = flow
        return [flows[fid] for fid in sorted(flows)]

    # ------------------------------------------------------------------
    # protocol phases

    def _do_recompute(self) -> None:
        self._recompute_event = None
        if self._dirty_links:
            roots = {self._find(link) for link in self._dirty_links}
            self._dirty_links.clear()
        else:
            roots = set(self._comps.keys())
        planned = []
        for root in sorted(roots):
            comp = self._comps.get(root)
            if comp is None:
                continue
            flows = self._component_flows(comp)
            if not flows:  # pragma: no cover - defensive
                continue
            planned.append((flows[0].flow_id, comp, flows))
        planned.sort(key=lambda item: item[0])
        for _, comp, flows in planned:
            self._advance_flows(flows)
            self._refill_component(comp, flows)
            self._plan_component(comp, flows)

    def _advance_flows(self, flows: list[ReferenceFlow]) -> None:
        now = self.sim.now
        for flow in flows:
            value = flow.remaining - flow.rate * (now - flow.advanced_at)
            flow.remaining = value if value > 0.0 else 0.0
            flow.advanced_at = now

    def _refill_component(
        self, comp: _RefComponent, flows: list[ReferenceFlow]
    ) -> None:
        """Component-local progressive filling (the shared protocol).

        Same round structure and operand order as the optimized
        implementation: links processed ascending by id, fill level the
        left-to-right sum of round deltas, counts decremented as flows
        freeze.
        """
        link_flows = self._link_flows
        occupied = sorted(
            link for link in comp.links if link_flows.get(link)
        )
        residual = {link: self._capacities[link] for link in occupied}
        threshold = {link: self._thresholds[link] for link in occupied}
        counts = {link: len(link_flows[link]) for link in occupied}
        total = len(flows)
        frozen: set[int] = set()
        alive = list(occupied)
        fill = 0.0
        while alive:
            delta = math.inf
            for link in alive:
                count = counts[link]
                if count > 0:
                    ratio = residual[link] / count
                    if ratio < delta:
                        delta = ratio
            fill += delta
            saturated = []
            for link in alive:
                count = counts[link]
                if count:
                    residual[link] -= delta * count
                if residual[link] <= threshold[link]:
                    saturated.append(link)
            if not saturated:
                break
            newly: list[ReferenceFlow] = []
            for link in saturated:
                for flow in link_flows[link]:
                    if flow.flow_id not in frozen:
                        frozen.add(flow.flow_id)
                        newly.append(flow)
            if not newly:  # pragma: no cover - numeric corner
                break
            for flow in newly:
                flow.rate = fill
            if len(frozen) == total:
                return
            for flow in newly:
                for link in flow.links:
                    counts[link.link_id] -= 1
            dropped = set(saturated)
            alive = [link for link in alive if link not in dropped]
        for flow in flows:
            if flow.flow_id not in frozen:
                flow.rate = fill

    def _plan_component(
        self, comp: _RefComponent, flows: list[ReferenceFlow]
    ) -> None:
        if comp.timer is not None:
            comp.timer.cancel()
            comp.timer = None
        horizon = math.inf
        for flow in flows:
            if flow.rate > 0:
                candidate = flow.remaining / flow.rate
                if candidate < horizon:
                    horizon = candidate
        if not math.isfinite(horizon):
            raise RuntimeError(
                "active flows exist but none has a positive rate; "
                "the rate allocation is wedged"
            )
        root = comp.root
        epoch = comp.epoch
        comp.timer = self.sim.schedule(
            horizon, lambda: self._on_component_completion(root, epoch)
        )

    def _on_component_completion(self, root: int, epoch: int) -> None:
        comp = self._comps.get(root)
        if comp is None or comp.epoch != epoch:  # pragma: no cover - stale
            return
        comp.timer = None
        flows = self._component_flows(comp)
        self._advance_flows(flows)
        finished = [
            flow for flow in flows if flow.remaining <= completion_eps(flow.size)
        ]
        self._dead_pairs.clear()
        for flow in finished:
            self._detach(flow)
        if len(finished) == len(flows):
            # The whole component drained; release its links.
            for link in comp.links:
                self._parent[link] = link
            del self._comps[root]
        else:
            if any(
                not self._still_connected(a, b) for a, b in self._dead_pairs
            ):
                self._split_component(comp)
            else:
                self._dirty_links.add(comp.root)
            if self._recompute_event is None:
                self._recompute_event = self.sim.schedule(0.0, self._do_recompute)
        for flow in finished:
            self._finish(flow)

    def _finish(self, flow: ReferenceFlow) -> None:
        flow.remaining = 0.0
        flow.completed_at = self.sim.now
        if flow.on_complete is not None:
            flow.on_complete(flow)
