"""Pre-structure-of-arrays reference flow network.

This is the per-object, dict-based implementation the optimized
``repro.cluster.flows.FlowNetwork`` replaced: every filling round
rebuilds the padded link-id matrix from the live ``Flow`` objects and
accumulates each unfrozen flow's rate by the round delta.  It exists so
property tests can assert the optimized simulator is *bit-identical* —
same rates, same completion instants, same completion order, same byte
accounting — on arbitrary topologies and flow batches.

It deliberately mirrors the historical implementation operation for
operation, with one intentional exception: completion uses the same
scale-aware ``completion_eps`` as the optimized network (the absolute
epsilon predated multi-GB flows and is part of this change).
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.cluster.events import Event, Simulation
from repro.cluster.flows import LOCAL_COPY_BANDWIDTH, _REMAINING_EPS, completion_eps
from repro.cluster.metrics import TrafficMeter
from repro.cluster.topology import Link, Topology


@dataclass
class ReferenceFlow:
    """One in-flight transfer (per-object state)."""

    flow_id: int
    src: int
    dst: int
    size: float
    links: list[Link]
    category: str
    on_complete: Callable[["ReferenceFlow"], None] | None
    started_at: float
    remaining: float = field(init=False)
    rate: float = field(default=0.0, init=False)
    completed_at: float | None = field(default=None, init=False)

    def __post_init__(self) -> None:
        self.remaining = float(self.size)

    @property
    def done(self) -> bool:
        return self.completed_at is not None


class ReferenceFlowNetwork:
    """Dict-of-objects flow simulator with per-round matrix rebuilds."""

    def __init__(
        self, sim: Simulation, topology: Topology, meter: TrafficMeter | None = None
    ) -> None:
        self.sim = sim
        self.topology = topology
        self.meter = meter if meter is not None else TrafficMeter()
        self._flows: dict[int, ReferenceFlow] = {}
        self._ids = itertools.count()
        self._last_update = sim.now
        self._completion_event: Event | None = None
        self._recompute_event: Event | None = None
        self._capacities = np.array(
            [link.capacity for link in topology.links], dtype=float
        )

    @property
    def active_flows(self) -> list[ReferenceFlow]:
        return list(self._flows.values())

    def start_flow(
        self,
        src: int,
        dst: int,
        nbytes: float,
        category: str,
        on_complete: Callable[[ReferenceFlow], None] | None = None,
    ) -> ReferenceFlow:
        if nbytes < 0:
            raise ValueError(f"cannot transfer a negative byte count: {nbytes}")
        links = self.topology.path(src, dst)
        crosses_core = self.topology.crosses_core(src, dst)
        self.meter.record(
            category, nbytes, crosses_core=crosses_core, on_fabric=bool(links)
        )
        for link in links:
            link.bytes_carried += nbytes

        flow = ReferenceFlow(
            flow_id=next(self._ids),
            src=src,
            dst=dst,
            size=float(nbytes),
            links=links,
            category=category,
            on_complete=on_complete,
            started_at=self.sim.now,
        )
        if not links:
            delay = nbytes / LOCAL_COPY_BANDWIDTH
            self.sim.schedule(delay, lambda: self._finish(flow))
            return flow
        if nbytes <= _REMAINING_EPS:
            self.sim.schedule(0.0, lambda: self._finish(flow))
            return flow

        self._advance_progress()
        self._flows[flow.flow_id] = flow
        if self._recompute_event is None:
            self._recompute_event = self.sim.schedule(0.0, self._do_recompute)
        return flow

    def _do_recompute(self) -> None:
        self._recompute_event = None
        self._advance_progress()
        self._recompute_rates()
        self._replan()

    def _advance_progress(self) -> None:
        now = self.sim.now
        dt = now - self._last_update
        if dt > 0:
            for flow in self._flows.values():
                flow.remaining = max(0.0, flow.remaining - flow.rate * dt)
        self._last_update = now

    def _recompute_rates(self) -> None:
        """Textbook progressive filling over a per-round rebuilt matrix."""
        flows = list(self._flows.values())
        if not flows:
            return
        n = len(flows)
        link_ids = np.full((n, 4), -1, dtype=np.int64)
        for row, flow in enumerate(flows):
            for col, link in enumerate(flow.links):
                link_ids[row, col] = link.link_id
        valid = link_ids >= 0
        clipped = np.where(valid, link_ids, 0)

        num_links = len(self._capacities)
        residual = self._capacities.copy()
        rate = np.zeros(n)
        unfrozen = np.ones(n, dtype=bool)
        for _round in range(num_links + 1):
            if not unfrozen.any():
                break
            flat = link_ids[unfrozen]
            flat = flat[flat >= 0]
            counts = np.bincount(flat, minlength=num_links)
            used = counts > 0
            if not used.any():
                break
            delta = float(np.min(residual[used] / counts[used]))
            rate[unfrozen] += delta
            residual[used] -= delta * counts[used]
            saturated = np.zeros(num_links, dtype=bool)
            saturated[used] = residual[used] <= 1e-9 * self._capacities[used]
            if not saturated.any():
                break
            touches_saturated = (saturated[clipped] & valid).any(axis=1)
            newly_frozen = touches_saturated & unfrozen
            if not newly_frozen.any():
                break
            unfrozen &= ~newly_frozen
        for row, flow in enumerate(flows):
            flow.rate = float(rate[row])

    def _replan(self) -> None:
        if self._completion_event is not None:
            self._completion_event.cancel()
            self._completion_event = None
        if not self._flows:
            return
        horizon = math.inf
        for flow in self._flows.values():
            if flow.rate > 0:
                horizon = min(horizon, flow.remaining / flow.rate)
        if not math.isfinite(horizon):
            raise RuntimeError(
                "active flows exist but none has a positive rate; "
                "the rate allocation is wedged"
            )
        self._completion_event = self.sim.schedule(horizon, self._on_completion)

    def _on_completion(self) -> None:
        self._completion_event = None
        self._advance_progress()
        finished = [
            f
            for f in self._flows.values()
            if f.remaining <= completion_eps(f.size)
        ]
        for flow in finished:
            del self._flows[flow.flow_id]
        for flow in finished:
            self._finish(flow)
        self._recompute_rates()
        self._replan()

    def _finish(self, flow: ReferenceFlow) -> None:
        flow.remaining = 0.0
        flow.completed_at = self.sim.now
        if flow.on_complete is not None:
            flow.on_complete(flow)
