"""Unit and property tests for the simulated node-memory cache.

The load-bearing property: byte accounting never drifts.  For every
node, ``pinned + unpinned_resident + reserved_nonresident + free ==
capacity`` with every term non-negative, across any interleaving of
put / pin / release / lookup — and a pinned entry survives any amount
of eviction pressure.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster.cache import (
    DEFAULT_CACHE_RATIO,
    CacheStats,
    NodeMemoryCache,
    cache_ratio,
)


def entry_size(index: int) -> int:
    """Deterministic per-key size (cache keys must be content-stable)."""
    return (index + 1) * 10


class TestNodeMemoryCache:
    def test_miss_then_put_then_hit(self):
        cache = NodeMemoryCache([100])
        key = ("/data", 0)
        assert not cache.lookup(0, key)
        assert cache.put(0, key, 40)
        assert cache.lookup(0, key)
        assert cache.snapshot() == CacheStats(hits=1, misses=1, evictions=0)
        assert cache.used_bytes(0) == 40
        assert cache.free_bytes(0) == 60

    def test_lru_eviction_order(self):
        cache = NodeMemoryCache([100])
        a, b, c = ("/d", 0), ("/d", 1), ("/d", 2)
        cache.put(0, a, 40)
        cache.put(0, b, 40)
        cache.lookup(0, a)  # refresh a: b becomes the LRU victim
        assert cache.put(0, c, 40)
        assert cache.evictions == 1
        assert cache.lookup(0, a)
        assert not cache.lookup(0, b)
        assert cache.lookup(0, c)

    def test_put_refuses_oversized_entry(self):
        cache = NodeMemoryCache([100])
        assert not cache.put(0, ("/d", 0), 101)
        assert cache.used_bytes(0) == 0
        assert not cache.lookup(0, ("/d", 0))

    def test_pinned_entries_survive_pressure(self):
        cache = NodeMemoryCache([100])
        pin = cache.pin(0, ("/d", 0), 60)
        assert pin is not None
        cache.put(0, ("/d", 0), 60)
        # 60 of 100 bytes are pinned; an 80-byte entry can never fit.
        assert not cache.put(0, ("/d", 1), 80)
        assert cache.lookup(0, ("/d", 0))
        assert cache.evictions == 0
        pin.release()
        assert cache.put(0, ("/d", 1), 80)  # now evictable
        assert cache.evictions == 1

    def test_pin_reserves_before_residency(self):
        cache = NodeMemoryCache([100])
        pin = cache.pin(0, ("/d", 0), 70)
        assert pin is not None
        assert cache.used_bytes(0) == 70
        assert not cache.lookup(0, ("/d", 0))  # reserved, not resident
        # Releasing a never-resident reservation frees the bytes but is
        # not an eviction: no data was dropped.
        pin.release()
        assert cache.used_bytes(0) == 0
        assert cache.evictions == 0

    def test_pin_refuses_when_pins_fill_the_node(self):
        cache = NodeMemoryCache([100])
        first = cache.pin(0, ("/d", 0), 80)
        assert first is not None
        assert cache.pin(0, ("/d", 1), 30) is None
        first.release()
        assert cache.pin(0, ("/d", 1), 30) is not None

    def test_double_release_raises(self):
        cache = NodeMemoryCache([100])
        pin = cache.pin(0, ("/d", 0), 10)
        pin.release()
        with pytest.raises(RuntimeError, match="already released"):
            pin.release()

    def test_pin_is_a_context_manager(self):
        cache = NodeMemoryCache([100])
        with cache.pin(0, ("/d", 0), 10):
            assert cache.used_bytes(0) == 10
        assert cache.used_bytes(0) == 0

    def test_size_change_is_a_bug(self):
        cache = NodeMemoryCache([100])
        cache.put(0, ("/d", 0), 10)
        with pytest.raises(RuntimeError, match="content-stable"):
            cache.put(0, ("/d", 0), 20)
        with pytest.raises(RuntimeError, match="content-stable"):
            cache.pin(0, ("/d", 0), 20)

    def test_negative_sizes_and_capacities_rejected(self):
        with pytest.raises(ValueError):
            NodeMemoryCache([-1])
        cache = NodeMemoryCache([100])
        with pytest.raises(ValueError):
            cache.put(0, ("/d", 0), -1)
        with pytest.raises(ValueError):
            cache.pin(0, ("/d", 0), -1)

    def test_stats_window_subtraction(self):
        cache = NodeMemoryCache([100])
        cache.put(0, ("/d", 0), 10)
        before = cache.snapshot()
        cache.lookup(0, ("/d", 0))
        cache.lookup(0, ("/d", 1))
        assert cache.snapshot() - before == CacheStats(hits=1, misses=1)


class TestCacheRatio:
    def test_default(self, monkeypatch):
        monkeypatch.delenv("PIC_CACHE_RATIO", raising=False)
        assert cache_ratio() == DEFAULT_CACHE_RATIO

    @pytest.mark.parametrize(
        "raw,expected",
        [("0.25", 0.25), ("1.5", 1.0), ("-3", 0.0), ("junk", DEFAULT_CACHE_RATIO)],
    )
    def test_parse_and_clamp(self, monkeypatch, raw, expected):
        monkeypatch.setenv("PIC_CACHE_RATIO", raw)
        assert cache_ratio() == expected

    def test_from_cluster_budgets(self, monkeypatch):
        from repro.cluster.cluster import Cluster

        monkeypatch.delenv("PIC_CACHE_RATIO", raising=False)
        cluster = Cluster(num_nodes=2, nodes_per_rack=2)
        cache = NodeMemoryCache.from_cluster(cluster, ratio=0.25)
        assert cache.capacities == [
            int(n.spec.ram_bytes * 0.25) for n in cluster.nodes
        ]


# -- byte-accounting property ------------------------------------------------

#: op = ("put"|"pin"|"release"|"lookup", key_index)
_OPS = st.lists(
    st.tuples(
        st.sampled_from(["put", "pin", "release", "lookup"]),
        st.integers(min_value=0, max_value=7),
    ),
    max_size=60,
)


def _check_accounting(cache: NodeMemoryCache, node: int) -> None:
    entries = cache._entries[node]
    pinned = sum(e.nbytes for e in entries.values() if e.pins > 0)
    unpinned = sum(e.nbytes for e in entries.values() if e.pins == 0)
    free = cache.free_bytes(node)
    assert pinned >= 0 and unpinned >= 0 and free >= 0
    assert pinned + unpinned + free == cache.capacities[node]
    assert cache.used_bytes(node) == pinned + unpinned
    assert pinned == cache.pinned_bytes(node)


@settings(max_examples=200, deadline=None)
@given(ops=_OPS, capacity=st.integers(min_value=0, max_value=120))
def test_accounting_invariant_under_any_interleaving(ops, capacity):
    cache = NodeMemoryCache([capacity])
    open_pins: dict[int, list] = {}
    for action, idx in ops:
        key = ("/data", idx)
        if action == "put":
            cache.put(0, key, entry_size(idx))
        elif action == "pin":
            pin = cache.pin(0, key, entry_size(idx))
            if pin is not None:
                open_pins.setdefault(idx, []).append(pin)
        elif action == "release":
            pins = open_pins.get(idx)
            if pins:
                pins.pop().release()
        else:
            cache.lookup(0, key)
        _check_accounting(cache, 0)
        # Every key with an open pin is still reserved on the node —
        # eviction pressure from the other ops may never claim it.
        for pinned_idx, pins in open_pins.items():
            if pins:
                assert ("/data", pinned_idx) in cache._entries[0]
    # Counter sanity: monotonic, consistent with the snapshot API.
    assert cache.snapshot() == CacheStats(
        cache.hits, cache.misses, cache.evictions
    )
    assert min(cache.hits, cache.misses, cache.evictions) >= 0


@settings(max_examples=100, deadline=None)
@given(ops=_OPS)
def test_zero_capacity_node_caches_nothing(ops):
    cache = NodeMemoryCache([0])
    for action, idx in ops:
        key = ("/data", idx)
        if action == "put":
            assert not cache.put(0, key, entry_size(idx))
        elif action == "pin":
            assert cache.pin(0, key, entry_size(idx)) is None
        elif action == "lookup":
            assert not cache.lookup(0, key)
        _check_accounting(cache, 0)
    assert cache.hits == 0 and cache.evictions == 0
