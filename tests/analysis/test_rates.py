"""Tests for convergence-rate tools."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.analysis.rates import (
    best_effort_rate_scaling,
    contraction_factor,
    iterations_to_tolerance,
    spectral_radius,
)


class TestSpectralRadius:
    def test_diagonal_matrix(self):
        assert spectral_radius(np.diag([0.5, -0.9, 0.1])) == pytest.approx(0.9)

    def test_rotation_has_radius_one(self):
        theta = 0.3
        R = np.array(
            [[np.cos(theta), -np.sin(theta)], [np.sin(theta), np.cos(theta)]]
        )
        assert spectral_radius(R) == pytest.approx(1.0)

    def test_non_square_rejected(self):
        with pytest.raises(ValueError):
            spectral_radius(np.zeros((2, 3)))


class TestContractionFactor:
    def test_geometric_trace_recovered(self):
        trace = [1.0 * 0.7**i for i in range(10)]
        assert contraction_factor(trace) == pytest.approx(0.7)

    def test_short_trace_rejected(self):
        with pytest.raises(ValueError):
            contraction_factor([1.0])

    def test_diverging_trace_above_one(self):
        trace = [1.0 * 1.3**i for i in range(6)]
        assert contraction_factor(trace) > 1.0

    def test_zero_trace_is_zero(self):
        assert contraction_factor([0.0, 0.0, 0.0]) == 0.0

    @given(st.floats(min_value=0.05, max_value=0.95), st.integers(5, 20))
    def test_recovers_any_geometric_rate(self, rho, length):
        trace = [rho**i for i in range(length)]
        assert contraction_factor(trace) == pytest.approx(rho, rel=1e-6)


class TestBestEffortScaling:
    def test_paper_formula(self):
        # (omega * beta/alpha)^((k-1)/k)
        assert best_effort_rate_scaling(0.9, 0.5, 10) == pytest.approx(
            (0.9 * 0.5) ** (9 / 10)
        )

    def test_single_local_iteration_is_one(self):
        assert best_effort_rate_scaling(0.9, 0.25, 1) == pytest.approx(1.0)

    def test_more_partitions_smaller_factor(self):
        few = best_effort_rate_scaling(0.9, 1 / 4, 10)
        many = best_effort_rate_scaling(0.9, 1 / 16, 10)
        assert many < few

    @pytest.mark.parametrize(
        "kw",
        [
            {"omega": 0, "beta_over_alpha": 0.5, "local_iterations": 2},
            {"omega": 1, "beta_over_alpha": 0.0, "local_iterations": 2},
            {"omega": 1, "beta_over_alpha": 1.5, "local_iterations": 2},
            {"omega": 1, "beta_over_alpha": 0.5, "local_iterations": 0},
        ],
    )
    def test_invalid(self, kw):
        with pytest.raises(ValueError):
            best_effort_rate_scaling(**kw)


class TestIterationsToTolerance:
    def test_exact_count(self):
        # 0.5^k from 1.0 to <= 1e-3: k = 10
        assert iterations_to_tolerance(0.5, 1.0, 1e-3) == 10

    def test_already_converged(self):
        assert iterations_to_tolerance(0.5, 1e-6, 1e-3) == 0

    def test_invalid_rho(self):
        with pytest.raises(ValueError):
            iterations_to_tolerance(1.0, 1.0, 0.1)

    @given(
        st.floats(min_value=0.1, max_value=0.9),
        st.floats(min_value=1e-6, max_value=1e-2),
    )
    def test_returned_count_is_sufficient(self, rho, tol):
        k = iterations_to_tolerance(rho, 1.0, tol)
        assert rho**k <= tol * (1 + 1e-9)
        if k > 0:
            assert rho ** (k - 1) > tol
