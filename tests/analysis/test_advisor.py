"""Tests for the partitioning advisor."""

import numpy as np
import pytest

from repro.analysis.advisor import advise_graph, advise_linear
from repro.apps.linsolve import LinearSolverProgram, diagonally_dominant_system
from repro.apps.linsolve.datagen import system_records
from repro.apps.pagerank import local_web_graph
from repro.cluster.cluster import Cluster
from repro.pic.engine import BestEffortEngine


class TestLinearAdvice:
    def test_more_partitions_cut_more_coupling(self):
        """For a banded system, more contiguous partitions strictly cut
        more coupling mass; rho (a spectral quantity) need not be
        monotone instance-by-instance, but stays in the stable band."""
        A, _b, _x = diagonally_dominant_system(60, dominance=1.1, seed=1)
        advice = advise_linear(A, [2, 4, 10])
        eps = [a.epsilon for a in advice]
        assert eps == sorted(eps)
        assert all(0.0 < a.rho_per_round < 1.0 for a in advice)
        assert all(a.predicted_be_rounds >= 1 for a in advice)

    def test_single_partition_converges_in_one_round(self):
        A, _b, _x = diagonally_dominant_system(30, seed=2)
        (advice,) = advise_linear(A, [1])
        assert advice.predicted_be_rounds == 1
        assert advice.epsilon == 0.0

    def test_all_dominant_systems_converge(self):
        A, _b, _x = diagonally_dominant_system(40, dominance=1.05, seed=3)
        for a in advise_linear(A, [2, 4, 8]):
            assert a.converges

    def test_prediction_matches_measured_rounds(self):
        """The closed-form round count tracks the engine's measured
        best-effort rounds within a small factor."""
        A, b, _x = diagonally_dominant_system(
            60, bandwidth=2, dominance=1.1, seed=4
        )
        (advice,) = advise_linear(A, [4], tolerance=1e-6, initial_error=1.0)
        prog = LinearSolverProgram(threshold=1e-6, overlap=0)
        engine = BestEffortEngine(
            Cluster(num_nodes=4, nodes_per_rack=4), prog,
            num_partitions=4, be_max_iterations=200,
        )
        records = system_records(A, b)
        result = engine.run(records, prog.initial_model(records))
        assert advice.predicted_be_rounds / 3 <= result.be_iterations
        assert result.be_iterations <= advice.predicted_be_rounds * 3

    @pytest.mark.parametrize("bad", [[], [0], [999]])
    def test_invalid_inputs(self, bad):
        A, _b, _x = diagonally_dominant_system(20, seed=0)
        with pytest.raises(ValueError):
            advise_linear(A, bad)

    def test_non_square_rejected(self):
        with pytest.raises(ValueError):
            advise_linear(np.zeros((3, 4)), [2])


class TestGraphAdvice:
    def test_orders_by_cut_quality(self):
        records = local_web_graph(2000, seed=5)
        advice = advise_graph(records, 8, seed=3)
        eps = [a.epsilon for a in advice]
        assert eps == sorted(eps)
        assert advice[-1].partitioner == "random"

    def test_all_three_strategies_present(self):
        records = local_web_graph(500, seed=1)
        advice = advise_graph(records, 4)
        assert {a.partitioner for a in advice} == {
            "random", "contiguous", "mincut"
        }

    def test_invalid_partitions(self):
        with pytest.raises(ValueError):
            advise_graph([(0, (1,)), (1, (0,))], 0)
