"""Tests for the additive-Schwarz view of the best-effort phase."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.coupling import contiguous_assignment
from repro.analysis.schwarz import (
    block_jacobi_preconditioner,
    schwarz_convergence_factor,
    schwarz_iteration_matrix,
)
from repro.analysis.rates import spectral_radius
from repro.apps.linsolve import diagonally_dominant_system, jacobi_iteration_matrix


class TestPreconditioner:
    def test_extracts_diagonal_blocks(self):
        A = np.arange(16, dtype=float).reshape(4, 4) + 1
        B = block_jacobi_preconditioner(A, contiguous_assignment(4, 2))
        assert np.array_equal(B[:2, :2], A[:2, :2])
        assert np.array_equal(B[2:, 2:], A[2:, 2:])
        assert np.all(B[:2, 2:] == 0)
        assert np.all(B[2:, :2] == 0)

    def test_single_partition_is_full_matrix(self):
        A, _b, _x = diagonally_dominant_system(10, seed=0)
        B = block_jacobi_preconditioner(A, np.zeros(10, dtype=int))
        assert np.array_equal(B, A)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            block_jacobi_preconditioner(np.zeros((3, 3)), np.zeros(4, dtype=int))


class TestIterationMatrix:
    def test_exact_solve_when_one_block(self):
        A, _b, _x = diagonally_dominant_system(10, seed=1)
        M = schwarz_iteration_matrix(A, np.zeros(10, dtype=int))
        assert np.allclose(M, 0.0, atol=1e-12)

    def test_blockwise_identity_rows(self):
        """The in-block part of the residual is solved exactly: the
        iteration matrix only carries cross-block error."""
        A, _b, _x = diagonally_dominant_system(12, bandwidth=2, seed=2)
        assign = contiguous_assignment(12, 3)
        M = schwarz_iteration_matrix(A, assign)
        B = block_jacobi_preconditioner(A, assign)
        # M = I - B^{-1}A, so B M = B - A (the off-block negation).
        assert np.allclose(B @ M, B - A)


class TestConvergenceFactor:
    def test_block_solves_beat_pointwise_jacobi(self):
        A, _b, _x = diagonally_dominant_system(60, bandwidth=2, dominance=1.1, seed=3)
        assign = contiguous_assignment(60, 6)
        rho_point = spectral_radius(jacobi_iteration_matrix(A))
        rho_block = schwarz_convergence_factor(A, assign)
        assert rho_block < rho_point

    def test_fewer_blocks_converge_faster(self):
        A, _b, _x = diagonally_dominant_system(60, bandwidth=2, dominance=1.1, seed=3)
        rho_2 = schwarz_convergence_factor(A, contiguous_assignment(60, 2))
        rho_10 = schwarz_convergence_factor(A, contiguous_assignment(60, 10))
        assert rho_2 < rho_10

    @settings(max_examples=15, deadline=None)
    @given(st.integers(12, 48), st.integers(2, 6), st.integers(0, 30))
    def test_always_contracts_for_dominant_systems(self, n, p, seed):
        """Diagonal dominance guarantees the best-effort rounds converge
        — the paper's Section VI-B claim, verified per instance."""
        A, _b, _x = diagonally_dominant_system(n, dominance=1.2, seed=seed)
        rho = schwarz_convergence_factor(A, contiguous_assignment(n, p))
        assert rho < 1.0

    def test_empirical_rate_matches_prediction(self):
        """Simulated best-effort rounds on a linear problem contract at
        the predicted spectral rate."""
        A, b, x_star = diagonally_dominant_system(40, bandwidth=2, dominance=1.1, seed=4)
        assign = contiguous_assignment(40, 4)
        rho = schwarz_convergence_factor(A, assign)
        B = block_jacobi_preconditioner(A, assign)
        x = np.zeros(40)
        errors = []
        for _ in range(20):
            x = x + np.linalg.solve(B, b - A @ x)
            errors.append(np.linalg.norm(x - x_star))
        observed = (errors[-1] / errors[9]) ** (1 / 10)
        assert observed == pytest.approx(rho, abs=0.1)
