"""Tests for the nearly-uncoupled structure measurements."""

import numpy as np
import pytest

from repro.analysis.coupling import (
    block_structure_report,
    contiguous_assignment,
    coupling_epsilon,
    coupling_matrix,
    graph_coupling_epsilon,
)


def block_diag_matrix(blocks=3, size=4, eps=0.0, seed=0):
    """Dense blocks on the diagonal, eps everywhere else."""
    n = blocks * size
    rng = np.random.default_rng(seed)
    A = np.full((n, n), eps)
    for b in range(blocks):
        lo = b * size
        A[lo : lo + size, lo : lo + size] = rng.uniform(0.5, 1.0, (size, size))
    return A


class TestContiguousAssignment:
    def test_even_split(self):
        assert list(contiguous_assignment(6, 3)) == [0, 0, 1, 1, 2, 2]

    def test_uneven_split_covers_all(self):
        out = contiguous_assignment(10, 3)
        assert len(out) == 10
        assert set(out) == {0, 1, 2}

    def test_invalid(self):
        with pytest.raises(ValueError):
            contiguous_assignment(0, 2)


class TestCouplingMatrix:
    def test_perfect_blocks_have_zero_off_diagonal(self):
        A = block_diag_matrix(eps=0.0)
        assign = contiguous_assignment(12, 3)
        C = coupling_matrix(A, assign, 3)
        off = C - np.diag(np.diag(C))
        assert np.all(off == 0)
        assert np.all(np.diag(C) > 0)

    def test_own_diagonal_excluded(self):
        A = np.eye(4) * 100  # only scaling entries
        C = coupling_matrix(A, contiguous_assignment(4, 2), 2)
        assert C.sum() == 0

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            coupling_matrix(np.zeros((3, 4)), np.zeros(3, dtype=int), 2)
        with pytest.raises(ValueError):
            coupling_matrix(np.zeros((3, 3)), np.zeros(4, dtype=int), 2)
        with pytest.raises(ValueError):
            coupling_matrix(np.zeros((3, 3)), np.array([0, 0, 5]), 2)


class TestEpsilon:
    def test_zero_for_decoupled(self):
        A = block_diag_matrix(eps=0.0)
        assert coupling_epsilon(A, contiguous_assignment(12, 3), 3) == 0.0

    def test_grows_with_cross_coupling(self):
        assign = contiguous_assignment(12, 3)
        weak = coupling_epsilon(block_diag_matrix(eps=0.01), assign, 3)
        strong = coupling_epsilon(block_diag_matrix(eps=0.2), assign, 3)
        assert 0 < weak < strong < 1

    def test_bad_partition_has_high_epsilon(self):
        A = block_diag_matrix(eps=0.0)
        good = contiguous_assignment(12, 3)
        bad = np.arange(12) % 3  # interleaved: splits every block
        assert coupling_epsilon(A, bad, 3) > coupling_epsilon(A, good, 3)

    def test_all_zero_matrix(self):
        assert coupling_epsilon(np.zeros((6, 6)), contiguous_assignment(6, 2), 2) == 0.0


class TestReport:
    def test_worst_pair_identified(self):
        A = block_diag_matrix(eps=0.0)
        A[0, 11] = 5.0  # strong coupling block 0 -> block 2
        report = block_structure_report(A, contiguous_assignment(12, 3), 3)
        assert report.worst_pair == (0, 2)
        assert report.worst_pair_mass == pytest.approx(5.0)
        assert report.block_masses.shape == (3, 3)


class TestGraphEpsilon:
    def test_ring_graph(self):
        records = [(v, ((v + 1) % 8,)) for v in range(8)]
        assignment = {v: v // 4 for v in range(8)}
        # Exactly two edges cross: 3->4 and 7->0.
        assert graph_coupling_epsilon(records, assignment) == pytest.approx(2 / 8)

    def test_empty_graph(self):
        assert graph_coupling_epsilon([], {}) == 0.0
