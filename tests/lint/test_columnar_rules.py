"""PIC304: ColumnBatch column views escaping or mutated in place.

Seeded bugs must be flagged; the near-misses are exactly the idioms the
real apps use (k-means emits a read-only view of the input point
matrix; smoothing rebuilds fresh arrays before emitting) and must stay
silent.
"""

import textwrap

from repro.lint import lint_source


def findings(source):
    return [
        (f.rule, f.line)
        for f in lint_source(textwrap.dedent(source))
        if f.rule.startswith("PIC3")
    ]


def rules(source):
    return [rule for rule, _line in findings(source)]


class TestPartitionColumnEscape:
    def test_partition_returning_column_views_flagged(self):
        src = """
        from repro.mapreduce.columnar import ColumnBatch
        from repro.pic.api import PICProgram

        class P(PICProgram):
            def partition(self, records, model, n):
                return [(ColumnBatch(records.keys, records.values), dict(model))]
        """
        assert rules(src) == ["PIC304", "PIC304"]  # keys and values both leak

    def test_partition_returning_one_column_flagged_once(self):
        src = """
        from repro.pic.api import PICProgram

        class P(PICProgram):
            def partition(self, records, model, n):
                return [(records.values, dict(model)) for _ in range(n)]
        """
        assert rules(src) == ["PIC304"]

    def test_finding_anchored_at_return_site(self):
        src = """
        from repro.pic.api import PICProgram

        class P(PICProgram):
            def partition(self, records, n):
                parts = [records.keys]
                return parts
        """
        [(rule, line)] = findings(src)
        assert rule == "PIC304"
        assert line == 7  # the return statement

    def test_near_miss_non_column_attribute_silent(self):
        # Escaping arbitrary attributes is not this rule's business;
        # only the numpy-backed column slots of a batch are dangerous.
        src = """
        from repro.pic.api import PICProgram

        class P(PICProgram):
            def partition(self, records, model, n):
                return [(records.metadata, dict(model))]
        """
        assert rules(src) == []

    def test_near_miss_rebuilt_rows_silent(self):
        src = """
        from repro.mapreduce.columnar import ColumnBatch
        from repro.pic.api import PICProgram

        class P(PICProgram):
            def partition(self, records, model, n):
                rows = list(records)
                return [
                    (ColumnBatch.from_rows(rows[i::n]), dict(model))
                    for i in range(n)
                ]
        """
        assert rules(src) == []


class TestCallbackColumnMutation:
    def test_batch_map_filling_values_column_flagged(self):
        src = """
        from repro.pic.api import PICProgram

        class P(PICProgram):
            def batch_map(self, ctx, records):
                records.values.fill(0.0)
        """
        assert rules(src) == ["PIC304"]

    def test_batch_reduce_sorting_grouped_keys_flagged(self):
        src = """
        from repro.pic.api import PICProgram

        class P(PICProgram):
            def batch_reduce(self, ctx, grouped):
                grouped.sorted_keys.sort()
        """
        assert rules(src) == ["PIC304"]

    def test_combine_batch_mutating_starts_flagged(self):
        src = """
        from repro.pic.api import PICProgram

        class P(PICProgram):
            def combine_batch(self, grouped):
                grouped.starts.fill(0)
                return None
        """
        assert rules(src) == ["PIC304"]

    def test_near_miss_emitting_read_only_view_silent(self):
        # The k-means idiom: emit a batch aliasing the *unmodified*
        # input columns.  Zero-copy reads are the whole point.
        src = """
        from repro.mapreduce.columnar import ArrayColumn, ColumnBatch
        from repro.pic.api import PICProgram

        class P(PICProgram):
            def batch_map(self, ctx, records):
                points = records.values.data
                ctx.emit_batch(ColumnBatch(records.keys, ArrayColumn(points)))
        """
        assert rules(src) == []

    def test_near_miss_writing_fresh_copy_silent(self):
        src = """
        import numpy as np

        from repro.mapreduce.columnar import ArrayColumn, ColumnBatch
        from repro.pic.api import PICProgram

        class P(PICProgram):
            def batch_map(self, ctx, records):
                out = np.array(records.values.data)
                out.fill(1.0)
                ctx.emit_batch(ColumnBatch(records.keys, ArrayColumn(out)))
        """
        assert rules(src) == []

    def test_combine_batch_record_mutation_also_pic303(self):
        # clear() on the grouped object itself is generic record
        # mutation (PIC303), not a column write.
        src = """
        from repro.pic.api import PICProgram

        class P(PICProgram):
            def combine_batch(self, grouped):
                grouped.clear()
                return None
        """
        assert rules(src) == ["PIC303"]
