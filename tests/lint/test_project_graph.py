"""Call-graph resolution over the real source tree.

These tests pin the acceptance behaviour of the whole-program layer:
every PICProgram subclass in ``src/repro/apps`` is discovered, and the
engine/runner call sites that invoke user callbacks resolve to each
app's overrides (or fall back to the base implementation when an app
does not override).
"""

from pathlib import Path

import pytest

from repro.lint.engine import iter_python_files
from repro.lint.module import LintModule
from repro.lint.project.analysis import ProjectAnalysis
from repro.lint.project.graph import module_name_for_path
from repro.lint.project.ir import build_module_ir

SRC = Path(__file__).resolve().parents[2] / "src"

APP_PROGRAMS = {
    "repro.apps.kmeans.program.KMeansProgram",
    "repro.apps.linsolve.program.LinearSolverProgram",
    "repro.apps.neuralnet.program.NeuralNetProgram",
    "repro.apps.pagerank.program.PageRankProgram",
    "repro.apps.smoothing.program.ImageSmoothingProgram",
}


@pytest.fixture(scope="module")
def analysis():
    irs = []
    for path in iter_python_files([SRC]):
        module = LintModule.from_bytes(str(path), path.read_bytes())
        name, is_pkg = module_name_for_path(path)
        irs.append(build_module_ir(module.tree, str(path), name, is_pkg))
    return ProjectAnalysis(irs)


def _callees(analysis, fid):
    return {callee for callee, _line, _col in analysis.summaries[fid].direct_calls}


class TestProgramDiscovery:
    def test_all_five_apps_discovered(self, analysis):
        programs = set(analysis.graph.program_classes())
        assert APP_PROGRAMS <= programs
        assert "repro.pic.api.PICProgram" in programs

    def test_reexport_chase_resolves_package_alias(self, analysis):
        # `from repro.pic import PICProgram` must land on the defining
        # module, not the package __init__.
        assert (
            analysis.graph.chase("repro.pic.PICProgram") == "repro.pic.api.PICProgram"
        )


class TestEngineCallbackResolution:
    def test_partition_call_reaches_every_override(self, analysis):
        callees = _callees(analysis, "repro.pic.engine::BestEffortEngine._partition")
        assert {
            "repro.apps.linsolve.program::LinearSolverProgram.partition",
            "repro.apps.pagerank.program::PageRankProgram.partition",
            "repro.apps.smoothing.program::ImageSmoothingProgram.partition",
            "repro.pic.api::PICProgram.partition",
        } <= callees

    def test_non_overriding_apps_resolve_to_base_partition(self, analysis):
        # kmeans and neuralnet inherit partition(); the dispatch edge
        # must go to PICProgram.partition, not to phantom overrides.
        callees = _callees(analysis, "repro.pic.engine::BestEffortEngine._partition")
        assert "repro.apps.kmeans.program::KMeansProgram.partition" not in callees
        assert "repro.apps.neuralnet.program::NeuralNetProgram.partition" not in callees

    def test_mapper_dispatch_reaches_every_apps_batch_map(self, analysis):
        callees = _callees(analysis, "repro.mapreduce.job::JobSpec.run_mapper")
        expected = {f"{cls.rsplit('.', 1)[0]}::{cls.rsplit('.', 1)[1]}.batch_map"
                    for cls in APP_PROGRAMS}
        assert expected <= callees

    def test_mapper_dispatch_includes_pagerank_internal_phases(self, analysis):
        # PageRank's batch_map forwards to per-phase helpers; the
        # constructor-kwarg binding layer must surface them too.
        callees = _callees(analysis, "repro.mapreduce.job::JobSpec.run_mapper")
        assert "repro.apps.pagerank.program::PageRankProgram._map_aggregate" in callees
        assert "repro.apps.pagerank.program::PageRankProgram._map_propagate" in callees

    def test_method_candidates_for_merge(self, analysis):
        candidates = set(
            analysis.graph.method_candidates("repro.pic.api.PICProgram", "merge")
        )
        assert "repro.apps.linsolve.program::LinearSolverProgram.merge" in candidates
        assert "repro.apps.smoothing.program::ImageSmoothingProgram.merge" in candidates


class TestSimulationFacts:
    def test_shuffle_arrival_is_a_flow_continuation(self, analysis):
        conts = analysis.flow_continuations()
        assert (
            "repro.mapreduce.runner::_JobState._make_bucket_arrival.<locals>.on_arrival"
            in conts
        )

    def test_dfs_block_callbacks_are_flow_continuations(self, analysis):
        conts = analysis.flow_continuations()
        assert (
            "repro.dfs.dfs::DistributedFileSystem.write.<locals>.block_part_done"
            in conts
        )

    def test_handler_reachable_covers_runner_internals(self, analysis):
        reached = analysis.handler_reachable()
        assert any(fid.startswith("repro.mapreduce.runner::") for fid in reached)
        assert len(reached) > 20
