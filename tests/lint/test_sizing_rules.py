"""PIC201/PIC202: byte-accounting rules."""

import textwrap

from repro.lint import lint_source


def rules_found(source):
    return [f.rule for f in lint_source(textwrap.dedent(source))]


class TestGetsizeof:
    def test_sys_getsizeof_flagged(self):
        assert rules_found(
            """
            import sys

            def size(records):
                return sys.getsizeof(records)
            """
        ) == ["PIC201"]

    def test_from_import_flagged(self):
        assert rules_found(
            """
            from sys import getsizeof

            def size(records):
                return getsizeof(records)
            """
        ) == ["PIC201"]

    def test_sizing_helpers_are_fine(self):
        assert rules_found(
            """
            from repro.util.sizing import sizeof_records

            def size(records):
                return sizeof_records(records)
            """
        ) == []


class TestRawLenByteCount:
    def test_len_as_nbytes_kwarg_flagged(self):
        assert rules_found(
            """
            def ship(sim, records):
                sim.transfer("a", "b", nbytes=len(records))
            """
        ) == ["PIC202"]

    def test_len_as_flow_size_flagged(self):
        assert rules_found(
            """
            from repro.cluster.flows import Flow

            def ship(records):
                return Flow(src=0, dst=1, size=len(records))
            """
        ) == ["PIC202"]

    def test_len_positional_in_start_flow_flagged(self):
        assert rules_found(
            """
            def ship(net, records):
                net.start_flow("a", "b", len(records))
            """
        ) == ["PIC202"]

    def test_getsizeof_as_size_bytes_flagged(self):
        findings = rules_found(
            """
            import sys

            def ship(sim, payload):
                sim.account(size_bytes=sys.getsizeof(payload))
            """
        )
        # Both the getsizeof call itself and its use as a byte count.
        assert sorted(findings) == ["PIC201", "PIC202"]

    def test_sizeof_records_as_nbytes_is_fine(self):
        assert rules_found(
            """
            from repro.util.sizing import sizeof_records

            def ship(sim, records):
                sim.transfer("a", "b", nbytes=sizeof_records(records))
            """
        ) == []

    def test_nbytes_attribute_is_fine(self):
        assert rules_found(
            """
            def ship(sim, split):
                sim.transfer("a", "b", nbytes=split.nbytes)
            """
        ) == []

    def test_len_for_record_count_is_fine(self):
        # len() is legitimate when it counts records, not bytes.
        assert rules_found(
            """
            def count(records):
                return len(records)
            """
        ) == []

    def test_unrelated_size_kwarg_is_fine(self):
        # size= on a non-Flow constructor is not a byte count.
        assert rules_found(
            """
            def build(items):
                return Batch(size=len(items))
            """
        ) == []
