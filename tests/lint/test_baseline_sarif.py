"""Baseline burn-down workflow and SARIF serialization."""

import json

from repro.lint.baseline import (
    finding_fingerprint,
    load_baseline,
    split_by_baseline,
    write_baseline,
)
from repro.lint.cli import main
from repro.lint.model import Finding
from repro.lint.sarif import SARIF_VERSION, to_sarif


def _finding(path="src/app.py", line=3, rule="PIC301", message="leaks records"):
    return Finding(path=path, line=line, col=1, rule=rule, message=message)


class TestFingerprints:
    def test_fingerprint_ignores_line_number(self):
        # Edits above a finding shift its line; the baseline must not
        # resurrect it for that.
        assert finding_fingerprint(_finding(line=3)) == finding_fingerprint(
            _finding(line=30)
        )

    def test_fingerprint_distinguishes_rule_and_path(self):
        base = finding_fingerprint(_finding())
        assert finding_fingerprint(_finding(rule="PIC302")) != base
        assert finding_fingerprint(_finding(path="src/other.py")) != base

    def test_fingerprint_uses_posix_relative_form(self):
        # Fingerprints must be stable across checkouts: the same file
        # reached via an explicit ./ prefix hashes identically.
        assert finding_fingerprint(
            _finding(path="./src/app.py")
        ) == finding_fingerprint(_finding(path="src/app.py"))


class TestBaselineRoundTrip:
    def test_write_then_load(self, tmp_path):
        path = tmp_path / "baseline.json"
        write_baseline(path, [_finding(), _finding(), _finding(rule="PIC302")])
        baseline = load_baseline(path)
        assert baseline[finding_fingerprint(_finding())] == 2
        assert baseline[finding_fingerprint(_finding(rule="PIC302"))] == 1

    def test_split_honours_per_fingerprint_counts(self, tmp_path):
        path = tmp_path / "baseline.json"
        write_baseline(path, [_finding()])
        new, old = split_by_baseline(
            [_finding(), _finding(line=9)], load_baseline(path)
        )
        # Only one occurrence was accepted; the duplicate is new.
        assert len(old) == 1
        assert len(new) == 1

    def test_unsupported_version_rejected(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text('{"version": 99, "fingerprints": {}}', encoding="utf-8")
        try:
            load_baseline(path)
        except ValueError:
            pass
        else:
            raise AssertionError("expected ValueError")


class TestBaselineCli:
    def test_write_baseline_then_gate_passes(self, tmp_path, capsys):
        bad = tmp_path / "app.py"
        bad.write_text(
            "from repro.pic.api import PICProgram\n\n\n"
            "class P(PICProgram):\n"
            "    def merge_element(self, key, values):\n"
            "        values.sort()\n"
            "        return values[0]\n",
            encoding="utf-8",
        )
        baseline = tmp_path / "baseline.json"
        assert main([str(bad), "--no-cache"]) == 1
        assert main([str(bad), "--no-cache", "--write-baseline", str(baseline)]) == 0
        assert main([str(bad), "--no-cache", "--baseline", str(baseline)]) == 0
        out = capsys.readouterr().out
        assert "(1 baselined)" in out

    def test_new_finding_still_fails_the_gate(self, tmp_path, capsys):
        bad = tmp_path / "app.py"
        bad.write_text(
            "from repro.pic.api import PICProgram\n\n\n"
            "class P(PICProgram):\n"
            "    def merge_element(self, key, values):\n"
            "        values.sort()\n"
            "        return values[0]\n",
            encoding="utf-8",
        )
        baseline = tmp_path / "baseline.json"
        assert main([str(bad), "--no-cache", "--write-baseline", str(baseline)]) == 0
        bad.write_text(
            bad.read_text()
            + "\n    def merge(self, models):\n"
            + "        models[0].update(models[1])\n"
            + "        return models[0]\n",
            encoding="utf-8",
        )
        assert main([str(bad), "--no-cache", "--baseline", str(baseline)]) == 1


class TestSarif:
    def test_sarif_shape(self):
        log = to_sarif([_finding()], [])
        assert log["version"] == SARIF_VERSION
        (run,) = log["runs"]
        rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
        assert {"PIC001", "PIC301", "PIC302", "PIC303", "PIC401", "PIC402"} <= rule_ids
        (result,) = run["results"]
        assert result["ruleId"] == "PIC301"
        loc = result["locations"][0]["physicalLocation"]
        assert loc["artifactLocation"]["uri"] == "src/app.py"
        assert loc["region"]["startLine"] == 3
        assert result["partialFingerprints"]["picLint/v1"] == finding_fingerprint(
            _finding()
        )

    def test_severity_mapping_is_family_consistent(self):
        # PIC5xx (lifecycle) and PIC7xx (interference) are correctness
        # errors; everything else ships as a warning.
        log = to_sarif(
            [
                _finding(rule="PIC001"),
                _finding(rule="PIC501"),
                _finding(rule="PIC702"),
            ],
            [],
        )
        (run,) = log["runs"]
        levels = {r["ruleId"]: r["level"] for r in run["results"]}
        assert levels == {
            "PIC001": "warning",
            "PIC501": "error",
            "PIC702": "error",
        }
        for rule in run["tool"]["driver"]["rules"]:
            level = rule["defaultConfiguration"]["level"]
            expected = "error" if rule["id"][:4] in ("PIC5", "PIC7") else "warning"
            assert level == expected, rule["id"]
            props = rule["properties"]
            assert props["problem.severity"] == level
            score = float(props["security-severity"])
            assert (score >= 7.0) == (level == "error")

    def test_errors_become_tool_notifications(self):
        log = to_sarif([], ["src/bad.py: syntax error: invalid syntax (line 1)"])
        (run,) = log["runs"]
        (invocation,) = run["invocations"]
        assert invocation["executionSuccessful"] is False
        assert invocation["toolExecutionNotifications"][0]["level"] == "error"

    def test_cli_sarif_output_file(self, tmp_path):
        clean = tmp_path / "ok.py"
        clean.write_text("VALUE = 1\n", encoding="utf-8")
        out = tmp_path / "report.sarif"
        assert main([str(clean), "--no-cache", "--format", "sarif",
                     "--output", str(out)]) == 0
        log = json.loads(out.read_text(encoding="utf-8"))
        assert log["version"] == SARIF_VERSION
        assert log["runs"][0]["results"] == []
