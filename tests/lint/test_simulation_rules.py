"""PIC401/PIC402: simulated-traffic integrity.

PIC401 — a callback registered as a flow continuation must only run
when the simulated transfer completes; invoking it synchronously
delivers the payload at zero simulated cost.

PIC402 — event handlers must not reach into the private state of the
simulation substrate (Simulation, FlowNetwork, Cluster, ...) while the
event loop is dispatching.
"""

import textwrap

from repro.lint import lint_source


def rules(source):
    return [
        f.rule
        for f in lint_source(textwrap.dedent(source))
        if f.rule.startswith("PIC4")
    ]


class TestTrafficBypass:
    def test_synchronous_invocation_of_registered_continuation_flagged(self):
        src = """
        class Shuffle:
            def send(self, cluster, payload, sink):
                def on_done(flow):
                    sink.append(payload)
                cluster.transfer(0, 1, 100.0, "shuffle", on_done)
                on_done(None)
        """
        assert rules(src) == ["PIC401"]

    def test_bypass_through_callback_factory_flagged(self):
        # The continuation is built by a helper; the registration and
        # the bypassing call both go through the returned reference.
        src = """
        class Shuffle:
            def __init__(self):
                self.buf = []

            def _make_arrival(self, payload):
                def on_arrival(flow):
                    self.buf.append(payload)
                return on_arrival

            def send(self, cluster, payload):
                cb = self._make_arrival(payload)
                cluster.transfer(0, 1, 100.0, "shuffle", cb)
                cb(None)
        """
        assert rules(src) == ["PIC401"]

    def test_bypass_through_forwarding_registrar_flagged(self):
        # send_with() forwards its parameter into transfer(); callbacks
        # passed to it become continuations transitively.
        src = """
        def send_with(cluster, nbytes, done):
            cluster.transfer(0, 1, nbytes, "shuffle", done)

        class Shuffle:
            def go(self, cluster, sink):
                def fin(flow):
                    sink.append(1)
                send_with(cluster, 10.0, fin)
                fin(None)
        """
        assert rules(src) == ["PIC401"]

    def test_near_miss_registration_only_silent(self):
        src = """
        class Shuffle:
            def send(self, cluster, payload, sink):
                def on_done(flow):
                    sink.append(payload)
                cluster.transfer(0, 1, 100.0, "shuffle", on_done)
        """
        assert rules(src) == []

    def test_on_ready_continuation_invoked_synchronously_flagged(self):
        # SplitGate.on_ready(split, cb) parks cb until the split's last
        # shuffle flow lands; calling it directly merges the bucket at
        # zero simulated cost.
        src = """
        class Merger:
            def arm(self, gate, sink):
                def merge(split):
                    sink.append(split)
                gate.on_ready(3, merge)
                merge(3)
        """
        assert rules(src) == ["PIC401"]

    def test_near_miss_on_ready_registration_only_silent(self):
        src = """
        class Merger:
            def arm(self, gate, sink):
                def merge(split):
                    sink.append(split)
                gate.on_ready(3, merge)
        """
        assert rules(src) == []

    def test_near_miss_plain_helper_call_silent(self):
        # Synchronously calling a function that was never registered as
        # a continuation is ordinary control flow.
        src = """
        class Shuffle:
            def send(self, cluster, payload, sink):
                def log(flow):
                    sink.append(payload)
                cluster.transfer(0, 1, 100.0, "shuffle", None)
                log(None)
        """
        assert rules(src) == []


class TestReentrantHandlerMutation:
    def test_handler_clearing_simulator_queue_flagged(self):
        src = """
        class Driver:
            def __init__(self, sim):
                self.sim = sim

            def arm(self):
                self.sim.schedule(1.0, self._tick)

            def _tick(self):
                self.sim._queue.clear()
        """
        assert rules(src) == ["PIC402"]

    def test_mutation_reached_through_helper_flagged(self):
        src = """
        class Driver:
            def __init__(self, sim):
                self.sim = sim

            def arm(self):
                self.sim.schedule(1.0, self._tick)

            def _tick(self):
                self._drain()

            def _drain(self):
                self.sim._queue.clear()
        """
        assert rules(src) == ["PIC402"]

    def test_near_miss_handler_mutating_own_state_silent(self):
        src = """
        class Driver:
            def __init__(self, sim):
                self.sim = sim
                self._buckets = []

            def arm(self):
                self.sim.schedule(1.0, self._tick)

            def _tick(self):
                self._buckets.clear()
        """
        assert rules(src) == []

    def test_near_miss_substrate_implementation_module_exempt(self):
        # A module that defines the substrate class is its
        # implementation; touching private state there is the point.
        src = """
        class FlowNetwork:
            def __init__(self, sim):
                self.sim = sim
                self._flows = {}

            def arm(self):
                self.sim.schedule(1.0, self._sweep)

            def _sweep(self):
                self._flows.clear()
        """
        assert rules(src) == []

    def test_near_miss_public_attribute_write_silent(self):
        src = """
        class Driver:
            def __init__(self, sim):
                self.sim = sim

            def arm(self):
                self.sim.schedule(1.0, self._tick)

            def _tick(self):
                self.sim.now = 0.0
        """
        assert rules(src) == []
