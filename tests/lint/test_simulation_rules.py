"""PIC401/PIC402: simulated-traffic integrity.

PIC401 — a callback registered as a flow continuation must only run
when the simulated transfer completes; invoking it synchronously
delivers the payload at zero simulated cost.

PIC402 — event handlers must not reach into the private state of the
simulation substrate (Simulation, FlowNetwork, Cluster, ...) while the
event loop is dispatching.
"""

import textwrap

from repro.lint import lint_source


def rules(source):
    return [
        f.rule
        for f in lint_source(textwrap.dedent(source))
        if f.rule.startswith("PIC4")
    ]


class TestTrafficBypass:
    def test_synchronous_invocation_of_registered_continuation_flagged(self):
        src = """
        class Shuffle:
            def send(self, cluster, payload, sink):
                def on_done(flow):
                    sink.append(payload)
                cluster.transfer(0, 1, 100.0, "shuffle", on_done)
                on_done(None)
        """
        assert rules(src) == ["PIC401"]

    def test_bypass_through_callback_factory_flagged(self):
        # The continuation is built by a helper; the registration and
        # the bypassing call both go through the returned reference.
        src = """
        class Shuffle:
            def __init__(self):
                self.buf = []

            def _make_arrival(self, payload):
                def on_arrival(flow):
                    self.buf.append(payload)
                return on_arrival

            def send(self, cluster, payload):
                cb = self._make_arrival(payload)
                cluster.transfer(0, 1, 100.0, "shuffle", cb)
                cb(None)
        """
        assert rules(src) == ["PIC401"]

    def test_bypass_through_forwarding_registrar_flagged(self):
        # send_with() forwards its parameter into transfer(); callbacks
        # passed to it become continuations transitively.
        src = """
        def send_with(cluster, nbytes, done):
            cluster.transfer(0, 1, nbytes, "shuffle", done)

        class Shuffle:
            def go(self, cluster, sink):
                def fin(flow):
                    sink.append(1)
                send_with(cluster, 10.0, fin)
                fin(None)
        """
        assert rules(src) == ["PIC401"]

    def test_near_miss_registration_only_silent(self):
        src = """
        class Shuffle:
            def send(self, cluster, payload, sink):
                def on_done(flow):
                    sink.append(payload)
                cluster.transfer(0, 1, 100.0, "shuffle", on_done)
        """
        assert rules(src) == []

    def test_on_ready_continuation_invoked_synchronously_flagged(self):
        # SplitGate.on_ready(split, cb) parks cb until the split's last
        # shuffle flow lands; calling it directly merges the bucket at
        # zero simulated cost.
        src = """
        class Merger:
            def arm(self, gate, sink):
                def merge(split):
                    sink.append(split)
                gate.on_ready(3, merge)
                merge(3)
        """
        assert rules(src) == ["PIC401"]

    def test_near_miss_on_ready_registration_only_silent(self):
        src = """
        class Merger:
            def arm(self, gate, sink):
                def merge(split):
                    sink.append(split)
                gate.on_ready(3, merge)
        """
        assert rules(src) == []

    def test_near_miss_plain_helper_call_silent(self):
        # Synchronously calling a function that was never registered as
        # a continuation is ordinary control flow.
        src = """
        class Shuffle:
            def send(self, cluster, payload, sink):
                def log(flow):
                    sink.append(payload)
                cluster.transfer(0, 1, 100.0, "shuffle", None)
                log(None)
        """
        assert rules(src) == []


class TestReentrantHandlerMutation:
    def test_handler_clearing_simulator_queue_flagged(self):
        src = """
        class Driver:
            def __init__(self, sim):
                self.sim = sim

            def arm(self):
                self.sim.schedule(1.0, self._tick)

            def _tick(self):
                self.sim._queue.clear()
        """
        assert rules(src) == ["PIC402"]

    def test_mutation_reached_through_helper_flagged(self):
        src = """
        class Driver:
            def __init__(self, sim):
                self.sim = sim

            def arm(self):
                self.sim.schedule(1.0, self._tick)

            def _tick(self):
                self._drain()

            def _drain(self):
                self.sim._queue.clear()
        """
        assert rules(src) == ["PIC402"]

    def test_near_miss_handler_mutating_own_state_silent(self):
        src = """
        class Driver:
            def __init__(self, sim):
                self.sim = sim
                self._buckets = []

            def arm(self):
                self.sim.schedule(1.0, self._tick)

            def _tick(self):
                self._buckets.clear()
        """
        assert rules(src) == []

    def test_near_miss_substrate_implementation_module_exempt(self):
        # A module that defines the substrate class is its
        # implementation; touching private state there is the point.
        src = """
        class FlowNetwork:
            def __init__(self, sim):
                self.sim = sim
                self._flows = {}

            def arm(self):
                self.sim.schedule(1.0, self._sweep)

            def _sweep(self):
                self._flows.clear()
        """
        assert rules(src) == []

    def test_near_miss_public_attribute_write_silent(self):
        src = """
        class Driver:
            def __init__(self, sim):
                self.sim = sim

            def arm(self):
                self.sim.schedule(1.0, self._tick)

            def _tick(self):
                self.sim.now = 0.0
        """
        assert rules(src) == []


class TestComponentTimerBypass:
    """PIC401 for the component-scoped completion-timer registrar."""

    def test_timer_callback_invoked_synchronously_flagged(self):
        # _arm_component_timer(comp, horizon, cb) parks cb until the
        # component's soonest flow completes; calling it directly
        # finishes the transfer at zero simulated cost.
        src = """
        class Planner:
            def plan(self, net, comp, sink):
                def fire():
                    sink.append(comp)
                net._arm_component_timer(comp, 3.0, fire)
                fire()
        """
        assert rules(src) == ["PIC401"]

    def test_near_miss_timer_registration_only_silent(self):
        src = """
        class Planner:
            def plan(self, net, comp, sink):
                def fire():
                    sink.append(comp)
                net._arm_component_timer(comp, 3.0, fire)
        """
        assert rules(src) == []


class TestPartitionStateWrites:
    """PIC402 for the union-find / dirty-set partition structures."""

    def test_handler_poking_union_find_through_alias_flagged(self):
        # The partition-maintenance structures are substrate-private by
        # *leaf name*: reaching _uf_parent through an alias that is not
        # a conventional substrate name is still a reentrant write.
        src = """
        class Driver:
            def __init__(self, sim, flows):
                self.sim = sim
                self.flows = flows

            def arm(self):
                self.sim.schedule(1.0, self._tick)

            def _tick(self):
                self.flows._uf_parent[0] = 0
        """
        assert rules(src) == ["PIC402"]

    def test_handler_marking_dirty_links_flagged(self):
        # Mutator-method writes (set.add) reach the same check as
        # subscript stores.
        src = """
        class Driver:
            def __init__(self, sim, flows):
                self.sim = sim
                self.flows = flows

            def arm(self):
                self.sim.schedule(1.0, self._tick)

            def _tick(self):
                self.flows._dirty_links.add(3)
        """
        assert rules(src) == ["PIC402"]

    def test_handler_dropping_component_entry_flagged(self):
        src = """
        class Driver:
            def __init__(self, sim, flows):
                self.sim = sim
                self.flows = flows

            def arm(self):
                self.sim.schedule(1.0, self._tick)

            def _tick(self):
                self.flows._comp.clear()
        """
        assert rules(src) == ["PIC402"]

    def test_near_miss_same_write_outside_handler_silent(self):
        # Only handler-reachable functions are PIC402 seeds; ordinary
        # setup code touching the same attribute is out of scope here.
        src = """
        class Driver:
            def __init__(self, flows):
                self.flows = flows

            def reset(self):
                self.flows._uf_parent[0] = 0
        """
        assert rules(src) == []

    def test_near_miss_handler_writing_own_adjacency_silent(self):
        # A class may keep its *own* _adj; only reaching into another
        # object's partition state is flagged.
        src = """
        class Router:
            def __init__(self, sim):
                self.sim = sim
                self._adj = {}

            def arm(self):
                self.sim.schedule(1.0, self._tick)

            def _tick(self):
                self._adj[1] = 2
        """
        assert rules(src) == []

    def test_near_miss_flow_network_owns_its_union_find_silent(self):
        src = """
        class FlowNetwork:
            def __init__(self, sim):
                self.sim = sim
                self._uf_parent = []
                self._dirty_links = set()

            def arm(self):
                self.sim.schedule(1.0, self._sweep)

            def _sweep(self):
                self._dirty_links.clear()
                self._uf_parent[0] = 0
        """
        assert rules(src) == []
