"""Input edge cases: byte-order marks, CRLF, syntax errors, empty files."""

from repro.lint.engine import lint_file, run_lint
from repro.lint.model import LintParseError
from repro.lint.module import LintModule, decode_source


class TestByteOrderMark:
    def test_bom_file_parses(self, tmp_path):
        path = tmp_path / "bom.py"
        path.write_bytes(b"\xef\xbb\xbfVALUE = 1\n")
        assert lint_file(path) == []

    def test_bom_does_not_shift_line_numbers(self, tmp_path):
        path = tmp_path / "bom.py"
        path.write_bytes(
            b"\xef\xbb\xbfimport random\n\n\ndef pick(xs):\n"
            b"    return xs[random.randrange(len(xs))]\n"
        )
        findings = lint_file(path)
        assert [f.rule for f in findings] == ["PIC002"]
        assert findings[0].line == 5

    def test_noqa_still_recognized_after_bom(self, tmp_path):
        path = tmp_path / "bom.py"
        path.write_bytes(
            b"\xef\xbb\xbfimport random\n\n\ndef pick(xs):\n"
            b"    return xs[random.randrange(len(xs))]  # pic: noqa: PIC002\n"
        )
        assert lint_file(path) == []

    def test_decode_source_strips_bom(self):
        assert decode_source("x.py", b"\xef\xbb\xbfA = 1\n") == "A = 1\n"


class TestCrlf:
    def test_crlf_file_parses_with_correct_lines(self, tmp_path):
        path = tmp_path / "crlf.py"
        path.write_bytes(
            b"import random\r\n\r\n\r\ndef pick(xs):\r\n"
            b"    return xs[random.randrange(len(xs))]\r\n"
        )
        findings = lint_file(path)
        assert [f.rule for f in findings] == ["PIC002"]
        assert findings[0].line == 5

    def test_crlf_noqa_suppresses(self, tmp_path):
        path = tmp_path / "crlf.py"
        path.write_bytes(
            b"import random\r\n\r\n\r\ndef pick(xs):\r\n"
            b"    return xs[random.randrange(len(xs))]  # pic: noqa\r\n"
        )
        assert lint_file(path) == []


class TestSyntaxErrors:
    def test_syntax_error_is_a_diagnostic_not_a_crash(self, tmp_path):
        path = tmp_path / "broken.py"
        path.write_text("def broken(:\n", encoding="utf-8")
        run = run_lint([tmp_path])
        assert run.findings == []
        assert len(run.errors) == 1
        assert "syntax error" in run.errors[0]
        assert "broken.py" in run.errors[0]

    def test_syntax_error_does_not_block_sibling_files(self, tmp_path):
        (tmp_path / "broken.py").write_text("def broken(:\n", encoding="utf-8")
        (tmp_path / "ok.py").write_text(
            "import random\n\n\ndef pick(xs):\n"
            "    return xs[random.randrange(len(xs))]\n",
            encoding="utf-8",
        )
        run = run_lint([tmp_path])
        assert [f.rule for f in run.findings] == ["PIC002"]
        assert len(run.errors) == 1

    def test_undecodable_bytes_are_a_diagnostic(self, tmp_path):
        path = tmp_path / "latin.py"
        path.write_bytes(b"# caf\xe9\nVALUE = 1\n")
        run = run_lint([tmp_path])
        assert run.findings == []
        assert len(run.errors) == 1
        assert "cannot decode" in run.errors[0]

    def test_lint_module_raises_typed_error(self):
        try:
            LintModule("broken.py", "def broken(:\n")
        except LintParseError as exc:
            assert "broken.py" in str(exc)
        else:
            raise AssertionError("expected LintParseError")


class TestEmptyFiles:
    def test_empty_init_is_clean(self, tmp_path):
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "__init__.py").write_text("", encoding="utf-8")
        run = run_lint([tmp_path])
        assert run.findings == []
        assert run.errors == []
        assert run.files_checked == 1

    def test_whitespace_only_file_is_clean(self, tmp_path):
        (tmp_path / "blank.py").write_text("\n\n   \n", encoding="utf-8")
        run = run_lint([tmp_path])
        assert run.findings == []
        assert run.errors == []
