"""Incremental cache: warm re-lints skip parsing and finish faster."""

import json

import pytest

from repro.lint.cache import cache_salt
from repro.lint.engine import run_lint

N_FILES = 50

MODULE_TEMPLATE = '''\
"""Generated fixture module {i}."""


def transform_{i}(records):
    out = []
    for key, value in records:
        out.append((key, value * {i}))
    return out


def fold_{i}(pairs):
    acc = {{}}
    for key, value in pairs:
        acc[key] = acc.get(key, 0) + value
    return acc


class Stage{i}:
    def __init__(self, width):
        self.width = width
        self.buckets = [[] for _ in range(width)]

    def route(self, key, value):
        self.buckets[hash(key) % self.width].append((key, value))

    def drain(self):
        for bucket in self.buckets:
            yield from sorted(bucket)
            bucket[:] = []
'''


@pytest.fixture()
def tree(tmp_path):
    pkg = tmp_path / "gen"
    pkg.mkdir()
    (pkg / "__init__.py").write_text("", encoding="utf-8")
    for i in range(N_FILES):
        (pkg / f"mod_{i:03d}.py").write_text(
            MODULE_TEMPLATE.format(i=i), encoding="utf-8"
        )
    return pkg


class TestWarmRuns:
    def test_warm_run_parses_nothing_and_is_faster(self, tree, tmp_path):
        cache = tmp_path / "cache.json"
        cold = run_lint([tree], cache_path=cache)
        assert cold.stats["files_parsed"] == N_FILES + 1
        assert cold.stats["cache_hits"] == 0

        warm = run_lint([tree], cache_path=cache)
        assert warm.stats["files_parsed"] == 0
        assert warm.stats["cache_hits"] == N_FILES + 1
        assert warm.stats["elapsed_s"] < cold.stats["elapsed_s"]

    def test_warm_run_reports_identical_findings(self, tree, tmp_path):
        cache = tmp_path / "cache.json"
        cold = run_lint([tree], cache_path=cache)
        warm = run_lint([tree], cache_path=cache)
        assert warm.findings == cold.findings
        assert warm.errors == cold.errors

    def test_editing_one_file_reparses_only_that_file(self, tree, tmp_path):
        cache = tmp_path / "cache.json"
        run_lint([tree], cache_path=cache)
        target = tree / "mod_007.py"
        target.write_text(target.read_text() + "\nEXTRA = 1\n", encoding="utf-8")
        rerun = run_lint([tree], cache_path=cache)
        assert rerun.stats["files_parsed"] == 1
        assert rerun.stats["cache_hits"] == N_FILES


class TestInvalidation:
    def test_parse_errors_are_negative_cached(self, tree, tmp_path):
        cache = tmp_path / "cache.json"
        bad = tree / "mod_bad.py"
        bad.write_text("def broken(:\n", encoding="utf-8")
        first = run_lint([tree], cache_path=cache)
        assert len(first.errors) == 1
        second = run_lint([tree], cache_path=cache)
        assert second.errors == first.errors
        assert second.stats["files_parsed"] == 0

    def test_deleted_files_are_pruned(self, tree, tmp_path):
        cache = tmp_path / "cache.json"
        run_lint([tree], cache_path=cache)
        (tree / "mod_000.py").unlink()
        run_lint([tree], cache_path=cache)
        entries = json.loads(cache.read_text(encoding="utf-8"))["entries"]
        assert not any(p.endswith("mod_000.py") for p in entries)

    def test_rule_set_change_invalidates_the_cache(self, tree, tmp_path):
        # The salt covers the active per-file rule IDs: running with a
        # different selection must not serve entries from a full run.
        cache = tmp_path / "cache.json"
        run_lint([tree], cache_path=cache)
        from repro.lint.rules import all_rules

        subset = [r for r in all_rules() if r.rule_id != "PIC001"]
        rerun = run_lint([tree], rules=subset, cache_path=cache)
        assert rerun.stats["cache_hits"] == 0
        assert rerun.stats["files_parsed"] == N_FILES + 1

    def test_salt_depends_on_rule_ids(self):
        assert cache_salt(["PIC001"]) != cache_salt(["PIC001", "PIC301"])
        assert cache_salt(["PIC301", "PIC001"]) == cache_salt(["PIC001", "PIC301"])

    def test_salt_depends_on_ir_schema_version(self, monkeypatch):
        # An IR schema bump (like v1 -> v2 for exception edges) must
        # invalidate caches written under the old shape.
        import repro.lint.cache as cache_mod

        current = cache_salt(["PIC001"])
        monkeypatch.setattr(cache_mod, "IR_SCHEMA_VERSION", 1_000_000)
        assert cache_salt(["PIC001"]) != current

    def test_salt_depends_on_pass_versions(self, monkeypatch):
        # Bumping any whole-program pass version (typestate, units,
        # interference) must invalidate caches written under the old
        # pass logic.
        import repro.lint.cache as cache_mod

        current = cache_salt(["PIC001"])
        for name in (
            "TYPESTATE_PASS_VERSION",
            "UNITS_PASS_VERSION",
            "INTERFERENCE_PASS_VERSION",
        ):
            with monkeypatch.context() as m:
                m.setattr(cache_mod, name, 1_000_000)
                assert cache_salt(["PIC001"]) != current, name

    def test_project_rule_set_change_invalidates_the_cache(self, tree, tmp_path):
        # Whole-program rules don't cache findings, but dropping one
        # changes the salt: its noqa bookkeeping differs per rule set.
        cache = tmp_path / "cache.json"
        run_lint([tree], cache_path=cache)
        from repro.lint.rules import all_rules

        subset = [r for r in all_rules() if r.rule_id != "PIC501"]
        rerun = run_lint([tree], rules=subset, cache_path=cache)
        assert rerun.stats["cache_hits"] == 0

    def test_project_findings_reproduce_from_cached_ir(self, tree, tmp_path):
        # The v2 IR (structured try/with/if blocks) must round-trip
        # through the JSON cache: a warm run parses nothing yet still
        # produces the whole-program typestate finding.
        cache = tmp_path / "cache.json"
        leaky = tree / "mod_leak.py"
        leaky.write_text(
            "def read_all(path):\n"
            "    fh = open(path)\n"
            "    try:\n"
            "        return fh.read()\n"
            "    except ValueError:\n"
            "        return None\n",
            encoding="utf-8",
        )
        cold = run_lint([tree], cache_path=cache)
        cold_rules = sorted(f.rule for f in cold.findings if f.path == str(leaky))
        assert "PIC501" in cold_rules

        warm = run_lint([tree], cache_path=cache)
        assert warm.stats["files_parsed"] == 0
        warm_rules = sorted(f.rule for f in warm.findings if f.path == str(leaky))
        assert warm_rules == cold_rules

    def test_interference_findings_reproduce_from_cached_ir(self, tree, tmp_path):
        # PIC7xx runs from converged IR: a warm run parses nothing yet
        # still reports the cross-job handler write.
        cache = tmp_path / "cache.json"
        racy = tree / "mod_racy.py"
        racy.write_text(
            "class _JobState:\n"
            "    def __init__(self, app_id: int) -> None:\n"
            "        self.app_id = app_id\n"
            "        self.arrivals = 0\n"
            "\n"
            "\n"
            "class Runner:\n"
            "    def submit(self, sim, sibling: _JobState) -> None:\n"
            "        sim.schedule(1.0, lambda: self._poke(sibling))\n"
            "\n"
            "    def _poke(self, sibling: _JobState) -> None:\n"
            "        sibling.arrivals = sibling.arrivals + 1\n",
            encoding="utf-8",
        )
        cold = run_lint([tree], cache_path=cache)
        cold_rules = sorted(f.rule for f in cold.findings if f.path == str(racy))
        assert "PIC701" in cold_rules

        warm = run_lint([tree], cache_path=cache)
        assert warm.stats["files_parsed"] == 0
        warm_rules = sorted(f.rule for f in warm.findings if f.path == str(racy))
        assert warm_rules == cold_rules

    def test_corrupt_cache_file_is_ignored(self, tree, tmp_path):
        cache = tmp_path / "cache.json"
        cache.write_text("{not json", encoding="utf-8")
        run = run_lint([tree], cache_path=cache)
        assert run.stats["files_parsed"] == N_FILES + 1
        # ... and the run rewrites it into a usable cache.
        warm = run_lint([tree], cache_path=cache)
        assert warm.stats["files_parsed"] == 0
