"""PIC101/PIC102: task-spec picklability and callback purity."""

import textwrap

from repro.lint import lint_source


def rules_found(source):
    return [f.rule for f in lint_source(textwrap.dedent(source))]


class TestTaskSpecPicklability:
    def test_lambda_in_jobspec_flagged(self):
        assert rules_found(
            """
            from repro.mapreduce.job import JobSpec

            spec = JobSpec(mapper=lambda k, v: [(k, v)])
            """
        ) == ["PIC101"]

    def test_lambda_positional_in_jobspec_flagged(self):
        assert rules_found(
            """
            from repro.mapreduce.job import JobSpec

            spec = JobSpec(lambda k, v: [(k, v)])
            """
        ) == ["PIC101"]

    def test_nested_function_in_jobspec_flagged(self):
        assert rules_found(
            """
            from repro.mapreduce.job import JobSpec

            def build(state):
                def mapper(k, v):
                    return [(k, state[v])]
                return JobSpec(mapper=mapper)
            """
        ) == ["PIC101"]

    def test_conditionally_defined_nested_function_flagged(self):
        # The def's direct AST parent is an If node, not the function;
        # the rule must walk up to the enclosing scope.
        assert rules_found(
            """
            from repro.mapreduce.job import JobSpec

            def build(state, fast):
                if fast:
                    def mapper(k, v):
                        return [(k, state[v])]
                else:
                    def mapper(k, v):
                        return [(k, v)]
                return JobSpec(mapper=mapper)
            """
        ) == ["PIC101"]

    def test_lambda_to_executor_map_flagged(self):
        assert rules_found(
            """
            def run(executor, items):
                return executor.map(lambda x: x + 1, items)
            """
        ) == ["PIC101"]

    def test_lambda_to_pool_submit_flagged(self):
        assert rules_found(
            """
            def run(pool, item):
                return pool.submit(lambda: item + 1)
            """
        ) == ["PIC101"]

    def test_module_level_function_is_fine(self):
        assert rules_found(
            """
            from repro.mapreduce.job import JobSpec

            def mapper(k, v):
                return [(k, v)]

            spec = JobSpec(mapper=mapper)
            """
        ) == []

    def test_method_reference_is_fine(self):
        # Bound methods of picklable objects pickle fine.
        assert rules_found(
            """
            from repro.mapreduce.job import JobSpec

            def build(program):
                return JobSpec(mapper=program.map)
            """
        ) == []

    def test_unrelated_receiver_map_is_fine(self):
        # `.map()` on something that is not an executor/pool (e.g. a
        # pandas-style object) is out of scope.
        assert rules_found(
            """
            def run(series):
                return series.map(lambda x: x + 1)
            """
        ) == []


PROGRAM_PREAMBLE = """
from repro.pic.api import PICProgram


class MyProgram(PICProgram):
"""


def program_rules(body):
    return rules_found(PROGRAM_PREAMBLE + textwrap.indent(textwrap.dedent(body), "    "))


class TestCallbackPurity:
    def test_print_in_map_flagged(self):
        assert program_rules(
            """
            def map(self, key, value, ctx):
                print(key)
                ctx.emit(key, value)
            """
        ) == ["PIC102"]

    def test_open_in_reduce_flagged(self):
        assert program_rules(
            """
            def reduce(self, key, values, ctx):
                with open("/tmp/debug.log", "a") as fh:
                    fh.write(str(key))
                ctx.emit(key, sum(values))
            """
        ) == ["PIC102"]

    def test_os_environ_in_converged_flagged(self):
        assert program_rules(
            """
            import os

            def converged(self, model, prev):
                return os.environ.get("FORCE_STOP") or model == prev
            """
        ) == ["PIC102"]

    def test_global_statement_flagged(self):
        assert program_rules(
            """
            def map(self, key, value, ctx):
                global COUNTER
                COUNTER += 1
                ctx.emit(key, value)
            """
        ) == ["PIC102"]

    def test_self_mutation_in_task_side_callback_flagged(self):
        assert program_rules(
            """
            def map(self, key, value, ctx):
                self.seen = self.seen + 1
                ctx.emit(key, value)
            """
        ) == ["PIC102"]

    def test_self_mutation_in_driver_side_callback_is_fine(self):
        # partition() runs in the driver; stashing owned keys on self is
        # the documented partition->merge coupling pattern.  (The return
        # copies the record list so the aliasing rule stays quiet.)
        assert program_rules(
            """
            def partition(self, records, n):
                self._owned = [r.key for r in records]
                return [list(records)]
            """
        ) == []

    def test_pure_map_is_fine(self):
        assert program_rules(
            """
            def map(self, key, value, ctx):
                ctx.emit(key, value * 2)
            """
        ) == []

    def test_transitive_subclass_checked(self):
        assert rules_found(
            """
            from repro.pic.api import PICProgram


            class Base(PICProgram):
                pass


            class Derived(Base):
                def map(self, key, value, ctx):
                    print(key)
            """
        ) == ["PIC102"]

    def test_non_program_class_ignored(self):
        assert rules_found(
            """
            class Helper:
                def map(self, key, value, ctx):
                    print(key)
            """
        ) == []

    def test_non_callback_method_ignored(self):
        assert program_rules(
            """
            def describe(self):
                print(self)
            """
        ) == []
