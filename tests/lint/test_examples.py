"""The --explain corpus is executable: bad fires, good is silent."""

import pytest

from repro.lint import lint_source
from repro.lint.examples import EXAMPLES, explain
from repro.lint.rules import all_rules, family_of


def _rules(source: str) -> set[str]:
    return {f.rule for f in lint_source(source)}


class TestCorpus:
    def test_every_rule_has_an_example(self):
        missing = {r.rule_id for r in all_rules()} - EXAMPLES.keys()
        assert not missing

    @pytest.mark.parametrize("rule_id", sorted(EXAMPLES))
    def test_bad_example_fires(self, rule_id):
        assert rule_id in _rules(EXAMPLES[rule_id].bad)

    @pytest.mark.parametrize("rule_id", sorted(EXAMPLES))
    def test_good_example_is_silent(self, rule_id):
        assert rule_id not in _rules(EXAMPLES[rule_id].good)


class TestExplain:
    def test_explain_renders_all_sections(self):
        text = explain("PIC501")
        assert text is not None
        assert "PIC501" in text
        assert "family: resource lifecycle typestate" in text
        assert "bad (fires):" in text
        assert "good (silent):" in text

    def test_unknown_rule_is_none(self):
        assert explain("PIC999") is None

    def test_families_cover_all_rules(self):
        for rule in all_rules():
            assert family_of(rule.rule_id) != "unknown"
