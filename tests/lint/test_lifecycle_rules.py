"""PIC501/PIC502/PIC503: resource-lifecycle typestate."""

import textwrap

from repro.lint import lint_source
from repro.lint.engine import lint_sources


def rules_found(source: str) -> list[str]:
    return sorted(
        {f.rule for f in lint_source(textwrap.dedent(source)) if f.rule[3] == "5"}
    )


class TestResourceLeak:
    def test_shm_leaks_on_raise_path(self):
        assert rules_found(
            """
            from multiprocessing.shared_memory import SharedMemory

            def export(payload):
                shm = SharedMemory(create=True, size=len(payload))
                shm.buf[: len(payload)] = payload
                return shm.name
            """
        ) == ["PIC501"]

    def test_file_never_closed(self):
        assert "PIC501" in rules_found(
            """
            def read_all(path):
                fh = open(path)
                return fh.read()
            """
        )

    def test_pool_never_shut_down(self):
        assert "PIC501" in rules_found(
            """
            from concurrent.futures import ProcessPoolExecutor

            def fan_out(items):
                pool = ProcessPoolExecutor(4)
                return list(pool.map(str, items))
            """
        )

    def test_try_finally_release_is_clean(self):
        assert rules_found(
            """
            from multiprocessing.shared_memory import SharedMemory

            def export(payload):
                shm = SharedMemory(create=True, size=len(payload))
                try:
                    shm.buf[: len(payload)] = payload
                    return bytes(shm.buf[: len(payload)])
                finally:
                    shm.close()
                    shm.unlink()
            """
        ) == []

    def test_with_block_is_clean(self):
        assert rules_found(
            """
            def read_all(path):
                with open(path) as fh:
                    return fh.read()
            """
        ) == []

    def test_attached_shm_needs_only_close(self):
        # No ``create=``: the mapping is borrowed, unlink is the
        # submitter's job — close alone satisfies the protocol.
        assert rules_found(
            """
            from multiprocessing.shared_memory import SharedMemory

            def peek(name):
                shm = SharedMemory(name=name)
                try:
                    return bytes(shm.buf[:8])
                finally:
                    shm.close()
            """
        ) == []

    def test_release_through_helper_is_clean(self):
        # Interprocedural: cleanup(shm) counts as close+unlink.
        assert rules_found(
            """
            from multiprocessing.shared_memory import SharedMemory

            def cleanup(shm):
                shm.close()
                shm.unlink()

            def export(payload):
                shm = SharedMemory(create=True, size=len(payload))
                try:
                    shm.buf[: len(payload)] = payload
                finally:
                    cleanup(shm)
            """
        ) == []

    def test_returning_the_resource_transfers_ownership(self):
        assert rules_found(
            """
            def open_log(path):
                fh = open(path)
                return fh
            """
        ) == []

    def test_caller_of_acquiring_helper_owns_the_result(self):
        # The helper's return transfers a fresh handle to the caller,
        # which then leaks it past a risky call.
        assert rules_found(
            """
            def open_log(path):
                return open(path)

            def summarize(path):
                fh = open_log(path)
                return len(fh.read())
            """
        ) == ["PIC501"]

    def test_storing_the_resource_is_ownership_transfer(self):
        assert rules_found(
            """
            class Holder:
                def __init__(self, path):
                    self.handles = []
                    fh = open(path)
                    self.handles.append(fh)
            """
        ) == []

    def test_exception_handler_without_binding_is_clean(self):
        # The acquisition itself failing means there is nothing to
        # release inside the handler.
        assert rules_found(
            """
            from multiprocessing.shared_memory import SharedMemory

            def export(total):
                try:
                    shm = SharedMemory(create=True, size=total)
                except OSError:
                    return None
                try:
                    return shm.name
                finally:
                    shm.close()
                    shm.unlink()
            """
        ) == []

    def test_cleanup_on_error_handler_is_clean(self):
        assert rules_found(
            """
            from multiprocessing.shared_memory import SharedMemory

            def export(payload, sink):
                shm = SharedMemory(create=True, size=len(payload))
                try:
                    shm.buf[: len(payload)] = payload
                except BaseException:
                    shm.close()
                    shm.unlink()
                    raise
                sink.adopt(shm)
            """
        ) == []


class TestCacheHandles:
    """The loop-aware cache types follow the same protocol: ``pin``
    hands back a CachePin and BatchExportCache() owns shm blocks —
    both must see ``release()`` on every path."""

    def test_cache_pin_never_released(self):
        assert rules_found(
            """
            class Node:
                def __init__(self, cache):
                    self.cache = cache

                def warm(self, split, nbytes):
                    pin = self.cache.pin(split, nbytes)
                    self.cache.put(split, nbytes)
                    return nbytes
            """
        ) == ["PIC501"]

    def test_cache_pin_released_in_finally_is_clean(self):
        assert rules_found(
            """
            class Node:
                def __init__(self, cache):
                    self.cache = cache

                def warm(self, split, nbytes, fill):
                    pin = self.cache.pin(split, nbytes)
                    try:
                        fill(split)
                        self.cache.put(split, nbytes)
                    finally:
                        pin.release()
            """
        ) == []

    def test_cache_pin_with_block_is_clean(self):
        assert rules_found(
            """
            class Node:
                def __init__(self, cache):
                    self.cache = cache

                def warm(self, split, nbytes, fill):
                    with self.cache.pin(split, nbytes):
                        fill(split)
                        self.cache.put(split, nbytes)
            """
        ) == []

    def test_export_cache_never_released(self):
        assert rules_found(
            """
            from repro.parallel.shm import BatchExportCache

            def fan_out(batches):
                cache = BatchExportCache()
                return [cache.lease(batch) for batch in batches]
            """
        ) == ["PIC501"]

    def test_export_cache_released_in_finally_is_clean(self):
        assert rules_found(
            """
            from repro.parallel.shm import BatchExportCache

            def fan_out(batches):
                cache = BatchExportCache()
                try:
                    return [cache.lease(batch) for batch in batches]
                finally:
                    cache.release()
            """
        ) == []


class TestDoubleRelease:
    def test_sequential_double_close(self):
        assert "PIC502" in rules_found(
            """
            def read_all(path):
                fh = open(path)
                data = fh.read()
                fh.close()
                fh.close()
                return data
            """
        )

    def test_close_in_body_and_finally(self):
        assert "PIC502" in rules_found(
            """
            def read_all(path):
                fh = open(path)
                try:
                    data = fh.read()
                    fh.close()
                finally:
                    fh.close()
                return data
            """
        )

    def test_branch_release_then_join_is_not_double(self):
        # Only one branch closes: the post-join state is "may be
        # closed", so a later close is not certainly a double release.
        assert "PIC502" not in rules_found(
            """
            def maybe_close(path, early):
                fh = open(path)
                if early:
                    fh.close()
                else:
                    fh.read()
                fh.close()
            """
        )

    def test_close_then_unlink_is_clean(self):
        assert rules_found(
            """
            from multiprocessing.shared_memory import SharedMemory

            def export(total):
                shm = SharedMemory(create=True, size=total)
                shm.close()
                shm.unlink()
            """
        ) == []


class TestUseAfterRelease:
    def test_read_after_close(self):
        assert rules_found(
            """
            def read_all(path):
                fh = open(path)
                fh.close()
                return fh.read()
            """
        ) == ["PIC503"]

    def test_buf_access_after_close(self):
        assert "PIC503" in rules_found(
            """
            from multiprocessing.shared_memory import SharedMemory

            def peek(name):
                shm = SharedMemory(name=name)
                shm.close()
                return bytes(shm.buf[:8])
            """
        )

    def test_benign_attribute_after_close_is_clean(self):
        # .name/.closed stay valid after release.
        assert rules_found(
            """
            def read_all(path):
                fh = open(path)
                fh.close()
                return fh.name
            """
        ) == []

    def test_rebinding_resets_the_state(self):
        assert rules_found(
            """
            def reopen(path):
                fh = open(path)
                fh.close()
                fh = open(path)
                try:
                    return fh.read()
                finally:
                    fh.close()
            """
        ) == []

    def test_conditional_close_does_not_flag_later_use(self):
        # released() is a *must* fact; a close on one branch only is
        # not certain, so the later read stays silent.
        assert "PIC503" not in rules_found(
            """
            def maybe(path, early):
                fh = open(path)
                if early:
                    fh.close()
                return fh.read()
            """
        )


class TestCrossModule:
    def test_release_helper_in_another_module(self):
        findings, errors = lint_sources(
            {
                "pkg/util.py": textwrap.dedent(
                    """
                    def cleanup(shm):
                        shm.close()
                        shm.unlink()
                    """
                ),
                "pkg/exporter.py": textwrap.dedent(
                    """
                    from multiprocessing.shared_memory import SharedMemory

                    from pkg.util import cleanup

                    def export(payload):
                        shm = SharedMemory(create=True, size=len(payload))
                        try:
                            shm.buf[: len(payload)] = payload
                        finally:
                            cleanup(shm)
                    """
                ),
            }
        )
        assert errors == []
        assert [f for f in findings if f.rule.startswith("PIC5")] == []
