"""PIC001/PIC002/PIC003: wall-clock, global RNG, set-iteration order."""

import textwrap

from repro.lint import lint_source


def rules_found(source):
    return [f.rule for f in lint_source(textwrap.dedent(source))]


class TestWallClock:
    def test_time_time_flagged(self):
        assert rules_found(
            """
            import time

            def stamp():
                return time.time()
            """
        ) == ["PIC001"]

    def test_perf_counter_flagged(self):
        assert "PIC001" in rules_found(
            """
            import time

            t0 = time.perf_counter()
            """
        )

    def test_from_import_alias_flagged(self):
        assert rules_found(
            """
            from time import perf_counter as clock

            def stamp():
                return clock()
            """
        ) == ["PIC001"]

    def test_datetime_now_flagged(self):
        assert rules_found(
            """
            from datetime import datetime

            def stamp():
                return datetime.now()
            """
        ) == ["PIC001"]

    def test_event_clock_is_fine(self):
        assert rules_found(
            """
            def stamp(sim):
                return sim.now
            """
        ) == []

    def test_unrelated_time_attribute_is_fine(self):
        # A local variable named `time` is not the stdlib module.
        assert rules_found(
            """
            def stamp(record):
                return record.time()
            """
        ) == []


class TestUnseededRandom:
    def test_stdlib_random_flagged(self):
        assert rules_found(
            """
            import random

            def pick(items):
                return random.choice(items)
            """
        ) == ["PIC002"]

    def test_random_seed_flagged(self):
        assert "PIC002" in rules_found(
            """
            import random

            random.seed(0)
            """
        )

    def test_numpy_global_rand_flagged(self):
        assert rules_found(
            """
            import numpy as np

            def noise(n):
                return np.random.rand(n)
            """
        ) == ["PIC002"]

    def test_numpy_default_rng_is_fine(self):
        assert rules_found(
            """
            import numpy as np

            def rng(seed):
                return np.random.default_rng(seed)
            """
        ) == []

    def test_seeded_random_class_is_fine(self):
        assert rules_found(
            """
            import random

            def rng(seed):
                return random.Random(seed)
            """
        ) == []

    def test_generator_method_is_fine(self):
        assert rules_found(
            """
            def draw(rng):
                return rng.integers(0, 10)
            """
        ) == []


class TestSetIterationOrder:
    def test_for_over_set_call_flagged(self):
        assert rules_found(
            """
            def go(items):
                for x in set(items):
                    handle(x)
            """
        ) == ["PIC003"]

    def test_for_over_set_literal_flagged(self):
        assert rules_found(
            """
            def go():
                for x in {1, 2, 3}:
                    handle(x)
            """
        ) == ["PIC003"]

    def test_for_over_set_typed_name_flagged(self):
        assert rules_found(
            """
            def go(items):
                pending = set(items)
                for x in pending:
                    handle(x)
            """
        ) == ["PIC003"]

    def test_comprehension_over_frozenset_flagged(self):
        assert rules_found(
            """
            def go(items):
                return [x + 1 for x in frozenset(items)]
            """
        ) == ["PIC003"]

    def test_list_of_set_flagged(self):
        assert rules_found(
            """
            def go(items):
                return list(set(items))
            """
        ) == ["PIC003"]

    def test_sorted_set_is_fine(self):
        assert rules_found(
            """
            def go(items):
                for x in sorted(set(items)):
                    handle(x)
            """
        ) == []

    def test_order_insensitive_sinks_are_fine(self):
        assert rules_found(
            """
            def go(items):
                seen = set(items)
                return sum(seen), len(seen), max(seen)
            """
        ) == []

    def test_membership_test_is_fine(self):
        assert rules_found(
            """
            def go(x, items):
                seen = set(items)
                return x in seen
            """
        ) == []

    def test_rebound_name_is_not_flagged(self):
        # `pending` is rebound to a sorted list; conservative analysis
        # must drop it.
        assert rules_found(
            """
            def go(items):
                pending = set(items)
                pending = sorted(pending)
                for x in pending:
                    handle(x)
            """
        ) == []

    def test_dict_iteration_is_fine(self):
        # Dicts are insertion-ordered; only sets are nondeterministic.
        assert rules_found(
            """
            def go(d):
                for v in d.values():
                    handle(v)
            """
        ) == []
