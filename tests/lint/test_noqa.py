"""``# pic: noqa`` suppression scoping."""

import textwrap

from repro.lint import lint_source
from repro.lint.noqa import suppressions

FLAGGED = """
import time

t0 = time.time()
"""


def rules_found(source):
    return [f.rule for f in lint_source(textwrap.dedent(source))]


class TestBlanketNoqa:
    def test_blanket_suppresses_everything_on_line(self):
        assert rules_found(
            """
            import time

            t0 = time.time()  # pic: noqa
            """
        ) == []

    def test_blanket_is_line_scoped(self):
        # The noqa on line 4 does not cover the violation on line 5.
        assert rules_found(
            """
            import time

            t0 = time.time()  # pic: noqa
            t1 = time.time()
            """
        ) == ["PIC001"]

    def test_unsuppressed_baseline(self):
        assert rules_found(FLAGGED) == ["PIC001"]


class TestRuleSpecificNoqa:
    def test_matching_rule_id_suppresses(self):
        assert rules_found(
            """
            import time

            t0 = time.time()  # pic: noqa: PIC001
            """
        ) == []

    def test_bracket_form_suppresses(self):
        assert rules_found(
            """
            import time

            t0 = time.time()  # pic: noqa[PIC001]
            """
        ) == []

    def test_wrong_rule_id_does_not_suppress(self):
        assert rules_found(
            """
            import time

            t0 = time.time()  # pic: noqa: PIC101
            """
        ) == ["PIC001"]

    def test_multiple_ids_each_apply(self):
        assert rules_found(
            """
            import random
            import time

            t0 = time.time() + random.random()  # pic: noqa: PIC001,PIC002
            """
        ) == []

    def test_partial_suppression_keeps_other_rule(self):
        assert rules_found(
            """
            import random
            import time

            t0 = time.time() + random.random()  # pic: noqa: PIC001
            """
        ) == ["PIC002"]

    def test_case_insensitive_ids(self):
        assert rules_found(
            """
            import time

            t0 = time.time()  # pic: noqa: pic001
            """
        ) == []

    def test_trailing_justification_text_allowed(self):
        assert rules_found(
            """
            import time

            t0 = time.time()  # pic: noqa: PIC001 (host time IS the measurand)
            """
        ) == []


class TestSuppressionParsing:
    def test_noqa_inside_string_literal_ignored(self):
        # tokenize-based scan: a string mentioning the marker is not a
        # suppression comment.
        source = 's = "# pic: noqa"\n'
        assert suppressions("<memory>", source) == {}

    def test_blanket_maps_to_none(self):
        source = "x = 1  # pic: noqa\n"
        assert suppressions("<memory>", source) == {1: None}

    def test_specific_maps_to_ids(self):
        source = "x = 1  # pic: noqa: PIC001, PIC202\n"
        assert suppressions("<memory>", source) == {1: frozenset({"PIC001", "PIC202"})}
