"""PIC701–PIC704: concurrency interference (whole-program).

Each seeded-bug fixture is a miniature of a real interference shape
from the concurrent-runner work (PR 8); each near-miss is the
corrected form and must stay silent.  PIC701/PIC702 fixture shapes are
also exercised dynamically by the ``PIC_SANITIZE`` harness in
``tests/integration/test_sanitizer.py``.
"""

import textwrap

from repro.lint import lint_source
from repro.lint.engine import lint_sources


def rules_found(source: str) -> list[str]:
    return sorted(
        f.rule
        for f in lint_source(textwrap.dedent(source))
        if f.rule.startswith("PIC7")
    )


def rules_in_tree(sources: dict[str, str]) -> list[str]:
    findings, errors = lint_sources(
        {path: textwrap.dedent(src) for path, src in sources.items()}
    )
    assert not errors, errors
    return sorted(f.rule for f in findings if f.rule.startswith("PIC7"))


class TestCrossJobWrite:
    def test_handler_writes_sibling_job_state(self):
        # Seeded bug: a map-completion handler pokes another job's
        # arrival counter — whichever handler fires first at the tie
        # wins, so results depend on schedule order.
        assert rules_found(
            """
            class _JobState:
                def __init__(self, app_id: int) -> None:
                    self.app_id = app_id
                    self.bucket_arrivals = 0

            class Runner:
                def submit(self, sim, state: _JobState, sibling: _JobState):
                    sim.schedule(1.0, lambda: self._on_map_done(sibling))

                def _on_map_done(self, sibling: _JobState) -> None:
                    sibling.bucket_arrivals = sibling.bucket_arrivals + 1
            """
        ) == ["PIC701"]

    def test_job_scope_detected_by_class_name_tail(self):
        # No app_id attr: the _JobState name shape alone marks the
        # class job-scoped.
        assert "PIC701" in rules_found(
            """
            class JobHandle:
                def __init__(self) -> None:
                    self.done = 0

            class Driver:
                def go(self, sim, handle: JobHandle) -> None:
                    sim.schedule(2.0, lambda: self._finish(handle))

                def _finish(self, handle: JobHandle) -> None:
                    handle.done = handle.done + 1
            """
        )

    def test_own_instance_write_is_silent(self):
        # Near miss: the job's own handler updating its own state is
        # the sanctioned pattern.
        assert rules_found(
            """
            class _JobState:
                def __init__(self, sim, app_id: int) -> None:
                    self.app_id = app_id
                    self.bucket_arrivals = 0
                    sim.schedule(1.0, self._on_map_done)

                def _on_map_done(self) -> None:
                    self.bucket_arrivals = self.bucket_arrivals + 1
            """
        ) == []

    def test_fresh_construction_is_silent(self):
        # Near miss: configuring a job state you just constructed is
        # submission, not interference.
        assert rules_found(
            """
            class _JobState:
                def __init__(self, app_id: int) -> None:
                    self.app_id = app_id
                    self.bucket_arrivals = 0

            class Runner:
                def resubmit(self, sim, app_id: int) -> None:
                    sim.schedule(1.0, lambda: self._spawn(app_id))

                def _spawn(self, app_id: int) -> None:
                    state = _JobState(app_id)
                    state.bucket_arrivals = 0
            """
        ) == []

    def test_unreachable_from_handlers_is_silent(self):
        # Near miss: same write, but nothing schedules it — submit-time
        # configuration runs in program order.
        assert rules_found(
            """
            class _JobState:
                def __init__(self, app_id: int) -> None:
                    self.app_id = app_id
                    self.bucket_arrivals = 0

            class Runner:
                def reset(self, sibling: _JobState) -> None:
                    sibling.bucket_arrivals = 0
            """
        ) == []


class TestTieOrderConflict:
    BUGGY = {
        "engine.py": """
            class SharedStats:
                def __init__(self) -> None:
                    self.last_finished = 0.0
                    self.total = 0.0
            """,
        "app.py": """
            from engine import SharedStats

            class Tracker:
                def __init__(self, stats: SharedStats) -> None:
                    self.stats = stats
                    self.ticks = 0.0

                def start(self, sim) -> None:
                    sim.schedule(1.0, lambda: self.on_map_done())
                    sim.schedule(1.0, lambda: self.on_reduce_done())

                def on_map_done(self) -> None:
                    self.stats.last_finished = self.ticks

                def on_reduce_done(self) -> None:
                    self.stats.last_finished = self.ticks
            """,
    }

    def test_two_handlers_store_same_location(self):
        # Seeded bug (the PR 8 timer shape): two handlers schedulable
        # at one timestamp both last-write-win the same field.
        assert rules_in_tree(self.BUGGY) == ["PIC702", "PIC702"]

    def test_write_read_overlap_flagged(self):
        sources = dict(self.BUGGY)
        sources["app.py"] = """
            from engine import SharedStats

            class Tracker:
                def __init__(self, stats: SharedStats) -> None:
                    self.stats = stats
                    self.ticks = 0.0

                def start(self, sim) -> None:
                    sim.schedule(1.0, lambda: self.on_map_done())
                    sim.schedule(1.0, lambda: self.report())

                def on_map_done(self) -> None:
                    self.stats.last_finished = self.ticks

                def report(self) -> float:
                    return self.stats.last_finished
            """
        assert rules_in_tree(sources) == ["PIC702"]

    def test_commutative_aug_is_silent(self):
        # Near miss: += commutes across tie orders.
        sources = dict(self.BUGGY)
        sources["app.py"] = """
            from engine import SharedStats

            class Tracker:
                def __init__(self, stats: SharedStats) -> None:
                    self.stats = stats

                def start(self, sim) -> None:
                    sim.schedule(1.0, lambda: self.on_map_done())
                    sim.schedule(1.0, lambda: self.on_reduce_done())

                def on_map_done(self) -> None:
                    self.stats.total += 1.0

                def on_reduce_done(self) -> None:
                    self.stats.total += 1.0
            """
        assert rules_in_tree(sources) == []

    def test_keyed_writes_are_silent(self):
        # Near miss: per-handler keys partition the location.
        sources = dict(self.BUGGY)
        sources["engine.py"] = """
            class SharedStats:
                def __init__(self) -> None:
                    self.by_phase: dict = {}
            """
        sources["app.py"] = """
            from engine import SharedStats

            class Tracker:
                def __init__(self, stats: SharedStats) -> None:
                    self.stats = stats
                    self.ticks = 0.0

                def start(self, sim) -> None:
                    sim.schedule(1.0, lambda: self.on_map_done())
                    sim.schedule(1.0, lambda: self.on_reduce_done())

                def on_map_done(self) -> None:
                    self.stats.by_phase["map"] = self.ticks

                def on_reduce_done(self) -> None:
                    self.stats.by_phase["reduce"] = self.ticks
            """
        assert rules_in_tree(sources) == []

    def test_single_handler_is_silent(self):
        # Near miss: one handler path cannot race itself across ties.
        sources = dict(self.BUGGY)
        sources["app.py"] = """
            from engine import SharedStats

            class Tracker:
                def __init__(self, stats: SharedStats) -> None:
                    self.stats = stats
                    self.ticks = 0.0

                def start(self, sim) -> None:
                    sim.schedule(1.0, lambda: self.on_map_done())

                def on_map_done(self) -> None:
                    self.stats.last_finished = self.ticks
            """
        assert rules_in_tree(sources) == []

    def test_owning_module_writes_are_silent(self):
        # Near miss: the module defining the class serializes its own
        # instances (FlowNetwork advancing Flow rows).
        assert rules_found(
            """
            class Flow:
                def __init__(self) -> None:
                    self.remaining = 10.0

            class FlowNetwork:
                def __init__(self, flow: Flow) -> None:
                    self.flow = flow

                def start(self, sim) -> None:
                    sim.schedule(1.0, lambda: self.advance())
                    sim.schedule(1.0, lambda: self.finish())

                def advance(self) -> None:
                    self.flow.remaining = self.flow.remaining - 1.0

                def finish(self) -> None:
                    self.flow.remaining = 0.0
            """
        ) == []


class TestAggregateBypass:
    BUGGY = {
        "sched.py": """
            class SlotScheduler:
                def __init__(self) -> None:
                    self._queue: list = []
                    self._free: dict = {}

                def request(self, callback) -> None:
                    self._queue.append(callback)
            """,
        "app.py": """
            from sched import SlotScheduler

            class App:
                def __init__(self, sched: SlotScheduler) -> None:
                    self.sched = sched

                def start(self, sim) -> None:
                    sim.schedule(1.0, lambda: self.on_done(3))

                def on_done(self, node: int) -> None:
                    self.sched._free[node] = 1
            """,
    }

    def test_callback_pokes_scheduler_free_map(self):
        # Seeded bug: an app callback hands a slot back by editing the
        # scheduler's free map, skipping the canonical matching pass.
        assert rules_in_tree(self.BUGGY) == ["PIC703"]

    def test_callback_appends_to_waiter_queue(self):
        sources = dict(self.BUGGY)
        sources["app.py"] = """
            from sched import SlotScheduler

            class App:
                def __init__(self, sched: SlotScheduler) -> None:
                    self.sched = sched

                def start(self, sim) -> None:
                    sim.schedule(1.0, lambda: self.on_done())

                def on_done(self) -> None:
                    self.sched._queue.append(self.on_done)
            """
        assert "PIC703" in rules_in_tree(sources)

    def test_owner_api_call_is_silent(self):
        # Near miss: going through request() is the sanctioned path.
        sources = dict(self.BUGGY)
        sources["app.py"] = """
            from sched import SlotScheduler

            class App:
                def __init__(self, sched: SlotScheduler) -> None:
                    self.sched = sched

                def start(self, sim) -> None:
                    sim.schedule(1.0, lambda: self.on_done())

                def on_done(self) -> None:
                    self.sched.request(self.on_done)
            """
        assert rules_in_tree(sources) == []

    def test_owner_mutating_own_aggregate_is_silent(self):
        # Near miss: the scheduler serving its own queue is the
        # serialization point itself.
        assert rules_found(
            """
            class SlotScheduler:
                def __init__(self, sim) -> None:
                    self._queue: list = []
                    self._free: dict = {}
                    sim.schedule(1.0, self._serve)

                def _serve(self) -> None:
                    while self._queue:
                        self._queue.pop()
            """
        ) == []

    def test_root_context_mutation_is_silent(self):
        # Near miss: same write, not handler-reachable — setup code
        # runs before the event loop starts.
        sources = dict(self.BUGGY)
        sources["app.py"] = """
            from sched import SlotScheduler

            class App:
                def __init__(self, sched: SlotScheduler) -> None:
                    self.sched = sched

                def prime(self, node: int) -> None:
                    self.sched._free[node] = 1
            """
        assert rules_in_tree(sources) == []


class TestUnorderedSchedule:
    def test_set_into_schedule_batch(self):
        # Seeded bug: a set's hash order becomes the batch dispatch
        # order.
        assert rules_found(
            """
            class Driver:
                def kick(self, sim, handlers) -> None:
                    pending = set(handlers)
                    sim.schedule_batch(1.0, list(pending))
            """
        ) == ["PIC704"]

    def test_id_keyed_dict_into_run_many(self):
        assert rules_found(
            """
            class Driver:
                def kick(self, runner, jobs) -> None:
                    table = {id(j): j for j in jobs}
                    runner.run_many(list(table.values()))
            """
        ) == ["PIC704"]

    def test_taint_through_helper_return(self):
        # Interprocedural: the unordered container is built in a
        # helper and surfaces at the sink through its return value.
        assert rules_found(
            """
            def distinct(handlers):
                return set(handlers)

            class Driver:
                def kick(self, sim, handlers) -> None:
                    sim.schedule_batch(1.0, list(distinct(handlers)))
            """
        ) == ["PIC704"]

    def test_taint_through_callee_parameter(self):
        # Interprocedural: the sink is inside the callee; the caller
        # supplies the unordered argument.
        assert rules_found(
            """
            def fan_out(sim, callbacks):
                sim.schedule_batch(1.0, callbacks)

            class Driver:
                def kick(self, sim, handlers) -> None:
                    fan_out(sim, set(handlers))
            """
        ) == ["PIC704"]

    def test_unordered_extend_of_waiter_queue(self):
        assert rules_found(
            """
            class Runner:
                def __init__(self) -> None:
                    self._waiters: list = []

                def park(self, grants) -> None:
                    self._waiters.extend(set(grants))
            """
        ) == ["PIC704"]

    def test_sorted_sanitizes(self):
        # Near miss: sorted() pins a canonical order.
        assert rules_found(
            """
            class Driver:
                def kick(self, sim, handlers) -> None:
                    pending = set(handlers)
                    sim.schedule_batch(1.0, sorted(pending))
            """
        ) == []

    def test_sorted_sanitizes_through_helper(self):
        assert rules_found(
            """
            def distinct(handlers):
                return sorted(set(handlers))

            class Driver:
                def kick(self, sim, handlers) -> None:
                    sim.schedule_batch(1.0, distinct(handlers))
            """
        ) == []

    def test_ordinary_list_is_silent(self):
        assert rules_found(
            """
            class Driver:
                def kick(self, sim, handlers) -> None:
                    sim.schedule_batch(1.0, list(handlers))
            """
        ) == []
