"""PIC301/PIC302/PIC303: cross-partition aliasing and callback mutation.

Every rule gets at least one seeded-bug fixture that must be flagged
and one near-miss that must stay silent — the near-misses are the
defensive-copy idioms the real apps use.
"""

import textwrap

from repro.lint import lint_source


def findings(source):
    return [
        (f.rule, f.line)
        for f in lint_source(textwrap.dedent(source))
        if f.rule.startswith("PIC3")
    ]


def rules(source):
    return [rule for rule, _line in findings(source)]


class TestPartitionAliasing:
    def test_partition_returning_shared_model_flagged(self):
        src = """
        from repro.pic.api import PICProgram

        class P(PICProgram):
            def partition(self, records, model, n):
                return [(records, model)]
        """
        # One finding per aliased object: records AND model both leak.
        assert rules(src) == ["PIC301", "PIC301"]

    def test_depth_two_aliasing_through_comprehension_flagged(self):
        # Copying the records but sharing the model between partitions
        # is still an aliasing bug: partitions would train one object.
        src = """
        from repro.pic.api import PICProgram

        class P(PICProgram):
            def partition(self, records, model, n):
                return [(list(records), model) for _ in range(n)]
        """
        assert rules(src) == ["PIC301"]

    def test_finding_anchored_at_return_site(self):
        src = """
        from repro.pic.api import PICProgram

        class P(PICProgram):
            def partition(self, records, n):
                out = [records]
                return out
        """
        [(rule, line)] = findings(src)
        assert rule == "PIC301"
        assert line == 7  # the return statement

    def test_near_miss_fresh_copies_silent(self):
        src = """
        import copy

        from repro.pic.api import PICProgram

        class P(PICProgram):
            def partition(self, records, model, n):
                return [(list(records), copy.deepcopy(model)) for _ in range(n)]
        """
        assert rules(src) == []

    def test_near_miss_rebind_kill_silent(self):
        # Rebinding the parameter to a copy before returning is the
        # standard defensive idiom; flow-sensitivity must honour it.
        src = """
        from repro.pic.api import PICProgram

        class P(PICProgram):
            def partition(self, records, n):
                records = sorted(records)
                return [records[i::n] for i in range(n)]
        """
        assert rules(src) == []


class TestMergeMutation:
    def test_merge_updating_partial_in_place_flagged(self):
        src = """
        from repro.pic.api import PICProgram

        class P(PICProgram):
            def merge(self, models):
                merged = models[0]
                for m in models[1:]:
                    merged.update(m)
                return merged
        """
        assert rules(src) == ["PIC302"]

    def test_merge_element_sorting_values_in_place_flagged(self):
        src = """
        from repro.pic.api import PICProgram

        class P(PICProgram):
            def merge_element(self, key, values):
                values.sort()
                return values[0]
        """
        assert rules(src) == ["PIC302"]

    def test_near_miss_merge_into_fresh_dict_silent(self):
        src = """
        from repro.pic.api import PICProgram

        class P(PICProgram):
            def merge(self, models):
                merged = dict(models[0])
                for m in models[1:]:
                    merged.update(m)
                return merged
        """
        assert rules(src) == []

    def test_near_miss_sorted_copy_silent(self):
        src = """
        from repro.pic.api import PICProgram

        class P(PICProgram):
            def merge_element(self, key, values):
                return sorted(values)[0]
        """
        assert rules(src) == []


class TestCallbackRecordMutation:
    def test_batch_map_clearing_records_flagged(self):
        src = """
        from repro.pic.api import PICProgram

        class P(PICProgram):
            def batch_map(self, ctx, records):
                records.clear()
        """
        assert rules(src) == ["PIC303"]

    def test_map_writing_through_ctx_model_flagged(self):
        # Task-side callbacks see a read-only snapshot of the model;
        # writes through it never reach the driver's copy.
        src = """
        from repro.pic.api import PICProgram

        class P(PICProgram):
            def map(self, key, value, ctx):
                ctx.model[key] = value
        """
        assert rules(src) == ["PIC303"]

    def test_reduce_mutating_values_flagged(self):
        src = """
        from repro.pic.api import PICProgram

        class P(PICProgram):
            def reduce(self, ctx, key, values):
                values.append(0)
                ctx.emit(key, values)
        """
        assert rules(src) == ["PIC303"]

    def test_near_miss_rebound_records_silent(self):
        src = """
        from repro.pic.api import PICProgram

        class P(PICProgram):
            def batch_map(self, ctx, records):
                records = list(records)
                records.sort()
                for key, value in records:
                    ctx.emit(key, value)
        """
        assert rules(src) == []

    def test_near_miss_ctx_stats_write_silent(self):
        # ctx.stats is the sanctioned mutable scratch channel.
        src = """
        from repro.pic.api import PICProgram

        class P(PICProgram):
            def batch_map(self, ctx, records):
                ctx.stats["seen"] = len(records)
        """
        assert rules(src) == []
