"""CLI behaviour: exit codes, output formats, selection, self-hosting."""

import json
import os
import subprocess
import sys
from pathlib import Path

from repro.lint.cli import JSON_SCHEMA_VERSION, main

REPO_ROOT = Path(__file__).resolve().parents[2]

CLEAN = "def double(x):\n    return x * 2\n"
VIOLATIONS = {
    "PIC001": "import time\n\nt0 = time.time()\n",
    "PIC002": "import random\n\nx = random.random()\n",
    "PIC003": "def go(items):\n    for x in set(items):\n        pass\n",
    "PIC101": (
        "from repro.mapreduce.job import JobSpec\n\n"
        "spec = JobSpec(mapper=lambda k, v: [(k, v)])\n"
    ),
    "PIC102": (
        "from repro.pic.api import PICProgram\n\n"
        "class P(PICProgram):\n"
        "    def map(self, key, value, ctx):\n"
        "        print(key)\n"
    ),
    "PIC201": "import sys\n\nn = sys.getsizeof([])\n",
    "PIC202": "def ship(sim, r):\n    sim.transfer('a', 'b', nbytes=len(r))\n",
}


def run_cli(args, capsys):
    code = main(args)
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestExitCodes:
    def test_clean_file_exits_zero(self, tmp_path, capsys):
        (tmp_path / "clean.py").write_text(CLEAN)
        code, out, _ = run_cli([str(tmp_path)], capsys)
        assert code == 0
        assert "0 findings in 1 files" in out

    def test_findings_exit_one(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text(VIOLATIONS["PIC001"])
        code, out, _ = run_cli([str(tmp_path)], capsys)
        assert code == 1
        assert "PIC001" in out

    def test_missing_path_exits_two(self, tmp_path, capsys):
        code, _, err = run_cli([str(tmp_path / "nope")], capsys)
        assert code == 2
        assert "no such file" in err

    def test_syntax_error_exits_two(self, tmp_path, capsys):
        (tmp_path / "broken.py").write_text("def broken(:\n")
        code, _, err = run_cli([str(tmp_path)], capsys)
        assert code == 2
        assert "broken.py" in err

    def test_each_rule_family_detected_with_correct_id(self, tmp_path, capsys):
        for rule_id, source in VIOLATIONS.items():
            target = tmp_path / f"{rule_id.lower()}.py"
            target.write_text(source)
            code, out, _ = run_cli([str(target)], capsys)
            assert code == 1, f"{rule_id} fixture did not trip the linter"
            assert rule_id in out, f"expected {rule_id} in output, got: {out}"


class TestTextFormat:
    def test_findings_render_path_line_col_rule(self, tmp_path, capsys):
        target = tmp_path / "bad.py"
        target.write_text(VIOLATIONS["PIC001"])
        _, out, _ = run_cli([str(target)], capsys)
        assert f"{target}:3:" in out
        assert " PIC001 " in out


class TestJsonFormat:
    def test_schema(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text(VIOLATIONS["PIC001"])
        (tmp_path / "clean.py").write_text(CLEAN)
        code, out, _ = run_cli([str(tmp_path), "--format", "json"], capsys)
        assert code == 1
        payload = json.loads(out)
        assert payload["version"] == JSON_SCHEMA_VERSION
        assert payload["files_checked"] == 2
        assert payload["total"] == 1
        assert payload["counts"] == {"PIC001": 1}
        assert payload["errors"] == []
        (finding,) = payload["findings"]
        assert set(finding) == {"path", "line", "col", "rule", "message"}
        assert finding["rule"] == "PIC001"
        assert finding["line"] == 3

    def test_clean_tree_json(self, tmp_path, capsys):
        (tmp_path / "clean.py").write_text(CLEAN)
        code, out, _ = run_cli([str(tmp_path), "--format", "json"], capsys)
        assert code == 0
        payload = json.loads(out)
        assert payload["total"] == 0
        assert payload["findings"] == []


class TestSelection:
    def test_select_limits_rules(self, tmp_path, capsys):
        target = tmp_path / "bad.py"
        target.write_text(VIOLATIONS["PIC001"] + VIOLATIONS["PIC002"])
        code, out, _ = run_cli([str(target), "--select", "PIC002"], capsys)
        assert code == 1
        assert "PIC002" in out and "PIC001" not in out

    def test_ignore_drops_rules(self, tmp_path, capsys):
        target = tmp_path / "bad.py"
        target.write_text(VIOLATIONS["PIC001"])
        code, _, _ = run_cli([str(target), "--ignore", "PIC001"], capsys)
        assert code == 0

    def test_unknown_rule_id_is_usage_error(self, tmp_path, capsys):
        (tmp_path / "clean.py").write_text(CLEAN)
        try:
            main([str(tmp_path), "--select", "PIC999"])
        except SystemExit as exc:
            assert exc.code == 2
        else:  # pragma: no cover - argparse always raises
            raise AssertionError("expected SystemExit")

    def test_list_rules(self, capsys):
        code, out, _ = run_cli(["--list-rules"], capsys)
        assert code == 0
        for rule_id in VIOLATIONS:
            assert rule_id in out


class TestExplain:
    def test_explain_one_rule(self, capsys):
        code, out, _ = run_cli(["--explain", "PIC702"], capsys)
        assert code == 0
        assert "PIC702" in out
        assert "family: concurrency interference" in out
        assert "bad (fires):" in out

    def test_bare_explain_lists_every_rule_sorted(self, capsys):
        from repro.lint.rules import all_rules

        code, out, _ = run_cli(["--explain"], capsys)
        assert code == 0
        lines = [line for line in out.splitlines() if line.strip()]
        ids = [line.split()[0] for line in lines]
        assert ids == [r.rule_id for r in all_rules()]
        assert ids == sorted(ids)
        for rule in all_rules():
            assert rule.summary in out

    def test_explain_unknown_rule_exits_two(self, capsys):
        code, _, err = run_cli(["--explain", "PIC999"], capsys)
        assert code == 2
        assert "unknown rule" in err


class TestModuleEntryPoint:
    def _run(self, *args):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        return subprocess.run(
            [sys.executable, "-m", "repro.lint", *args],
            capture_output=True,
            text=True,
            env=env,
            cwd=REPO_ROOT,
        )

    def test_python_dash_m_runs(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text(VIOLATIONS["PIC202"])
        proc = self._run(str(bad))
        assert proc.returncode == 1
        assert "PIC202" in proc.stdout

    def test_self_hosting_tree_is_clean(self):
        # The acceptance gate: the linter passes over its own codebase,
        # the benchmarks and the examples — whole-program rules included
        # — with the committed (empty) baseline.
        proc = self._run(
            "src", "benchmarks", "examples",
            "--no-cache", "--baseline", ".piclint-baseline.json",
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert proc.stdout.strip().endswith("files")

    def test_self_hosting_warm_cache_parses_nothing(self, tmp_path):
        cache = tmp_path / "cache.json"
        cold = self._run("src", "--cache-file", str(cache), "--stats")
        assert cold.returncode == 0, cold.stdout + cold.stderr
        warm = self._run("src", "--cache-file", str(cache), "--stats")
        assert warm.returncode == 0, warm.stdout + warm.stderr
        assert "parsed=0" in warm.stderr
