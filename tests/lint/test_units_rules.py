"""PIC601/PIC602: quantity-unit taint."""

import textwrap

from repro.lint import lint_source


def rules_found(source: str) -> list[str]:
    return sorted(
        {f.rule for f in lint_source(textwrap.dedent(source)) if f.rule[3] == "6"}
    )


class TestUnitMix:
    def test_wall_minus_sim(self):
        assert rules_found(
            """
            import time

            def lag(sim):
                started = time.perf_counter()  # noqa: PIC001
                return sim.now - started
            """
        ) == ["PIC601"]

    def test_wall_compared_to_sim(self):
        assert rules_found(
            """
            import time

            def late(sim):
                return time.monotonic() > sim.now  # noqa: PIC001
            """
        ) == ["PIC601"]

    def test_bytes_plus_sim_seconds(self):
        assert rules_found(
            """
            def nonsense(batch, sim):
                return batch.nbytes + sim.now
            """
        ) == ["PIC601"]

    def test_wall_augmented_into_sim_total(self):
        assert rules_found(
            """
            import time

            def accumulate(sim):
                total = sim.now
                total += time.perf_counter()  # noqa: PIC001
                return total
            """
        ) == ["PIC601"]

    def test_wall_minus_wall_is_clean(self):
        assert rules_found(
            """
            import time

            def elapsed():
                t0 = time.perf_counter()  # noqa: PIC001
                t1 = time.perf_counter()  # noqa: PIC001
                return t1 - t0
            """
        ) == []

    def test_sim_arithmetic_is_clean(self):
        assert rules_found(
            """
            def eta(sim, cluster):
                return sim.now + cluster.transfer_time("a", "b", 4096)
            """
        ) == []

    def test_rate_division_is_clean(self):
        # Dividing bytes by seconds builds a rate — the whole point of
        # mixed units, never a conflict.
        assert rules_found(
            """
            import time

            def throughput(nbytes):
                elapsed = time.perf_counter()  # noqa: PIC001
                return nbytes / elapsed
            """
        ) == []

    def test_len_plus_nbytes_is_clean(self):
        # Byte totals legitimately include len(encoded) pieces; the raw
        # len-as-flow-size case belongs to PIC202.
        assert rules_found(
            """
            def wire_total(key, value):
                return len(key.encode("utf-8")) + value.nbytes
            """
        ) == []


class TestSimSinkTaint:
    def test_wall_delta_into_schedule(self):
        assert rules_found(
            """
            import time

            def go(sim, cb):
                t0 = time.perf_counter()  # noqa: PIC001
                t1 = time.perf_counter()  # noqa: PIC001
                sim.schedule(t1 - t0, cb)
            """
        ) == ["PIC602"]

    def test_wall_into_run_until(self):
        assert rules_found(
            """
            import time

            def go(sim):
                sim.run_until(time.monotonic())  # noqa: PIC001
            """
        ) == ["PIC602"]

    def test_wall_into_transfer_nbytes(self):
        assert rules_found(
            """
            import time

            def ship(cluster):
                stamp = time.perf_counter()  # noqa: PIC001
                cluster.transfer("a", "b", stamp, "shuffle")
            """
        ) == ["PIC602"]

    def test_helper_returning_wall_into_sink(self):
        # Interprocedural: the wall-clock unit rides the helper's
        # return summary into the sink.
        assert rules_found(
            """
            import time

            def _delay():
                return time.perf_counter()  # noqa: PIC001

            def go(sim, cb):
                sim.schedule(_delay(), cb)
            """
        ) == ["PIC602"]

    def test_param_flowing_to_sink_taints_callers(self):
        # fire() forwards its delay into sim.schedule; a caller passing
        # wall-clock through it is flagged at the call site.
        assert rules_found(
            """
            import time

            def fire(sim, delay, cb):
                sim.schedule(delay, cb)

            def go(sim, cb):
                w = time.perf_counter()  # noqa: PIC001
                fire(sim, w, cb)
            """
        ) == ["PIC602"]

    def test_transfer_time_into_schedule_is_clean(self):
        assert rules_found(
            """
            def go(sim, cluster, cb):
                eta = cluster.transfer_time("a", "b", 4096)
                sim.schedule(eta, cb)
            """
        ) == []

    def test_sizeof_into_record_is_clean(self):
        assert rules_found(
            """
            from repro.util.sizing import sizeof_records

            def meterit(meter, records):
                meter.record("shuffle", sizeof_records(records), crosses_core=True)
            """
        ) == []

    def test_len_into_record_is_not_this_rules_business(self):
        # Count-vs-bytes at a byte sink is PIC202's finding, not PIC602.
        assert rules_found(
            """
            def ship(sim, records):
                sim.transfer("a", "b", nbytes=len(records))
            """
        ) == []
