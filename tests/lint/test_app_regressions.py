"""Regression guards for the real applications.

The shipped apps and the mapreduce runner are clean under the
whole-program rules (the committed baseline is empty).  These tests pin
that, and then prove the rules would catch the most likely regressions
by re-linting each real source file with a one-line seeded bug.
"""

from pathlib import Path

import pytest

from repro.lint import lint_source
from repro.lint.engine import run_lint

REPO = Path(__file__).resolve().parents[2]


def mutated(path: Path, old: str, new: str) -> str:
    source = path.read_text(encoding="utf-8")
    assert old in source, f"mutation anchor vanished from {path}: {old!r}"
    return source.replace(old, new, 1)


def project_rules(source: str) -> list[str]:
    return sorted(
        {f.rule for f in lint_source(source) if f.rule[3] in "34"}
    )


class TestRealTreeIsClean:
    @pytest.mark.parametrize("subtree", ["src", "benchmarks", "examples"])
    def test_no_aliasing_or_simulation_findings(self, subtree):
        run = run_lint([REPO / subtree])
        offenders = [f for f in run.findings if f.rule[3] in "34"]
        assert offenders == []
        assert run.errors == []


class TestSeededRegressions:
    def test_linsolve_partition_sharing_the_model_is_caught(self):
        # Drop the per-block sub-model and hand every block the shared
        # driver model: the exact bug partition() exists to avoid.
        source = mutated(
            REPO / "src/repro/apps/linsolve/program.py",
            "out.append((list(block), sub_model))",
            "out.append((list(block), model))",
        )
        assert "PIC301" in project_rules(source)

    def test_smoothing_merge_writing_into_a_partial_is_caught(self):
        # Accumulate into models[0] instead of a fresh dict.
        source = mutated(
            REPO / "src/repro/apps/smoothing/program.py",
            "                merged[key] = model[key]",
            "                models[0][key] = model[key]",
        )
        assert "PIC302" in project_rules(source)

    def test_kmeans_batch_map_writing_ctx_model_is_caught(self):
        # Task-side centroid update would silently diverge from the
        # driver's model copy.
        source = mutated(
            REPO / "src/repro/apps/kmeans/program.py",
            "        emit = ctx.emit",
            "        ctx.model[0] = centroids[0]\n        emit = ctx.emit",
        )
        assert "PIC303" in project_rules(source)

    def test_runner_skipping_the_simulated_read_is_caught(self):
        # Deliver the input-read completion synchronously instead of
        # through the flow network: zero simulated cost, wrong clock.
        source = mutated(
            REPO / "src/repro/mapreduce/runner.py",
            "                self.cluster.transfer(\n"
            "                    src, node_id, split.nbytes, "
            "TrafficCategory.INPUT, part_done\n"
            "                )",
            "                part_done(None)",
        )
        assert "PIC401" in project_rules(source)

    def test_runner_handler_draining_sim_queue_is_caught(self):
        # An event handler reaching into the simulator's private queue
        # mid-dispatch corrupts the event loop.
        source = mutated(
            REPO / "src/repro/mapreduce/runner.py",
            '    def _map_compute_phase(self, attempt: dict) -> None:\n'
            '        split_index = attempt["split"]',
            '    def _map_compute_phase(self, attempt: dict) -> None:\n'
            '        self.cluster.sim._queue.clear()\n'
            '        split_index = attempt["split"]',
        )
        assert "PIC402" in project_rules(source)
