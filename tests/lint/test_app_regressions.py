"""Regression guards for the real applications.

The shipped apps and the mapreduce runner are clean under the
whole-program rules (the committed baseline is empty).  These tests pin
that, and then prove the rules would catch the most likely regressions
by re-linting each real source file with a one-line seeded bug.
"""

from pathlib import Path

import pytest

from repro.lint import lint_source
from repro.lint.engine import run_lint

REPO = Path(__file__).resolve().parents[2]


def mutated(path: Path, old: str, new: str) -> str:
    source = path.read_text(encoding="utf-8")
    assert old in source, f"mutation anchor vanished from {path}: {old!r}"
    return source.replace(old, new, 1)


def project_rules(source: str) -> list[str]:
    # Lint under a real module name (as on-disk runs do): the default
    # "<memory>" path yields an anonymous module, which weakens
    # intra-module annotation resolution for the interprocedural rules.
    return sorted(
        {f.rule for f in lint_source(source, path="app.py") if f.rule[3] in "34567"}
    )


class TestRealTreeIsClean:
    @pytest.mark.parametrize("subtree", ["src", "benchmarks", "examples"])
    def test_no_whole_program_findings(self, subtree):
        run = run_lint([REPO / subtree])
        offenders = [f for f in run.findings if f.rule[3] in "34567"]
        assert offenders == []
        assert run.errors == []


class TestSeededRegressions:
    def test_linsolve_partition_sharing_the_model_is_caught(self):
        # Drop the per-block sub-model and hand every block the shared
        # driver model: the exact bug partition() exists to avoid.
        source = mutated(
            REPO / "src/repro/apps/linsolve/program.py",
            "out.append((list(block), sub_model))",
            "out.append((list(block), model))",
        )
        assert "PIC301" in project_rules(source)

    def test_smoothing_merge_writing_into_a_partial_is_caught(self):
        # Accumulate into models[0] instead of a fresh dict.
        source = mutated(
            REPO / "src/repro/apps/smoothing/program.py",
            "                merged[key] = model[key]",
            "                models[0][key] = model[key]",
        )
        assert "PIC302" in project_rules(source)

    def test_kmeans_batch_map_writing_ctx_model_is_caught(self):
        # Task-side centroid update would silently diverge from the
        # driver's model copy.
        source = mutated(
            REPO / "src/repro/apps/kmeans/program.py",
            "        emit = ctx.emit",
            "        ctx.model[0] = centroids[0]\n        emit = ctx.emit",
        )
        assert "PIC303" in project_rules(source)

    def test_runner_skipping_the_simulated_read_is_caught(self):
        # Deliver the input-read completion synchronously instead of
        # through the flow network: zero simulated cost, wrong clock.
        source = mutated(
            REPO / "src/repro/mapreduce/runner.py",
            "                    self.cluster.transfer(\n"
            "                        src, node_id, split.nbytes, "
            "TrafficCategory.INPUT, part_done\n"
            "                    )",
            "                    part_done(None)",
        )
        assert "PIC401" in project_rules(source)

    def test_runner_handler_draining_sim_queue_is_caught(self):
        # An event handler reaching into the simulator's private queue
        # mid-dispatch corrupts the event loop.
        source = mutated(
            REPO / "src/repro/mapreduce/runner.py",
            '    def _map_compute_phase(self, attempt: dict) -> None:\n'
            '        split_index = attempt["split"]',
            '    def _map_compute_phase(self, attempt: dict) -> None:\n'
            '        self.cluster.sim._queue.clear()\n'
            '        split_index = attempt["split"]',
        )
        assert "PIC402" in project_rules(source)

    def test_shm_rebuild_without_close_guard_is_caught(self):
        # Dropping the try/finally around the worker-side copy leaks
        # the mapping whenever a segment copy raises.
        source = mutated(
            REPO / "src/repro/parallel/shm.py",
            "    shm = _attach(name)\n"
            "    try:\n"
            "        buffers = [\n"
            "            bytearray(shm.buf[offset : offset + size])\n"
            "            for offset, size in segments\n"
            "        ]\n"
            "    finally:\n"
            "        shm.close()",
            "    shm = _attach(name)\n"
            "    buffers = [\n"
            "        bytearray(shm.buf[offset : offset + size])\n"
            "        for offset, size in segments\n"
            "    ]\n"
            "    shm.close()",
        )
        assert "PIC501" in project_rules(source)

    def test_double_cleanup_on_error_path_is_caught(self):
        # Releasing the block twice in export_batch's error path: the
        # second close/unlink pair is certainly redundant.
        source = mutated(
            REPO / "src/repro/parallel/shm.py",
            "        _release_block(shm)\n        raise",
            "        _release_block(shm)\n"
            "        _release_block(shm)\n"
            "        raise",
        )
        assert "PIC502" in project_rules(source)

    def test_reading_the_mapping_after_close_is_caught(self):
        # Closing before the copy reads freed shared memory.
        source = mutated(
            REPO / "src/repro/parallel/shm.py",
            "    shm = _attach(name)\n"
            "    try:\n"
            "        buffers = [\n"
            "            bytearray(shm.buf[offset : offset + size])\n"
            "            for offset, size in segments\n"
            "        ]\n"
            "    finally:\n"
            "        shm.close()",
            "    shm = _attach(name)\n"
            "    shm.close()\n"
            "    buffers = [\n"
            "        bytearray(shm.buf[offset : offset + size])\n"
            "        for offset, size in segments\n"
            "    ]",
        )
        assert "PIC503" in project_rules(source)

    def test_wall_clock_iteration_timing_is_caught(self):
        # Timing an iteration with the host clock but reporting it
        # against the simulated clock mixes the two time bases.
        source = mutated(
            REPO / "src/repro/mapreduce/driver.py",
            "            iter_start = self.cluster.now",
            "            import time\n"
            "            iter_start = time.perf_counter()  # pic: noqa: PIC001",
        )
        assert "PIC601" in project_rules(source)

    def test_wall_clock_overhead_scheduled_is_caught(self):
        # A host timestamp fed into sim.schedule silently warps the
        # simulated job-launch overhead.
        source = mutated(
            REPO / "src/repro/mapreduce/runner.py",
            "        overhead = self.spec.costs.job_overhead_seconds\n"
            "        self.cluster.sim.schedule(overhead, self._start_maps)",
            "        import time\n"
            "        overhead = time.perf_counter()  # pic: noqa: PIC001\n"
            "        self.cluster.sim.schedule(overhead, self._start_maps)",
        )
        assert "PIC602" in project_rules(source)

    def test_runner_handler_writing_a_sibling_job_is_caught(self):
        # A completion handler mirroring its progress into a *peer*
        # job's state: whichever job's handler runs last at the shared
        # timestamp wins, so the peer's view depends on tie order.
        source = mutated(
            REPO / "src/repro/mapreduce/runner.py",
            "    def _kill_attempt(self, attempt: dict) -> None:",
            '    def _mirror_peer(self, peer: "_JobState") -> None:\n'
            "        peer._maps_done = self._maps_done\n"
            "\n"
            "    def _kill_attempt(self, attempt: dict) -> None:",
        )
        source = source.replace(
            "        self._maps_done += 1",
            "        self._maps_done += 1\n"
            "        self._mirror_peer(self)",
            1,
        )
        assert "PIC701" in project_rules(source)

    def test_runner_unkeyed_cluster_scratch_field_is_caught(self):
        # Two independently scheduled handler paths (the serialized
        # reduce resolve and the reduce-finish chain) last-write-win a
        # shared scalar on the cluster: classic tie-order interference.
        source = mutated(
            REPO / "src/repro/mapreduce/runner.py",
            "    def _resolve_reduce_point(self) -> None:\n"
            "        self._reduce_resolve_pending = False",
            "    def _resolve_reduce_point(self) -> None:\n"
            "        self.cluster.last_actor = self._reduce_resolve_pending\n"
            "        self._reduce_resolve_pending = False",
        )
        source = source.replace(
            "        self._reduce_capacity[node_id] += 1",
            "        self.cluster.last_actor = node_id\n"
            "        self._reduce_capacity[node_id] += 1",
            1,
        )
        assert "PIC702" in project_rules(source)

    def test_runner_poking_scheduler_free_list_is_caught(self):
        # Handing a map slot back by writing the scheduler's free table
        # directly skips its serialization point — queued requests on
        # that node never get served.
        source = mutated(
            REPO / "src/repro/mapreduce/runner.py",
            "                self.runner.map_scheduler.release(node_id, "
            "app_id=self.job_index)",
            "                self.runner.map_scheduler._free[node_id] = 1",
        )
        assert "PIC703" in project_rules(source)

    def test_runner_shuffling_transfers_from_a_set_is_caught(self):
        # Collecting the map wave's shuffle requests in a set hands
        # transfer_batch an interpreter-hash-ordered iterable.
        source = mutated(
            REPO / "src/repro/mapreduce/runner.py",
            "        requests = []",
            "        requests = set()",
        )
        source = source.replace("requests.append((", "requests.add((", 1)
        assert "PIC704" in project_rules(source)
