"""Tests for the YARN-style resource manager and PIC-on-YARN port."""

import pytest

from repro.cluster.cluster import Cluster
from repro.cluster.topology import NodeSpec
from repro.dfs.dfs import DistributedFileSystem
from repro.mapreduce.job import JobSpec
from repro.mapreduce.records import DistributedDataset
from repro.mapreduce.runner import JobRunner
from repro.pic.runner import PICRunner
from repro.yarn import (
    Resource,
    ResourceManager,
    YarnJobRunner,
)
from tests.pic.toy import MeanProgram


def make_cluster(num_nodes=4, ram_gb=8, cores=4):
    return Cluster(
        num_nodes=num_nodes, nodes_per_rack=num_nodes,
        node_spec=NodeSpec(cores=cores, ram_bytes=ram_gb * 2**30),
    )


class TestResource:
    def test_arithmetic(self):
        a = Resource(1024, 2)
        b = Resource(512, 1)
        assert a + b == Resource(1536, 3)
        assert a - b == Resource(512, 1)

    def test_fits_in(self):
        assert Resource(512, 1).fits_in(Resource(1024, 2))
        assert not Resource(2048, 1).fits_in(Resource(1024, 2))
        assert not Resource(512, 3).fits_in(Resource(1024, 2))

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Resource(-1, 0)


class TestResourceManager:
    def test_capacity_reserves_headroom(self):
        rm = ResourceManager(make_cluster(ram_gb=8))
        cap = rm.capacity(0)
        assert cap.memory_mb == int(8 * 1024 * 0.75)
        assert cap.vcores == 4

    def test_grant_and_release_conserve_capacity(self):
        rm = ResourceManager(make_cluster())
        granted = []
        rm.request(Resource(1024, 1), granted.append)
        assert len(granted) == 1
        container = granted[0]
        before = rm.available(container.node_id)
        rm.release(container)
        after = rm.available(container.node_id)
        assert after.memory_mb == before.memory_mb + 1024
        assert after == rm.capacity(container.node_id)

    def test_locality_preference(self):
        rm = ResourceManager(make_cluster())
        granted = []
        rm.request(Resource(1024, 1), granted.append, preferred=(2,))
        assert granted[0].node_id == 2

    def test_queues_when_full(self):
        rm = ResourceManager(make_cluster(num_nodes=1, ram_gb=2, cores=1))
        granted = []
        rm.request(Resource(1024, 1), granted.append)
        rm.request(Resource(1024, 1), granted.append)
        assert len(granted) == 1  # second waits: only 1 vcore
        rm.release(granted[0])
        assert len(granted) == 2

    def test_memory_constrains_independently_of_cores(self):
        # 2 GB usable = 1536 MB -> one 1024 MB container despite 4 cores.
        rm = ResourceManager(make_cluster(num_nodes=1, ram_gb=2, cores=4))
        granted = []
        rm.request(Resource(1024, 1), granted.append)
        rm.request(Resource(1024, 1), granted.append)
        assert len(granted) == 1

    def test_impossible_request_rejected(self):
        rm = ResourceManager(make_cluster(ram_gb=2))
        with pytest.raises(ValueError, match="capacity"):
            rm.request(Resource(10**6, 1), lambda c: None)

    def test_over_release_rejected(self):
        rm = ResourceManager(make_cluster())
        granted = []
        rm.request(Resource(1024, 1), granted.append)
        rm.release(granted[0])
        with pytest.raises(RuntimeError):
            rm.release(granted[0])

    def test_try_allocate_on_pins_node(self):
        rm = ResourceManager(make_cluster())
        container = rm.try_allocate_on(3, Resource(1024, 1))
        assert container is not None and container.node_id == 3
        assert rm.try_allocate_on(3, Resource(10**6, 1)) is None


def word_env(runner_cls, cluster=None):
    cluster = cluster or make_cluster(num_nodes=6, ram_gb=16, cores=8)
    dfs = DistributedFileSystem(cluster)
    records = [(i, f"w{i % 10}") for i in range(600)]
    dataset = DistributedDataset.materialize(dfs, "/in", records, 12)
    return cluster, runner_cls(cluster, dfs), dataset


def word_spec():
    return JobSpec(
        name="wc",
        mapper=lambda ctx, k, v: ctx.emit(v, 1),
        reducer=lambda ctx, k, vs: ctx.emit(k, sum(vs)),
        num_reducers=4,
    )


class TestYarnJobRunner:
    def test_same_results_as_slot_runner(self):
        _c1, slot_runner, ds1 = word_env(JobRunner)
        _c2, yarn_runner, ds2 = word_env(YarnJobRunner)
        a = slot_runner.run(word_spec(), ds1)
        b = yarn_runner.run(word_spec(), ds2)
        assert sorted(a.output) == sorted(b.output)

    def test_containers_granted_and_returned(self):
        cluster, runner, dataset = word_env(YarnJobRunner)
        runner.run(word_spec(), dataset)
        assert runner.rm.containers_granted >= 12 + 4
        for node in cluster.nodes:
            assert runner.rm.available(node.node_id) == runner.rm.capacity(
                node.node_id
            )

    def test_memory_constrained_node_throttles_maps(self):
        # 4 GB RAM -> 3072 MB usable -> at most three 1024 MB map
        # containers at a time despite 8 vcores; the job still finishes.
        cluster = make_cluster(num_nodes=1, ram_gb=4, cores=8)
        _c, runner, dataset = word_env(YarnJobRunner, cluster=cluster)
        assert runner.map_scheduler.total_slots == 3
        result = runner.run(word_spec(), dataset)
        assert sorted(result.output) == sorted((f"w{i}", 60) for i in range(10))

    def test_oversized_profile_rejected(self):
        cluster = make_cluster(num_nodes=1, ram_gb=2, cores=8)
        dfs = DistributedFileSystem(cluster)
        with pytest.raises(ValueError, match="deadlock"):
            YarnJobRunner(cluster, dfs)  # default reduce profile: 2 GB

    def test_adapter_slot_accounting(self):
        cluster, runner, _ds = word_env(YarnJobRunner)
        total = runner.map_scheduler.total_slots
        # 12 GB usable memory/node / 1 GB maps, capped by 8 vcores.
        assert total == 6 * 8

    def test_repeated_jobs(self):
        _c, runner, dataset = word_env(YarnJobRunner)
        for _ in range(3):
            result = runner.run(word_spec(), dataset)
            assert len(result.output) == 10


class TestPICOnYarn:
    def test_pic_runs_unchanged_on_containers(self):
        """Section VII: PIC ports to YARN with no PIC-level changes."""
        records = [(i, float(i)) for i in range(40)]
        cluster = make_cluster()
        dfs = DistributedFileSystem(cluster)
        from repro.pic.engine import BestEffortEngine

        engine = BestEffortEngine(
            cluster, MeanProgram(), num_partitions=4,
            runner=YarnJobRunner(cluster, dfs), dfs=dfs,
        )
        result = engine.run(records, {"mean": 0.0})
        assert result.model["mean"] == pytest.approx(19.5, abs=1e-3)

    def test_pic_yarn_matches_pic_slots(self):
        records = [(i, float(i)) for i in range(40)]
        slots = PICRunner(make_cluster(), MeanProgram(), num_partitions=4).run(
            records, initial_model={"mean": 0.0}
        )
        cluster = make_cluster()
        dfs = DistributedFileSystem(cluster)
        from repro.pic.engine import BestEffortEngine

        engine = BestEffortEngine(
            cluster, MeanProgram(), num_partitions=4,
            runner=YarnJobRunner(cluster, dfs), dfs=dfs,
        )
        yarn_be = engine.run(records, {"mean": 0.0})
        assert yarn_be.model["mean"] == pytest.approx(
            slots.best_effort.model["mean"], abs=1e-6
        )


class TestConcurrentApplications:
    def test_least_granted_app_served_first(self):
        """Queued requests from the app holding fewer containers win
        over an earlier-queued request of a greedier app."""
        rm = ResourceManager(make_cluster(num_nodes=1, ram_gb=4, cores=2))
        grants = []
        held = []
        # App 1 fills both vcores and queues two more requests.
        for _ in range(2):
            rm.request(Resource(1024, 1), held.append, app_id=1)
        for _ in range(2):
            rm.request(Resource(1024, 1),
                       lambda c: grants.append(c.app_id), app_id=1)
        # App 2 queues one request behind them.
        rm.request(Resource(1024, 1),
                   lambda c: grants.append(c.app_id), app_id=2)
        assert rm.outstanding(1) == 2 and rm.outstanding(2) == 0
        rm.release(held.pop())
        # App 2 (holding 0) beats app 1's older queued requests.
        assert grants == [2]

    def test_single_app_queue_is_fifo(self):
        rm = ResourceManager(make_cluster(num_nodes=1, ram_gb=4, cores=1))
        order = []
        held = []
        rm.request(Resource(1024, 1), held.append)
        for i in range(3):
            rm.request(Resource(1024, 1), lambda c, i=i: order.append(i))
        rm.release(held.pop())
        assert order == [0]

    def test_outstanding_tracks_reduce_pins(self):
        rm = ResourceManager(make_cluster())
        container = rm.try_allocate_on(0, Resource(1024, 1), app_id=7)
        assert container is not None
        assert rm.outstanding(7) == 1
        rm.release(container)
        assert rm.outstanding(7) == 0


class TestConcurrentJobs:
    def test_run_many_matches_solo_outputs(self):
        """Two word-count jobs sharing the cluster both finish and
        produce exactly the records a solo run produces."""
        cluster, runner, dataset = word_env(YarnJobRunner)
        solo_cluster, solo_runner, solo_dataset = word_env(YarnJobRunner)
        solo = solo_runner.run(word_spec(), solo_dataset)

        dfs = runner.dfs
        records = [(i, f"word{i % 4}") for i in range(120)]
        dataset_b = DistributedDataset.materialize(dfs, "/in-b", records, 4)
        results = runner.run_many([
            (word_spec(), dataset),
            (word_spec(), dataset_b),
        ])
        assert sorted(results[0].output) == sorted(solo.output)
        assert sorted(results[1].output) == [
            (f"word{i}", 30) for i in range(4)
        ]
        # Both jobs ran concurrently on one simulation clock.
        assert results[0].started_at == results[1].started_at
        assert max(r.finished_at for r in results) == cluster.now

    def test_concurrent_jobs_share_slots_fairly(self):
        """Neither job monopolizes the map containers: both jobs get
        grants before either finishes its map wave."""
        cluster, runner, dataset = word_env(YarnJobRunner)
        records = [(i, f"word{i % 4}") for i in range(120)]
        dataset_b = DistributedDataset.materialize(
            runner.dfs, "/in-b", records, 4
        )
        handles = runner.submit_many([
            (word_spec(), dataset),
            (word_spec(), dataset_b),
        ])
        cluster.run()
        assert all(handle.done for handle in handles)
        outstanding = runner.rm._outstanding
        assert all(count == 0 for count in outstanding.values())
