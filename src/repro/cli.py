"""Command-line interface: run any of the paper's five applications
through conventional IC and PIC on a simulated cluster.

Examples::

    python -m repro.cli kmeans --points 100000 --clusters 10
    python -m repro.cli pagerank --vertices 20000 --partitions 18
    python -m repro.cli linsolve --variables 100 --dominance 1.05
    python -m repro.cli neuralnet --samples 21000 --cluster medium
    python -m repro.cli smoothing --side 256 --cluster small
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Callable, Sequence

import numpy as np

from repro.cluster.cluster import Cluster
from repro.cluster.presets import large_cluster, medium_cluster, small_cluster
from repro.harness.compare import ComparisonResult
from repro.util.formatting import human_bytes, human_time, render_table

CLUSTERS: dict[str, Callable[[], Cluster]] = {
    "small": small_cluster,
    "medium": medium_cluster,
    "large": large_cluster,
}


def _add_common(parser: argparse.ArgumentParser, default_partitions: int) -> None:
    parser.add_argument(
        "--cluster", choices=sorted(CLUSTERS), default="small",
        help="simulated cluster preset (paper testbeds; default: small)",
    )
    parser.add_argument(
        "--partitions", type=int, default=default_partitions,
        help=f"PIC sub-problem count (default: {default_partitions})",
    )
    parser.add_argument("--seed", type=int, default=1, help="RNG seed")
    parser.add_argument(
        "--speculative", action="store_true",
        help="enable Hadoop-style speculative execution",
    )
    parser.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="host processes for independent task computations "
             "(default: $PIC_WORKERS or 1; wall-clock only — simulated "
             "results are identical for any worker count)",
    )
    parser.add_argument(
        "--columnar", choices=("on", "off"), default=None,
        help="columnar (numpy) record batches in the MapReduce data "
             "plane (default: $PIC_COLUMNAR or on; wall-clock only — "
             "simulated results are identical either way)",
    )
    parser.add_argument(
        "--pipeline", choices=("on", "off"), default=None,
        help="pipelined shuffle + loop-aware node-memory caching "
             "(default: $PIC_PIPELINE or off; changes simulated timing "
             "— same model, completion time <= barrier mode)",
    )


def _report(result: ComparisonResult, quality_rows: list[list[str]] | None = None) -> str:
    pic = result.pic
    rows = [
        ["IC (conventional)", str(result.ic.iterations),
         human_time(result.ic_time), ""],
        ["PIC best-effort", str(pic.be_iterations),
         human_time(pic.be_time),
         " ".join(str(x) for x in pic.best_effort.max_local_iterations_by_round)],
        ["PIC top-off", str(pic.topoff_iterations),
         human_time(pic.topoff_time), ""],
    ]
    out = render_table(
        ["run", "iterations", "simulated time", "(max) locals per round"], rows
    )
    out += f"\n\nspeedup: {result.speedup:.2f}x"
    ic_shuffle, pic_shuffle = result.traffic_row("shuffle")
    out += (f"\nshuffle volume: IC {human_bytes(ic_shuffle)}"
            f" vs PIC {human_bytes(pic_shuffle)}")
    if quality_rows:
        out += "\n" + render_table(["quality metric", "IC", "PIC"], quality_rows)
    return out


def _run(workload, speculative: bool, workers: int | None = None) -> ComparisonResult:
    import copy

    from repro.pic.runner import PICRunner, run_ic_baseline

    ic_cluster = workload.cluster_factory()
    ic = run_ic_baseline(
        ic_cluster, workload.program, workload.records,
        initial_model=copy.deepcopy(workload.initial_model),
        max_iterations=1000, speculative=speculative, workers=workers,
    )
    pic_cluster = workload.cluster_factory()
    pic = PICRunner(
        pic_cluster, workload.program, num_partitions=workload.num_partitions,
        seed=3, be_max_iterations=100, max_iterations=1000,
        speculative=speculative, workers=workers,
    ).run(workload.records, initial_model=copy.deepcopy(workload.initial_model))
    return ComparisonResult(ic=ic, ic_traffic=ic_cluster.meter.snapshot(), pic=pic)


# -- subcommands ------------------------------------------------------------

def cmd_kmeans(args) -> str:
    """Run K-means clustering IC-vs-PIC and render the comparison."""
    from repro.apps.kmeans import KMeansProgram, gaussian_mixture, jagota_index
    from repro.harness.workloads import Workload

    records, _ = gaussian_mixture(
        args.points, args.clusters, dim=args.dim,
        separation=args.separation, seed=args.seed,
    )
    program = KMeansProgram(k=args.clusters, dim=args.dim, threshold=args.threshold)
    workload = Workload(
        name="cli-kmeans", cluster_factory=CLUSTERS[args.cluster],
        program=program, records=records,
        initial_model=program.initial_model(records, seed=args.seed + 1),
        num_partitions=args.partitions,
    )
    result = _run(workload, args.speculative, args.workers)
    points = np.stack([v for _k, v in records])
    quality = [[
        "Jagota index",
        f"{jagota_index(points, program.centroid_array(result.ic.model)):.3f}",
        f"{jagota_index(points, program.centroid_array(result.pic.model)):.3f}",
    ]]
    return _report(result, quality)


def cmd_pagerank(args) -> str:
    """Run PageRank IC-vs-PIC and render the comparison."""
    from repro.apps.pagerank import PageRankProgram, local_web_graph, nutch_pagerank
    from repro.harness.workloads import Workload

    records = local_web_graph(
        args.vertices, avg_out_degree=args.degree, seed=args.seed
    )
    program = PageRankProgram(partition_mode=args.partition_mode)
    workload = Workload(
        name="cli-pagerank", cluster_factory=CLUSTERS[args.cluster],
        program=program, records=records,
        initial_model=program.initial_model(records),
        num_partitions=args.partitions,
    )
    result = _run(workload, args.speculative, args.workers)
    reference = nutch_pagerank(records)
    ranks = program.rank_vector(result.pic.model, args.vertices)
    rel_l1 = float(np.abs(ranks - reference).sum() / reference.sum())
    return _report(result, [["rank error (rel L1)", "0 (exact)", f"{rel_l1:.4f}"]])


def cmd_linsolve(args) -> str:
    """Run the linear solver IC-vs-PIC and render the comparison."""
    from repro.apps.linsolve import LinearSolverProgram, diagonally_dominant_system
    from repro.apps.linsolve.datagen import system_records
    from repro.harness.workloads import Workload

    A, b, x_star = diagonally_dominant_system(
        args.variables, bandwidth=args.bandwidth,
        dominance=args.dominance, seed=args.seed,
    )
    records = system_records(A, b)
    program = LinearSolverProgram(threshold=args.threshold)
    workload = Workload(
        name="cli-linsolve", cluster_factory=CLUSTERS[args.cluster],
        program=program, records=records,
        initial_model=program.initial_model(records),
        num_partitions=args.partitions,
    )
    result = _run(workload, args.speculative, args.workers)
    err_ic = np.linalg.norm(
        program.solution_vector(result.ic.model, args.variables) - x_star
    )
    err_pic = np.linalg.norm(
        program.solution_vector(result.pic.model, args.variables) - x_star
    )
    return _report(result, [["|x - x*|", f"{err_ic:.2e}", f"{err_pic:.2e}"]])


def cmd_neuralnet(args) -> str:
    """Run NN training IC-vs-PIC and render the comparison."""
    from repro.apps.neuralnet import MLP, NeuralNetProgram, ocr_dataset
    from repro.harness.workloads import Workload

    records, X, y = ocr_dataset(args.samples, seed=args.seed)
    split = int(args.samples * 20 / 21)
    train, Xv, yv = records[:split], X[split:], y[split:]
    program = NeuralNetProgram(
        MLP(64, args.hidden, 10), validation=(Xv, yv)
    )
    workload = Workload(
        name="cli-neuralnet", cluster_factory=CLUSTERS[args.cluster],
        program=program, records=train,
        initial_model=program.initial_model(train, seed=args.seed + 2),
        num_partitions=args.partitions,
    )
    result = _run(workload, args.speculative, args.workers)
    quality = [[
        "validation error",
        f"{program.validation_error(result.ic.model, Xv, yv):.4f}",
        f"{program.validation_error(result.pic.model, Xv, yv):.4f}",
    ]]
    return _report(result, quality)


def cmd_smoothing(args) -> str:
    """Run image smoothing IC-vs-PIC and render the comparison."""
    from repro.apps.smoothing import ImageSmoothingProgram, synthetic_image
    from repro.apps.smoothing.datagen import image_records
    from repro.harness.workloads import Workload

    img = synthetic_image(args.side, args.side, seed=args.seed)
    records = image_records(img)
    program = ImageSmoothingProgram(args.side, args.side)
    workload = Workload(
        name="cli-smoothing", cluster_factory=CLUSTERS[args.cluster],
        program=program, records=records,
        initial_model=program.initial_model(records),
        num_partitions=args.partitions,
    )
    result = _run(workload, args.speculative, args.workers)
    return _report(result)


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser with one subcommand per app."""
    parser = argparse.ArgumentParser(
        prog="repro.cli",
        description="PIC (CLUSTER 2012) reproduction: run IC vs PIC "
                    "for any of the paper's five applications.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("kmeans", help="K-means clustering (Section IV-A)")
    p.add_argument("--points", type=int, default=100_000)
    p.add_argument("--clusters", type=int, default=10)
    p.add_argument("--dim", type=int, default=3)
    p.add_argument("--separation", type=float, default=6.0)
    p.add_argument("--threshold", type=float, default=0.1)
    _add_common(p, default_partitions=24)
    p.set_defaults(func=cmd_kmeans)

    p = sub.add_parser("pagerank", help="PageRank (Section IV-B)")
    p.add_argument("--vertices", type=int, default=20_000)
    p.add_argument("--degree", type=float, default=8.0)
    p.add_argument("--partition-mode", dest="partition_mode",
                   choices=("contiguous", "mincut", "random"),
                   default="contiguous")
    _add_common(p, default_partitions=18)
    p.set_defaults(func=cmd_pagerank)

    p = sub.add_parser("linsolve", help="linear equation solver")
    p.add_argument("--variables", type=int, default=100)
    p.add_argument("--bandwidth", type=int, default=2)
    p.add_argument("--dominance", type=float, default=1.05)
    p.add_argument("--threshold", type=float, default=1e-6)
    _add_common(p, default_partitions=6)
    p.set_defaults(func=cmd_linsolve)

    p = sub.add_parser("neuralnet", help="neural-network training")
    p.add_argument("--samples", type=int, default=21_000)
    p.add_argument("--hidden", type=int, default=32)
    _add_common(p, default_partitions=18)
    p.set_defaults(func=cmd_neuralnet)

    p = sub.add_parser("smoothing", help="image smoothing")
    p.add_argument("--side", type=int, default=256)
    _add_common(p, default_partitions=12)
    p.set_defaults(func=cmd_smoothing)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if getattr(args, "columnar", None) is not None:
        from repro.mapreduce.columnar import COLUMNAR_ENV_VAR

        os.environ[COLUMNAR_ENV_VAR] = "1" if args.columnar == "on" else "0"
    if getattr(args, "pipeline", None) is not None:
        from repro.mapreduce.pipeline import PIPELINE_ENV_VAR

        os.environ[PIPELINE_ENV_VAR] = "1" if args.pipeline == "on" else "0"
    print(args.func(args))
    return 0


if __name__ == "__main__":
    sys.exit(main())
