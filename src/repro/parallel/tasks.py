"""Module-level task functions shipped to worker processes.

Both functions are pure: they read their payload, compute, and return a
picklable result.  Keeping them at module level (not closures or bound
methods of runner state) is what makes them importable from a freshly
spawned/forked worker.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.mapreduce.job import TaskContext


def solve_subproblem(
    payload: tuple[Any, Sequence[tuple[Any, Any]], Any, int | None],
) -> tuple[Any, int, float]:
    """Run one sub-problem's local IC iterations to convergence.

    Payload: ``(program, records, sub_model, max_iterations)``.
    Returns ``(solved_model, iterations, compute_seconds)`` — exactly
    :meth:`PICProgram.solve_in_memory`'s contract.
    """
    program, records, model, max_iterations = payload
    return program.solve_in_memory(records, model, max_iterations=max_iterations)


def run_map_task(
    payload: tuple[Any, Any, int, Sequence[tuple[Any, Any]]],
) -> tuple[Any, dict[str, float]]:
    """Run one map task's real computation against a fresh context.

    Payload: ``(spec, model, split_index, records)``.  Returns the
    emitted output (rows, or a ``ColumnBatch`` when the mapper emitted
    exactly one) and the task's stats dict; the job runner replays both
    into the simulated task at its scheduled compute time.
    """
    spec, model, split_index, records = payload
    ctx = TaskContext(model=model, split_index=split_index)
    spec.run_mapper(ctx, records)
    return ctx.collect(), dict(ctx.stats)
