"""Task executors: serial and process-pool backends.

A :class:`TaskExecutor` maps a module-level function over a list of
payloads and returns the results in order.  The two backends are
interchangeable because every function we ship is *pure* and
*deterministic*: same payload, same result, no shared state.  That is
exactly the property PIC's best-effort sub-problems have by
construction (zero cross-partition traffic), so farming them out to a
pool cannot change any simulated byte or second — only host wall-clock.

Backend selection:

* ``get_executor()`` reads the ``PIC_WORKERS`` environment variable
  (CLI ``--workers`` overrides it); ``1``/unset means serial.
* Unpicklable work (closure-based job specs, exotic models) falls back
  to in-process execution automatically — parallelism is an
  optimization, never a requirement.

Pools are shared per worker count across executor instances (engines
and job runners are created per experiment; respawning interpreters for
each would dwarf the savings) and torn down at interpreter exit.
"""

from __future__ import annotations

import atexit
import os
import pickle
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from typing import Any, Callable, Sequence

WORKERS_ENV_VAR = "PIC_WORKERS"

# Pickling a payload can fail with more than PicklingError: closures
# raise AttributeError ("Can't pickle local object"), locks and
# generators raise TypeError.  Any of them means "run it in-process".
_FALLBACK_ERRORS = (pickle.PicklingError, AttributeError, TypeError)

# Picklability verdicts per function identity (see ``_picklable``).
_PROBE_CACHE: dict[tuple[int, str, str], bool] = {}


def resolve_workers(workers: int | None = None) -> int:
    """Resolve a worker count: explicit value, else ``PIC_WORKERS``, else 1."""
    if workers is None:
        raw = os.environ.get(WORKERS_ENV_VAR, "").strip()
        if not raw:
            return 1
        try:
            workers = int(raw)
        except ValueError as exc:
            raise ValueError(
                f"{WORKERS_ENV_VAR} must be an integer, got {raw!r}"
            ) from exc
    if workers < 1:
        raise ValueError(f"worker count must be >= 1, got {workers}")
    return workers


class TaskExecutor:
    """Maps a pure function over payloads; backends differ only in *where*."""

    workers: int = 1

    @property
    def is_parallel(self) -> bool:
        """True when this executor can use more than one process."""
        return self.workers > 1

    def map(
        self, fn: Callable[[Any], Any], payloads: Sequence[Any]
    ) -> list[Any]:
        """Apply ``fn`` to each payload, returning results in order."""
        return [fn(p) for p in payloads]

    def map_or_none(
        self, fn: Callable[[Any], Any], payloads: Sequence[Any]
    ) -> list[Any] | None:
        """Like :meth:`map`, but ``None`` when parallelism is unavailable.

        Callers with a cheaper lazy path (e.g. the job runner, which
        otherwise computes each map task at its simulated start time)
        use this to skip eager computation unless it actually buys
        concurrency.
        """
        return None


class SerialExecutor(TaskExecutor):
    """In-process execution; the default and the semantic reference."""


class ProcessPoolTaskExecutor(TaskExecutor):
    """Fans payloads out to a shared ``ProcessPoolExecutor``.

    Results come back in payload order.  If the function, a payload, or
    a result cannot cross the process boundary — or the pool dies — the
    whole batch is (re)computed in-process; ``fn`` being pure makes the
    retry safe.
    """

    def __init__(self, workers: int) -> None:
        self.workers = resolve_workers(workers)

    def map(
        self, fn: Callable[[Any], Any], payloads: Sequence[Any]
    ) -> list[Any]:
        results = self.map_or_none(fn, payloads)
        if results is None:
            results = [fn(p) for p in payloads]
        return results

    def map_or_none(
        self, fn: Callable[[Any], Any], payloads: Sequence[Any]
    ) -> list[Any] | None:
        from repro.parallel.shm import release_batches, swap_out_batches

        payloads = list(payloads)
        if len(payloads) < 2:
            return None
        # Columnar record batches ride to the workers through shared
        # memory, not the pool's pickle pipe; handles pickle in O(1).
        # In pipelined mode loop-invariant batches keep their blocks
        # alive across maps instead of re-exporting every iteration.
        payloads, exported = swap_out_batches(payloads, cache=_export_cache())
        try:
            if not self._picklable(fn, payloads[0]):
                return None
            try:
                pool = _shared_pool(self.workers)
                return list(pool.map(fn, payloads))
            except _FALLBACK_ERRORS:
                return None
            except BrokenExecutor:
                _discard_pool(self.workers)
                return None
        finally:
            release_batches(exported)

    @staticmethod
    def _picklable(fn: Callable[[Any], Any], probe: Any) -> bool:
        """Can ``(fn, probe)`` cross a process boundary?

        The verdict for ``fn`` is cached per function identity: the same
        job/program callables are probed once per process, not once per
        map wave.  The payload probe only runs on a cache miss — a
        later payload that cannot pickle surfaces at ``pool.map`` and
        falls back in-process there, so skipping it is safe.  A failure
        caused by the payload alone is deliberately *not* cached: the
        function may well work with the next job's payloads.
        """
        key = (id(fn), getattr(fn, "__module__", ""), getattr(fn, "__qualname__", ""))
        cached = _PROBE_CACHE.get(key)
        if cached is not None:
            return cached
        try:
            pickle.dumps(fn)
        except _FALLBACK_ERRORS:
            _PROBE_CACHE[key] = False
            return False
        try:
            pickle.dumps(probe)
        except _FALLBACK_ERRORS:
            return False
        _PROBE_CACHE[key] = True
        return True


def get_executor(workers: int | None = None) -> TaskExecutor:
    """Executor for ``workers`` processes (default: ``PIC_WORKERS`` or serial)."""
    count = resolve_workers(workers)
    if count == 1:
        return SerialExecutor()
    return ProcessPoolTaskExecutor(count)


# -- shared pools ------------------------------------------------------------

_POOLS: dict[int, ProcessPoolExecutor] = {}


def _shared_pool(workers: int) -> ProcessPoolExecutor:
    pool = _POOLS.get(workers)
    if pool is None:
        pool = ProcessPoolExecutor(max_workers=workers)
        _POOLS[workers] = pool
    return pool


def _discard_pool(workers: int) -> None:
    pool = _POOLS.pop(workers, None)
    if pool is not None:
        pool.shutdown(wait=False, cancel_futures=True)


def shutdown_shared_pools() -> None:
    """Tear down every shared pool (atexit hook; also handy in tests)."""
    for workers in list(_POOLS):
        pool = _POOLS.pop(workers)
        pool.shutdown(wait=True, cancel_futures=True)


atexit.register(shutdown_shared_pools)


# -- shared export cache -----------------------------------------------------

_EXPORT_CACHE: Any | None = None


def _export_cache() -> Any | None:
    """Process-wide :class:`~repro.parallel.shm.BatchExportCache`, or
    ``None`` when pipelined mode is off (``PIC_PIPELINE``)."""
    from repro.mapreduce.pipeline import pipeline_enabled

    if not pipeline_enabled():
        return None
    global _EXPORT_CACHE
    if _EXPORT_CACHE is None:
        from repro.parallel.shm import BatchExportCache

        _EXPORT_CACHE = BatchExportCache()
    return _EXPORT_CACHE


def release_export_cache() -> None:
    """Unlink every cached shm block (atexit hook; also handy in tests).

    Resets the singleton so a later pipelined run starts a fresh cache
    rather than hitting the released (terminal) one.
    """
    global _EXPORT_CACHE
    cache = _EXPORT_CACHE
    _EXPORT_CACHE = None
    if cache is not None:
        cache.release()


atexit.register(release_export_cache)
