"""Host-side parallel execution of independent task computations.

The simulator charges *simulated* time for map tasks, but the real
Python computation inside each task (the best-effort local solves, the
conventional mappers) historically ran sequentially in one process.
This package runs those independent computations across a process pool
while keeping every simulated metric bit-identical to serial execution:
the pool only changes *when* the host computes a task's output, never
*what* the output is or what the simulation charges for it.
"""

from repro.parallel.executor import (
    ProcessPoolTaskExecutor,
    SerialExecutor,
    TaskExecutor,
    WORKERS_ENV_VAR,
    get_executor,
    resolve_workers,
    shutdown_shared_pools,
)
from repro.parallel.tasks import run_map_task, solve_subproblem

__all__ = [
    "ProcessPoolTaskExecutor",
    "SerialExecutor",
    "TaskExecutor",
    "WORKERS_ENV_VAR",
    "get_executor",
    "resolve_workers",
    "run_map_task",
    "shutdown_shared_pools",
    "solve_subproblem",
]
