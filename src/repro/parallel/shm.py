"""Zero-copy hand-off of columnar batches to pool workers.

Shipping a big :class:`~repro.mapreduce.columnar.ColumnBatch` to a
worker through the pool's pipe costs two full copies (pickle write,
pickle read) plus the pickling itself.  This module instead exports the
batch's backing numpy arrays into one POSIX shared-memory block and
replaces the batch in the payload with a tiny picklable handle; the
worker reconstructs the batch straight out of the mapping.

Mechanics: the batch is pickled once with protocol 5, which hands the
raw array buffers out-of-band instead of embedding them — what remains
is a small skeleton describing column structure.  The buffers go into
the shared block; the handle carries the skeleton, the block name, and
the (offset, size) of each buffer.  On the worker the handle unpickles
*directly* into a ``ColumnBatch``: it attaches to the block, copies each
segment into worker-local memory (a single writable ``bytearray`` per
array — no pickling, no pipe), and feeds them back to ``pickle.loads``
as protocol-5 buffers.

Lifecycle: the submitting side owns the block and unlinks it after the
pool map completes (success or not); workers attach, copy, and close
inside the unpickle, so they never hold a mapping afterwards and the
copy makes the rebuilt batch's lifetime independent of the block's.
Export is gated by ``PIC_SHM`` (default on) and silently falls back to
plain pickling when shared memory is unavailable (``OSError``) or the
batch is too small to be worth a block.
"""

from __future__ import annotations

import os
import pickle
import weakref
from collections import OrderedDict
from multiprocessing import shared_memory
from typing import Any, Callable, Sequence

SHM_ENV_VAR = "PIC_SHM"

# Below this many payload bytes the two pipe copies are cheaper than a
# shared-memory block's create/attach/unlink syscalls.
MIN_SHM_BYTES = 64 * 1024

# Byte budget for blocks the export cache keeps alive between pool
# maps (pipelined mode).  Loop-invariant datasets re-submitted every
# iteration stay well under this; the LRU trim handles the rest.
DEFAULT_EXPORT_CACHE_BYTES = 1 << 30


def shm_enabled() -> bool:
    """Shared-memory hand-off toggle (``PIC_SHM``, default on)."""
    raw = os.environ.get(SHM_ENV_VAR, "").strip().lower()
    return raw not in ("0", "off", "false", "no")


def _release_block(shm: shared_memory.SharedMemory) -> None:
    """Close and unlink ``shm``, each step independently, best-effort.

    ``unlink`` must run even when ``close`` raises — a skipped unlink
    leaks the block past process exit — so the two releases get
    separate guards instead of one shared try block.
    """
    try:
        shm.close()
    except OSError:  # pragma: no cover - mapping already gone
        pass
    try:
        shm.unlink()
    except OSError:  # pragma: no cover - name already gone
        pass


def _attach(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing block without taking ownership.

    Python 3.13+ exposes ``track=False`` for exactly this.  On earlier
    versions attaching re-registers the name with the resource tracker;
    that is harmless — pool workers share the parent's tracker process,
    whose cache is a *set*, so the extra registrations are idempotent
    and the submitter's single ``unlink`` balances them.  Unregistering
    here instead would double up with the unlink and make the tracker
    print ``KeyError`` noise.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)  # type: ignore[call-arg]
    except TypeError:
        return shared_memory.SharedMemory(name=name)


def _load_shm_batch(
    name: str, skeleton: bytes, segments: list[tuple[int, int]]
) -> Any:
    """Worker-side rebuild: attach, copy the buffers out, close, load."""
    shm = _attach(name)
    try:
        buffers = [
            bytearray(shm.buf[offset : offset + size])
            for offset, size in segments
        ]
    finally:
        shm.close()
    return pickle.loads(skeleton, buffers=buffers)


class ShmBatch:
    """Parent-side handle to a batch exported into shared memory.

    Pickling the handle is cheap (skeleton + block name); *unpickling*
    it yields the reconstructed ``ColumnBatch`` itself, so payloads that
    went through :func:`swap_out_batches` arrive at the task function
    exactly as if the batch had been pickled whole.
    """

    __slots__ = ("skeleton", "segments", "_shm")

    def __init__(
        self,
        skeleton: bytes,
        segments: list[tuple[int, int]],
        shm: shared_memory.SharedMemory,
    ) -> None:
        self.skeleton = skeleton
        self.segments = segments
        self._shm = shm

    def __reduce__(self) -> tuple[Any, tuple[Any, ...]]:
        return (_load_shm_batch, (self._shm.name, self.skeleton, self.segments))

    @property
    def nbytes(self) -> int:
        """Bytes held in the backing shared block."""
        return sum(size for _offset, size in self.segments)

    def release(self) -> None:
        """Close and unlink the backing block (submitter-side cleanup)."""
        _release_block(self._shm)


def export_batch(batch: Any) -> ShmBatch | None:
    """Export one batch to a shared block, or ``None`` when not worth it.

    ``None`` means "pickle it normally": the batch is small, carries
    non-buffer columns only, or the system refused a block.
    """
    buffers: list[pickle.PickleBuffer] = []
    try:
        skeleton = pickle.dumps(batch, protocol=5, buffer_callback=buffers.append)
    except Exception:
        return None
    try:
        views = [buf.raw() for buf in buffers]
    except BufferError:
        return None
    total = sum(view.nbytes for view in views)
    if total < MIN_SHM_BYTES:
        return None
    try:
        shm = shared_memory.SharedMemory(create=True, size=total)
    except OSError:
        return None
    segments: list[tuple[int, int]] = []
    offset = 0
    try:
        for view in views:
            flat = view.cast("B")
            shm.buf[offset : offset + flat.nbytes] = flat
            segments.append((offset, flat.nbytes))
            offset += flat.nbytes
    except BaseException:
        # The handle below owns the block; until it exists, a failed
        # copy must not leave the block behind in /dev/shm.
        _release_block(shm)
        raise
    return ShmBatch(skeleton, segments, shm)


class BatchExportCache:
    """Keeps shared-memory exports alive across pool maps.

    Per-iteration MapReduce jobs re-submit the same loop-invariant
    ``ColumnBatch`` objects every iteration; without a cache each map
    call re-pickles and re-copies them into a fresh shared block only
    to unlink it minutes of CPU later.  Pipelined mode routes
    :func:`swap_out_batches` through this cache instead: the first
    sighting of a batch exports it, later sightings reuse the live
    handle, and the blocks are unlinked only on eviction, batch
    garbage-collection, or :meth:`release`.

    Entries are keyed by ``id(batch)`` but guarded by a weak reference
    to the batch — an ``id`` recycled by the allocator can never alias
    a stale handle onto a different batch.  When a cached batch is
    collected its block is released immediately via the weakref
    callback.  The byte budget is enforced lazily at :meth:`begin`
    (start of a pool map), never mid-map, so a handle leased for the
    in-flight map cannot be unlinked under the workers; ``begin`` also
    pins the current map's batches with strong references for the same
    reason.
    """

    def __init__(self, max_bytes: int = DEFAULT_EXPORT_CACHE_BYTES) -> None:
        self.max_bytes = max_bytes
        self.hits = 0
        self.misses = 0
        # The guard is "callable returning the batch or None" — a real
        # weakref, or _dead_ref for batches that cannot take one.
        self._entries: OrderedDict[
            int, tuple[Callable[[], Any], ShmBatch]
        ] = OrderedDict()
        self._bytes = 0
        # Batches leased since the last begin(); the strong refs stop a
        # caller-dropped batch from being collected (and its block
        # unlinked) while the pool map that uses it is still running.
        self._active: list[Any] = []
        self._released = False

    @property
    def nbytes(self) -> int:
        """Bytes currently held across all cached blocks."""
        return self._bytes

    def __len__(self) -> int:
        return len(self._entries)

    def begin(self) -> None:
        """Start a new pool map: unpin the previous map's batches and
        trim the cache back under budget (LRU first).

        Dead entries (batch collected, or never weakref-able) are
        swept here too — this is the first point where the prior map
        is guaranteed finished with their blocks.
        """
        self._active.clear()
        dead = [key for key, (ref, _h) in self._entries.items() if ref() is None]
        for key in dead:
            self._drop(key)
        while self._bytes > self.max_bytes and self._entries:
            key = next(iter(self._entries))
            self._drop(key)

    def lease(self, batch: Any) -> ShmBatch | None:
        """Live handle for ``batch``, exporting it on first sighting.

        ``None`` means the batch does not qualify for shared memory
        (too small, non-buffer columns) — pickle it normally.  The
        returned handle stays owned by the cache: callers must not
        release it.
        """
        if self._released:
            # Terminal state: nobody would release a fresh block, so
            # fall back to plain pickling rather than leak one.
            return None
        key = id(batch)
        entry = self._entries.get(key)
        if entry is not None:
            ref, handle = entry
            if ref() is batch:
                self._entries.move_to_end(key)
                self._active.append(batch)
                self.hits += 1
                return handle
            # The id was recycled for a different object; the old
            # batch's weakref callback is about to (or failed to) drop
            # this entry — do it now.
            self._drop(key)
        self.misses += 1
        handle = export_batch(batch)
        if handle is None:
            return None

        def _collected(_ref: weakref.ref[Any], *, _key: int = key) -> None:
            self._drop(_key)

        try:
            ref = weakref.ref(batch, _collected)
        except TypeError:
            # Not weakref-able: no way to observe the batch's death, so
            # the handle serves this map only — the always-dead ref
            # makes begin()'s sweep release it before the next map.
            self._entries[key] = (_dead_ref, handle)
        else:
            self._entries[key] = (ref, handle)
            self._active.append(batch)
        self._bytes += handle.nbytes
        return handle

    def _drop(self, key: int) -> None:
        entry = self._entries.pop(key, None)
        if entry is None:
            return
        _ref, handle = entry
        self._bytes -= handle.nbytes
        handle.release()

    def release(self) -> None:
        """Unlink every cached block and stop caching.

        Safe to call more than once; later :meth:`lease` calls decline
        to export at all, so ``release`` is a terminal operation (used
        at interpreter exit).
        """
        self._released = True
        self._active.clear()
        for key in list(self._entries):
            self._drop(key)


def _dead_ref() -> None:
    """Stand-in weakref for non-weakref-able batches: always dead, so
    begin()'s sweep releases the entry once its map has finished."""
    return None


def swap_out_batches(
    payloads: Sequence[Any],
    cache: BatchExportCache | None = None,
) -> tuple[list[Any], list[ShmBatch]]:
    """Replace columnar batches inside payload tuples with shm handles.

    Returns the rewritten payloads plus the handles to release once the
    pool map has consumed them.  Payloads are scanned one tuple level
    deep — exactly where the task functions carry their record batches.
    When ``PIC_SHM`` is off (or nothing qualifies) the originals come
    back untouched.

    With ``cache`` set, handles are leased from it instead of exported
    fresh: they stay alive across calls and are **not** added to the
    returned release list — the cache owns their lifetime.
    """
    if not shm_enabled():
        return list(payloads), []
    from repro.mapreduce.columnar import ColumnBatch

    if cache is not None:
        cache.begin()
    exported: list[ShmBatch] = []
    seen: dict[int, ShmBatch | None] = {}
    swapped: list[Any] = []
    for payload in payloads:
        if isinstance(payload, tuple) and any(
            isinstance(item, ColumnBatch) for item in payload
        ):
            items: list[Any] = []
            for item in payload:
                if isinstance(item, ColumnBatch):
                    # Identical batches (e.g. a shared dataset) export once.
                    handle = seen.get(id(item))
                    if id(item) not in seen:
                        if cache is not None:
                            handle = cache.lease(item)
                        else:
                            handle = export_batch(item)
                            if handle is not None:
                                exported.append(handle)
                        seen[id(item)] = handle
                    if handle is not None:
                        items.append(handle)
                        continue
                items.append(item)
            swapped.append(tuple(items))
        else:
            swapped.append(payload)
    return swapped, exported


def release_batches(exported: Sequence[ShmBatch]) -> None:
    """Unlink every exported block (call in a ``finally``)."""
    for handle in exported:
        handle.release()
