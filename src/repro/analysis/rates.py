"""Convergence-rate tools (Section VI-B).

The paper states (citing its companion report [12]) that the best-effort
phase's convergence rate relates to the baseline's through the scaling
factor

    (ω · β/α)^((k−1)/k)

where β/α is the ratio of the longest partitioned input vector to the
unpartitioned vector's length, ω measures the converging power of the
iterative map (from the local-stability condition), and k is the number
of local iterations per best-effort round.  More partitions ⇒ slower
per-round convergence, traded against cheaper, traffic-free local
iterations.
"""

from __future__ import annotations

import numpy as np


def spectral_radius(M: np.ndarray) -> float:
    """ρ(M): the asymptotic per-iteration contraction of x ← Mx + c."""
    M = np.asarray(M, dtype=float)
    if M.ndim != 2 or M.shape[0] != M.shape[1]:
        raise ValueError(f"M must be square, got {M.shape}")
    return float(np.max(np.abs(np.linalg.eigvals(M))))


def contraction_factor(trace: list[float], tail: int = 5) -> float:
    """Empirical per-iteration contraction from a change/error trace.

    The geometric mean ratio over the last ``tail`` steps; values ≥ 1
    mean the iteration is not (yet) contracting.
    """
    if len(trace) < 2:
        raise ValueError("need at least two trace points")
    tail = min(tail, len(trace) - 1)
    ratios = []
    for a, b in zip(trace[-tail - 1 : -1], trace[-tail:]):
        if a > 0:
            ratios.append(b / a)
    if not ratios:
        return 0.0
    return float(np.exp(np.mean(np.log(np.maximum(ratios, 1e-300)))))


def best_effort_rate_scaling(
    omega: float, beta_over_alpha: float, local_iterations: int
) -> float:
    """The paper's (ω·β/α)^((k−1)/k) factor.

    ``beta_over_alpha`` is the max partitioned-vector length over the
    unpartitioned length (≤ 1; smaller with more partitions), ``omega``
    the converging power of the iterative map, and ``local_iterations``
    the k local iterations each best-effort round performs.
    """
    if omega <= 0:
        raise ValueError(f"omega must be positive, got {omega}")
    if not 0 < beta_over_alpha <= 1:
        raise ValueError(
            f"beta/alpha must be in (0, 1], got {beta_over_alpha}"
        )
    if local_iterations < 1:
        raise ValueError(f"local_iterations must be >= 1, got {local_iterations}")
    k = local_iterations
    return float((omega * beta_over_alpha) ** ((k - 1) / k))


def iterations_to_tolerance(rho: float, initial_error: float, tolerance: float) -> int:
    """Iterations a ρ-contraction needs to bring the error to tolerance."""
    if not 0 < rho < 1:
        raise ValueError(f"rho must be in (0, 1), got {rho}")
    if initial_error <= 0 or tolerance <= 0:
        raise ValueError("errors must be positive")
    if tolerance >= initial_error:
        return 0
    import math

    return int(math.ceil(math.log(tolerance / initial_error) / math.log(rho)))
