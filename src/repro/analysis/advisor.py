"""Partitioning advisor: Section VI-B's analysis as a practical tool.

Given a problem's dependency structure, predict — before running
anything — how well PIC's best-effort phase will behave for candidate
partition counts:

* for **linear** iterations (the solver, smoothing, PageRank's linear
  core) the per-round contraction is exactly ρ(I − B⁻¹A), so the number
  of best-effort rounds to a tolerance is computable in closed form;
* for **graph** problems, the cross-edge fraction ε under each
  partitioner predicts merge quality;
* the paper's own scaling factor (ω·β/α)^((k−1)/k) quantifies the
  partitions-versus-rounds trade-off of Section III-B.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.coupling import contiguous_assignment, coupling_epsilon
from repro.analysis.rates import iterations_to_tolerance
from repro.analysis.schwarz import schwarz_convergence_factor


@dataclass
class LinearAdvice:
    """Prediction for one candidate partition count on a linear problem."""

    num_partitions: int
    epsilon: float
    rho_per_round: float
    predicted_be_rounds: int

    @property
    def converges(self) -> bool:
        """True when best-effort rounds contract (rho < 1)."""
        return self.rho_per_round < 1.0


def advise_linear(
    A: np.ndarray,
    partition_counts: list[int],
    tolerance: float = 1e-6,
    initial_error: float = 1.0,
) -> list[LinearAdvice]:
    """Rank candidate partition counts for a linear iteration on ``A``.

    ``predicted_be_rounds`` is the closed-form round count for the error
    to fall from ``initial_error`` to ``tolerance`` at the per-round
    contraction ρ(I − B⁻¹A) under contiguous partitioning.
    """
    A = np.asarray(A, dtype=float)
    n = A.shape[0]
    if A.shape != (n, n):
        raise ValueError(f"A must be square, got {A.shape}")
    if not partition_counts:
        raise ValueError("need at least one candidate partition count")
    advice = []
    for p in partition_counts:
        if not 1 <= p <= n:
            raise ValueError(f"partition count {p} out of range 1..{n}")
        assignment = contiguous_assignment(n, p)
        eps = coupling_epsilon(A, assignment, p)
        rho = schwarz_convergence_factor(A, assignment)
        if rho >= 1.0:
            rounds = -1  # diverges
        elif rho <= 0.0:
            rounds = 1
        else:
            rounds = iterations_to_tolerance(rho, initial_error, tolerance)
        advice.append(
            LinearAdvice(
                num_partitions=p,
                epsilon=eps,
                rho_per_round=rho,
                predicted_be_rounds=rounds,
            )
        )
    return advice


@dataclass
class GraphAdvice:
    """Cross-edge fraction per candidate partitioner for a graph problem."""

    partitioner: str
    num_partitions: int
    epsilon: float


def advise_graph(
    records: list[tuple[int, tuple[int, ...]]],
    num_partitions: int,
    seed: int = 0,
) -> list[GraphAdvice]:
    """Compare the library's partitioners on one graph.

    Returns one entry per strategy (random / contiguous / mincut),
    smallest cross-edge fraction first.
    """
    from repro.analysis.coupling import graph_coupling_epsilon as geps
    from repro.pic.graphcut import mincut_partition
    from repro.util.rng import as_generator

    if num_partitions < 1:
        raise ValueError("num_partitions must be >= 1")
    vertices = [v for v, _o in records]
    n = max(vertices) + 1 if vertices else 0

    rng = as_generator(seed)
    order = rng.permutation(len(vertices))
    random_assign = {
        vertices[int(idx)]: pos % num_partitions
        for pos, idx in enumerate(order)
    }
    contiguous_assign = {
        v: min(pos * num_partitions // max(len(vertices), 1), num_partitions - 1)
        for pos, v in enumerate(sorted(vertices))
    }
    edges = [(v, t) for v, outs in records for t in outs]
    mincut_assign = mincut_partition(n, edges, num_partitions, seed=seed)

    advice = [
        GraphAdvice("random", num_partitions, geps(records, random_assign)),
        GraphAdvice("contiguous", num_partitions, geps(records, contiguous_assign)),
        GraphAdvice("mincut", num_partitions, geps(records, mincut_assign)),
    ]
    return sorted(advice, key=lambda a: a.epsilon)
