"""Measuring the "nearly uncoupled" structure of Figure 13.

Given a dependency matrix A (who reads whom) and a partition assignment,
the diagonal blocks hold the intra-partition coupling and the
off-diagonal blocks the ε_ij cross-coupling.  PIC is effective exactly
when the off-block mass is small relative to the in-block mass — this
module quantifies that, and the Figure 13 ablation bench correlates it
with measured best-effort behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def contiguous_assignment(n: int, num_partitions: int) -> np.ndarray:
    """Near-even contiguous partition assignment for n unknowns."""
    if n < 1 or num_partitions < 1:
        raise ValueError("n and num_partitions must be >= 1")
    bounds = [round(p * n / num_partitions) for p in range(num_partitions + 1)]
    out = np.empty(n, dtype=int)
    for p in range(num_partitions):
        out[bounds[p] : bounds[p + 1]] = p
    return out


def coupling_matrix(
    A: np.ndarray, assignment: np.ndarray, num_partitions: int
) -> np.ndarray:
    """P×P matrix of absolute coupling mass between partitions.

    Entry (p, q) is Σ |A_ij| over i∈p, j∈q.  The diagonal holds
    intra-partition coupling (excluding each row's own diagonal entry,
    which is scaling, not coupling).
    """
    A = np.asarray(A, dtype=float)
    n = A.shape[0]
    if A.shape != (n, n):
        raise ValueError(f"A must be square, got {A.shape}")
    assignment = np.asarray(assignment)
    if assignment.shape != (n,):
        raise ValueError(
            f"assignment must have one entry per row, got {assignment.shape}"
        )
    if assignment.min() < 0 or assignment.max() >= num_partitions:
        raise ValueError("assignment values out of range")
    mass = np.abs(A).copy()
    np.fill_diagonal(mass, 0.0)
    out = np.zeros((num_partitions, num_partitions))
    for p in range(num_partitions):
        rows = assignment == p
        for q in range(num_partitions):
            cols = assignment == q
            out[p, q] = mass[np.ix_(rows, cols)].sum()
    return out


def coupling_epsilon(
    A: np.ndarray, assignment: np.ndarray, num_partitions: int
) -> float:
    """The scalar ε: off-block coupling mass / total coupling mass.

    0 means perfectly decoupled sub-problems (PIC's best-effort phase is
    exact); values approaching 1 mean the partitioning ignores most of
    the dependency structure.
    """
    C = coupling_matrix(A, assignment, num_partitions)
    total = C.sum()
    if total == 0:
        return 0.0
    off = total - np.trace(C)
    return float(off / total)


@dataclass
class BlockStructureReport:
    """Summary of a partitioned dependency structure."""

    epsilon: float
    block_masses: np.ndarray
    worst_pair: tuple[int, int]
    worst_pair_mass: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"epsilon={self.epsilon:.4f}, worst cross pair "
            f"{self.worst_pair} carries {self.worst_pair_mass:.3g}"
        )


def block_structure_report(
    A: np.ndarray, assignment: np.ndarray, num_partitions: int
) -> BlockStructureReport:
    """Full Figure 13-style structure summary."""
    C = coupling_matrix(A, assignment, num_partitions)
    off = C.copy()
    np.fill_diagonal(off, 0.0)
    idx = np.unravel_index(np.argmax(off), off.shape)
    total = C.sum()
    eps = float((total - np.trace(C)) / total) if total else 0.0
    return BlockStructureReport(
        epsilon=eps,
        block_masses=C,
        worst_pair=(int(idx[0]), int(idx[1])),
        worst_pair_mass=float(off[idx]),
    )


def graph_coupling_epsilon(
    records: list[tuple[int, tuple[int, ...]]], assignment: dict[int, int]
) -> float:
    """ε for a graph given as adjacency records (PageRank's input)."""
    total = 0
    cross = 0
    for v, outs in records:
        pv = assignment[v]
        for t in outs:
            total += 1
            if assignment[t] != pv:
                cross += 1
    return cross / total if total else 0.0
