"""The additive-Schwarz reading of PIC's best-effort phase.

For linear iterations (PageRank, the linear solver, image smoothing) a
best-effort round that solves the diagonal blocks exactly and freezes
the cross-block terms is one step of the block-Jacobi (additive Schwarz
without overlap) iteration:

    x ← x + B⁻¹ (b − A x),   B = blockdiag(A)

whose error contracts by ρ(I − B⁻¹A) per round.  The more "nearly
uncoupled" A is (small ε in Figure 13), the smaller that radius and the
fewer best-effort rounds PIC needs — the quantitative version of the
paper's Section VI-B argument.
"""

from __future__ import annotations

import numpy as np


def _check_partition(A: np.ndarray, assignment: np.ndarray) -> int:
    A = np.asarray(A, dtype=float)
    n = A.shape[0]
    if A.shape != (n, n):
        raise ValueError(f"A must be square, got {A.shape}")
    if assignment.shape != (n,):
        raise ValueError("assignment must have one entry per unknown")
    return n


def block_jacobi_preconditioner(A: np.ndarray, assignment: np.ndarray) -> np.ndarray:
    """B = blockdiag(A) under the given partition assignment."""
    assignment = np.asarray(assignment)
    _check_partition(A, assignment)
    B = np.zeros_like(np.asarray(A, dtype=float))
    for p in np.unique(assignment):
        idx = np.where(assignment == p)[0]
        B[np.ix_(idx, idx)] = np.asarray(A, dtype=float)[np.ix_(idx, idx)]
    return B


def schwarz_iteration_matrix(A: np.ndarray, assignment: np.ndarray) -> np.ndarray:
    """I − B⁻¹A: the error-propagation matrix of one best-effort round."""
    A = np.asarray(A, dtype=float)
    B = block_jacobi_preconditioner(A, np.asarray(assignment))
    n = A.shape[0]
    return np.eye(n) - np.linalg.solve(B, A)


def schwarz_convergence_factor(A: np.ndarray, assignment: np.ndarray) -> float:
    """ρ(I − B⁻¹A): per-best-effort-round contraction for linear apps."""
    M = schwarz_iteration_matrix(A, assignment)
    return float(np.max(np.abs(np.linalg.eigvals(M))))
