"""Analytical machinery of Section VI-B.

* :mod:`repro.analysis.coupling` — measuring how "nearly uncoupled" a
  problem is under a partitioning (the ε blocks of Figure 13);
* :mod:`repro.analysis.rates` — contraction/spectral-radius tools and
  the best-effort convergence-rate scaling factor (ω·β/α)^((k−1)/k);
* :mod:`repro.analysis.schwarz` — the additive-Schwarz reading of the
  best-effort phase for linear iterations (block-Jacobi preconditioner
  construction and its convergence factor).
"""

from repro.analysis.coupling import (
    contiguous_assignment,
    coupling_matrix,
    coupling_epsilon,
    block_structure_report,
)
from repro.analysis.rates import (
    spectral_radius,
    contraction_factor,
    best_effort_rate_scaling,
    iterations_to_tolerance,
)
from repro.analysis.schwarz import (
    block_jacobi_preconditioner,
    schwarz_iteration_matrix,
    schwarz_convergence_factor,
)
from repro.analysis.advisor import (
    LinearAdvice,
    GraphAdvice,
    advise_linear,
    advise_graph,
)

__all__ = [
    "contiguous_assignment",
    "coupling_matrix",
    "coupling_epsilon",
    "block_structure_report",
    "spectral_radius",
    "contraction_factor",
    "best_effort_rate_scaling",
    "iterations_to_tolerance",
    "block_jacobi_preconditioner",
    "schwarz_iteration_matrix",
    "schwarz_convergence_factor",
    "LinearAdvice",
    "GraphAdvice",
    "advise_linear",
    "advise_graph",
]
