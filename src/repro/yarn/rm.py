"""The ResourceManager: containers against per-node capacities.

Replaces Hadoop 0.20's fixed map/reduce slots with YARN's model: each
node advertises a capacity vector (memory, vcores) derived from its
:class:`~repro.cluster.topology.NodeSpec`; tasks ask for containers of a
given profile; grants are locality-aware (node-local > rack-local >
any), and unsatisfiable requests queue FIFO until releases free room.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.cluster.cluster import Cluster
from repro.yarn.resources import Resource


@dataclass(frozen=True)
class Container:
    """A granted allocation on one node."""

    container_id: int
    node_id: int
    resource: Resource


@dataclass
class ContainerRequest:
    """A pending container ask with its locality preferences."""

    req_id: int
    resource: Resource
    preferred: tuple[int, ...]
    preferred_racks: frozenset[int]
    callback: Callable[[Container], None] = field(compare=False)


class ResourceManager:
    """Allocates containers on a simulated cluster."""

    #: Default fraction of a node's RAM usable for containers (YARN's
    #: ``yarn.nodemanager.resource.memory-mb`` convention: leave head-room
    #: for the OS and the DataNode/NodeManager daemons).
    MEMORY_FRACTION = 0.75

    def __init__(self, cluster: Cluster) -> None:
        self.cluster = cluster
        self._capacity: dict[int, Resource] = {}
        self._available: dict[int, Resource] = {}
        for node in cluster.nodes:
            capacity = Resource(
                memory_mb=int(node.spec.ram_bytes / 2**20 * self.MEMORY_FRACTION),
                vcores=node.spec.cores,
            )
            self._capacity[node.node_id] = capacity
            self._available[node.node_id] = capacity
        self._queue: list[ContainerRequest] = []
        self._ids = itertools.count()
        self.containers_granted = 0

    # -- queries ----------------------------------------------------------

    def capacity(self, node_id: int) -> Resource:
        """Total container capacity of ``node_id``."""
        return self._capacity[node_id]

    def available(self, node_id: int) -> Resource:
        """Currently unallocated resources on ``node_id``."""
        return self._available[node_id]

    def cluster_available(self) -> Resource:
        """Unallocated resources summed over the cluster."""
        total = Resource.zero()
        for r in self._available.values():
            total = total + r
        return total

    def can_fit_somewhere(self, resource: Resource) -> bool:
        """True when some node could grant ``resource`` right now."""
        return any(resource.fits_in(avail) for avail in self._available.values())

    # -- allocation ---------------------------------------------------------

    def request(
        self,
        resource: Resource,
        callback: Callable[[Container], None],
        preferred: Sequence[int] = (),
    ) -> None:
        """Ask for one container; ``callback(container)`` on grant."""
        if not any(resource.fits_in(cap) for cap in self._capacity.values()):
            raise ValueError(
                f"request {resource} exceeds every node's capacity"
            )
        racks = frozenset(
            self.cluster.topology.nodes[n].rack_id for n in preferred
        )
        req = ContainerRequest(
            req_id=next(self._ids),
            resource=resource,
            preferred=tuple(preferred),
            preferred_racks=racks,
            callback=callback,
        )
        node = self._pick_node(req)
        if node is None:
            self._queue.append(req)
            return
        self._grant(req, node)

    def try_allocate_on(self, node_id: int, resource: Resource) -> Container | None:
        """Non-queuing allocation pinned to one node (reduce placement)."""
        if resource.fits_in(self._available[node_id]):
            container = Container(
                container_id=next(self._ids), node_id=node_id, resource=resource
            )
            self._available[node_id] = self._available[node_id] - resource
            self.containers_granted += 1
            return container
        return None

    def release(self, container: Container) -> None:
        """Return a container's resources and serve the queue."""
        new_avail = self._available[container.node_id] + container.resource
        if not new_avail.fits_in(self._capacity[container.node_id]):
            raise RuntimeError(
                f"container over-release on node {container.node_id}"
            )
        self._available[container.node_id] = new_avail
        self._serve_queue(container.node_id)

    # -- internals -----------------------------------------------------------

    def _pick_node(self, req: ContainerRequest) -> int | None:
        fitting = [
            n for n, avail in self._available.items() if req.resource.fits_in(avail)
        ]
        if not fitting:
            return None
        local = [n for n in fitting if n in req.preferred]
        if local:
            return self._roomiest(local)
        topo = self.cluster.topology
        rack_local = [
            n for n in fitting if topo.nodes[n].rack_id in req.preferred_racks
        ]
        if rack_local:
            return self._roomiest(rack_local)
        return self._roomiest(fitting)

    def _roomiest(self, nodes: list[int]) -> int:
        """Most available memory first; node id breaks ties."""
        return min(nodes, key=lambda n: (-self._available[n].memory_mb, n))

    def _serve_queue(self, node_id: int) -> None:
        # Serve, in FIFO-with-locality order, every queued request that
        # now fits on the releasing node.
        while True:
            chosen = None
            for req in self._queue:
                if not req.resource.fits_in(self._available[node_id]):
                    continue
                if node_id in req.preferred:
                    chosen = req
                    break
            if chosen is None:
                rack = self.cluster.topology.nodes[node_id].rack_id
                for req in self._queue:
                    if not req.resource.fits_in(self._available[node_id]):
                        continue
                    if rack in req.preferred_racks:
                        chosen = req
                        break
            if chosen is None:
                for req in self._queue:
                    if req.resource.fits_in(self._available[node_id]):
                        chosen = req
                        break
            if chosen is None:
                return
            self._queue.remove(chosen)
            self._grant(chosen, node_id)

    def _grant(self, req: ContainerRequest, node_id: int) -> None:
        container = Container(
            container_id=next(self._ids), node_id=node_id, resource=req.resource
        )
        self._available[node_id] = self._available[node_id] - req.resource
        self.containers_granted += 1
        req.callback(container)
