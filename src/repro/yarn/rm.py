"""The ResourceManager: containers against per-node capacities.

Replaces Hadoop 0.20's fixed map/reduce slots with YARN's model: each
node advertises a capacity vector (memory, vcores) derived from its
:class:`~repro.cluster.topology.NodeSpec`; tasks ask for containers of a
given profile; grants are locality-aware (node-local > rack-local >
any), and unsatisfiable requests queue FIFO until releases free room.

Concurrent applications share one RM: every request carries an
``app_id``, and when several queued requests fit a freed node, the one
belonging to the application holding the fewest containers wins
(within each locality tier, ties broken FIFO).  With a single
application the least-granted rule is vacuous and the schedule is
exactly the historical FIFO-with-locality order.

Like :class:`~repro.mapreduce.scheduler.SlotScheduler`, grant matching
runs at a per-timestamp serialization point when requests/releases come
from inside simulation events, so container placement is independent of
same-instant event tie order; root-context calls are served
synchronously.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.cluster.cluster import Cluster
from repro.yarn.resources import Resource


@dataclass(frozen=True)
class Container:
    """A granted allocation on one node."""

    container_id: int
    node_id: int
    resource: Resource
    app_id: int = 0


@dataclass
class ContainerRequest:
    """A pending container ask with its locality preferences."""

    req_id: int
    resource: Resource
    preferred: tuple[int, ...]
    preferred_racks: frozenset[int]
    callback: Callable[[Container], None] = field(compare=False)
    app_id: int = 0


class ResourceManager:
    """Allocates containers on a simulated cluster."""

    #: Default fraction of a node's RAM usable for containers (YARN's
    #: ``yarn.nodemanager.resource.memory-mb`` convention: leave head-room
    #: for the OS and the DataNode/NodeManager daemons).
    MEMORY_FRACTION = 0.75

    def __init__(self, cluster: Cluster) -> None:
        self.cluster = cluster
        self._capacity: dict[int, Resource] = {}
        self._available: dict[int, Resource] = {}
        for node in cluster.nodes:
            capacity = Resource(
                memory_mb=int(node.spec.ram_bytes / 2**20 * self.MEMORY_FRACTION),
                vcores=node.spec.cores,
            )
            self._capacity[node.node_id] = capacity
            self._available[node.node_id] = capacity
        self._queue: list[ContainerRequest] = []
        self._ids = itertools.count()
        self.containers_granted = 0
        # Outstanding container count per application, for least-granted
        # interleaving of concurrent apps.
        self._outstanding: dict[int, int] = {}
        # Serialization point: one pending serve event per timestamp;
        # _serving suppresses reentrant flushes from grant callbacks.
        self._serve_pending = False
        self._serving = False

    # -- queries ----------------------------------------------------------

    def capacity(self, node_id: int) -> Resource:
        """Total container capacity of ``node_id``."""
        return self._capacity[node_id]

    def available(self, node_id: int) -> Resource:
        """Currently unallocated resources on ``node_id``."""
        return self._available[node_id]

    def cluster_available(self) -> Resource:
        """Unallocated resources summed over the cluster."""
        total = Resource.zero()
        for r in self._available.values():
            total = total + r
        return total

    def can_fit_somewhere(self, resource: Resource) -> bool:
        """True when some node could grant ``resource`` right now."""
        return any(resource.fits_in(avail) for avail in self._available.values())

    # -- allocation ---------------------------------------------------------

    def request(
        self,
        resource: Resource,
        callback: Callable[[Container], None],
        preferred: Sequence[int] = (),
        app_id: int = 0,
    ) -> None:
        """Ask for one container; ``callback(container)`` on grant."""
        if not any(resource.fits_in(cap) for cap in self._capacity.values()):
            raise ValueError(
                f"request {resource} exceeds every node's capacity"
            )
        racks = frozenset(
            self.cluster.topology.nodes[n].rack_id for n in preferred
        )
        req = ContainerRequest(
            req_id=next(self._ids),
            resource=resource,
            preferred=tuple(preferred),
            preferred_racks=racks,
            callback=callback,
            app_id=app_id,
        )
        self._queue.append(req)
        self._flush()

    def try_allocate_on(
        self, node_id: int, resource: Resource, app_id: int = 0
    ) -> Container | None:
        """Non-queuing allocation pinned to one node (reduce placement)."""
        if resource.fits_in(self._available[node_id]):
            container = Container(
                container_id=next(self._ids),
                node_id=node_id,
                resource=resource,
                app_id=app_id,
            )
            self._available[node_id] = self._available[node_id] - resource
            self.containers_granted += 1
            self._outstanding[app_id] = self._outstanding.get(app_id, 0) + 1
            return container
        return None

    def release(self, container: Container) -> None:
        """Return a container's resources and serve the queue."""
        new_avail = self._available[container.node_id] + container.resource
        if not new_avail.fits_in(self._capacity[container.node_id]):
            raise RuntimeError(
                f"container over-release on node {container.node_id}"
            )
        self._available[container.node_id] = new_avail
        self._outstanding[container.app_id] -= 1
        self._flush()

    def outstanding(self, app_id: int) -> int:
        """Containers currently held by ``app_id``."""
        return self._outstanding.get(app_id, 0)

    # -- internals -----------------------------------------------------------

    def _pick_node(self, req: ContainerRequest) -> int | None:
        fitting = [
            n for n, avail in self._available.items() if req.resource.fits_in(avail)
        ]
        if not fitting:
            return None
        local = [n for n in fitting if n in req.preferred]
        if local:
            return self._roomiest(local)
        topo = self.cluster.topology
        rack_local = [
            n for n in fitting if topo.nodes[n].rack_id in req.preferred_racks
        ]
        if rack_local:
            return self._roomiest(rack_local)
        return self._roomiest(fitting)

    def _roomiest(self, nodes: list[int]) -> int:
        """Most available memory first; node id breaks ties."""
        return min(nodes, key=lambda n: (-self._available[n].memory_mb, n))

    def _flush(self) -> None:
        """Serve now (root context) or at the serialization point."""
        if self._serving:
            return  # the active serve pass loops until quiescent
        sim = self.cluster.sim
        if sim.in_callback:
            if not self._serve_pending:
                self._serve_pending = True
                sim.schedule_serialized(self._serve_point)
        else:
            self._serve()

    def _serve_point(self) -> None:
        self._serve_pending = False
        self._serve()

    def _serve(self) -> None:
        # Canonical greedy matching over the complete queue/capacity
        # state: locality tier first, least-granted app within the
        # tier, FIFO ties, roomiest node.  Runs once per timestamp, so
        # placement never depends on same-instant event tie order.
        self._serving = True
        try:
            while self._queue:
                req = self._next_grant()
                if req is None:
                    return
                node = self._pick_node(req)
                assert node is not None  # _next_grant saw a fitting node
                self._queue.remove(req)
                self._grant(req, node)
        finally:
            self._serving = False

    def _next_grant(self) -> ContainerRequest | None:
        """The queued request to serve next, or None when nothing fits."""

        def fits_on(req: ContainerRequest, node_id: int) -> bool:
            return req.resource.fits_in(self._available[node_id])

        fitting = [
            r for r in self._queue
            if any(fits_on(r, n) for n in self._available)
        ]
        if not fitting:
            return None
        topo = self.cluster.topology
        pool = [r for r in fitting if any(fits_on(r, n) for n in r.preferred)]
        if not pool:
            pool = [
                r for r in fitting
                if any(
                    fits_on(r, n)
                    for n in self._available
                    if topo.nodes[n].rack_id in r.preferred_racks
                )
            ]
        if not pool:
            pool = fitting
        best: ContainerRequest | None = None
        best_held = 0
        for req in pool:
            held = self._outstanding.get(req.app_id, 0)
            if best is None or held < best_held:
                best = req
                best_held = held
        return best

    def _grant(self, req: ContainerRequest, node_id: int) -> None:
        container = Container(
            container_id=next(self._ids),
            node_id=node_id,
            resource=req.resource,
            app_id=req.app_id,
        )
        self._available[node_id] = self._available[node_id] - req.resource
        self.containers_granted += 1
        self._outstanding[req.app_id] = self._outstanding.get(req.app_id, 0) + 1
        req.callback(container)
