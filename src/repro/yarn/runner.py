"""A container-based job runner: the PIC-on-YARN port of Section VII.

:class:`YarnJobRunner` subclasses the slot-based
:class:`~repro.mapreduce.runner.JobRunner` and swaps its scheduling
substrate: map tasks acquire containers from a
:class:`~repro.yarn.rm.ResourceManager` through a slot-compatible
adapter, and reduce tasks pin containers on their assigned node.  The
MapReduce engine, the iterative driver and the whole PIC layer run on it
unchanged — the porting effort the paper predicted to be small is, above
this line, zero.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.cluster.cluster import Cluster
from repro.dfs.dfs import DistributedFileSystem
from repro.mapreduce.runner import JobRunner
from repro.yarn.resources import Resource
from repro.yarn.rm import Container, ResourceManager

#: Hadoop 2's default container profiles.
MAP_PROFILE = Resource(memory_mb=1024, vcores=1)
REDUCE_PROFILE = Resource(memory_mb=2048, vcores=1)


class _ContainerSlotAdapter:
    """Presents the RM through the SlotScheduler interface the job
    engine expects (request/release/free_slots/total_slots)."""

    def __init__(self, rm: ResourceManager, profile: Resource) -> None:
        self.rm = rm
        self.profile = profile
        self._held: dict[int, list[Container]] = {}
        # Locality statistics mirroring SlotScheduler's.
        self.assignments_local = 0
        self.assignments_rack = 0
        self.assignments_remote = 0

    def request(
        self,
        callback: Callable[[int], None],
        preferred: Sequence[int] = (),
        app_id: int = 0,
    ) -> None:
        """Ask for one map container; callback(node_id) on grant."""
        preferred = tuple(preferred)

        def on_container(container: Container) -> None:
            self._held.setdefault(container.node_id, []).append(container)
            if container.node_id in preferred:
                self.assignments_local += 1
            else:
                topo = self.rm.cluster.topology
                racks = {topo.nodes[n].rack_id for n in preferred}
                if topo.nodes[container.node_id].rack_id in racks:
                    self.assignments_rack += 1
                else:
                    self.assignments_remote += 1
            callback(container.node_id)

        self.rm.request(
            self.profile, on_container, preferred=preferred, app_id=app_id
        )

    def release(self, node_id: int, app_id: int = 0) -> None:
        """Return one held map container of ``app_id`` on ``node_id``."""
        held = self._held.get(node_id)
        if not held:
            raise RuntimeError(f"no held container to release on node {node_id}")
        for i, container in enumerate(held):
            if container.app_id == app_id:
                self.rm.release(held.pop(i))
                return
        raise RuntimeError(
            f"no held container of app {app_id} to release on node {node_id}"
        )

    def free_slots(self, node_id: int | None = None) -> int:
        """How many more map containers fit (node or cluster-wide)."""
        if node_id is not None:
            avail = self.rm.available(node_id)
            return min(
                avail.memory_mb // max(self.profile.memory_mb, 1),
                avail.vcores // max(self.profile.vcores, 1),
            )
        return sum(self.free_slots(n.node_id) for n in self.rm.cluster.nodes)

    @property
    def total_slots(self) -> int:
        """Cluster-wide map-container capacity."""
        total = 0
        for node in self.rm.cluster.nodes:
            cap = self.rm.capacity(node.node_id)
            total += min(
                cap.memory_mb // max(self.profile.memory_mb, 1),
                cap.vcores // max(self.profile.vcores, 1),
            )
        return total


class YarnJobRunner(JobRunner):
    """JobRunner whose tasks run in RM-granted containers."""

    def __init__(
        self,
        cluster: Cluster,
        dfs: DistributedFileSystem,
        rm: ResourceManager | None = None,
        map_profile: Resource = MAP_PROFILE,
        reduce_profile: Resource = REDUCE_PROFILE,
    ) -> None:
        super().__init__(cluster, dfs)
        self.rm = rm if rm is not None else ResourceManager(cluster)
        for profile, kind in ((map_profile, "map"), (reduce_profile, "reduce")):
            for node in cluster.nodes:
                if not profile.fits_in(self.rm.capacity(node.node_id)):
                    raise ValueError(
                        f"{kind} container profile {profile} does not fit "
                        f"node {node.node_id}'s capacity "
                        f"{self.rm.capacity(node.node_id)}; tasks pinned "
                        "there would deadlock"
                    )
        self.map_profile = map_profile
        self.reduce_profile = reduce_profile
        # Swap the scheduling substrate; everything above is unchanged.
        self.map_scheduler = _ContainerSlotAdapter(self.rm, map_profile)
        self._reduce_containers: dict[int, list[Container]] = {}

    def _claim_reduce_slot(self, node_id: int, app_id: int) -> bool:
        """Pin a reduce container on ``node_id`` if it fits now."""
        container = self.rm.try_allocate_on(
            node_id, self.reduce_profile, app_id=app_id
        )
        if container is None:
            return False
        self._reduce_containers.setdefault(node_id, []).append(container)
        return True

    def release_reduce(self, node_id: int, app_id: int = 0) -> None:
        """Return one held reduce container of ``app_id`` on ``node_id``."""
        held = self._reduce_containers.get(node_id)
        if not held:
            raise RuntimeError(f"no reduce container held on node {node_id}")
        for i, container in enumerate(held):
            if container.app_id == app_id:
                self.rm.release(held.pop(i))
                self._flush_reduce()
                return
        raise RuntimeError(
            f"no reduce container of app {app_id} held on node {node_id}"
        )
