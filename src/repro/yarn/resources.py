"""Multi-dimensional resource vectors (YARN's memory + vcores)."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Resource:
    """An amount of cluster resources."""

    memory_mb: int
    vcores: int

    def __post_init__(self) -> None:
        if self.memory_mb < 0 or self.vcores < 0:
            raise ValueError(f"resources must be non-negative, got {self}")

    def fits_in(self, capacity: "Resource") -> bool:
        """True when this demand fits inside ``capacity``."""
        return (
            self.memory_mb <= capacity.memory_mb and self.vcores <= capacity.vcores
        )

    def __add__(self, other: "Resource") -> "Resource":
        return Resource(self.memory_mb + other.memory_mb, self.vcores + other.vcores)

    def __sub__(self, other: "Resource") -> "Resource":
        result = Resource(
            self.memory_mb - other.memory_mb, self.vcores - other.vcores
        )
        return result

    @classmethod
    def zero(cls) -> "Resource":
        """The empty resource vector."""
        return cls(0, 0)
