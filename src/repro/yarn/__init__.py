"""YARN-style resource management (the paper's Section VII future work).

The paper: "We have considered the new version of Hadoop (Yarn, 0.23)
and believe that its design architecture (resource manager, node
managers and containers) is a good fit for PIC, and PIC can be easily
ported to it.  We leave this as future work."

This package does that port for the simulated stack:

* :mod:`repro.yarn.resources` — multi-dimensional resource vectors
  (memory, vcores);
* :mod:`repro.yarn.rm` — a ResourceManager allocating *containers*
  against per-node capacities (locality-aware, FIFO with a grant queue)
  instead of fixed map/reduce slots;
* :mod:`repro.yarn.runner` — :class:`YarnJobRunner`, a drop-in
  :class:`~repro.mapreduce.runner.JobRunner` replacement whose tasks run
  in containers.  Because PIC sits entirely above the job runner, it
  ports with **zero changes** — exactly the paper's expectation.
"""

from repro.yarn.resources import Resource
from repro.yarn.rm import Container, ContainerRequest, ResourceManager
from repro.yarn.runner import YarnJobRunner, MAP_PROFILE, REDUCE_PROFILE

__all__ = [
    "Resource",
    "Container",
    "ContainerRequest",
    "ResourceManager",
    "YarnJobRunner",
    "MAP_PROFILE",
    "REDUCE_PROFILE",
]
