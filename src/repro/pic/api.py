"""The PIC programming interface (paper Figure 4).

Everything except ``partition``, ``merge`` and ``be_converged`` is
required anyway to express an iterative-convergence algorithm on
MapReduce; those three extras have library defaults (random data
partitioning, model averaging, and reusing ``converged``), so porting an
existing IC program to PIC is the small effort the paper advertises.
"""

from __future__ import annotations

import abc
from typing import Any, Sequence

from repro.mapreduce.columnar import (
    GroupedBatch,
    group_records,
    singleton_groups,
)
from repro.mapreduce.costs import CostHints
from repro.mapreduce.job import JobSpec, TaskContext
from repro.pic.mergers import average_merge
from repro.pic.model import model_nbytes, model_to_records, records_to_model
from repro.pic.partitioners import random_partition, replicate_model
from repro.util.rng import as_generator


def _combine_grouped(
    spec: JobSpec, grouped: GroupedBatch | list[tuple[Any, list[Any]]]
) -> GroupedBatch | list[tuple[Any, list[Any]]]:
    """Apply the job's combiner to grouped map output, preserving the
    grouped shape (each key keeps a one-element value list).

    The vectorized ``batch_combiner`` runs when the groups are columnar
    and it accepts them; otherwise the scalar combiner runs per group.
    Both produce the same keys in the same order with bit-identical
    values (equivalence-tested), so downstream reducers cannot tell the
    paths apart.
    """
    assert spec.combiner is not None
    if spec.batch_combiner is not None and isinstance(grouped, GroupedBatch):
        combined = spec.batch_combiner(grouped)
        if combined is not None:
            return singleton_groups(combined)
    return [(k, [spec.combiner(k, vs)]) for k, vs in grouped]


class PICProgram(abc.ABC):
    """One iterative-convergence application, in both IC and PIC form.

    Subclasses implement the conventional MapReduce IC pieces
    (``map``/``batch_map``, ``reduce``/``batch_reduce``, ``build_model``,
    ``converged``) and may override the three best-effort functions
    (``partition``, ``merge``, ``be_converged``) plus tuning knobs
    (``costs``, ``num_reducers``).
    """

    #: Job-chain name used in DFS paths and reports.
    name: str = "pic-program"
    #: Compute-cost calibration for this application's map/reduce work.
    costs: CostHints = CostHints()
    #: Reduce-task parallelism of the conventional implementation.
    num_reducers: int = 8
    #: How the model reaches map tasks: "broadcast" (whole model per
    #: node, distributed-cache pattern) or "partitioned" (each task only
    #: fetches its input's share, chained-job pattern).
    model_mode: str = "broadcast"

    # ------------------------------------------------------------------
    # Conventional IC interface (required for any MapReduce realisation)

    def map(self, ctx: TaskContext, key: Any, value: Any) -> None:
        """Record-at-a-time mapper; ``ctx.model`` is the current model."""
        raise NotImplementedError(
            f"{type(self).__name__} must implement map() or batch_map()"
        )

    def batch_map(self, ctx: TaskContext, records: Sequence[tuple[Any, Any]]) -> None:
        """Whole-split mapper (override for vectorized inner loops)."""
        for key, value in records:
            self.map(ctx, key, value)

    def reduce(self, ctx: TaskContext, key: Any, values: list[Any]) -> None:
        """Record-at-a-time reducer."""
        raise NotImplementedError(
            f"{type(self).__name__} must implement reduce() or batch_reduce()"
        )

    def batch_reduce(
        self, ctx: TaskContext, grouped: list[tuple[Any, list[Any]]]
    ) -> None:
        """All key groups of one partition (override to vectorize)."""
        for key, values in grouped:
            self.reduce(ctx, key, values)

    def combine(self, key: Any, values: list[Any]) -> Any:
        """Optional combiner; override to enable one.

        Must be associative and compatible with the reducer (it sees
        combined values).  The job uses a combiner iff this method is
        overridden.
        """
        raise NotImplementedError("no combiner defined")

    def combine_batch(self, grouped: Any) -> Any:
        """Optional vectorized combiner over a whole bucket.

        Receives a :class:`~repro.mapreduce.columnar.GroupedBatch` and
        returns a combined :class:`~repro.mapreduce.columnar.ColumnBatch`
        (one row per key, in group order), or ``None`` to defer to the
        scalar :meth:`combine` for that bucket.  Must agree with
        :meth:`combine` bit for bit; only used when ``combine`` is also
        overridden.
        """
        raise NotImplementedError("no batch combiner defined")

    @abc.abstractmethod
    def build_model(self, model: Any, output: list[tuple[Any, Any]]) -> Any:
        """Fold one iteration's reduce output into the next model."""

    @abc.abstractmethod
    def converged(self, previous: Any, current: Any, iteration: int) -> bool:
        """The application's convergence criterion (Figure 1(a))."""

    def initial_model(self, records: Sequence[tuple[Any, Any]], seed: Any = 0) -> Any:
        """Produce a starting model from the input data."""
        raise NotImplementedError(
            f"{type(self).__name__} does not provide initial_model(); "
            "pass a model explicitly"
        )

    def model_bytes(self, model: Any) -> int:
        """Serialized model size; drives model-update traffic accounting."""
        return model_nbytes(model)

    def model_records(self, model: Any) -> list[tuple[Any, Any]]:
        """Flatten the model to key/value records (Section III-C)."""
        return model_to_records(model)

    def model_from_records(self, records: list[tuple[Any, Any]]) -> Any:
        """Rebuild a model from its key/value records."""
        return records_to_model(records)

    # ------------------------------------------------------------------
    # In-memory execution (used by the best-effort phase's map tasks)

    def run_iteration_in_memory(
        self, records: Sequence[tuple[Any, Any]], model: Any, iteration: int
    ) -> tuple[Any, float]:
        """Run one IC iteration serially in memory.

        This is how a PIC best-effort map task executes the *original*
        computation on its sub-problem without any MapReduce machinery.
        Returns ``(next_model, compute_seconds)`` where the compute cost
        is what the equivalent map+sort+reduce work would have charged.
        """
        current = model
        compute = 0.0
        for spec in self.jobs(current, iteration):
            ctx = TaskContext(model=current)
            spec.run_mapper(ctx, records)
            out = ctx.collect()
            # In memory there is no record pipeline: no deserialization,
            # sort, spill, or shuffle — just the computation itself.
            compute += spec.costs.inmemory_compute(len(records))
            grouped = group_records(out)
            if spec.combiner is not None:
                grouped = _combine_grouped(spec, grouped)
            rctx = TaskContext(model=current)
            spec.run_reducer(rctx, grouped)
            current = self.build_model(current, rctx.output)
        return current, compute

    def solve_in_memory(
        self,
        records: Sequence[tuple[Any, Any]],
        model: Any,
        max_iterations: int | None = None,
    ) -> tuple[Any, int, float]:
        """Run local IC iterations to convergence, serially in memory.

        Returns ``(model, iterations, compute_seconds)``.  The same
        convergence criterion as the conventional implementation is used
        for every sub-problem (Section IV-A).
        """
        if max_iterations is None:
            max_iterations = self.local_max_iterations()
        current = model
        total_compute = 0.0
        iterations = 0
        for it in range(max_iterations):
            previous = current
            current, compute = self.run_iteration_in_memory(records, current, it)
            total_compute += compute
            iterations += 1
            if self.converged(previous, current, it):
                break
        return current, iterations, total_compute

    # ------------------------------------------------------------------
    # Job-chain plumbing (default: one MapReduce job per iteration)

    def jobs(self, model: Any, iteration: int) -> list[JobSpec]:
        """The MapReduce job chain for one IC iteration.

        Most algorithms need a single job; PageRank overrides this to
        chain its aggregation and propagation phases.
        """
        return [self.job_spec(suffix="")]

    def job_spec(self, suffix: str = "") -> JobSpec:
        """Build a :class:`JobSpec` from this program's map/reduce."""
        has_combiner = type(self).combine is not PICProgram.combine
        has_batch_combiner = has_combiner and (
            type(self).combine_batch is not PICProgram.combine_batch
        )
        uses_batch_map = type(self).batch_map is not PICProgram.batch_map
        uses_batch_reduce = type(self).batch_reduce is not PICProgram.batch_reduce
        return JobSpec(
            name=f"{self.name}{suffix}",
            mapper=None if uses_batch_map else self.map,
            batch_mapper=self.batch_map if uses_batch_map else None,
            reducer=None if uses_batch_reduce else self.reduce,
            batch_reducer=self.batch_reduce if uses_batch_reduce else None,
            combiner=self.combine if has_combiner else None,
            batch_combiner=self.combine_batch if has_batch_combiner else None,
            num_reducers=self.num_reducers,
            costs=self.costs,
        )

    # ------------------------------------------------------------------
    # Best-effort extras (the only three PIC-specific functions)

    def partition(
        self,
        records: Sequence[tuple[Any, Any]],
        model: Any,
        num_partitions: int,
        seed: Any = 0,
    ) -> list[tuple[list[tuple[Any, Any]], Any]]:
        """Split the problem into ``num_partitions`` (data, model) pairs.

        Default (suits K-means-like algorithms): randomly partition the
        input data and give every sub-problem a copy of the model.
        """
        rng = as_generator(seed)
        parts = random_partition(records, num_partitions, rng)
        models = replicate_model(model, num_partitions)
        return list(zip(parts, models))

    def merge(self, models: list[Any]) -> Any:
        """Combine sub-problem models into one (default: average)."""
        return average_merge(models)

    def merge_element(self, key: Any, values: list[Any]) -> Any:
        """Element-wise merge of one model entry's values across the
        sub-problems that emitted it.

        Overriding this enables the *distributed merge* of Section
        III-C: "representing the model as key/value pairs also allows
        the merge function itself to execute in a distributed fashion as
        a MapReduce job" — the best-effort reduce then runs with full
        reducer parallelism instead of a single merge reducer.  Only
        merges that are per-element (averaging corresponding centroids,
        stitching disjoint entries) qualify; merges with global coupling
        (PageRank's cross-edge pass) keep the centralized ``merge``.
        """
        raise NotImplementedError("no element-wise merge defined")

    @property
    def supports_distributed_merge(self) -> bool:
        """True when ``merge_element`` is overridden."""
        return type(self).merge_element is not PICProgram.merge_element

    def owned_model_records(
        self, model: Any, partition_index: int
    ) -> list[tuple[Any, Any]]:
        """The model entries sub-problem ``partition_index`` *owns*.

        Under the distributed merge each best-effort map task emits only
        these (halo/overlap copies stay local); the default is the whole
        sub-model, which suits replicated-model algorithms like K-means.
        """
        return self.model_records(model)

    def be_converged(self, previous: Any, current: Any, be_iteration: int) -> bool:
        """Best-effort termination (default: the IC criterion)."""
        return self.converged(previous, current, be_iteration)

    def topoff_converged(self, previous: Any, current: Any, iteration: int) -> bool:
        """Top-off termination (default: the IC criterion).

        Fixed-iteration algorithms like Nutch PageRank override this
        with a small pre-set limit: the best-effort phase has already
        done the bulk of the refinement.
        """
        return self.converged(previous, current, iteration)

    def local_max_iterations(self) -> int:
        """Cap on local iterations per sub-problem per best-effort round."""
        return 100
