"""The best-effort phase engine (Sections III-A/III-B, Figure 5).

Each best-effort iteration is realised exactly the way the paper's
Hadoop library works — as **one MapReduce job**:

* one *map task per sub-problem*: the task receives its partition's
  (co-located) input data and its sub-model, and runs the **original IC
  computation to local convergence entirely in memory** ("local
  iterations").  No intermediate data leaves the task — this is why
  PIC's measured intermediate-data volume collapses from gigabytes to
  kilobytes (Table II);
* the map output is just each sub-problem's partial model, expressed as
  key/value records (Section III-C);
* the *reduce* applies the programmer's ``merge`` function and writes
  the merged model to the DFS (the only model-update traffic).

The map tasks' simulated compute time is charged dynamically from the
local iterations each task actually performed (the real computation runs
inside the mapper), so partitions that converge quickly cost less.

Input co-location is charged once: before the first best-effort
iteration the partition data is scattered to the node that will own each
sub-problem (``repartition`` traffic); afterwards the input is invariant
and cached — the identical courtesy the strengthened IC baseline enjoys.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Any, Sequence

from repro.cluster.cache import CachePin, NodeMemoryCache
from repro.cluster.cluster import Cluster
from repro.cluster.metrics import TrafficCategory
from repro.dfs.dfs import DistributedFileSystem
from repro.mapreduce.job import JobResult, JobSpec, TaskContext
from repro.mapreduce.pipeline import SplitGate, pipeline_enabled
from repro.mapreduce.records import DistributedDataset
from repro.mapreduce.runner import JobRunner
from repro.parallel import TaskExecutor, get_executor, solve_subproblem
from repro.pic.api import PICProgram
from repro.util.rng import SeedLike
from repro.util.sizing import sizeof_records


@dataclass
class SubProblem:
    """One partition of the problem, bound to a home node."""

    index: int
    records: list[tuple[Any, Any]]
    model: Any
    home_node: int

    @cached_property
    def nbytes(self) -> int:
        """Serialized size of this partition's input records (computed
        once; sizing re-walks every record, so repeated access is the
        hot path this cache removes)."""
        return sizeof_records(self.records)


@dataclass
class BEIterationStats:
    """Per-best-effort-iteration measurements (feeds Table I)."""

    be_iteration: int
    local_iterations: list[int]
    duration: float
    shuffle_bytes: int
    model_update_bytes: int
    # Node-memory cache activity (pipelined mode; zero otherwise).
    cache_hits: int = 0
    cache_misses: int = 0
    cache_evictions: int = 0

    @property
    def max_local_iterations(self) -> int:
        """The straggler sub-problem's local iteration count."""
        return max(self.local_iterations) if self.local_iterations else 0


@dataclass
class BestEffortResult:
    """Merged model and the full best-effort trace."""

    model: Any
    be_iterations: int
    stats: list[BEIterationStats]
    total_time: float
    model_locations: tuple[int, ...]

    @property
    def local_iterations_by_round(self) -> list[list[int]]:
        """Per-round, per-partition local iteration counts."""
        return [s.local_iterations for s in self.stats]

    @property
    def max_local_iterations_by_round(self) -> list[int]:
        """Table I's \"(max) local iterations\" row."""
        return [s.max_local_iterations for s in self.stats]


class BestEffortEngine:
    """Runs the best-effort phase of a :class:`PICProgram` on a cluster."""

    def __init__(
        self,
        cluster: Cluster,
        program: PICProgram,
        num_partitions: int,
        seed: SeedLike = 0,
        be_max_iterations: int = 20,
        optimized_baseline: bool = True,
        runner: JobRunner | None = None,
        dfs: DistributedFileSystem | None = None,
        distributed_merge: bool | None = None,
        speculative: bool = False,
        executor: TaskExecutor | None = None,
        pipeline: bool | None = None,
        cache: NodeMemoryCache | None = None,
    ) -> None:
        if num_partitions < 1:
            raise ValueError(f"num_partitions must be >= 1, got {num_partitions}")
        if be_max_iterations < 1:
            raise ValueError("be_max_iterations must be >= 1")
        if distributed_merge is None:
            distributed_merge = False  # opt-in; see the merge ablation bench
        if distributed_merge and not program.supports_distributed_merge:
            raise ValueError(
                f"{type(program).__name__} does not define merge_element(); "
                "a distributed merge needs an element-wise merge"
            )
        self.distributed_merge = distributed_merge
        self.speculative = speculative
        self.cluster = cluster
        self.program = program
        self.num_partitions = num_partitions
        self.seed = seed
        self.be_max_iterations = be_max_iterations
        self.optimized_baseline = optimized_baseline
        self.dfs = dfs or DistributedFileSystem(
            cluster, replication=min(3, cluster.num_nodes), seed=23
        )
        self.executor = executor or get_executor()
        # Pipelined mode (``PIC_PIPELINE`` when None): model scatter
        # and first-iteration co-location overlap the job's map wave
        # through a SplitGate, and loop-invariant splits are pinned in
        # simulated node memory across best-effort iterations.  An
        # explicitly supplied runner wins — engine and runner must
        # agree on one mode and share one cache, or pinned splits
        # would never be the ones looked up.
        if runner is not None:
            self.runner = runner
            self.pipeline = runner.pipeline
            self.cache = runner.cache
        else:
            self.pipeline = pipeline_enabled() if pipeline is None else pipeline
            if self.pipeline and cache is None:
                cache = NodeMemoryCache.from_cluster(cluster)
            self.cache = cache if self.pipeline else None
            self.runner = JobRunner(
                cluster, self.dfs, executor=self.executor,
                pipeline=self.pipeline, cache=self.cache,
            )
        self._dataset_seq = 0

    def home_node(self, subproblem_index: int) -> int:
        """Sub-problems are dealt round-robin over the nodes."""
        return subproblem_index % self.cluster.num_nodes

    # ------------------------------------------------------------------

    def run(
        self, records: Sequence[tuple[Any, Any]], initial_model: Any
    ) -> BestEffortResult:
        """Execute best-effort iterations until ``be_converged``."""
        cluster = self.cluster
        program = self.program
        model = initial_model
        model_locations: tuple[int, ...] = (0,)
        stats: list[BEIterationStats] = []
        started = cluster.now
        dataset: DistributedDataset | None = None
        pins: list[CachePin] = []

        try:
            for be_iter in range(self.be_max_iterations):
                iter_start = cluster.now
                meter_before = cluster.meter.snapshot()
                cache_before = (
                    self.cache.snapshot() if self.cache is not None else None
                )
                subs = self._partition(records, model)
                sub_models = [s.model for s in subs]

                # Pipelined mode: a per-split latch replaces the
                # cluster.run() barriers — each map task starts as soon
                # as *its* co-location and sub-model flows landed.
                gate = SplitGate(self.num_partitions) if self.pipeline else None

                if dataset is None:
                    dataset = self._colocate(subs, gate)
                    if self.cache is not None:
                        pins.extend(self._pin_splits(dataset, subs))
                    if gate is None:
                        cluster.run()

                # PIC partitions the model: each best-effort map task receives
                # only its sub-model, so distribution is a scatter of the
                # partial models, not a full-model broadcast per node.
                self._scatter_sub_models(subs, model_locations, gate)
                if gate is None:
                    cluster.run()

                spec = self._be_job_spec(
                    be_iter,
                    solved_cache=self._solve_subproblems(dataset, sub_models),
                )
                result = self.runner.run(
                    spec,
                    dataset,
                    model=_BEModel(sub_models),
                    model_bytes=0,
                    model_locations=model_locations,
                    input_cached=(
                        self.optimized_baseline and be_iter > 0
                        and not self.pipeline
                    ),
                    speculative=self.speculative,
                    model_gate=gate,
                )
                merged = program.model_from_records(result.output)
                model_locations = result.output_locations

                delta = cluster.meter.diff(meter_before)
                cache_delta = (
                    self.cache.snapshot() - cache_before
                    if self.cache is not None and cache_before is not None
                    else None
                )
                stats.append(
                    BEIterationStats(
                        be_iteration=be_iter,
                        local_iterations=self._local_iteration_counts(result),
                        duration=cluster.now - iter_start,
                        shuffle_bytes=int(
                            delta.get("shuffle", {}).get("total_bytes", 0)
                        ),
                        model_update_bytes=int(
                            delta.get("model_update", {}).get("total_bytes", 0)
                        ),
                        cache_hits=cache_delta.hits if cache_delta else 0,
                        cache_misses=cache_delta.misses if cache_delta else 0,
                        cache_evictions=(
                            cache_delta.evictions if cache_delta else 0
                        ),
                    )
                )
                previous, model = model, merged
                if program.be_converged(previous, model, be_iter):
                    break
        finally:
            # The loop-invariant splits stay evictable once the phase
            # ends; the entries themselves may remain resident for the
            # top-off phase's reads.
            for pin in pins:
                pin.release()

        return BestEffortResult(
            model=model,
            be_iterations=len(stats),
            stats=stats,
            total_time=cluster.now - started,
            model_locations=model_locations,
        )

    # -- phase steps -----------------------------------------------------

    def _partition(
        self, records: Sequence[tuple[Any, Any]], model: Any
    ) -> list[SubProblem]:
        pairs = self.program.partition(
            records, model, self.num_partitions, seed=self.seed
        )
        if len(pairs) != self.num_partitions:
            raise ValueError(
                f"partition() returned {len(pairs)} sub-problems, "
                f"expected {self.num_partitions}"
            )
        return [
            SubProblem(
                index=i, records=list(recs), model=m, home_node=self.home_node(i)
            )
            for i, (recs, m) in enumerate(pairs)
        ]

    def _scatter_sub_models(
        self,
        subs: list[SubProblem],
        model_locations: tuple[int, ...],
        gate: SplitGate | None = None,
    ) -> None:
        """Ship each sub-problem's model share from the merged model's
        closest replica to the sub-problem's home node.

        Remote shares go out as one bulk batch — one rate recompute for
        the whole scatter instead of one per sub-problem.  With a
        ``gate`` (pipelined mode) each remote share registers a
        dependency for its sub-problem's split, so the map task waits
        exactly for its own share instead of a global barrier."""
        requests: list[Any] = []
        for sub in subs:
            nbytes = self.program.model_bytes(sub.model)
            if nbytes <= 0:
                continue
            src = (
                sub.home_node
                if sub.home_node in model_locations
                else min(model_locations)
            )
            if src == sub.home_node:
                # Local share: no fabric traffic, but it was read.
                self.cluster.meter.record(
                    TrafficCategory.MODEL_READ, nbytes,
                    crosses_core=False, on_fabric=False,
                )
            elif gate is not None:
                requests.append((
                    src, sub.home_node, nbytes, TrafficCategory.MODEL_READ,
                    gate.add_dependency(sub.index),
                ))
            else:
                requests.append(
                    (src, sub.home_node, nbytes, TrafficCategory.MODEL_READ)
                )
        self.cluster.transfer_batch(requests)

    def _colocate(
        self, subs: list[SubProblem], gate: SplitGate | None = None
    ) -> DistributedDataset:
        """Pin each partition's data to its home node, charging the
        one-time scatter from the (uniformly spread) original input.

        The scatter is aggregated into at most one flow per (src, dst)
        node pair: partitions homed on the same node pull from each
        source together, as one bulk read, instead of issuing
        ``num_partitions × num_nodes`` per-partition flows.  Byte totals
        are identical either way.  With a ``gate`` (pipelined mode)
        each aggregated flow registers one dependency covering every
        sub-problem homed at its destination.
        """
        cluster = self.cluster
        n = cluster.num_nodes
        pair_bytes: dict[tuple[int, int], float] = {}
        homed_at: dict[int, list[int]] = {}
        for sub in subs:
            homed_at.setdefault(sub.home_node, []).append(sub.index)
            nbytes = sub.nbytes
            if nbytes == 0:
                continue
            per_node = nbytes / n
            for src in range(n):
                if src == sub.home_node:
                    continue
                pair = (src, sub.home_node)
                pair_bytes[pair] = pair_bytes.get(pair, 0.0) + per_node
        if gate is not None:
            cluster.transfer_batch([
                (src, dst, nbytes, TrafficCategory.REPARTITION,
                 gate.add_dependency(*homed_at.get(dst, [])))
                for (src, dst), nbytes in pair_bytes.items()
            ])
        else:
            cluster.transfer_batch([
                (src, dst, nbytes, TrafficCategory.REPARTITION)
                for (src, dst), nbytes in pair_bytes.items()
            ])
        self._dataset_seq += 1
        return DistributedDataset.from_partitions(
            self.dfs,
            f"/pic/{self.program.name}/partitions-{self._dataset_seq}",
            [sub.records for sub in subs],
            placements=[sub.home_node for sub in subs],
            replication=1,
            sizes=[sub.nbytes for sub in subs],
        )

    def _pin_splits(
        self, dataset: DistributedDataset, subs: list[SubProblem]
    ) -> list[CachePin]:
        """Protect the co-located loop-invariant splits from eviction.

        Pinning only reserves the budget — the first map-task read
        still pays for materialization and marks the entry resident,
        so byte totals match a barrier run that reads everything once.
        Partitions the budget rejects simply stay uncached.
        """
        assert self.cache is not None
        pins: list[CachePin] = []
        for sub in subs:
            pin = self.cache.pin(
                sub.home_node, (dataset.path, sub.index), sub.nbytes
            )
            if pin is not None:
                pins.append(pin)
        return pins

    def _solve_subproblems(
        self, dataset: DistributedDataset, sub_models: list[Any]
    ) -> dict[int, tuple[Any, int, float]]:
        """Solve every sub-problem's local IC loop for this round.

        The solves are independent (the paper's whole point), so they
        run through the executor — concurrently under ``PIC_WORKERS>1``,
        in-process otherwise — before the simulated job starts.  The map
        tasks then replay the precomputed results at their scheduled
        simulated times, so parallel and serial runs are bit-identical.
        """
        payloads = [
            (self.program, dataset.splits[i].records, sub_models[i], None)
            for i in range(self.num_partitions)
        ]
        results = self.executor.map(solve_subproblem, payloads)
        return dict(enumerate(results))

    def _be_job_spec(
        self,
        be_iter: int,
        solved_cache: dict[int, tuple[Any, int, float]] | None = None,
    ) -> JobSpec:
        program = self.program

        def solve(ctx: TaskContext, records: Sequence[tuple[Any, Any]]) -> Any:
            assert ctx.split_index is not None
            if solved_cache is not None and ctx.split_index in solved_cache:
                solved, iterations, compute = solved_cache[ctx.split_index]
            else:
                sub_model = ctx.model.sub_models[ctx.split_index]
                solved, iterations, compute = program.solve_in_memory(
                    records, sub_model
                )
            ctx.stats["local_iterations"] = iterations
            ctx.stats["compute_seconds"] = compute
            return solved

        def be_map_cost(num_records: int, nbytes: int, ctx: TaskContext) -> float:
            return ctx.stats.get("compute_seconds", 0.0)

        costs = program.costs
        if self.optimized_baseline:
            costs = costs.without_overheads()
        elif self.pipeline and be_iter > 0:
            # Warm executors: containers stay alive between pipelined
            # best-effort rounds, so repeated launch costs disappear.
            costs = costs.without_overheads()
        common = dict(
            name=f"{program.name}-be{be_iter}",
            costs=costs,
            output_category=TrafficCategory.MODEL_UPDATE,
            output_replication=min(3, self.cluster.num_nodes),
            map_cost=be_map_cost,
        )

        if self.distributed_merge:
            # Section III-C: the merge runs as a normal MapReduce job —
            # tasks emit their *owned* model entries per element and
            # reducers apply merge_element with full parallelism.
            def be_mapper(ctx: TaskContext, records: Sequence[tuple[Any, Any]]) -> None:
                solved = solve(ctx, records)
                for key, value in program.owned_model_records(
                    solved, ctx.split_index
                ):
                    ctx.emit(key, value)

            def be_reducer(ctx: TaskContext, key: Any, values: list[Any]) -> None:
                ctx.emit(key, program.merge_element(key, values))

            # The closures capture `program`/`solved_cache`, so the job
            # runner's pool skips them; that is intended — the real solves
            # already ran through the executor in _solve_subproblems().
            return JobSpec(
                batch_mapper=be_mapper,  # pic: noqa: PIC101
                reducer=be_reducer,  # pic: noqa: PIC101
                num_reducers=program.num_reducers,
                **common,
            )

        # Centralized merge: one reducer reconstructs every partial
        # model and applies the programmer's merge().
        def be_mapper_central(ctx: TaskContext, records: Sequence[tuple[Any, Any]]) -> None:
            solved = solve(ctx, records)
            ctx.emit(0, (ctx.split_index, program.model_records(solved)))

        def be_reducer_central(
            ctx: TaskContext, grouped: Sequence[tuple[Any, list[Any]]]
        ) -> None:
            partials: list[tuple[int, list[tuple[Any, Any]]]] = []
            for _key, values in grouped:
                partials.extend(values)
            partials.sort(key=lambda pv: pv[0])
            models = [program.model_from_records(recs) for _i, recs in partials]
            merged = program.merge(models)
            for key, value in program.model_records(merged):
                ctx.emit(key, value)

        # Same intended serial fallback as above: the merge work is tiny
        # and the heavy solves are precomputed via _solve_subproblems().
        return JobSpec(
            batch_mapper=be_mapper_central,  # pic: noqa: PIC101
            batch_reducer=be_reducer_central,  # pic: noqa: PIC101
            num_reducers=1,
            partitioner=lambda key, n: 0,  # pic: noqa: PIC101
            **common,
        )

    def _local_iteration_counts(self, result: JobResult) -> list[int]:
        return [
            int(result.map_stats.get(i, {}).get("local_iterations", 0))
            for i in range(self.num_partitions)
        ]


class _BEModel:
    """Wrapper handed to best-effort map tasks: per-partition sub-models."""

    def __init__(self, sub_models: list[Any]) -> None:
        self.sub_models = sub_models
