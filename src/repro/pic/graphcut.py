"""Min-cut k-way graph partitioning (the paper's METIS substitute).

Section III-B ranks partition functions from "randomly breaking up the
input" to "sophisticated partitioning schemes such as min-cut graph
partitioning", and Section VI-B notes that "by properly partitioning
[the web graph] (for example using the METIS package), the connectivity
matrix of the graph becomes nearly uncoupled".

This module implements the classic two-stage heuristic those tools use:

1. **BFS region growing** — seed k regions and grow them breadth-first
   under a balance cap, which already exploits locality;
2. **boundary refinement** — greedy Kernighan–Lin-style single-vertex
   moves: repeatedly move the boundary vertex with the largest positive
   (cut-reduction) gain to the neighbouring partition where most of its
   edges live, subject to the balance cap.

Deterministic for a given seed, pure Python + NumPy, good enough to take
a locally-connected web graph's cut fraction far below random
partitioning's.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Mapping

import numpy as np

from repro.util.rng import SeedLike, as_generator


def _build_adjacency(
    edges: Iterable[tuple[int, int]], num_vertices: int
) -> list[list[int]]:
    """Undirected adjacency lists (duplicate edges merged)."""
    neighbor_sets: list[set[int]] = [set() for _ in range(num_vertices)]
    for u, v in edges:
        if not (0 <= u < num_vertices and 0 <= v < num_vertices):
            raise ValueError(f"edge ({u}, {v}) out of range 0..{num_vertices - 1}")
        if u != v:
            neighbor_sets[u].add(v)
            neighbor_sets[v].add(u)
    return [sorted(s) for s in neighbor_sets]


def cut_size(edges: Iterable[tuple[int, int]], assignment: Mapping[int, int]) -> int:
    """Number of edges whose endpoints land in different partitions."""
    return sum(1 for u, v in edges if assignment[u] != assignment[v])


def mincut_partition(
    num_vertices: int,
    edges: list[tuple[int, int]],
    num_partitions: int,
    seed: SeedLike = 0,
    balance_slack: float = 0.1,
    refinement_passes: int = 8,
) -> dict[int, int]:
    """Partition vertices into ``num_partitions`` near-equal groups with
    a small edge cut.  Returns ``{vertex: partition}``.

    ``balance_slack`` caps each partition at
    ``ceil(n/k) * (1 + balance_slack)`` vertices.
    """
    if num_vertices < 1:
        raise ValueError(f"num_vertices must be >= 1, got {num_vertices}")
    if num_partitions < 1:
        raise ValueError(f"num_partitions must be >= 1, got {num_partitions}")
    if num_partitions > num_vertices:
        raise ValueError(
            f"cannot split {num_vertices} vertices into {num_partitions} parts"
        )
    if balance_slack < 0:
        raise ValueError(f"balance_slack must be >= 0, got {balance_slack}")
    adjacency = _build_adjacency(edges, num_vertices)
    rng = as_generator(seed)
    cap = int(np.ceil(num_vertices / num_partitions) * (1.0 + balance_slack))
    cap = max(cap, 1)

    # --- stage 1: BFS region growing ---------------------------------
    assignment = np.full(num_vertices, -1, dtype=np.int64)
    sizes = np.zeros(num_partitions, dtype=np.int64)
    seeds = rng.choice(num_vertices, size=num_partitions, replace=False)
    queues: list[deque[int]] = []
    for p, s in enumerate(seeds):
        assignment[s] = p
        sizes[p] = 1
        queues.append(deque([int(s)]))

    active = True
    while active:
        active = False
        for p in range(num_partitions):
            if sizes[p] >= cap:
                continue
            queue = queues[p]
            grew = False
            while queue and not grew:
                u = queue[0]
                for v in adjacency[u]:
                    if assignment[v] == -1:
                        assignment[v] = p
                        sizes[p] += 1
                        queue.append(v)
                        grew = True
                        active = True
                        break
                else:
                    queue.popleft()

    # Unreached vertices (isolated or fenced off): fill smallest parts.
    for v in np.flatnonzero(assignment == -1):
        p = int(np.argmin(sizes))
        assignment[v] = p
        sizes[p] += 1

    # --- stage 2: greedy boundary refinement --------------------------
    for _ in range(refinement_passes):
        moved = 0
        for u in range(num_vertices):
            home = int(assignment[u])
            if sizes[home] <= 1:
                continue
            counts: dict[int, int] = {}
            for v in adjacency[u]:
                pv = int(assignment[v])
                counts[pv] = counts.get(pv, 0) + 1
            internal = counts.get(home, 0)
            best_gain = 0
            best_target = home
            for target, external in counts.items():
                if target == home or sizes[target] >= cap:
                    continue
                gain = external - internal
                if gain > best_gain or (
                    gain == best_gain and gain > 0 and target < best_target
                ):
                    best_gain = gain
                    best_target = target
            if best_target != home:
                assignment[u] = best_target
                sizes[home] -= 1
                sizes[best_target] += 1
                moved += 1
        if moved == 0:
            break

    return {v: int(assignment[v]) for v in range(num_vertices)}
