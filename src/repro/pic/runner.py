"""Two-phase PIC orchestration and the conventional-IC baseline runner."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

from repro.cluster.cache import NodeMemoryCache
from repro.cluster.cluster import Cluster
from repro.dfs.dfs import DistributedFileSystem
from repro.mapreduce.driver import DriverResult, IterativeDriver
from repro.mapreduce.pipeline import pipeline_enabled
from repro.mapreduce.records import DistributedDataset
from repro.mapreduce.runner import JobRunner
from repro.parallel import get_executor
from repro.pic.api import PICProgram
from repro.pic.engine import BestEffortEngine, BestEffortResult
from repro.util.rng import SeedLike


@dataclass
class PhaseStats:
    """Time and headline traffic for one phase (for Figure 2 bars)."""

    name: str
    duration: float
    shuffle_bytes: float
    model_update_bytes: float


@dataclass
class PICResult:
    """Everything a PIC run produced."""

    model: Any
    best_effort: BestEffortResult
    topoff: DriverResult
    phases: list[PhaseStats]
    total_time: float
    traffic: dict[str, dict[str, float]]

    @property
    def be_time(self) -> float:
        """Simulated best-effort phase duration."""
        return self.phases[0].duration

    @property
    def topoff_time(self) -> float:
        """Simulated top-off phase duration."""
        return self.phases[1].duration

    @property
    def be_iterations(self) -> int:
        """Number of best-effort rounds executed."""
        return self.best_effort.be_iterations

    @property
    def topoff_iterations(self) -> int:
        """Number of conventional top-off iterations executed."""
        return self.topoff.iterations

    @property
    def shuffle_bytes(self) -> float:
        """Shuffle bytes across both phases."""
        return sum(p.shuffle_bytes for p in self.phases)

    @property
    def model_update_bytes(self) -> float:
        """Model-update bytes across both phases."""
        return sum(p.model_update_bytes for p in self.phases)


class PICRunner:
    """Runs a :class:`PICProgram` end to end on a cluster (Figure 3).

    A fresh cluster per run keeps the traffic ledger and the clock
    attributable to this run alone.
    """

    def __init__(
        self,
        cluster: Cluster,
        program: PICProgram,
        num_partitions: int,
        seed: SeedLike = 0,
        be_max_iterations: int = 20,
        max_iterations: int = 100,
        optimized_baseline: bool = True,
        distributed_merge: bool | None = None,
        speculative: bool = False,
        workers: int | None = None,
        pipeline: bool | None = None,
    ) -> None:
        self.cluster = cluster
        self.program = program
        self.num_partitions = num_partitions
        self.seed = seed
        self.be_max_iterations = be_max_iterations
        self.max_iterations = max_iterations
        self.optimized_baseline = optimized_baseline
        self.distributed_merge = distributed_merge
        self.speculative = speculative
        # Host-side execution parallelism (``PIC_WORKERS`` when None);
        # affects wall-clock only, never the simulated run.
        self.executor = get_executor(workers)
        # Pipelined simulated execution (``PIC_PIPELINE`` when None);
        # changes simulated timing — see repro.mapreduce.pipeline.
        self.pipeline = pipeline_enabled() if pipeline is None else pipeline

    def run(
        self,
        records: Sequence[tuple[Any, Any]],
        initial_model: Any = None,
    ) -> PICResult:
        """Best-effort phase, then top-off phase, from ``records``."""
        program = self.program
        cluster = self.cluster
        if initial_model is None:
            initial_model = program.initial_model(records, seed=self.seed)

        dfs = DistributedFileSystem(
            cluster, replication=min(3, cluster.num_nodes), seed=11
        )
        dataset = DistributedDataset.materialize(
            dfs,
            f"/{program.name}/input",
            records,
            num_splits=max(1, cluster.topology.total_map_slots()),
        )

        # One cache spans both phases: splits the best-effort phase
        # left resident stay warm for top-off reads of the same data.
        cache = (
            NodeMemoryCache.from_cluster(cluster) if self.pipeline else None
        )

        # Phase 1: best-effort.
        be_start = cluster.now
        meter_before = cluster.meter.snapshot()
        engine = BestEffortEngine(
            cluster,
            program,
            num_partitions=self.num_partitions,
            seed=self.seed,
            be_max_iterations=self.be_max_iterations,
            optimized_baseline=self.optimized_baseline,
            distributed_merge=self.distributed_merge,
            speculative=self.speculative,
            executor=self.executor,
            pipeline=self.pipeline,
            cache=cache,
        )
        be = engine.run(records, initial_model)
        be_delta = cluster.meter.diff(meter_before)
        be_phase = PhaseStats(
            name="best-effort",
            duration=cluster.now - be_start,
            shuffle_bytes=be_delta.get("shuffle", {}).get("total_bytes", 0.0),
            model_update_bytes=be_delta.get("model_update", {}).get(
                "total_bytes", 0.0
            ),
        )

        # Phase 2: top-off — the unmodified IC computation.
        topoff_start = cluster.now
        meter_before = cluster.meter.snapshot()
        runner = JobRunner(
            cluster, dfs, executor=self.executor,
            pipeline=self.pipeline, cache=cache,
        )
        driver = IterativeDriver(
            runner=runner,
            dataset=dataset,
            jobs=program.jobs,
            build_model=program.build_model,
            converged=program.topoff_converged,
            model_sizer=program.model_bytes,
            max_iterations=self.max_iterations,
            optimized_baseline=self.optimized_baseline,
            model_mode=program.model_mode,
            speculative=self.speculative,
        )
        topoff = driver.run(be.model, model_locations=be.model_locations)
        topoff_delta = cluster.meter.diff(meter_before)
        topoff_phase = PhaseStats(
            name="top-off",
            duration=cluster.now - topoff_start,
            shuffle_bytes=topoff_delta.get("shuffle", {}).get("total_bytes", 0.0),
            model_update_bytes=topoff_delta.get("model_update", {}).get(
                "total_bytes", 0.0
            ),
        )

        return PICResult(
            model=topoff.model,
            best_effort=be,
            topoff=topoff,
            phases=[be_phase, topoff_phase],
            total_time=cluster.now,
            traffic=cluster.meter.snapshot(),
        )


def run_ic_baseline(
    cluster: Cluster,
    program: PICProgram,
    records: Sequence[tuple[Any, Any]],
    initial_model: Any = None,
    max_iterations: int = 100,
    optimized_baseline: bool = True,
    seed: SeedLike = 0,
    speculative: bool = False,
    workers: int | None = None,
    pipeline: bool | None = None,
) -> DriverResult:
    """Run the conventional IC implementation (Figure 1(a)) on ``cluster``.

    This is the paper's baseline, already strengthened per Section V-A
    when ``optimized_baseline`` is True: no repeated job-launch costs and
    invariant input cached after the first iteration.
    """
    if initial_model is None:
        initial_model = program.initial_model(records, seed=seed)
    dfs = DistributedFileSystem(
        cluster, replication=min(3, cluster.num_nodes), seed=11
    )
    dataset = DistributedDataset.materialize(
        dfs,
        f"/{program.name}/input",
        records,
        num_splits=max(1, cluster.topology.total_map_slots()),
    )
    runner = JobRunner(
        cluster, dfs, executor=get_executor(workers), pipeline=pipeline
    )
    driver = IterativeDriver(
        runner=runner,
        dataset=dataset,
        jobs=program.jobs,
        build_model=program.build_model,
        converged=program.converged,
        model_sizer=program.model_bytes,
        max_iterations=max_iterations,
        optimized_baseline=optimized_baseline,
        model_mode=program.model_mode,
        speculative=speculative,
    )
    return driver.run(initial_model)
