"""Reusable convergence criteria for IC and best-effort loops."""

from __future__ import annotations

from typing import Any, Callable

import numpy as np


def kv_model_max_change(previous: dict[Any, Any], current: dict[Any, Any]) -> float:
    """Max Euclidean displacement of any model element between iterations.

    Elements present on only one side count as infinite change (the
    model's support moved).
    """
    if previous.keys() != current.keys():
        return float("inf")
    worst = 0.0
    for key, new_value in current.items():
        old = np.asarray(previous[key], dtype=float)
        new = np.asarray(new_value, dtype=float)
        if old.shape != new.shape:
            return float("inf")
        worst = max(worst, float(np.linalg.norm(new - old)))
    return worst


def max_change_below(
    threshold: float,
    distance: Callable[[Any, Any], float] = kv_model_max_change,
) -> Callable[[Any, Any, int], bool]:
    """Converged when ``distance(previous, current) < threshold``.

    This is the paper's K-means criterion: "if the change in the value
    of all the K centroids is within a pre-specified threshold".
    """
    if threshold <= 0:
        raise ValueError(f"threshold must be positive, got {threshold}")

    def criterion(previous: Any, current: Any, iteration: int) -> bool:
        return distance(previous, current) < threshold

    return criterion


def fixed_iterations(limit: int) -> Callable[[Any, Any, int], bool]:
    """Converged after exactly ``limit`` iterations (Nutch PageRank)."""
    if limit < 1:
        raise ValueError(f"iteration limit must be >= 1, got {limit}")

    def criterion(previous: Any, current: Any, iteration: int) -> bool:
        return iteration + 1 >= limit

    return criterion


def either(*criteria: Callable[[Any, Any, int], bool]) -> Callable[[Any, Any, int], bool]:
    """Converged when any of the criteria holds (threshold OR iteration cap)."""
    if not criteria:
        raise ValueError("either() needs at least one criterion")

    def criterion(previous: Any, current: Any, iteration: int) -> bool:
        return any(c(previous, current, iteration) for c in criteria)

    return criterion
