"""Key/value model representation.

The paper requires only that "the model be expressed in the form of
key/value pairs" so elements are uniquely identifiable across
sub-problems (Section III-C).  We represent a model as a plain ``dict``
mapping hashable keys to values (floats, NumPy arrays, or nested
tuples); these helpers convert to/from record lists and measure
serialized size for traffic accounting.
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.util.sizing import sizeof_records

KVModel = dict


def model_to_records(model: dict[Any, Any]) -> list[tuple[Any, Any]]:
    """Flatten a KV model to records, deterministically ordered."""
    try:
        keys = sorted(model)
    except TypeError:
        keys = sorted(model, key=repr)
    return [(k, model[k]) for k in keys]


def records_to_model(records: Iterable[tuple[Any, Any]]) -> dict[Any, Any]:
    """Rebuild a KV model; duplicate keys are an error (lost updates)."""
    model: dict[Any, Any] = {}
    for key, value in records:
        if key in model:
            raise ValueError(f"duplicate model key {key!r} while rebuilding model")
        model[key] = value
    return model


def model_nbytes(model: dict[Any, Any]) -> int:
    """Serialized size of the model — the per-iteration update volume."""
    return sizeof_records(model_to_records(model))
