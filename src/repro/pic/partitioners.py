"""Default ``partition`` strategies (Section III-B).

The paper's experiments use simple random partitioning for K-means and
random vertex grouping for PageRank, and note that "sophisticated
partitioning schemes such as min-cut graph partitioning" are possible.
All strategies here return plain lists of record lists; model handling
(replicate vs split) is a separate concern — see :func:`replicate_model`
and the graph partitioner in :mod:`repro.apps.pagerank`.
"""

from __future__ import annotations

import copy
from typing import Any, Sequence

from repro.mapreduce.records import stable_hash
from repro.util.rng import SeedLike, as_generator


def _check_num_partitions(num_partitions: int) -> None:
    if num_partitions <= 0:
        raise ValueError(f"num_partitions must be positive, got {num_partitions}")


def random_partition(
    records: Sequence[tuple[Any, Any]],
    num_partitions: int,
    seed: SeedLike = 0,
) -> list[list[tuple[Any, Any]]]:
    """Shuffle records and deal them into near-equal partitions."""
    _check_num_partitions(num_partitions)
    rng = as_generator(seed)
    order = rng.permutation(len(records))
    parts: list[list[tuple[Any, Any]]] = [[] for _ in range(num_partitions)]
    for position, record_index in enumerate(order):
        parts[position % num_partitions].append(records[record_index])
    return parts


def chunk_partition(
    records: Sequence[tuple[Any, Any]], num_partitions: int
) -> list[list[tuple[Any, Any]]]:
    """Contiguous near-equal chunks (preserves input order/locality)."""
    _check_num_partitions(num_partitions)
    n = len(records)
    bounds = [round(i * n / num_partitions) for i in range(num_partitions + 1)]
    return [list(records[bounds[i] : bounds[i + 1]]) for i in range(num_partitions)]


def hash_partition(
    records: Sequence[tuple[Any, Any]], num_partitions: int
) -> list[list[tuple[Any, Any]]]:
    """Partition by stable key hash (co-locates equal keys)."""
    _check_num_partitions(num_partitions)
    parts: list[list[tuple[Any, Any]]] = [[] for _ in range(num_partitions)]
    for key, value in records:
        parts[stable_hash(key) % num_partitions].append((key, value))
    return parts


def replicate_model(model: Any, num_partitions: int) -> list[Any]:
    """Give each sub-problem its own deep copy of the model.

    Deep copies keep sub-problems from mutating shared arrays — the
    sub-problems are *independent* by construction in PIC.
    """
    _check_num_partitions(num_partitions)
    return [copy.deepcopy(model) for _ in range(num_partitions)]


def split_model_by_key(
    model: dict[Any, Any],
    assignment: dict[Any, int],
    num_partitions: int,
) -> list[dict[Any, Any]]:
    """Split a KV model into disjoint parts by a key→partition map.

    Used when the partition function divides the model itself (the
    PageRank pattern), rather than copying it.
    """
    _check_num_partitions(num_partitions)
    parts: list[dict[Any, Any]] = [{} for _ in range(num_partitions)]
    for key, value in model.items():
        p = assignment[key]
        if not 0 <= p < num_partitions:
            raise ValueError(f"model key {key!r} assigned to invalid partition {p}")
        parts[p][key] = value
    return parts
