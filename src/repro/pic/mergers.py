"""Default ``merge`` strategies (Section III-B).

For models representable as key/value pairs the paper's defaults are:
averaging corresponding entries (model copies, e.g. K-means centroids),
summing them, or concatenating disjoint parts (model was split, e.g.
PageRank sub-graphs).
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np


def _check_models(models: Sequence[dict[Any, Any]]) -> None:
    if not models:
        raise ValueError("merge needs at least one model")
    for i, m in enumerate(models):
        if not isinstance(m, dict):
            raise TypeError(
                f"default mergers operate on KV models (dicts); model {i} "
                f"is {type(m).__name__}"
            )


def average_merge(models: Sequence[dict[Any, Any]]) -> dict[Any, Any]:
    """Average corresponding entries across model copies.

    Keys missing from some copies are averaged over the copies that have
    them (a sub-problem may not have updated every element).
    """
    _check_models(models)
    sums: dict[Any, Any] = {}
    counts: dict[Any, int] = {}
    for model in models:
        for key, value in model.items():
            if key in sums:
                sums[key] = sums[key] + np.asarray(value, dtype=float)
                counts[key] += 1
            else:
                sums[key] = np.asarray(value, dtype=float).copy()
                counts[key] = 1
    merged: dict[Any, Any] = {}
    for key, total in sums.items():
        value = total / counts[key]
        merged[key] = float(value) if value.ndim == 0 else value
    return merged


def sum_merge(models: Sequence[dict[Any, Any]]) -> dict[Any, Any]:
    """Sum corresponding entries across model copies."""
    _check_models(models)
    out: dict[Any, Any] = {}
    for model in models:
        for key, value in model.items():
            if key in out:
                out[key] = out[key] + np.asarray(value, dtype=float)
            else:
                out[key] = np.asarray(value, dtype=float).copy()
    return {
        k: (float(v) if np.ndim(v) == 0 else v) for k, v in out.items()
    }


def concat_merge(models: Sequence[dict[Any, Any]]) -> dict[Any, Any]:
    """Disjoint union of model parts; overlapping keys are an error."""
    _check_models(models)
    merged: dict[Any, Any] = {}
    for i, model in enumerate(models):
        for key, value in model.items():
            if key in merged:
                raise ValueError(
                    f"concat_merge: key {key!r} appears in more than one "
                    f"sub-model (second occurrence in model {i}); use "
                    "average_merge or sum_merge for replicated models"
                )
            merged[key] = value
    return merged
