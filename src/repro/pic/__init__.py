"""Partitioned Iterative Convergence — the paper's contribution.

The user-facing API mirrors Figure 4 of the paper: a conventional
MapReduce IC program (``map`` / ``reduce`` / ``converged`` plus model
plumbing), extended with exactly three functions for the best-effort
phase — ``partition``, ``merge``, and ``be_converged`` — each with
library-provided defaults.

Execution (Figure 3's template) is handled by :class:`PICRunner`:

1. **best-effort phase** — partition the problem, solve the sub-problems
   with independent local IC iterations on disjoint node groups (no
   cross-partition traffic), merge the partial models, repeat until
   ``be_converged``;
2. **top-off phase** — refine the merged model with the *unmodified*
   conventional IC computation until ``converged``.
"""

from repro.pic.api import PICProgram
from repro.pic.model import (
    model_to_records,
    records_to_model,
    model_nbytes,
)
from repro.pic.partitioners import (
    random_partition,
    chunk_partition,
    hash_partition,
    replicate_model,
)
from repro.pic.mergers import average_merge, sum_merge, concat_merge
from repro.pic.convergence import max_change_below, fixed_iterations
from repro.pic.engine import BestEffortEngine, BestEffortResult, SubProblem
from repro.pic.runner import PICRunner, PICResult, PhaseStats

__all__ = [
    "PICProgram",
    "model_to_records",
    "records_to_model",
    "model_nbytes",
    "random_partition",
    "chunk_partition",
    "hash_partition",
    "replicate_model",
    "average_merge",
    "sum_merge",
    "concat_merge",
    "max_change_below",
    "fixed_iterations",
    "BestEffortEngine",
    "BestEffortResult",
    "SubProblem",
    "PICRunner",
    "PICResult",
    "PhaseStats",
]
