"""Reproduction of *PIC: Partitioned Iterative Convergence for Clusters*.

Farivar, Raghunathan, Chakradhar, Kharbanda, Campbell — IEEE CLUSTER 2012.

The package is organised bottom-up:

``repro.util``
    Small shared helpers: RNG discipline, byte sizing, formatting.
``repro.cluster``
    A deterministic discrete-event cluster simulator: nodes, racks, a
    two-tier network with flow-level max-min fair bandwidth sharing, and
    per-category traffic accounting.  This substitutes for the paper's
    physical 6/64/256-node Hadoop clusters.
``repro.dfs``
    An HDFS-like replicated block store on top of the cluster.
``repro.mapreduce``
    A MapReduce engine (jobs, splits, combiners, locality-aware slot
    scheduling, shuffle, counters) whose mappers/reducers are *real*
    Python functions run on *real* data; only time is simulated.
``repro.pic``
    The paper's contribution: the PIC programming API (Figure 4), the
    best-effort and top-off phase engines, default partitioners and
    mergers.
``repro.apps``
    The five evaluation applications in both conventional-IC and PIC
    form: K-means, PageRank, neural-network training, a linear-equation
    solver, and image smoothing.
``repro.analysis``
    The "nearly uncoupled" coupling analysis and convergence-rate
    machinery of Section VI-B.
"""

__version__ = "1.0.0"


def __getattr__(name: str):
    # Lazy re-exports keep `import repro.cluster` usable without pulling
    # in the whole stack, while `repro.PICProgram` still works.
    if name in {"PICProgram", "PICRunner", "PICResult"}:
        from repro.pic import api, runner

        return {
            "PICProgram": api.PICProgram,
            "PICRunner": runner.PICRunner,
            "PICResult": runner.PICResult,
        }[name]
    raise AttributeError(f"module 'repro' has no attribute {name!r}")


__all__ = ["PICProgram", "PICRunner", "PICResult", "__version__"]
