"""Synthetic OCR-style training data.

Substitutes for the paper's 210k-vector OCR training set.  Each class is
a smooth 8×8 "glyph" prototype; samples are the prototype plus a random
per-sample intensity scale, a 1-pixel random translation, and Gaussian
pixel noise — enough within-class variation that a linear readout is
imperfect and the hidden layer earns its keep.
"""

from __future__ import annotations

import numpy as np

from repro.util.rng import SeedLike, as_generator


def _smooth(img: np.ndarray) -> np.ndarray:
    """3×3 box blur with edge replication (keeps prototypes glyph-like)."""
    padded = np.pad(img, 1, mode="edge")
    out = np.zeros_like(img)
    for dy in (-1, 0, 1):
        for dx in (-1, 0, 1):
            out += padded[1 + dy : 1 + dy + img.shape[0], 1 + dx : 1 + dx + img.shape[1]]
    return out / 9.0


def ocr_dataset(
    num_samples: int,
    num_classes: int = 10,
    side: int = 8,
    noise: float = 1.0,
    label_noise: float = 0.05,
    seed: SeedLike = 0,
) -> tuple[list[tuple[int, tuple[np.ndarray, int]]], np.ndarray, np.ndarray]:
    """Generate ``(records, X, y)``.

    ``records`` are ``(sample_id, (feature_vector, label))`` pairs for
    the MapReduce layers; ``X``/``y`` are the same data as dense arrays
    for validation metrics.
    """
    if num_samples < num_classes:
        raise ValueError("need at least one sample per class")
    if num_classes < 2:
        raise ValueError(f"need >= 2 classes, got {num_classes}")
    if not 0.0 <= label_noise < 1.0:
        raise ValueError(f"label_noise must be in [0, 1), got {label_noise}")
    rng = as_generator(seed)
    dim = side * side
    prototypes = np.empty((num_classes, side, side))
    for c in range(num_classes):
        proto = rng.normal(0.0, 1.0, size=(side, side))
        prototypes[c] = _smooth(_smooth(proto)) * 3.0

    labels = rng.integers(0, num_classes, size=num_samples)
    scales = rng.uniform(0.7, 1.3, size=num_samples)
    shifts_y = rng.integers(-1, 2, size=num_samples)
    shifts_x = rng.integers(-1, 2, size=num_samples)
    X = np.empty((num_samples, dim))
    for i in range(num_samples):
        img = np.roll(prototypes[labels[i]], (shifts_y[i], shifts_x[i]), axis=(0, 1))
        X[i] = img.ravel() * scales[i]
    X += rng.normal(0.0, noise, size=X.shape)
    if label_noise > 0:
        flip = rng.random(num_samples) < label_noise
        labels = np.where(
            flip, rng.integers(0, num_classes, size=num_samples), labels
        )
    records = [(int(i), (X[i], int(labels[i]))) for i in range(num_samples)]
    return records, X, labels.astype(int)
