"""A small MLP (tanh hidden layer, softmax output), fully vectorized.

The model is a KV dict of parameter arrays — the representation PIC
requires — with helpers for forward passes, cross-entropy gradients, and
validation error.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.rng import SeedLike, as_generator

W1, B1, W2, B2 = "W1", "b1", "W2", "b2"
PARAM_KEYS = (W1, B1, W2, B2)


@dataclass(frozen=True)
class MLP:
    """Network shape: input → tanh hidden → softmax over classes."""

    input_dim: int
    hidden_dim: int
    num_classes: int

    def __post_init__(self) -> None:
        if min(self.input_dim, self.hidden_dim, self.num_classes) < 1:
            raise ValueError("all layer sizes must be >= 1")

    @property
    def num_params(self) -> int:
        """Total scalar parameter count of the network."""
        return (
            self.input_dim * self.hidden_dim
            + self.hidden_dim
            + self.hidden_dim * self.num_classes
            + self.num_classes
        )


def init_params(shape: MLP, seed: SeedLike = 0) -> dict[str, np.ndarray]:
    """Xavier-style initialisation."""
    rng = as_generator(seed)
    s1 = (2.0 / (shape.input_dim + shape.hidden_dim)) ** 0.5
    s2 = (2.0 / (shape.hidden_dim + shape.num_classes)) ** 0.5
    return {
        W1: rng.normal(0.0, s1, size=(shape.input_dim, shape.hidden_dim)),
        B1: np.zeros(shape.hidden_dim),
        W2: rng.normal(0.0, s2, size=(shape.hidden_dim, shape.num_classes)),
        B2: np.zeros(shape.num_classes),
    }


def forward(params: dict[str, np.ndarray], X: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Return (hidden activations, class probabilities)."""
    H = np.tanh(X @ params[W1] + params[B1])
    logits = H @ params[W2] + params[B2]
    logits -= logits.max(axis=1, keepdims=True)  # numerical stability
    expl = np.exp(logits)
    probs = expl / expl.sum(axis=1, keepdims=True)
    return H, probs


def loss_and_gradients(
    params: dict[str, np.ndarray], X: np.ndarray, y: np.ndarray
) -> tuple[float, dict[str, np.ndarray]]:
    """Mean cross-entropy loss and its gradients (one backprop pass)."""
    n = len(X)
    if n == 0:
        raise ValueError("cannot compute gradients on an empty batch")
    H, probs = forward(params, X)
    loss = float(-np.log(probs[np.arange(n), y] + 1e-12).mean())
    dlogits = probs
    dlogits[np.arange(n), y] -= 1.0
    dlogits /= n
    grads = {
        W2: H.T @ dlogits,
        B2: dlogits.sum(axis=0),
    }
    dH = (dlogits @ params[W2].T) * (1.0 - H * H)
    grads[W1] = X.T @ dH
    grads[B1] = dH.sum(axis=0)
    return loss, grads


def misclassification(
    params: dict[str, np.ndarray], X: np.ndarray, y: np.ndarray
) -> float:
    """Fraction of samples classified incorrectly (the Fig 12a metric)."""
    _H, probs = forward(params, X)
    return float(np.mean(np.argmax(probs, axis=1) != y))
