"""Neural-network training with backpropagation (paper Section V, Fig 12a)."""

from repro.apps.neuralnet.datagen import ocr_dataset
from repro.apps.neuralnet.mlp import MLP, init_params, forward, loss_and_gradients
from repro.apps.neuralnet.program import NeuralNetProgram

__all__ = [
    "ocr_dataset",
    "MLP",
    "init_params",
    "forward",
    "loss_and_gradients",
    "NeuralNetProgram",
]
