"""Neural-network training as a PIC program.

Conventional IC realisation — parallel stochastic backpropagation with
per-epoch weight averaging, the standard Hadoop-era formulation of
neural-network training:

* **map** — each split runs one epoch of mini-batch SGD (vectorized
  forward+backward per batch, samples in deterministic order) starting
  from the current model, and emits one ``(param_name, (weights·n, n))``
  record per parameter tensor;
* **combine/reduce** — the per-split weights are count-weighted-averaged
  into the next model;
* **converged** — the validation error stopped improving (the paper
  itself evaluates NN training by "applying the model to a validation
  data set", Section VI-A), or the epoch cap was reached.

PIC realisation: random data partitioning with a model copy per
sub-problem; local iterations are local SGD epochs to local convergence;
the merge averages the sub-problems' weights (exactly the default
``average_merge``).  The top-off phase polishes with global epochs.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from repro.apps.neuralnet.mlp import (
    MLP,
    PARAM_KEYS,
    init_params,
    loss_and_gradients,
    misclassification,
)
from repro.mapreduce.columnar import (
    ArrayColumn,
    ColumnBatch,
    ScalarColumn,
    TupleColumn,
)
from repro.mapreduce.costs import CostHints
from repro.mapreduce.job import TaskContext
from repro.pic.api import PICProgram
from repro.util.rng import SeedLike


class NeuralNetProgram(PICProgram):
    """MLP training for the PIC framework.

    The model is the parameter dict of :mod:`repro.apps.neuralnet.mlp`.
    Input records: ``(sample_id, (feature_vector, label))``.
    """

    def __init__(
        self,
        shape: MLP,
        validation: tuple[np.ndarray, np.ndarray],
        learning_rate: float = 0.1,
        min_improvement: float = 0.002,
        max_epochs: int = 60,
        num_reducers: int = 4,
        l2: float = 1e-3,
        batch_size: int = 32,
        min_epochs: int = 2,
    ) -> None:
        if learning_rate <= 0:
            raise ValueError(f"learning_rate must be positive, got {learning_rate}")
        if min_improvement <= 0:
            raise ValueError(
                f"min_improvement must be positive, got {min_improvement}"
            )
        if l2 < 0:
            raise ValueError(f"l2 must be non-negative, got {l2}")
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        Xv, yv = validation
        if len(Xv) != len(yv) or len(Xv) == 0:
            raise ValueError("validation set must be non-empty and aligned")
        self.validation = (np.asarray(Xv, dtype=float), np.asarray(yv, dtype=int))
        self.batch_size = batch_size
        self.shape = shape
        self.learning_rate = learning_rate
        self.min_improvement = min_improvement
        self.min_epochs = min_epochs
        self.l2 = l2
        self.max_epochs = max_epochs
        self.num_reducers = num_reducers
        self.name = "neuralnet"
        # Forward+backward ≈ 4 × input_dim × hidden multiply-adds/record.
        flops = 4.0 * (shape.input_dim * shape.hidden_dim
                       + shape.hidden_dim * shape.num_classes)
        self.costs = CostHints(
            map_seconds_per_record=2e-6 + 2e-9 * flops,
            reduce_seconds_per_record=1e-6,
        )

    # -- conventional IC pieces -----------------------------------------

    def initial_model(
        self, records: Sequence[tuple[Any, Any]], seed: SeedLike = 0
    ) -> dict[str, np.ndarray]:
        """Xavier-initialised weights (data-independent)."""
        return init_params(self.shape, seed=seed)

    def sgd_epoch(
        self, params: dict[str, np.ndarray], X: np.ndarray, y: np.ndarray
    ) -> dict[str, np.ndarray]:
        """One deterministic pass of mini-batch SGD over (X, y)."""
        params = {k: v.copy() for k, v in params.items()}
        lr = self.learning_rate
        for start in range(0, len(X), self.batch_size):
            bx = X[start : start + self.batch_size]
            by = y[start : start + self.batch_size]
            _loss, grads = loss_and_gradients(params, bx, by)
            for key in PARAM_KEYS:
                # L2 weight decay bounds the weights, giving the
                # epoch-level weight-change criterion a floor to cross.
                params[key] -= lr * (grads[key] + self.l2 * params[key])
        return params

    def batch_map(self, ctx: TaskContext, records: Sequence[tuple[Any, Any]]) -> None:
        """One SGD epoch over this split, emitting weighted weights."""
        if not len(records):
            return
        columnar = isinstance(records, ColumnBatch)
        X = None
        if columnar:
            values = records.values
            if (
                isinstance(values, TupleColumn)
                and len(values.slots) == 2
                and isinstance(values.slots[0], ArrayColumn)
                and isinstance(values.slots[1], ScalarColumn)
            ):
                X = values.slots[0].data
                y = values.slots[1].values
        if X is None:
            X = np.stack([x for _i, (x, _y) in records])
            y = np.asarray([label for _i, (_x, label) in records])
        trained = self.sgd_epoch(ctx.model, X, y)
        n = len(records)
        # Emit a weighted *sum* so partial weights combine exactly.
        out = [(key, (trained[key] * n, n)) for key in PARAM_KEYS]
        if columnar:
            ctx.emit_batch(ColumnBatch.from_rows(out))
        else:
            ctx.emit_all(out)

    def combine(self, key: Any, values: list[Any]) -> Any:
        """Sum weighted weights locally before the shuffle."""
        total = None
        count = 0
        for weights, n in values:
            total = weights.copy() if total is None else total + weights
            count += n
        return (total, count)

    def reduce(self, ctx: TaskContext, key: Any, values: list[Any]) -> None:
        """Count-weighted average of the per-split weights."""
        total = None
        count = 0
        for weights, n in values:
            total = weights.copy() if total is None else total + weights
            count += n
        ctx.emit(key, total / max(count, 1))

    def build_model(self, model: dict, output: list[tuple[Any, Any]]) -> dict:
        """Replace parameter tensors with the averaged epoch output."""
        new_model = dict(model)
        for key, value in output:
            new_model[key] = value
        return new_model

    def converged(self, previous: Any, current: Any, iteration: int) -> bool:
        """Stop when validation error stops improving meaningfully."""
        if iteration + 1 >= self.max_epochs:
            return True
        if iteration + 1 < self.min_epochs:
            return False
        Xv, yv = self.validation
        improvement = misclassification(previous, Xv, yv) - misclassification(
            current, Xv, yv
        )
        return improvement < self.min_improvement

    # -- PIC extras --------------------------------------------------------
    # partition: library default (random data + model copies).
    # merge: library default (average corresponding weight tensors).
    # be_converged: library default (the IC criterion on merged weights).

    def merge_element(self, key: Any, values: list[Any]) -> Any:
        """Average corresponding weight tensors (distributed merge)."""
        return np.mean(np.stack([np.asarray(v, dtype=float) for v in values]), axis=0)

    def local_max_iterations(self) -> int:
        """Local training shares the global epoch cap."""
        return self.max_epochs

    # -- metrics -------------------------------------------------------------

    def validation_error(
        self, model: dict[str, np.ndarray], X: np.ndarray, y: np.ndarray
    ) -> float:
        """Misclassified fraction on held-out data (Figure 12(a))."""
        return misclassification(model, X, y)
