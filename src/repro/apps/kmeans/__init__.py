"""K-means clustering — the paper's primary case study (Section IV-A)."""

from repro.apps.kmeans.datagen import gaussian_mixture
from repro.apps.kmeans.program import KMeansProgram
from repro.apps.kmeans.serial import lloyd
from repro.apps.kmeans.quality import (
    jagota_index,
    match_centroids,
    centroid_displacement,
)

__all__ = [
    "gaussian_mixture",
    "KMeansProgram",
    "lloyd",
    "jagota_index",
    "match_centroids",
    "centroid_displacement",
]
