"""Clustering quality metrics (Section VI-A).

* :func:`jagota_index` — the paper's Table III metric: mean intra-cluster
  distance to the centroid, summed over clusters (lower = tighter).
* :func:`match_centroids` / :func:`centroid_displacement` — optimal
  correspondence between two centroid sets and the resulting distance,
  the Figure 12(b) error measure against the sequential reference.
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import linear_sum_assignment

from repro.apps.kmeans.serial import assign_points


def jagota_index(points: np.ndarray, centroids: np.ndarray) -> float:
    """Q = Σ_i (1/|C_i|) Σ_{x∈C_i} d(x, μ_i)   (Jagota, 1991).

    Points are assigned to their nearest centroid; empty clusters
    contribute zero (they own no points).
    """
    points = np.asarray(points, dtype=float)
    centroids = np.asarray(centroids, dtype=float)
    if points.ndim != 2 or centroids.ndim != 2:
        raise ValueError("points and centroids must be 2-D arrays")
    assignment = assign_points(points, centroids)
    distances = np.linalg.norm(points - centroids[assignment], axis=1)
    total = 0.0
    for i in range(len(centroids)):
        mask = assignment == i
        size = int(np.count_nonzero(mask))
        if size:
            total += float(distances[mask].sum()) / size
    return total


def match_centroids(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Permutation π minimising Σ‖a_i − b_{π(i)}‖ (Hungarian algorithm).

    Needed because two K-means runs label clusters arbitrarily
    (Section III-C's "correspondence of elements" problem).
    """
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    if a.shape != b.shape:
        raise ValueError(f"centroid sets differ in shape: {a.shape} vs {b.shape}")
    cost = np.linalg.norm(a[:, None, :] - b[None, :, :], axis=2)
    _rows, cols = linear_sum_assignment(cost)
    return cols


def centroid_displacement(a: np.ndarray, b: np.ndarray) -> float:
    """Mean distance between optimally matched centroids of two models."""
    perm = match_centroids(a, b)
    b = np.asarray(b, dtype=float)[perm]
    return float(np.mean(np.linalg.norm(np.asarray(a, dtype=float) - b, axis=1)))
