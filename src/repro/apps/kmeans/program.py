"""K-means as a PIC program (paper Figures 1(b) and 6).

Conventional IC realisation:

* **map** — associate each point with its closest centroid, emitting
  ``(centroid_id, (point_vector, 1))`` per point (the per-point mapper
  output is the intermediate-data volume Table II measures);
* **combine** — sum vectors and counts locally (the paper's baselines
  "utilize combiner optimizations");
* **reduce** — new centroid = summed vector / count;
* **converged** — every centroid moved less than a threshold.

PIC extras (Figure 6 / Section IV-A): random data partitioning with a
copy of the model per sub-problem, correspondence-by-key averaging as
the merge, and the *same* convergence criterion for local, best-effort,
and top-off loops.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from repro.apps.kmeans.serial import assign_points
from repro.mapreduce.columnar import (
    ArrayColumn,
    ColumnBatch,
    GroupedBatch,
    ScalarColumn,
    TupleColumn,
    int_column,
)
from repro.mapreduce.costs import CostHints
from repro.mapreduce.job import TaskContext
from repro.pic.api import PICProgram
from repro.pic.convergence import kv_model_max_change
from repro.util.rng import SeedLike, as_generator


def _sum_groups(grouped: GroupedBatch) -> tuple[np.ndarray, np.ndarray] | None:
    """Per-group sums of ``(vector, count)`` values, or ``None`` when the
    value layout is not the expected float-matrix + int-count columns.

    Each group's vector sum is ``np.add.reduce`` over a *contiguous*
    slice of the sorted value matrix — bit-identical to the scalar
    path's ``np.add.reduce(np.stack(values))`` over the same rows.
    """
    values = grouped.sorted_values
    if not isinstance(values, TupleColumn) or len(values.slots) != 2:
        return None
    vecs, cnts = values.slots
    if not isinstance(vecs, ArrayColumn) or vecs.data.ndim != 2:
        return None
    if vecs.data.dtype != np.float64:
        return None
    if not isinstance(cnts, ScalarColumn) or cnts.kind != "int":
        return None
    data = vecs.data
    counts = cnts.values
    num_groups = len(grouped)
    totals = np.empty((num_groups, data.shape[1]), dtype=np.float64)
    csums = np.empty(num_groups, dtype=np.int64)
    starts = grouped.starts.tolist()
    ends = grouped.ends.tolist()
    for g in range(num_groups):
        s, e = starts[g], ends[g]
        totals[g] = np.add.reduce(data[s:e], axis=0)
        csums[g] = counts[s:e].sum()
    return totals, csums


class KMeansProgram(PICProgram):
    """K-means clustering for the PIC framework.

    The model is ``{centroid_id: coordinate_vector}``.
    """

    def __init__(
        self,
        k: int,
        dim: int = 3,
        threshold: float = 1e-3,
        num_reducers: int = 8,
        max_iterations: int = 300,
    ) -> None:
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        if dim < 1:
            raise ValueError(f"dim must be >= 1, got {dim}")
        if threshold <= 0:
            raise ValueError(f"threshold must be positive, got {threshold}")
        self.k = k
        self.dim = dim
        self.threshold = threshold
        self.num_reducers = num_reducers
        self.max_iterations = max_iterations
        self.name = "kmeans"
        # Distance computation dominates: ~k*dim multiply-adds per point,
        # at Hadoop-era Java throughput.
        self.costs = CostHints(
            map_seconds_per_record=1e-6 + 2.5e-8 * k * dim,
            reduce_seconds_per_record=1e-6,
        )

    # -- conventional IC pieces -----------------------------------------

    def initial_model(
        self, records: Sequence[tuple[Any, Any]], seed: SeedLike = 0
    ) -> dict[int, np.ndarray]:
        """Forgy initialisation from the input records."""
        rng = as_generator(seed)
        if len(records) < self.k:
            raise ValueError(f"need at least k={self.k} points")
        idx = rng.choice(len(records), size=self.k, replace=False)
        return {int(c): np.array(records[int(i)][1], dtype=float) for c, i in enumerate(idx)}

    def batch_map(self, ctx: TaskContext, records: Sequence[tuple[Any, Any]]) -> None:
        """Vectorized nearest-centroid assignment for a whole split."""
        if not records:
            return
        model: dict[int, np.ndarray] = ctx.model
        centroid_ids = sorted(model)
        centroids = np.stack([model[c] for c in centroid_ids])
        columnar = isinstance(records, ColumnBatch)
        points = None
        if columnar:
            values = records.values
            if isinstance(values, ArrayColumn) and values.data.dtype == np.float64:
                points = values.data  # input splits: one row per point
            elif (
                isinstance(values, TupleColumn)
                and len(values.slots) == 2
                and isinstance(values.slots[0], ArrayColumn)
                and values.slots[0].data.dtype == np.float64
            ):
                points = values.slots[0].data
        if points is None:
            points = np.stack([np.asarray(v, dtype=float) for _k, v in records])
        assignment = assign_points(points, centroids)
        if columnar:
            ids = np.asarray(centroid_ids, dtype=np.int64)[assignment]
            ones = ScalarColumn("int", np.ones(len(points), dtype=np.int64))
            ctx.emit_batch(
                ColumnBatch(
                    int_column(ids),
                    TupleColumn((ArrayColumn(points), ones), len(points)),
                )
            )
            return
        emit = ctx.emit
        for row, a in enumerate(assignment):
            emit(centroid_ids[int(a)], (points[row], 1))

    def combine(self, key: Any, values: list[Any]) -> Any:
        """Sum (vector, count) pairs locally before the shuffle."""
        total = np.add.reduce(np.stack([vec for vec, _n in values]), axis=0)
        count = sum(n for _vec, n in values)
        return (total, count)

    def combine_batch(self, grouped: Any) -> Any:
        """Vectorized :meth:`combine` over a whole bucket's groups."""
        sums = _sum_groups(grouped)
        if sums is None:
            return None
        totals, csums = sums
        ones_counts = ScalarColumn("int", csums)
        return ColumnBatch(
            grouped.unique_keys(),
            TupleColumn((ArrayColumn(totals), ones_counts), len(csums)),
        )

    def reduce(self, ctx: TaskContext, key: Any, values: list[Any]) -> None:
        """New centroid = summed vectors / summed counts (Figure 1(b))."""
        total = np.add.reduce(np.stack([vec for vec, _n in values]), axis=0)
        count = sum(n for _vec, n in values)
        if count > 0:
            ctx.emit(key, total / count)

    def batch_reduce(
        self, ctx: TaskContext, grouped: list[tuple[Any, list[Any]]]
    ) -> None:
        """Vectorized centroid recomputation for one reduce partition."""
        sums = _sum_groups(grouped) if isinstance(grouped, GroupedBatch) else None
        if sums is None:
            for key, values in grouped:
                self.reduce(ctx, key, values)
            return
        totals, csums = sums
        keep = np.nonzero(csums > 0)[0]
        assert isinstance(grouped, GroupedBatch)
        ctx.emit_batch(
            ColumnBatch(
                grouped.unique_keys().take(keep),
                ArrayColumn(totals[keep] / csums[keep, None]),
            )
        )

    def build_model(
        self, model: dict[int, np.ndarray], output: list[tuple[Any, Any]]
    ) -> dict[int, np.ndarray]:
        """New centroids; clusters that received no points keep theirs."""
        new_model = dict(model)
        for key, centroid in output:
            new_model[key] = np.asarray(centroid, dtype=float)
        return new_model

    def converged(self, previous: Any, current: Any, iteration: int) -> bool:
        """All centroids moved less than the threshold (Figure 1(b))."""
        if iteration + 1 >= self.max_iterations:
            return True
        return kv_model_max_change(previous, current) < self.threshold

    # -- PIC extras -------------------------------------------------------
    # partition: library default (random data partition + model copies),
    # exactly the paper's choice for K-means.
    # merge: library default (average corresponding centroids by key).
    # be_converged: library default (the same criterion), per Section IV-A.

    def merge_element(self, key: Any, values: list[Any]) -> Any:
        """Average corresponding centroid values (distributed merge)."""
        return np.mean(np.stack([np.asarray(v, dtype=float) for v in values]), axis=0)

    def local_max_iterations(self) -> int:
        """Local loops share the conventional iteration cap."""
        return self.max_iterations

    def centroid_array(self, model: dict[int, np.ndarray]) -> np.ndarray:
        """Model as a (k, dim) array in centroid-id order (for metrics)."""
        return np.stack([model[c] for c in sorted(model)])
