"""Vectorized serial Lloyd's algorithm — the golden reference.

Section VI-A uses "the final solution (centroids) produced by a
sequential implementation" as the error reference for Figure 12(b).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.util.rng import SeedLike, as_generator


@dataclass
class LloydResult:
    """Outcome of a serial Lloyd run (the Figure 12(b) reference)."""

    centroids: np.ndarray
    iterations: int
    assignments: np.ndarray
    #: max centroid displacement per iteration (convergence trajectory)
    displacement_trace: list[float] = field(default_factory=list)


def assign_points(points: np.ndarray, centroids: np.ndarray) -> np.ndarray:
    """Nearest-centroid index per point, fully vectorized.

    Uses the ‖x−c‖² = ‖x‖² − 2x·c + ‖c‖² expansion; the ‖x‖² term is
    constant per point and dropped from the argmin.
    """
    cross = points @ centroids.T
    c_norms = np.einsum("ij,ij->i", centroids, centroids)
    return np.argmin(c_norms[None, :] - 2.0 * cross, axis=1)


def update_centroids(
    points: np.ndarray, assignment: np.ndarray, k: int, previous: np.ndarray
) -> np.ndarray:
    """Mean of each cluster's points; empty clusters keep their centroid."""
    dim = points.shape[1]
    sums = np.zeros((k, dim))
    np.add.at(sums, assignment, points)
    counts = np.bincount(assignment, minlength=k).astype(float)
    out = previous.copy()
    mask = counts > 0
    out[mask] = sums[mask] / counts[mask, None]
    return out


def init_centroids(points: np.ndarray, k: int, seed: SeedLike = 0) -> np.ndarray:
    """Forgy initialisation: k distinct random points."""
    rng = as_generator(seed)
    if len(points) < k:
        raise ValueError(f"need at least k={k} points, got {len(points)}")
    idx = rng.choice(len(points), size=k, replace=False)
    return points[idx].copy()


def lloyd(
    points: np.ndarray,
    k: int,
    threshold: float = 1e-3,
    max_iterations: int = 300,
    seed: SeedLike = 0,
    initial: np.ndarray | None = None,
) -> LloydResult:
    """Run Lloyd's algorithm until max centroid displacement < threshold."""
    points = np.asarray(points, dtype=float)
    if points.ndim != 2:
        raise ValueError(f"points must be 2-D (n, dim), got shape {points.shape}")
    centroids = init_centroids(points, k, seed) if initial is None else initial.copy()
    if centroids.shape != (k, points.shape[1]):
        raise ValueError(
            f"initial centroids shape {centroids.shape} != ({k}, {points.shape[1]})"
        )
    trace: list[float] = []
    assignment = np.zeros(len(points), dtype=int)
    for iteration in range(1, max_iterations + 1):
        assignment = assign_points(points, centroids)
        new_centroids = update_centroids(points, assignment, k, centroids)
        displacement = float(
            np.max(np.linalg.norm(new_centroids - centroids, axis=1))
        )
        trace.append(displacement)
        centroids = new_centroids
        if displacement < threshold:
            break
    return LloydResult(
        centroids=centroids,
        iterations=len(trace),
        assignments=assignment,
        displacement_trace=trace,
    )
