"""Synthetic clustered point sets.

Substitutes for the paper's 0.5M–500M-point datasets.  The structural
property PIC relies on ("the impact of far-away points on a centroid is
much smaller than the impact of close points", Section VI-B) is cluster
separation, which the generator controls explicitly; sizes are scaled
geometrically like the paper's Table I.
"""

from __future__ import annotations

import numpy as np

from repro.util.rng import SeedLike, as_generator


def gaussian_mixture(
    num_points: int,
    num_clusters: int,
    dim: int = 3,
    separation: float = 10.0,
    spread: float = 1.0,
    seed: SeedLike = 0,
) -> tuple[list[tuple[int, np.ndarray]], np.ndarray]:
    """Sample points from a mixture of ``num_clusters`` Gaussians.

    Cluster centres are drawn uniformly in a hypercube scaled so the
    expected inter-centre distance is ``separation`` times ``spread``;
    larger separation ⇒ more "nearly uncoupled" structure.

    Returns ``(records, true_centers)`` where records are
    ``(point_id, coordinate_vector)`` pairs ready for
    :class:`~repro.mapreduce.records.DistributedDataset`.
    """
    if num_points < 1:
        raise ValueError(f"num_points must be >= 1, got {num_points}")
    if num_clusters < 1:
        raise ValueError(f"num_clusters must be >= 1, got {num_clusters}")
    if dim < 1:
        raise ValueError(f"dim must be >= 1, got {dim}")
    if spread <= 0 or separation <= 0:
        raise ValueError("spread and separation must be positive")
    rng = as_generator(seed)
    # Scale the hypercube so typical nearest-centre spacing is
    # separation*spread: side ≈ separation*spread*k^(1/dim).
    side = separation * spread * num_clusters ** (1.0 / dim)
    centers = rng.uniform(-side / 2, side / 2, size=(num_clusters, dim))
    labels = rng.integers(0, num_clusters, size=num_points)
    points = centers[labels] + rng.normal(0.0, spread, size=(num_points, dim))
    records: list[tuple[int, np.ndarray]] = [
        (int(i), points[i]) for i in range(num_points)
    ]
    return records, centers
