"""Weakly diagonally dominant linear systems.

The paper's linear-equation case study uses "a linear system of 100
variables with a weakly diagonal dominant matrix" (Section V-B); the
weak diagonal dominance "is powerful enough to ensure even asynchronous
convergence" and implies the nearly-uncoupled property PIC needs
(Section VI-B).  The generator builds a banded matrix (local coupling,
Figure 13's nearly-block-diagonal shape) with optional long-range
entries and a controllable dominance margin.
"""

from __future__ import annotations

import numpy as np

from repro.util.rng import SeedLike, as_generator


def diagonally_dominant_system(
    n: int = 100,
    bandwidth: int = 3,
    dominance: float = 1.25,
    long_range_entries: int = 0,
    seed: SeedLike = 0,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Build ``(A, b, x_star)`` with ``A x_star = b``.

    ``dominance`` is the ratio ``a_ii / Σ_{j≠i} |a_ij|`` (> 1 ⇒ strictly
    row diagonally dominant ⇒ Jacobi converges).  ``bandwidth`` is the
    half-width of the banded coupling; ``long_range_entries`` adds that
    many random off-band couplings (weakening the uncoupled structure,
    useful for the Figure 13 ablation).
    """
    if n < 2:
        raise ValueError(f"n must be >= 2, got {n}")
    if bandwidth < 1:
        raise ValueError(f"bandwidth must be >= 1, got {bandwidth}")
    if dominance <= 1.0:
        raise ValueError(
            f"dominance must be > 1 for guaranteed Jacobi convergence, got {dominance}"
        )
    if long_range_entries < 0:
        raise ValueError("long_range_entries must be >= 0")
    rng = as_generator(seed)
    A = np.zeros((n, n))
    for offset in range(1, bandwidth + 1):
        vals_up = rng.uniform(-1.0, 1.0, size=n - offset)
        vals_dn = rng.uniform(-1.0, 1.0, size=n - offset)
        A[np.arange(n - offset), np.arange(offset, n)] = vals_up
        A[np.arange(offset, n), np.arange(n - offset)] = vals_dn
    for _ in range(long_range_entries):
        i = int(rng.integers(0, n))
        j = int(rng.integers(0, n))
        if abs(i - j) > bandwidth:
            A[i, j] = rng.uniform(-1.0, 1.0)
    off_diag_sums = np.abs(A).sum(axis=1)
    # A zero row would make the diagonal zero too; give it a unit scale.
    off_diag_sums[off_diag_sums == 0] = 1.0
    A[np.arange(n), np.arange(n)] = dominance * off_diag_sums
    x_star = rng.normal(0.0, 1.0, size=n)
    b = A @ x_star
    return A, b, x_star


def system_records(
    A: np.ndarray, b: np.ndarray
) -> list[tuple[int, tuple[np.ndarray, np.ndarray, float]]]:
    """Convert (A, b) to sparse row records for the MapReduce layer.

    Each record is ``(row, (col_indices, values, b_i))`` with the
    diagonal included (the mapper separates it).
    """
    n = len(b)
    if A.shape != (n, n):
        raise ValueError(f"A has shape {A.shape}, expected ({n}, {n})")
    records = []
    for i in range(n):
        cols = np.nonzero(A[i])[0]
        records.append((i, (cols.astype(np.int64), A[i, cols].copy(), float(b[i]))))
    return records
