"""Serial Jacobi iteration and its convergence theory hooks.

For A x = b split as A = D + R (diagonal + rest), Jacobi iterates
``x' = D⁻¹ (b − R x)``; it converges iff the spectral radius of the
iteration matrix ``M = −D⁻¹R`` is below 1, which row diagonal dominance
guarantees.  The iteration matrix is also what the Section VI-B
nearly-uncoupled analysis inspects.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class JacobiResult:
    """Outcome of a serial Jacobi run, with convergence traces."""

    x: np.ndarray
    iterations: int
    #: max |Δx_i| per iteration
    change_trace: list[float] = field(default_factory=list)
    #: ‖x − x*‖₂ per iteration when a golden solution was supplied
    error_trace: list[float] = field(default_factory=list)


def jacobi_iteration_matrix(A: np.ndarray) -> np.ndarray:
    """M = −D⁻¹R, the matrix whose spectral radius governs convergence."""
    A = np.asarray(A, dtype=float)
    d = np.diag(A)
    if np.any(d == 0):
        raise ValueError("Jacobi requires a nonzero diagonal")
    M = -A / d[:, None]
    np.fill_diagonal(M, 0.0)
    return M


def jacobi(
    A: np.ndarray,
    b: np.ndarray,
    x0: np.ndarray | None = None,
    threshold: float = 1e-8,
    max_iterations: int = 10_000,
    x_star: np.ndarray | None = None,
) -> JacobiResult:
    """Run Jacobi until max |Δx| < threshold."""
    A = np.asarray(A, dtype=float)
    b = np.asarray(b, dtype=float)
    n = len(b)
    if A.shape != (n, n):
        raise ValueError(f"A has shape {A.shape}, expected ({n}, {n})")
    d = np.diag(A)
    if np.any(d == 0):
        raise ValueError("Jacobi requires a nonzero diagonal")
    R = A - np.diag(d)
    x = np.zeros(n) if x0 is None else np.asarray(x0, dtype=float).copy()
    change_trace: list[float] = []
    error_trace: list[float] = []
    for _ in range(max_iterations):
        x_new = (b - R @ x) / d
        change = float(np.max(np.abs(x_new - x)))
        change_trace.append(change)
        if x_star is not None:
            error_trace.append(float(np.linalg.norm(x_new - x_star)))
        x = x_new
        if change < threshold:
            break
    return JacobiResult(
        x=x,
        iterations=len(change_trace),
        change_trace=change_trace,
        error_trace=error_trace,
    )
