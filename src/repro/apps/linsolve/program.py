"""The linear-equation solver as a PIC program.

Conventional IC realisation — one Jacobi sweep per MapReduce iteration:

* **map** — row i emits ``(i, (b_i − Σ_{j≠i} a_ij x_j) / a_ii)`` using
  the current solution vector (the model);
* **reduce** — identity (one value per unknown);
* **converged** — ``max |Δx| <`` threshold.

PIC realisation — contiguous row blocks (the banded coupling makes them
nearly uncoupled, Section VI-B); each sub-problem's model carries its
block's unknowns *plus frozen copies of the out-of-block unknowns its
rows reference* (the additive-Schwarz reading of the best-effort phase,
[12]).  Local iterations are Jacobi sweeps on the block; the merge
stitches the blocks' unknowns back together.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from repro.mapreduce.columnar import (
    ColumnBatch,
    emit_first_values,
    float_column,
    int_column,
)
from repro.mapreduce.costs import CostHints
from repro.mapreduce.job import TaskContext
from repro.pic.api import PICProgram
from repro.util.rng import SeedLike


class LinearSolverProgram(PICProgram):
    """Jacobi solver for the PIC framework.

    Model: ``{row_index: x_i}``.  Input records:
    ``(row, (col_indices, values, b_i))`` with the diagonal included.
    """

    def __init__(
        self,
        threshold: float = 1e-6,
        max_iterations: int = 500,
        local_threshold: float | None = None,
        num_reducers: int = 4,
        avg_row_nnz: float = 7.0,
        overlap: int = 4,
    ) -> None:
        if threshold <= 0:
            raise ValueError(f"threshold must be positive, got {threshold}")
        if overlap < 0:
            raise ValueError(f"overlap must be >= 0, got {overlap}")
        self.overlap = overlap
        self.threshold = threshold
        self.local_threshold = (
            local_threshold if local_threshold is not None else threshold
        )
        self.max_iterations = max_iterations
        self.num_reducers = num_reducers
        self.name = "linsolve"
        self.model_mode = "partitioned"
        self.costs = CostHints(
            map_seconds_per_record=1e-6 + 2e-7 * avg_row_nnz,
            reduce_seconds_per_record=1e-6,
        )
        self._owned_keys: list[set[int]] = []

    # -- conventional IC pieces -----------------------------------------

    def initial_model(
        self, records: Sequence[tuple[Any, Any]], seed: SeedLike = 0
    ) -> dict[int, float]:
        """The customary all-zero starting vector."""
        return {int(i) : 0.0 for i, _row in records}

    def batch_map(self, ctx: TaskContext, records: Sequence[tuple[Any, Any]]) -> None:
        """One Jacobi sweep over this split's rows.

        The sparse per-row accumulation stays a Python loop (row
        supports are ragged), but a columnar split emits its updates as
        typed int/float columns so the shuffle's hashing, grouping, and
        sizing all run vectorized downstream.
        """
        model: dict[int, float] = ctx.model
        columnar = isinstance(records, ColumnBatch)
        keys: list[Any] = []
        updates: list[float] = []
        for i, (cols, vals, b_i) in records:
            acc = 0.0
            diag = 0.0
            for col, val in zip(cols.tolist(), vals.tolist()):
                if col == i:
                    diag = val
                else:
                    acc += val * model[col]
            if diag == 0.0:
                raise ZeroDivisionError(f"row {i} has no diagonal entry")
            keys.append(i)
            updates.append((b_i - acc) / diag)
        if columnar:
            ctx.emit_batch(
                ColumnBatch(
                    int_column(np.asarray(keys, dtype=np.int64)),
                    float_column(np.asarray(updates, dtype=np.float64)),
                )
            )
            return
        for key, x_i in zip(keys, updates):
            ctx.emit(key, x_i)

    def reduce(self, ctx: TaskContext, key: Any, values: list[Any]) -> None:
        """Identity: one updated unknown per row key."""
        ctx.emit(key, values[0])

    def batch_reduce(
        self, ctx: TaskContext, grouped: list[tuple[Any, list[Any]]]
    ) -> None:
        """Identity reduce, vectorized when the groups are columnar."""
        emit_first_values(ctx, grouped)

    def build_model(self, model: dict, output: list[tuple[Any, Any]]) -> dict:
        """Fold the sweep's updated unknowns into the solution vector."""
        new_model = dict(model)
        for key, value in output:
            new_model[key] = value
        return new_model

    def converged(self, previous: Any, current: Any, iteration: int) -> bool:
        """max |delta x| below the threshold (or the iteration cap)."""
        if iteration + 1 >= self.max_iterations:
            return True
        worst = 0.0
        for key, value in current.items():
            worst = max(worst, abs(value - previous.get(key, 0.0)))
        return worst < self.threshold

    # -- PIC extras --------------------------------------------------------

    def partition(
        self,
        records: Sequence[tuple[Any, Any]],
        model: Any,
        num_partitions: int,
        seed: SeedLike = 0,
    ) -> list[tuple[list[tuple[Any, Any]], Any]]:
        """Contiguous row blocks with additive-Schwarz overlap.

        Each sub-problem *solves* the rows of its extended block (core ±
        ``overlap`` rows) but only its core rows survive the merge; the
        overlap classically accelerates the per-round contraction of the
        Schwarz iteration the best-effort phase amounts to.
        """
        ordered = sorted(records, key=lambda rec: rec[0])
        n = len(ordered)
        bounds = [round(p * n / num_partitions) for p in range(num_partitions + 1)]
        self._owned_keys = []
        out: list[tuple[list[tuple[Any, Any]], Any]] = []
        for p in range(num_partitions):
            lo = max(0, bounds[p] - self.overlap)
            hi = min(n, bounds[p + 1] + self.overlap)
            block = ordered[lo:hi]
            owned = {int(i) for i, _row in ordered[bounds[p] : bounds[p + 1]]}
            self._owned_keys.append(owned)
            sub_model: dict[int, float] = {}
            for i, (cols, _vals, _b) in block:
                sub_model[int(i)] = model.get(int(i), 0.0)
                for col in cols.tolist():
                    # Halo: unknowns outside the extended block stay frozen.
                    sub_model[int(col)] = model.get(int(col), 0.0)
            out.append((list(block), sub_model))
        return out

    def merge(self, models: list[Any]) -> Any:
        """Stitch each block's *owned* unknowns together (halos dropped)."""
        if len(models) != len(self._owned_keys):
            raise ValueError(
                f"merge got {len(models)} models but partition() made "
                f"{len(self._owned_keys)}"
            )
        merged: dict[int, float] = {}
        for owned, model in zip(self._owned_keys, models):
            for key in owned:
                merged[key] = model[key]
        return merged

    def owned_model_records(self, model, partition_index):
        """Only the block's own unknowns (halo/overlap copies stay local)."""
        owned = self._owned_keys[partition_index]
        return [(k, v) for k, v in model.items() if k in owned]

    def merge_element(self, key, values):
        """Each unknown has exactly one owner under the distributed merge."""
        if len(values) != 1:
            raise ValueError(
                f"unknown {key} emitted by {len(values)} blocks; ownership overlaps"
            )
        return values[0]

    def local_max_iterations(self) -> int:
        """Local loops share the conventional iteration cap."""
        return self.max_iterations

    # -- metrics -------------------------------------------------------------

    def solution_vector(self, model: dict[int, float], n: int) -> np.ndarray:
        """Model as a dense solution vector (for error metrics)."""
        x = np.zeros(n)
        for key, value in model.items():
            x[key] = value
        return x
