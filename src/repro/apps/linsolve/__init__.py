"""Jacobi linear-equation solver (paper Sections IV/VI, Figure 12(c))."""

from repro.apps.linsolve.datagen import diagonally_dominant_system
from repro.apps.linsolve.serial import jacobi, jacobi_iteration_matrix
from repro.apps.linsolve.program import LinearSolverProgram

__all__ = [
    "diagonally_dominant_system",
    "jacobi",
    "jacobi_iteration_matrix",
    "LinearSolverProgram",
]
