"""PageRank as a PIC program (paper Figures 7 and 8).

The model contains *both* vertex ranks and edge scores (Section IV-B:
"we consider the set of edge scores as part of the model"), making this
the paper's large-model case: model-update and model-distribution
traffic scale with the edge count.

Conventional IC realisation — two chained MapReduce jobs per iteration,
mirroring the Nutch implementation:

* **aggregation** — each vertex's incoming edge scores are summed into
  ``PR_i = (1 − c) + c·Σ edge_ji``;
* **propagation** — each edge's score becomes ``PR_j / outdeg(j)``.

PIC realisation — vertices are split into disjoint groups; "vertices and
the edges that are fully contained in a group form a sub-graph".  Local
iterations run unmodified PageRank on each sub-graph.  The merge
concatenates the partial models, then (the only cross-partition
coupling) scores every cross-partition edge from its source's new rank
and folds those scores into the destination ranks.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from repro.mapreduce.columnar import ColumnBatch, emit_first_values
from repro.mapreduce.costs import CostHints
from repro.mapreduce.job import TaskContext
from repro.pic.api import PICProgram
from repro.pic.mergers import concat_merge
from repro.util.rng import SeedLike, as_generator

PR = "pr"
EDGE = "e"


class PageRankProgram(PICProgram):
    """Nutch-style PageRank for the PIC framework.

    Model keys: ``("pr", v)`` → rank, ``("e", j, i)`` → score of edge
    j→i.  Input records: ``(vertex, tuple_of_out_links)``.
    """

    def __init__(
        self,
        damping: float = 0.85,
        iteration_limit: int = 10,
        local_iteration_limit: int = 6,
        be_iteration_limit: int = 2,
        topoff_iteration_limit: int = 2,
        partition_mode: str = "contiguous",
        num_reducers: int = 8,
        avg_out_degree: float = 8.0,
    ) -> None:
        if not 0.0 < damping < 1.0:
            raise ValueError(f"damping must be in (0, 1), got {damping}")
        if iteration_limit < 1 or local_iteration_limit < 1 or be_iteration_limit < 1:
            raise ValueError("iteration limits must be >= 1")
        if partition_mode not in ("random", "contiguous", "mincut"):
            raise ValueError(
                "partition_mode must be 'random', 'contiguous' or 'mincut', "
                f"got {partition_mode!r}"
            )
        self.damping = damping
        self.iteration_limit = iteration_limit
        self._local_iteration_limit = local_iteration_limit
        self.be_iteration_limit = be_iteration_limit
        self.topoff_iteration_limit = topoff_iteration_limit
        self.partition_mode = partition_mode
        self.num_reducers = num_reducers
        self.name = "pagerank"
        self.model_mode = "partitioned"
        # Each input record expands into ~avg_out_degree edge emissions.
        self.costs = CostHints(
            map_seconds_per_record=1e-6 + 6e-7 * avg_out_degree,
            reduce_seconds_per_record=1e-6,
        )
        # Cross-partition bookkeeping captured by partition(), used by merge().
        self._cross_edges: list[tuple[int, int]] = []
        self._full_outdeg: dict[int, int] = {}

    # -- model construction ----------------------------------------------

    def initial_model(
        self, records: Sequence[tuple[Any, Any]], seed: SeedLike = 0
    ) -> dict[Any, float]:
        """Unit ranks plus the initial propagation of edge scores."""
        model: dict[Any, float] = {}
        for v, outs in records:
            model[(PR, v)] = 1.0
        for v, outs in records:
            score = model[(PR, v)] / max(len(outs), 1)
            for t in outs:
                model[(EDGE, v, t)] = score
        return model

    # -- conventional IC: two chained jobs per iteration -------------------

    def jobs(self, model: Any, iteration: int) -> list:
        """Each iteration chains the aggregation and propagation jobs."""
        return [
            self.job_spec(suffix="-aggregate"),
            self.job_spec(suffix="-propagate"),
        ]

    def batch_map(self, ctx: TaskContext, records: Sequence[tuple[Any, Any]]) -> None:
        """Unused: PageRank dispatches per-phase mappers via jobs()."""
        # The two phases share one mapper: the model tells it which
        # phase it is in via a marker the driver does not need to know
        # about — we instead dispatch on whether the job is aggregation
        # or propagation using an internal toggle per chained call.
        raise RuntimeError("PageRankProgram uses per-phase mappers via jobs()")

    def job_spec(self, suffix: str = ""):
        """Build the aggregation or propagation JobSpec by suffix."""
        from repro.mapreduce.job import JobSpec

        if suffix == "-aggregate":
            return JobSpec(
                name=f"{self.name}{suffix}",
                batch_mapper=self._map_aggregate,
                reducer=self._reduce_aggregate,
                combiner=self._combine_sum,
                num_reducers=self.num_reducers,
                costs=self.costs,
            )
        if suffix == "-propagate":
            return JobSpec(
                name=f"{self.name}{suffix}",
                batch_mapper=self._map_propagate,
                batch_reducer=self._reduce_identity,
                num_reducers=self.num_reducers,
                costs=self.costs,
            )
        raise ValueError(f"unknown PageRank job suffix {suffix!r}")

    def _map_aggregate(
        self, ctx: TaskContext, records: Sequence[tuple[Any, Any]]
    ) -> None:
        model = ctx.model
        if isinstance(records, ColumnBatch):
            # The emission loop stays scalar (it walks ragged adjacency
            # lists through a dict), but typed int/float columns let the
            # shuffle hash, group, and size the output vectorized.
            rows: list[tuple[Any, Any]] = []
            for v, outs in records:
                rows.append((v, 0.0))  # keep sink-only vertices alive
                for t in outs:
                    rows.append((t, model[(EDGE, v, t)]))
            ctx.emit_batch(ColumnBatch.from_rows(rows))
            return
        emit = ctx.emit
        for v, outs in records:
            emit(v, 0.0)  # keep sink-only vertices alive
            for t in outs:
                emit(t, model[(EDGE, v, t)])

    def _combine_sum(self, key: Any, values: list[float]) -> float:
        return float(sum(values))

    def _reduce_aggregate(self, ctx: TaskContext, key: Any, values: list[Any]) -> None:
        rank = (1.0 - self.damping) + self.damping * float(sum(values))
        ctx.emit((PR, key), rank)

    def _map_propagate(
        self, ctx: TaskContext, records: Sequence[tuple[Any, Any]]
    ) -> None:
        model = ctx.model
        if isinstance(records, ColumnBatch):
            rows: list[tuple[Any, Any]] = []
            for v, outs in records:
                if not outs:
                    continue
                score = model[(PR, v)] / len(outs)
                for t in outs:
                    rows.append(((EDGE, v, t), score))
            ctx.emit_batch(ColumnBatch.from_rows(rows))
            return
        emit = ctx.emit
        for v, outs in records:
            if not outs:
                continue
            score = model[(PR, v)] / len(outs)
            for t in outs:
                emit((EDGE, v, t), score)

    def _reduce_identity(
        self, ctx: TaskContext, grouped: list[tuple[Any, list[Any]]]
    ) -> None:
        emit_first_values(ctx, grouped)

    def build_model(self, model: dict, output: list[tuple[Any, Any]]) -> dict:
        """Fold updated ranks/edge scores into the model."""
        new_model = dict(model)
        for key, value in output:
            new_model[key] = value
        return new_model

    def converged(self, previous: Any, current: Any, iteration: int) -> bool:
        """Nutch terminates after a fixed number of iterations."""
        return iteration + 1 >= self.iteration_limit

    # -- PIC extras (Figure 8) ---------------------------------------------

    def partition(
        self,
        records: Sequence[tuple[Any, Any]],
        model: Any,
        num_partitions: int,
        seed: SeedLike = 0,
    ) -> list[tuple[list[tuple[Any, Any]], Any]]:
        """Split vertices into disjoint groups; sub-graph = internal edges.

        Also records the cross-partition edges and original out-degrees
        that the merge function needs.
        """
        vertices = [v for v, _outs in records]
        if self.partition_mode == "random":
            rng = as_generator(seed)
            order = rng.permutation(len(vertices))
            assignment = {
                vertices[int(idx)]: pos % num_partitions
                for pos, idx in enumerate(order)
            }
        elif self.partition_mode == "mincut":
            from repro.pic.graphcut import mincut_partition

            edges = [(v, t) for v, outs in records for t in outs]
            assignment = mincut_partition(
                max(vertices) + 1, edges, num_partitions, seed=seed
            )
        else:
            n = len(vertices)
            assignment = {
                v: min(pos * num_partitions // max(n, 1), num_partitions - 1)
                for pos, v in enumerate(sorted(vertices))
            }
        self._assignment = assignment
        self._full_outdeg = {v: len(outs) for v, outs in records}
        self._cross_edges = []

        sub_records: list[list[tuple[Any, Any]]] = [[] for _ in range(num_partitions)]
        sub_models: list[dict] = [{} for _ in range(num_partitions)]
        for v, outs in records:
            p = assignment[v]
            internal = tuple(t for t in outs if assignment[t] == p)
            for t in outs:
                if assignment[t] != p:
                    self._cross_edges.append((v, t))
            sub_records[p].append((v, internal))
            sub_models[p][(PR, v)] = model.get((PR, v), 1.0)
            deg = max(len(internal), 1)
            for t in internal:
                sub_models[p][(EDGE, v, t)] = model.get(
                    (EDGE, v, t), model.get((PR, v), 1.0) / deg
                )
        return list(zip(sub_records, sub_models))

    def merge(self, models: list[Any]) -> Any:
        """Concatenate partial models, then factor in cross edges.

        "The merge function first computes the scores for all outgoing
        edges from a partition ... Then [it] also updates the PageRanks
        of the destination vertices of all outgoing edges."
        """
        merged = concat_merge(models)
        cross_by_dst: dict[int, float] = {}
        for j, i in self._cross_edges:
            if (PR, j) not in merged or (PR, i) not in merged:
                raise ValueError(
                    f"merge is missing ranks for cross edge {j}->{i}; "
                    "models do not cover the partition() that recorded it"
                )
            outdeg = max(self._full_outdeg.get(j, 1), 1)
            score = merged[(PR, j)] / outdeg
            merged[(EDGE, j, i)] = score
            cross_by_dst[i] = cross_by_dst.get(i, 0.0) + score
        for i, total in cross_by_dst.items():
            merged[(PR, i)] = merged[(PR, i)] + self.damping * total
        return merged

    def be_converged(self, previous: Any, current: Any, be_iteration: int) -> bool:
        """Best-effort iterations stop at a pre-set limit (Section IV-B)."""
        return be_iteration + 1 >= self.be_iteration_limit

    def topoff_converged(self, previous: Any, current: Any, iteration: int) -> bool:
        """Top-off also uses a (small) pre-set limit: the best-effort
        phase has already propagated rank through the sub-graphs."""
        return iteration + 1 >= self.topoff_iteration_limit

    def local_max_iterations(self) -> int:
        """Pre-set local iteration limit (Section IV-B)."""
        return self._local_iteration_limit

    # -- metrics -----------------------------------------------------------

    def rank_vector(self, model: dict, num_vertices: int) -> np.ndarray:
        """Extract ranks as a dense vector for comparison metrics."""
        pr = np.zeros(num_vertices)
        for key, value in model.items():
            if isinstance(key, tuple) and key[0] == PR:
                pr[key[1]] = value
        return pr
