"""Serial reference for the Nutch PageRank formulation (Figure 7).

Every iteration has an aggregation phase (vertex ranks from incoming
edge scores) and a propagation phase (edge scores from source ranks and
out-degrees):

    PR_i   = (1 − c) + c · Σ_j edge_ji
    edge_ji = PR_j / outdeg(j)

Nutch runs a fixed number of iterations (10 by default).
"""

from __future__ import annotations

import numpy as np


def nutch_pagerank(
    records: list[tuple[int, tuple[int, ...]]],
    iterations: int = 10,
    damping: float = 0.85,
) -> np.ndarray:
    """Return the PageRank vector after ``iterations`` rounds."""
    if iterations < 1:
        raise ValueError(f"iterations must be >= 1, got {iterations}")
    if not 0.0 < damping < 1.0:
        raise ValueError(f"damping must be in (0, 1), got {damping}")
    n = max(v for v, _outs in records) + 1
    src = []
    dst = []
    for v, outs in records:
        for t in outs:
            src.append(v)
            dst.append(t)
    src_arr = np.asarray(src)
    dst_arr = np.asarray(dst)
    outdeg = np.zeros(n)
    np.add.at(outdeg, [v for v, _ in records], [len(o) for _, o in records])
    outdeg[outdeg == 0] = 1.0

    pr = np.ones(n)
    edge_scores = pr[src_arr] / outdeg[src_arr]  # initial propagation
    for _it in range(iterations):
        # Aggregation: rank from incoming edge scores.
        incoming = np.zeros(n)
        np.add.at(incoming, dst_arr, edge_scores)
        pr = (1.0 - damping) + damping * incoming
        # Propagation: refresh edge scores from the new ranks.
        edge_scores = pr[src_arr] / outdeg[src_arr]
    return pr
