"""PageRank — the paper's second case study (Section IV-B)."""

from repro.apps.pagerank.datagen import local_web_graph
from repro.apps.pagerank.program import PageRankProgram
from repro.apps.pagerank.serial import nutch_pagerank

__all__ = ["local_web_graph", "PageRankProgram", "nutch_pagerank"]
