"""Synthetic web graphs with the locality PIC exploits.

Substitutes for the paper's wikipedia.org crawl (1.8M documents).  The
paper's Section VI-B argument is that "the web graph is typically
local": most hyperlinks connect nearby pages (same site/topic), so a
reasonable partitioning leaves few cross-partition edges.  The generator
controls exactly that: out-degrees are Zipf-ish and targets are drawn
from a geometric distribution over vertex-id distance, with a tunable
fraction of uniform long-range links.
"""

from __future__ import annotations

import numpy as np

from repro.util.rng import SeedLike, as_generator


def local_web_graph(
    num_vertices: int,
    avg_out_degree: float = 8.0,
    locality_scale: float = 50.0,
    long_range_fraction: float = 0.05,
    seed: SeedLike = 0,
) -> list[tuple[int, tuple[int, ...]]]:
    """Generate ``(vertex, out_links)`` records.

    ``locality_scale`` is the mean |target − source| distance of local
    links; ``long_range_fraction`` of links go to uniform random
    targets.  Higher locality / lower long-range fraction ⇒ more nearly
    uncoupled under contiguous partitioning.
    """
    if num_vertices < 2:
        raise ValueError(f"need at least 2 vertices, got {num_vertices}")
    if avg_out_degree <= 0:
        raise ValueError("avg_out_degree must be positive")
    if not 0.0 <= long_range_fraction <= 1.0:
        raise ValueError("long_range_fraction must be in [0, 1]")
    if locality_scale <= 0:
        raise ValueError("locality_scale must be positive")
    rng = as_generator(seed)
    # Zipf-ish out-degrees: 1 + Poisson around the target mean gives a
    # heavy-enough tail without pathological hubs.
    degrees = 1 + rng.poisson(max(avg_out_degree - 1.0, 0.1), size=num_vertices)
    records: list[tuple[int, tuple[int, ...]]] = []
    for v in range(num_vertices):
        deg = int(degrees[v])
        is_long = rng.random(deg) < long_range_fraction
        offsets = rng.geometric(1.0 / locality_scale, size=deg)
        signs = rng.choice((-1, 1), size=deg)
        local_targets = v + signs * offsets
        uniform_targets = rng.integers(0, num_vertices, size=deg)
        targets = np.where(is_long, uniform_targets, local_targets)
        targets = np.clip(targets, 0, num_vertices - 1)
        # Drop self-loops and duplicates, keep deterministic order.
        seen: set[int] = set()
        out: list[int] = []
        for t in targets:
            t = int(t)
            if t != v and t not in seen:
                seen.add(t)
                out.append(t)
        if not out:
            out = [(v + 1) % num_vertices]
        records.append((v, tuple(out)))
    return records


def cross_edge_fraction(
    records: list[tuple[int, tuple[int, ...]]], assignment: dict[int, int]
) -> float:
    """Fraction of edges whose endpoints fall in different partitions."""
    total = 0
    cross = 0
    for v, outs in records:
        pv = assignment[v]
        for t in outs:
            total += 1
            if assignment[t] != pv:
                cross += 1
    return cross / total if total else 0.0
