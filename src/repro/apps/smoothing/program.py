"""Image smoothing as a PIC program.

The model *is the image* — one row per model element — so this is the
paper's clearest large-model case: every IC iteration rewrites the whole
image into the replicated DFS and redistributes it to the mappers.

Conventional IC realisation — one Jacobi stencil sweep per MapReduce
iteration:

* **map** — each split holds a band of rows of the *input* image ``f``;
  using the current image (the model) it recomputes its rows from the
  5-point stencil and emits ``(row_index, new_row)``;
* **reduce** — identity;
* **converged** — max pixel change < threshold.

PIC realisation — contiguous row bands with a frozen halo (plus optional
Schwarz overlap, as in the linear solver: the smoothing operator *is* a
weakly-diagonally-dominant linear system).
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from repro.mapreduce.columnar import (
    ArrayColumn,
    ColumnBatch,
    emit_first_values,
    int_column,
)
from repro.mapreduce.costs import CostHints
from repro.mapreduce.job import TaskContext
from repro.pic.api import PICProgram
from repro.util.rng import SeedLike


class ImageSmoothingProgram(PICProgram):
    """Jacobi image smoothing for the PIC framework.

    Model: ``{row_index: current_row}``.  Input records:
    ``(row_index, f_row)`` — the *original* image rows (data term).
    """

    def __init__(
        self,
        height: int,
        width: int,
        lam: float = 2.0,
        threshold: float = 1e-3,
        max_iterations: int = 500,
        num_reducers: int = 8,
        overlap: int = 2,
    ) -> None:
        if height < 2 or width < 2:
            raise ValueError(f"image must be at least 2x2, got {height}x{width}")
        if lam <= 0:
            raise ValueError(f"lam must be positive, got {lam}")
        if threshold <= 0:
            raise ValueError(f"threshold must be positive, got {threshold}")
        if overlap < 0:
            raise ValueError(f"overlap must be >= 0, got {overlap}")
        self.height = height
        self.width = width
        self.lam = lam
        self.threshold = threshold
        self.max_iterations = max_iterations
        self.num_reducers = num_reducers
        self.overlap = overlap
        self.name = "smoothing"
        self.model_mode = "partitioned"
        # A row is one "record": ~5 flops per pixel.
        self.costs = CostHints(
            map_seconds_per_record=2e-6 + 2e-8 * width,
            reduce_seconds_per_record=1e-6 + 1e-9 * width,
        )
        self._owned_keys: list[set[int]] = []

    # -- conventional IC pieces -----------------------------------------

    def initial_model(
        self, records: Sequence[tuple[Any, Any]], seed: SeedLike = 0
    ) -> dict[int, np.ndarray]:
        """Start from the noisy input image itself."""
        return {int(i): np.asarray(row, dtype=float).copy() for i, row in records}

    def batch_map(self, ctx: TaskContext, records: Sequence[tuple[Any, Any]]) -> None:
        """One 5-point stencil sweep over this split's rows.

        The sweep runs as whole-band matrix operations: every per-row
        addition of the old scalar loop becomes the same addition on a
        (rows, width) matrix (masked rows for missing up/down
        neighbours), so the emitted pixels are bit-identical.
        """
        if not len(records):
            return
        model: dict[int, np.ndarray] = ctx.model
        lam = self.lam
        columnar = isinstance(records, ColumnBatch)
        if columnar:
            keys = records.keys.rows()
        else:
            keys = [key for key, _row in records]
        ids = [int(key) for key in keys]
        if columnar and isinstance(records.values, ArrayColumn):
            f = records.values.data
        else:
            f = np.stack([np.asarray(row, dtype=float) for _key, row in records])
        n = len(ids)
        u = np.stack([model[i] for i in ids])
        count = np.full((n, self.width), 2.0)  # E/W neighbours (minus edges)
        count[:, 0] -= 1.0
        count[:, -1] -= 1.0
        total = np.zeros((n, self.width))
        total[:, 1:] += u[:, :-1]
        total[:, :-1] += u[:, 1:]
        ups = [model.get(i - 1) for i in ids]
        has_up = np.array([row is not None for row in ups], dtype=bool)
        if has_up.any():
            total[has_up] += np.stack([row for row in ups if row is not None])
            count[has_up] += 1.0
        downs = [model.get(i + 1) for i in ids]
        has_down = np.array([row is not None for row in downs], dtype=bool)
        if has_down.any():
            total[has_down] += np.stack([row for row in downs if row is not None])
            count[has_down] += 1.0
        new_rows = (f + lam * total) / (1.0 + lam * count)
        if columnar:
            ctx.emit_batch(
                ColumnBatch(
                    int_column(np.asarray(ids, dtype=np.int64)),
                    ArrayColumn(new_rows),
                )
            )
            return
        for row, key in enumerate(keys):
            ctx.emit(key, new_rows[row])

    def reduce(self, ctx: TaskContext, key: Any, values: list[Any]) -> None:
        """Identity: one updated row per key."""
        ctx.emit(key, values[0])

    def batch_reduce(
        self, ctx: TaskContext, grouped: list[tuple[Any, list[Any]]]
    ) -> None:
        """Identity reduce, vectorized when the groups are columnar."""
        emit_first_values(ctx, grouped)

    def build_model(self, model: dict, output: list[tuple[Any, Any]]) -> dict:
        """Fold the sweep's updated rows into the image model."""
        new_model = dict(model)
        for key, value in output:
            new_model[key] = value
        return new_model

    def converged(self, previous: Any, current: Any, iteration: int) -> bool:
        """max pixel change below the threshold (or the iteration cap)."""
        if iteration + 1 >= self.max_iterations:
            return True
        worst = 0.0
        for key, row in current.items():
            prev_row = previous.get(key)
            if prev_row is None:
                return False
            worst = max(worst, float(np.max(np.abs(row - prev_row))))
        return worst < self.threshold

    # -- PIC extras --------------------------------------------------------

    def partition(
        self,
        records: Sequence[tuple[Any, Any]],
        model: Any,
        num_partitions: int,
        seed: SeedLike = 0,
    ) -> list[tuple[list[tuple[Any, Any]], Any]]:
        """Contiguous row bands with Schwarz overlap and a frozen halo.

        A record outside the image's partition boundary rows never moves
        between sub-problems — the stencil dependencies are local, the
        Figure 13 structure in its purest form.
        """
        ordered = sorted(records, key=lambda rec: rec[0])
        n = len(ordered)
        bounds = [round(p * n / num_partitions) for p in range(num_partitions + 1)]
        self._owned_keys = []
        out: list[tuple[list[tuple[Any, Any]], Any]] = []
        for p in range(num_partitions):
            lo = max(0, bounds[p] - self.overlap)
            hi = min(n, bounds[p + 1] + self.overlap)
            band = ordered[lo:hi]
            owned = {int(i) for i, _row in ordered[bounds[p] : bounds[p + 1]]}
            self._owned_keys.append(owned)
            sub_model: dict[int, np.ndarray] = {}
            halo_lo = max(0, lo - 1)
            halo_hi = min(n, hi + 1)
            for i, _f_row in ordered[halo_lo:halo_hi]:
                sub_model[int(i)] = np.asarray(
                    model[int(i)], dtype=float
                ).copy()
            out.append((list(band), sub_model))
        return out

    def merge(self, models: list[Any]) -> Any:
        """Keep each band's owned rows; overlap and halo rows are dropped."""
        if len(models) != len(self._owned_keys):
            raise ValueError(
                f"merge got {len(models)} models but partition() made "
                f"{len(self._owned_keys)}"
            )
        merged: dict[int, np.ndarray] = {}
        for owned, model in zip(self._owned_keys, models):
            for key in owned:
                merged[key] = model[key]
        return merged

    def owned_model_records(self, model, partition_index):
        """Only the band's own rows (halo/overlap copies stay local)."""
        owned = self._owned_keys[partition_index]
        return [(k, v) for k, v in model.items() if k in owned]

    def merge_element(self, key, values):
        """Each row has exactly one owner under the distributed merge."""
        if len(values) != 1:
            raise ValueError(
                f"row {key} emitted by {len(values)} bands; ownership overlaps"
            )
        return values[0]

    def local_max_iterations(self) -> int:
        """Local loops share the conventional iteration cap."""
        return self.max_iterations

    # -- metrics -------------------------------------------------------------

    def image_array(self, model: dict[int, np.ndarray]) -> np.ndarray:
        """Model as a (height, width) array."""
        return np.stack([model[i] for i in range(self.height)])
