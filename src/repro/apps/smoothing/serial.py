"""Serial reference for the smoothing computation.

Smoothing is posed as solving ``(I + λL) u = f`` where ``L`` is the
5-point graph Laplacian with replicated boundaries — i.e. implicit
(backward-Euler) diffusion.  The Jacobi update is

    u_i ← (f_i + λ Σ_{j∈N(i)} u_j) / (1 + λ |N(i)|)

which is a strictly diagonally dominant stencil iteration: exactly the
"image smoothing" iterative-convergence workload of the paper, with the
local dependency structure its Section VI-B analysis calls out.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


def _neighbor_sum(u: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Sum of available N/S/E/W neighbours and their count, vectorized."""
    h, w = u.shape
    total = np.zeros_like(u)
    count = np.zeros_like(u)
    total[1:, :] += u[:-1, :]
    count[1:, :] += 1
    total[:-1, :] += u[1:, :]
    count[:-1, :] += 1
    total[:, 1:] += u[:, :-1]
    count[:, 1:] += 1
    total[:, :-1] += u[:, 1:]
    count[:, :-1] += 1
    return total, count


def jacobi_smooth_step(u: np.ndarray, f: np.ndarray, lam: float) -> np.ndarray:
    """One Jacobi sweep of (I + λL) u = f."""
    total, count = _neighbor_sum(u)
    return (f + lam * total) / (1.0 + lam * count)


@dataclass
class SmoothResult:
    """Outcome of a serial Jacobi smoothing run."""

    u: np.ndarray
    iterations: int
    change_trace: list[float] = field(default_factory=list)


def jacobi_smooth(
    f: np.ndarray,
    lam: float = 2.0,
    threshold: float = 1e-4,
    max_iterations: int = 2000,
    u0: np.ndarray | None = None,
) -> SmoothResult:
    """Iterate until max pixel change < threshold."""
    f = np.asarray(f, dtype=float)
    if lam <= 0:
        raise ValueError(f"lam must be positive, got {lam}")
    u = f.copy() if u0 is None else np.asarray(u0, dtype=float).copy()
    trace: list[float] = []
    for _ in range(max_iterations):
        u_new = jacobi_smooth_step(u, f, lam)
        change = float(np.max(np.abs(u_new - u)))
        trace.append(change)
        u = u_new
        if change < threshold:
            break
    return SmoothResult(u=u, iterations=len(trace), change_trace=trace)


def smooth_reference(f: np.ndarray, lam: float = 2.0, tol: float = 1e-10) -> np.ndarray:
    """Golden solution of (I + λL) u = f via conjugate gradients."""
    from scipy.sparse.linalg import LinearOperator, cg

    f = np.asarray(f, dtype=float)
    h, w = f.shape

    def matvec(vec: np.ndarray) -> np.ndarray:
        u = vec.reshape(h, w)
        total, count = _neighbor_sum(u)
        return (u + lam * (count * u - total)).ravel()

    op = LinearOperator((h * w, h * w), matvec=matvec)
    solution, info = cg(op, f.ravel(), rtol=tol, maxiter=20_000)
    if info != 0:
        raise RuntimeError(f"CG did not converge (info={info})")
    return solution.reshape(h, w)
