"""Stencil-based image smoothing (paper Sections IV/V, Figure 11)."""

from repro.apps.smoothing.datagen import synthetic_image
from repro.apps.smoothing.serial import smooth_reference, jacobi_smooth
from repro.apps.smoothing.program import ImageSmoothingProgram

__all__ = [
    "synthetic_image",
    "smooth_reference",
    "jacobi_smooth",
    "ImageSmoothingProgram",
]
