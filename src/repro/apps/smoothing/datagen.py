"""Synthetic images for the smoothing workload.

Substitutes for the paper's 40-megapixel photograph: a smooth gradient
background with rectangles and disks (edges for the smoother to act on)
plus Gaussian pixel noise.
"""

from __future__ import annotations

import numpy as np

from repro.util.rng import SeedLike, as_generator


def synthetic_image(
    height: int,
    width: int,
    num_shapes: int = 12,
    noise: float = 0.1,
    seed: SeedLike = 0,
) -> np.ndarray:
    """Return a float image in roughly [0, 1] with structure + noise."""
    if height < 4 or width < 4:
        raise ValueError(f"image must be at least 4x4, got {height}x{width}")
    if noise < 0:
        raise ValueError(f"noise must be non-negative, got {noise}")
    rng = as_generator(seed)
    yy, xx = np.mgrid[0:height, 0:width]
    img = 0.3 + 0.4 * (xx / width) + 0.2 * (yy / height)
    for _ in range(num_shapes):
        cy = rng.integers(0, height)
        cx = rng.integers(0, width)
        size = int(rng.integers(max(2, height // 16), max(3, height // 4)))
        value = float(rng.uniform(0.0, 1.0))
        if rng.random() < 0.5:
            img[
                max(0, cy - size // 2) : min(height, cy + size // 2),
                max(0, cx - size // 2) : min(width, cx + size // 2),
            ] = value
        else:
            mask = (yy - cy) ** 2 + (xx - cx) ** 2 <= (size // 2) ** 2
            img[mask] = value
    img += rng.normal(0.0, noise, size=img.shape)
    return img


def image_records(image: np.ndarray) -> list[tuple[int, np.ndarray]]:
    """One record per row: ``(row_index, pixel_row)``."""
    image = np.asarray(image, dtype=float)
    if image.ndim != 2:
        raise ValueError(f"expected a 2-D image, got shape {image.shape}")
    return [(int(i), image[i].copy()) for i in range(image.shape[0])]
