"""The paper's five evaluation applications, each in IC and PIC form.

* :mod:`repro.apps.kmeans` — K-means clustering (Figures 1(b)/6);
* :mod:`repro.apps.pagerank` — PageRank with the Nutch two-phase
  aggregation/propagation formulation (Figures 7/8);
* :mod:`repro.apps.neuralnet` — neural-network training with
  backpropagation on OCR-style data;
* :mod:`repro.apps.linsolve` — Jacobi solver for weakly diagonally
  dominant linear systems;
* :mod:`repro.apps.smoothing` — stencil-based image smoothing.

Each package provides a data generator, a vectorized serial reference,
the :class:`~repro.pic.api.PICProgram` subclass (usable both as the
conventional IC implementation and under PIC), and quality metrics.
"""
