"""Benchmark harness: canonical workloads and IC-vs-PIC comparison.

The benchmark files under ``benchmarks/`` (one per paper table/figure)
are thin: they pull a canonical workload from
:mod:`repro.harness.workloads`, run it through
:func:`repro.harness.compare.compare_ic_pic`, and print the same
rows/series the paper reports.
"""

from repro.harness.compare import ComparisonResult, compare_ic_pic
from repro.harness import workloads

__all__ = ["ComparisonResult", "compare_ic_pic", "workloads"]
