"""Run the same workload through conventional IC and PIC, on fresh
identical clusters, and package the paper-style comparison."""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Any, Callable, Sequence

from repro.cluster.cluster import Cluster
from repro.mapreduce.driver import DriverResult
from repro.pic.api import PICProgram
from repro.pic.runner import PICResult, PICRunner, run_ic_baseline


@dataclass
class ComparisonResult:
    """IC and PIC outcomes for one workload on one cluster size."""

    ic: DriverResult
    ic_traffic: dict[str, dict[str, float]]
    pic: PICResult

    @property
    def speedup(self) -> float:
        """Simulated IC makespan over simulated PIC makespan."""
        return self.ic.total_time / self.pic.total_time

    @property
    def ic_time(self) -> float:
        """Simulated IC makespan."""
        return self.ic.total_time

    @property
    def pic_time(self) -> float:
        """Simulated PIC makespan (both phases)."""
        return self.pic.total_time

    def traffic_row(self, category: str) -> tuple[float, float]:
        """(IC bytes, PIC bytes) for one traffic category."""
        ic = self.ic_traffic.get(category, {}).get("total_bytes", 0.0)
        pic = self.pic.traffic.get(category, {}).get("total_bytes", 0.0)
        return ic, pic


def compare_ic_pic(
    cluster_factory: Callable[[], Cluster],
    program: PICProgram,
    records: Sequence[tuple[Any, Any]],
    initial_model: Any,
    num_partitions: int,
    seed: Any = 3,
    max_iterations: int = 200,
    be_max_iterations: int = 30,
    workers: int | None = None,
) -> ComparisonResult:
    """Run IC then PIC from the *same* initial model on fresh clusters.

    ``workers`` sets host-side execution parallelism (``PIC_WORKERS``
    when None); it changes wall-clock only — simulated results are
    bit-identical for any worker count.
    """
    ic_cluster = cluster_factory()
    ic = run_ic_baseline(
        ic_cluster,
        program,
        records,
        initial_model=copy.deepcopy(initial_model),
        max_iterations=max_iterations,
        workers=workers,
    )
    pic_cluster = cluster_factory()
    runner = PICRunner(
        pic_cluster,
        program,
        num_partitions=num_partitions,
        seed=seed,
        be_max_iterations=be_max_iterations,
        max_iterations=max_iterations,
        workers=workers,
    )
    pic = runner.run(records, initial_model=copy.deepcopy(initial_model))
    return ComparisonResult(
        ic=ic, ic_traffic=ic_cluster.meter.snapshot(), pic=pic
    )
