"""Canonical workloads for the paper's experiments.

Each factory returns a :class:`Workload` naming the cluster, the
program, the data, a shared initial model, and the partition count —
everything a bench needs to reproduce one paper datapoint.  Sizes are
scaled from the paper's (Section 2 of DESIGN.md documents the mapping);
the structural knobs (cluster separation, graph locality, diagonal
dominance, noise) carry the properties the paper's claims rest on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro.apps.kmeans import KMeansProgram, gaussian_mixture
from repro.apps.linsolve import LinearSolverProgram, diagonally_dominant_system
from repro.apps.linsolve.datagen import system_records
from repro.apps.neuralnet import MLP, NeuralNetProgram, ocr_dataset
from repro.apps.pagerank import PageRankProgram, local_web_graph
from repro.apps.smoothing import ImageSmoothingProgram, synthetic_image
from repro.apps.smoothing.datagen import image_records
from repro.cluster.cluster import Cluster
from repro.cluster.presets import large_cluster, medium_cluster, small_cluster
from repro.pic.api import PICProgram


@dataclass
class Workload:
    """One reproducible experiment datapoint."""

    name: str
    cluster_factory: Callable[[], Cluster]
    program: PICProgram
    records: Sequence[tuple[Any, Any]]
    initial_model: Any
    num_partitions: int
    extras: dict[str, Any] = field(default_factory=dict)


# ---------------------------------------------------------------------------
# K-means (Figures 2, 9, 12(b); Tables I, III)

def kmeans_small(
    num_points: int = 200_000,
    k: int = 10,
    separation: float = 6.0,
    threshold: float = 0.1,
    num_partitions: int = 24,
    seed: int = 1,
) -> Workload:
    """K-means on the 6-node cluster (Figure 9's first group)."""
    records, centers = gaussian_mixture(
        num_points, k, dim=3, separation=separation, seed=seed
    )
    program = KMeansProgram(k=k, dim=3, threshold=threshold)
    model0 = program.initial_model(records, seed=seed + 1)
    return Workload(
        name=f"kmeans-{num_points}",
        cluster_factory=small_cluster,
        program=program,
        records=records,
        initial_model=model0,
        num_partitions=num_partitions,
        extras={"true_centers": centers},
    )


def kmeans_fig2(seed: int = 1) -> Workload:
    """Figure 2's 64-node K-means, scaled for the traffic panel.

    The paper clusters 100M points into 100 clusters; we cluster 640k
    into 10 with one sub-problem per node.  One sub-problem per node
    (rather than per slot) keeps points-per-cluster-per-partition in the
    regime where local iterations collapse after the first round — the
    property the paper's scale gave it for free (see EXPERIMENTS.md for
    the runtime-panel scaling discussion)."""
    records, centers = gaussian_mixture(640_000, 10, dim=3, separation=6.0, seed=seed)
    program = KMeansProgram(k=10, dim=3, threshold=0.1)
    model0 = program.initial_model(records, seed=seed + 1)
    return Workload(
        name="kmeans-fig2",
        cluster_factory=medium_cluster,
        program=program,
        records=records,
        initial_model=model0,
        num_partitions=64,
        extras={"true_centers": centers},
    )


def kmeans_table1_sizes() -> list[int]:
    """Geometric size ladder standing in for 0.5M/5M/50M/500M."""
    return [5_000, 20_000, 80_000, 320_000]


def kmeans_table1(num_points: int, seed: int = 1) -> Workload:
    """One Table I row (iteration counts vs dataset size)."""
    records, _ = gaussian_mixture(num_points, 10, dim=3, separation=6.0, seed=seed)
    program = KMeansProgram(k=10, dim=3, threshold=0.1)
    model0 = program.initial_model(records, seed=seed + 1)
    return Workload(
        name=f"kmeans-table1-{num_points}",
        cluster_factory=small_cluster,
        program=program,
        records=records,
        initial_model=model0,
        num_partitions=24,
    )


def kmeans_table3(dataset: int, seed: int = 1) -> Workload:
    """Table III's two datasets: well-separated vs overlapping mixtures."""
    separation = {1: 6.0, 2: 3.5}[dataset]
    records, _ = gaussian_mixture(
        100_000, 15, dim=3, separation=separation, seed=seed + dataset
    )
    program = KMeansProgram(k=15, dim=3, threshold=0.1)
    model0 = program.initial_model(records, seed=seed + 10 + dataset)
    return Workload(
        name=f"kmeans-table3-ds{dataset}",
        cluster_factory=small_cluster,
        program=program,
        records=records,
        initial_model=model0,
        num_partitions=24,
    )


# ---------------------------------------------------------------------------
# PageRank (Figure 9)

def pagerank_small(
    num_vertices: int = 20_000, num_partitions: int = 18, seed: int = 5
) -> Workload:
    """PageRank on the 6-node cluster; the paper splits its web graph
    into 18 partitions of ~100k vertices — we keep the 18."""
    records = local_web_graph(num_vertices, avg_out_degree=8.0, seed=seed)
    program = PageRankProgram()
    model0 = program.initial_model(records)
    return Workload(
        name=f"pagerank-{num_vertices}",
        cluster_factory=small_cluster,
        program=program,
        records=records,
        initial_model=model0,
        num_partitions=num_partitions,
    )


# ---------------------------------------------------------------------------
# Linear solver (Figures 9, 12(c))

def linsolve_small(
    n: int = 100,
    dominance: float = 1.05,
    bandwidth: int = 2,
    num_partitions: int = 6,
    seed: int = 11,
) -> Workload:
    """The paper's own problem size: 100 variables, weakly diagonally
    dominant."""
    A, b, x_star = diagonally_dominant_system(
        n, bandwidth=bandwidth, dominance=dominance, seed=seed
    )
    records = system_records(A, b)
    program = LinearSolverProgram(threshold=1e-6)
    model0 = program.initial_model(records)
    return Workload(
        name=f"linsolve-{n}",
        cluster_factory=small_cluster,
        program=program,
        records=records,
        initial_model=model0,
        num_partitions=num_partitions,
        extras={"A": A, "b": b, "x_star": x_star},
    )


# ---------------------------------------------------------------------------
# Neural-network training (Figures 10, 12(a))

def neuralnet_medium(
    num_samples: int = 63_000, num_partitions: int = 64, seed: int = 7
) -> Workload:
    """NN training on the 64-node cluster; the paper used ~210k OCR
    vectors — we keep the 10:1 train/validation structure at 1/10 scale."""
    records, X, y = ocr_dataset(num_samples, seed=seed)
    split = int(num_samples * 20 / 21)
    train = records[:split]
    Xv, yv = X[split:], y[split:]
    program = NeuralNetProgram(MLP(64, 32, 10), validation=(Xv, yv))
    model0 = program.initial_model(train, seed=seed + 2)
    return Workload(
        name=f"neuralnet-{num_samples}",
        cluster_factory=medium_cluster,
        program=program,
        records=train,
        initial_model=model0,
        num_partitions=num_partitions,
        extras={"Xv": Xv, "yv": yv},
    )


# ---------------------------------------------------------------------------
# Image smoothing (Figures 10, 11)

def smoothing_medium(
    side: int = 512, num_partitions: int = 64, seed: int = 13
) -> Workload:
    """Image smoothing on the 64-node cluster (paper: 40-Mpixel image)."""
    img = synthetic_image(side, side, seed=seed)
    records = image_records(img)
    program = ImageSmoothingProgram(side, side)
    model0 = program.initial_model(records)
    return Workload(
        name=f"smoothing-{side}",
        cluster_factory=medium_cluster,
        program=program,
        records=records,
        initial_model=model0,
        num_partitions=num_partitions,
        extras={"image": img},
    )


def smoothing_large(num_nodes: int, side: int = 1024, seed: int = 13) -> Workload:
    """Figure 11's strong-scaling points: fixed image, growing cluster."""
    img = synthetic_image(side, side, seed=seed)
    records = image_records(img)
    program = ImageSmoothingProgram(side, side)
    model0 = program.initial_model(records)
    return Workload(
        name=f"smoothing-large-{num_nodes}",
        cluster_factory=lambda: large_cluster(num_nodes),
        program=program,
        records=records,
        initial_model=model0,
        num_partitions=num_nodes,
        extras={"image": img},
    )
