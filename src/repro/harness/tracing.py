"""Error-vs-time instrumentation for the Figure 12 benches.

Wraps a program's convergence checks so that every iteration of the IC
baseline — and every best-effort round / top-off iteration of PIC —
records ``(simulated_time, error(model))`` without perturbing behaviour.
"""

from __future__ import annotations

import copy
from typing import Any, Callable, Sequence

from repro.cluster.cluster import Cluster
from repro.pic.api import PICProgram
from repro.pic.runner import PICRunner, run_ic_baseline

ErrorFn = Callable[[Any], float]
Curve = list[tuple[float, float]]


class _Tracer:
    """Temporarily wraps one convergence method on a program instance."""

    def __init__(self, program: PICProgram, method: str, cluster: Cluster,
                 error_fn: ErrorFn, curve: Curve) -> None:
        self.program = program
        self.method = method
        self.original = getattr(program, method)
        self.cluster = cluster
        self.error_fn = error_fn
        self.curve = curve

    def __enter__(self):
        original = self.original
        cluster = self.cluster
        error_fn = self.error_fn
        curve = self.curve

        def traced(previous, current, iteration):
            curve.append((cluster.now, error_fn(current)))
            return original(previous, current, iteration)

        setattr(self.program, self.method, traced)
        return self

    def __exit__(self, *exc):
        setattr(self.program, self.method, self.original)
        return False


def trace_ic(
    cluster: Cluster,
    program: PICProgram,
    records: Sequence[tuple[Any, Any]],
    initial_model: Any,
    error_fn: ErrorFn,
    max_iterations: int = 500,
):
    """Run the IC baseline, returning (driver_result, error curve)."""
    curve: Curve = [(0.0, error_fn(initial_model))]
    with _Tracer(program, "converged", cluster, error_fn, curve):
        result = run_ic_baseline(
            cluster, program, records,
            initial_model=copy.deepcopy(initial_model),
            max_iterations=max_iterations,
        )
    return result, curve


def trace_pic(
    cluster: Cluster,
    program: PICProgram,
    records: Sequence[tuple[Any, Any]],
    initial_model: Any,
    error_fn: ErrorFn,
    num_partitions: int,
    seed: Any = 3,
    be_max_iterations: int = 60,
    max_iterations: int = 500,
):
    """Run PIC, returning (pic_result, best-effort curve, top-off curve)."""
    be_curve: Curve = [(0.0, error_fn(initial_model))]
    topoff_curve: Curve = []
    runner = PICRunner(
        cluster, program, num_partitions=num_partitions, seed=seed,
        be_max_iterations=be_max_iterations, max_iterations=max_iterations,
    )
    with _Tracer(program, "be_converged", cluster, error_fn, be_curve), \
         _Tracer(program, "topoff_converged", cluster, error_fn, topoff_curve):
        result = runner.run(records, initial_model=copy.deepcopy(initial_model))
    return result, be_curve, topoff_curve
