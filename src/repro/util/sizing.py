"""Wire-size estimation for key/value records.

The paper's Table II and Figure 2 report *bytes* of MapReduce intermediate
data and model updates.  To reproduce those numbers we size the actual
records our mappers and reducers emit, using the serialized footprint a
Hadoop ``Writable`` would have, not Python's in-memory ``sys.getsizeof``
(which is dominated by object headers and would inflate the counts).

Sizing rules (close to Hadoop's wire formats):

* ``int`` → 8 bytes (``LongWritable``)
* ``float`` → 8 bytes (``DoubleWritable``)
* ``bool``/``None`` → 1 byte
* ``str``/``bytes`` → UTF-8 length + 2-byte length prefix (``Text``)
* ``numpy`` scalar → its itemsize
* ``numpy.ndarray`` → ``nbytes`` + a small shape header
* tuples/lists → sum of elements + 4-byte count
* dicts → sum of key+value sizes + 4-byte count
"""

from __future__ import annotations

from typing import Any, Iterable

import numpy as np

# Public: the columnar backend computes per-column wire sizes from the
# same rules, so the header constants are part of the sizing contract.
ARRAY_HEADER = 8
SEQ_HEADER = 4
STR_HEADER = 2

# Backwards-compatible aliases (older call sites use the underscored names).
_ARRAY_HEADER = ARRAY_HEADER
_SEQ_HEADER = SEQ_HEADER
_STR_HEADER = STR_HEADER


def sizeof_value(value: Any) -> int:
    """Return the estimated serialized size of one key or value, in bytes."""
    if value is None or isinstance(value, bool):
        return 1
    if isinstance(value, (int, float)):
        return 8
    if isinstance(value, np.generic):
        return int(value.dtype.itemsize)
    if isinstance(value, np.ndarray):
        return int(value.nbytes) + _ARRAY_HEADER
    if isinstance(value, bytes):
        return len(value) + _STR_HEADER
    if isinstance(value, str):
        return len(value.encode("utf-8")) + _STR_HEADER
    if isinstance(value, (tuple, list, set, frozenset)):
        return _SEQ_HEADER + sum(sizeof_value(v) for v in value)
    if isinstance(value, dict):
        return _SEQ_HEADER + sum(
            sizeof_value(k) + sizeof_value(v) for k, v in value.items()
        )
    raise TypeError(
        f"cannot size value of type {type(value).__name__}; "
        "emit ints, floats, strings, numpy arrays, or nested tuples/lists/dicts"
    )


def sizeof_record(key: Any, value: Any) -> int:
    """Serialized size of one key/value record."""
    return sizeof_value(key) + sizeof_value(value)


# Below this length the generic path is cheap enough that probing for
# batch homogeneity costs more than it saves.
_FAST_PATH_MIN = 16

# Exact-type size rules for the fast path.  ``type(x) is int`` rather
# than isinstance deliberately excludes bool (a subclass of int that
# sizes to 1 byte, not 8) and numpy scalars.
_FIXED_SCALAR_TYPES = (int, float)


def _sizeof_records_fast(records: list[tuple[Any, Any]]) -> int | None:
    """Batched sizing for homogeneous record lists, or ``None``.

    Every app's hot shuffle/partition batches are homogeneous —
    int/str keys paired with scalar or ndarray values — so one
    type-dispatch for the whole batch plus a tight accumulation loop
    replaces a recursive ``sizeof_value`` call per element.  Any record
    deviating from the probe types bails out to the reference path;
    the result is always equal to the per-record sum.
    """
    k0, v0 = records[0]
    kt, vt = type(k0), type(v0)
    n = len(records)

    if kt in _FIXED_SCALAR_TYPES:
        if vt in _FIXED_SCALAR_TYPES:
            for k, v in records:
                if type(k) is not kt or type(v) is not vt:
                    return None
            return 16 * n
        if vt is np.ndarray:
            total = 0
            for k, v in records:
                if type(k) is not kt or type(v) is not vt:
                    return None
                total += v.nbytes
            return int(total) + (8 + _ARRAY_HEADER) * n
        if vt is str:
            total = 0
            for k, v in records:
                if type(k) is not kt or type(v) is not vt:
                    return None
                total += len(v.encode("utf-8"))
            return total + (8 + _STR_HEADER) * n
        return None

    if kt is str:
        if vt in _FIXED_SCALAR_TYPES:
            total = 0
            for k, v in records:
                if type(k) is not kt or type(v) is not vt:
                    return None
                total += len(k.encode("utf-8"))
            return total + (_STR_HEADER + 8) * n
        if vt is np.ndarray:
            total = 0
            for k, v in records:
                if type(k) is not kt or type(v) is not vt:
                    return None
                total += len(k.encode("utf-8")) + v.nbytes
            return int(total) + (_STR_HEADER + _ARRAY_HEADER) * n
        return None

    return None


def sizeof_records(records: Iterable[tuple[Any, Any]]) -> int:
    """Total serialized size of an iterable of ``(key, value)`` records.

    Large homogeneous batches (int/str keys with scalar, string, or
    ndarray values — the dominant shape in all five applications) take
    a batched fast path that is equal, byte for byte, to the per-record
    reference sum.
    """
    # Columnar batches size themselves per column (duck-typed rather
    # than isinstance to keep this leaf module import-cycle free).
    wire = getattr(records, "nbytes_wire", None)
    if wire is not None:
        return int(wire())
    if isinstance(records, list) and len(records) >= _FAST_PATH_MIN:
        fast = _sizeof_records_fast(records)
        if fast is not None:
            return fast
    return sum(sizeof_record(k, v) for k, v in records)
