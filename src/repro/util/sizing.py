"""Wire-size estimation for key/value records.

The paper's Table II and Figure 2 report *bytes* of MapReduce intermediate
data and model updates.  To reproduce those numbers we size the actual
records our mappers and reducers emit, using the serialized footprint a
Hadoop ``Writable`` would have, not Python's in-memory ``sys.getsizeof``
(which is dominated by object headers and would inflate the counts).

Sizing rules (close to Hadoop's wire formats):

* ``int`` → 8 bytes (``LongWritable``)
* ``float`` → 8 bytes (``DoubleWritable``)
* ``bool``/``None`` → 1 byte
* ``str``/``bytes`` → UTF-8 length + 2-byte length prefix (``Text``)
* ``numpy`` scalar → its itemsize
* ``numpy.ndarray`` → ``nbytes`` + a small shape header
* tuples/lists → sum of elements + 4-byte count
* dicts → sum of key+value sizes + 4-byte count
"""

from __future__ import annotations

from typing import Any, Iterable

import numpy as np

_ARRAY_HEADER = 8
_SEQ_HEADER = 4
_STR_HEADER = 2


def sizeof_value(value: Any) -> int:
    """Return the estimated serialized size of one key or value, in bytes."""
    if value is None or isinstance(value, bool):
        return 1
    if isinstance(value, (int, float)):
        return 8
    if isinstance(value, np.generic):
        return int(value.dtype.itemsize)
    if isinstance(value, np.ndarray):
        return int(value.nbytes) + _ARRAY_HEADER
    if isinstance(value, bytes):
        return len(value) + _STR_HEADER
    if isinstance(value, str):
        return len(value.encode("utf-8")) + _STR_HEADER
    if isinstance(value, (tuple, list, set, frozenset)):
        return _SEQ_HEADER + sum(sizeof_value(v) for v in value)
    if isinstance(value, dict):
        return _SEQ_HEADER + sum(
            sizeof_value(k) + sizeof_value(v) for k, v in value.items()
        )
    raise TypeError(
        f"cannot size value of type {type(value).__name__}; "
        "emit ints, floats, strings, numpy arrays, or nested tuples/lists/dicts"
    )


def sizeof_record(key: Any, value: Any) -> int:
    """Serialized size of one key/value record."""
    return sizeof_value(key) + sizeof_value(value)


def sizeof_records(records: Iterable[tuple[Any, Any]]) -> int:
    """Total serialized size of an iterable of ``(key, value)`` records."""
    return sum(sizeof_record(k, v) for k, v in records)
