"""Deterministic random-number discipline.

Every stochastic component in the library accepts either an integer seed
or a ``numpy.random.Generator``; nothing ever touches global NumPy random
state.  Components that need several independent streams derive them with
:func:`spawn_rngs`, which uses NumPy's ``SeedSequence`` spawning so the
streams are statistically independent and reproducible regardless of the
order in which they are consumed.
"""

from __future__ import annotations

from typing import Union

import numpy as np

SeedLike = Union[int, np.random.Generator, np.random.SeedSequence, None]


def as_generator(seed: SeedLike) -> np.random.Generator:
    """Coerce ``seed`` into a ``numpy.random.Generator``.

    Accepts an ``int``, an existing ``Generator`` (returned unchanged), a
    ``SeedSequence``, or ``None`` (fresh OS entropy — only appropriate in
    interactive use, never inside the library's deterministic paths).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    return np.random.default_rng(seed)


def spawn_rngs(seed: SeedLike, n: int) -> list[np.random.Generator]:
    """Derive ``n`` independent generators from one seed.

    Uses ``SeedSequence.spawn`` so child streams do not overlap.  When
    ``seed`` is already a ``Generator``, children are derived from its
    bit generator's seed sequence if available, otherwise from integers
    drawn from it (still deterministic for a seeded parent).
    """
    if n < 0:
        raise ValueError(f"cannot spawn a negative number of rngs: {n}")
    if isinstance(seed, np.random.Generator):
        ss = seed.bit_generator.seed_seq  # type: ignore[attr-defined]
        if isinstance(ss, np.random.SeedSequence):
            return [np.random.default_rng(child) for child in ss.spawn(n)]
        ints = seed.integers(0, 2**63 - 1, size=n)
        return [np.random.default_rng(int(i)) for i in ints]
    if isinstance(seed, np.random.SeedSequence):
        base = seed
    else:
        base = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in base.spawn(n)]


class Seeded:
    """Mixin for components that own a deterministic RNG stream.

    Subclasses call ``super().__init__(seed=...)`` (or ``Seeded.__init__``)
    and then use ``self.rng``.
    """

    def __init__(self, seed: SeedLike = 0) -> None:
        self.rng = as_generator(seed)
