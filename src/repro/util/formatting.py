"""Human-readable formatting for bench output: bytes, durations, tables."""

from __future__ import annotations

from typing import Sequence

_BYTE_UNITS = ["B", "KB", "MB", "GB", "TB", "PB"]


def human_bytes(n: float) -> str:
    """Format a byte count the way the paper's tables do (KB/MB/GB, base 1024)."""
    if n < 0:
        raise ValueError(f"byte count must be non-negative, got {n}")
    value = float(n)
    for unit in _BYTE_UNITS:
        if value < 1024.0 or unit == _BYTE_UNITS[-1]:
            if unit == "B":
                return f"{value:.0f} {unit}"
            return f"{value:.2f} {unit}"
        value /= 1024.0
    raise AssertionError("unreachable")


def human_time(seconds: float) -> str:
    """Format a duration as s / m / h with sensible precision."""
    if seconds < 0:
        raise ValueError(f"duration must be non-negative, got {seconds}")
    if seconds < 1e-3:
        return f"{seconds * 1e6:.1f} us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.1f} ms"
    if seconds < 120.0:
        return f"{seconds:.1f} s"
    if seconds < 7200.0:
        return f"{seconds / 60.0:.1f} min"
    return f"{seconds / 3600.0:.2f} h"


def render_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: str | None = None
) -> str:
    """Render an ASCII table; every bench uses this so outputs align with the paper."""
    str_rows = [[str(c) for c in row] for row in rows]
    for i, row in enumerate(str_rows):
        if len(row) != len(headers):
            raise ValueError(
                f"row {i} has {len(row)} cells but there are {len(headers)} headers"
            )
    widths = [len(h) for h in headers]
    for row in str_rows:
        for j, cell in enumerate(row):
            widths[j] = max(widths[j], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
