"""Shared utilities: RNG discipline, byte sizing, formatting, validation."""

from repro.util.rng import Seeded, spawn_rngs, as_generator
from repro.util.sizing import sizeof_value, sizeof_record, sizeof_records
from repro.util.formatting import human_bytes, human_time, render_table

__all__ = [
    "Seeded",
    "spawn_rngs",
    "as_generator",
    "sizeof_value",
    "sizeof_record",
    "sizeof_records",
    "human_bytes",
    "human_time",
    "render_table",
]
