"""Data plane of the simulated DFS: replication pipelines and reads.

A write of one block charges a *pipeline*: writer → replica₂ → replica₃.
In steady state a pipeline moves each byte over every hop, so the fabric
cost of a write is ``nbytes × (replicas − 1)`` transfers plus the local
disk write on every replica.  Reads fetch each block from the closest
replica; a local replica costs only disk time.

All operations complete via callbacks on the simulated clock, so the
MapReduce layer can sequence task work after its I/O without blocking.
"""

from __future__ import annotations

from typing import Callable

from repro.cluster.cluster import Cluster
from repro.cluster.metrics import TrafficCategory
from repro.dfs.namenode import DEFAULT_BLOCK_SIZE, FileMeta, Namenode
from repro.util.rng import SeedLike


class DistributedFileSystem:
    """HDFS-like block store bound to one :class:`Cluster`."""

    def __init__(
        self,
        cluster: Cluster,
        replication: int = 3,
        block_size: int = DEFAULT_BLOCK_SIZE,
        seed: SeedLike = 17,
    ) -> None:
        self.cluster = cluster
        self.namenode = Namenode(
            cluster.topology,
            replication=replication,
            block_size=block_size,
            seed=seed,
        )

    # -- writes ----------------------------------------------------------

    def write(
        self,
        path: str,
        nbytes: int,
        writer_node: int,
        category: str = TrafficCategory.DFS_WRITE,
        on_complete: Callable[[FileMeta], None] | None = None,
        replication: int | None = None,
    ) -> FileMeta:
        """Create ``path`` with ``nbytes`` of data produced on ``writer_node``.

        The call registers metadata immediately and starts the pipeline
        transfers; ``on_complete`` fires when the last replica of the
        last block has landed.
        """
        meta = self.namenode.create(path, nbytes, writer_node, replication=replication)
        pending = {"count": 0, "write_done": False}

        def block_part_done(_flow=None) -> None:
            pending["count"] -= 1
            if pending["count"] == 0 and pending["write_done"] and on_complete:
                on_complete(meta)

        for block in meta.blocks:
            # Local disk write on the first replica (the writer itself).
            # Counts toward the category total (a replica was written)
            # but not toward fabric traffic.
            pending["count"] += 1
            disk_time = block.nbytes / self._disk_bw(block.replicas[0])
            self.cluster.sim.schedule(disk_time, block_part_done)
            self.cluster.meter.record(
                category, block.nbytes, crosses_core=False, on_fabric=False
            )
            # Pipeline hops to the remaining replicas.
            for src, dst in zip(block.replicas, block.replicas[1:]):
                pending["count"] += 1
                self.cluster.transfer(src, dst, block.nbytes, category, block_part_done)
        pending["write_done"] = True
        if pending["count"] == 0 and on_complete:
            # Zero-byte file: still signal completion on the sim clock.
            self.cluster.sim.schedule(0.0, lambda: on_complete(meta))
        return meta

    def overwrite(
        self,
        path: str,
        nbytes: int,
        writer_node: int,
        category: str = TrafficCategory.DFS_WRITE,
        on_complete: Callable[[FileMeta], None] | None = None,
    ) -> FileMeta:
        """Replace ``path`` if it exists (models HDFS delete + create)."""
        if self.namenode.exists(path):
            self.namenode.delete(path)
        return self.write(path, nbytes, writer_node, category, on_complete)

    # -- reads -----------------------------------------------------------

    def read(
        self,
        path: str,
        reader_node: int,
        category: str = TrafficCategory.DFS_READ,
        on_complete: Callable[[FileMeta], None] | None = None,
    ) -> FileMeta:
        """Fetch all blocks of ``path`` to ``reader_node``."""
        meta = self.namenode.lookup(path)
        return self._read_blocks(meta, meta.blocks, reader_node, category, on_complete)

    def read_block(
        self,
        path: str,
        block_index: int,
        reader_node: int,
        category: str = TrafficCategory.DFS_READ,
        on_complete: Callable[[FileMeta], None] | None = None,
    ) -> FileMeta:
        """Fetch a single block (what a map task does with its split)."""
        meta = self.namenode.lookup(path)
        if not 0 <= block_index < len(meta.blocks):
            raise IndexError(
                f"{path} has {len(meta.blocks)} blocks, no index {block_index}"
            )
        block = meta.blocks[block_index]
        return self._read_blocks(meta, [block], reader_node, category, on_complete)

    def _read_blocks(self, meta, blocks, reader_node, category, on_complete):
        pending = {"count": 0, "all_started": False}

        def part_done(_flow=None) -> None:
            pending["count"] -= 1
            if pending["count"] == 0 and pending["all_started"] and on_complete:
                on_complete(meta)

        for block in blocks:
            replica = self.namenode.closest_replica(block, reader_node)
            pending["count"] += 1
            if replica == reader_node:
                disk_time = block.nbytes / self._disk_bw(replica)
                self.cluster.sim.schedule(disk_time, part_done)
                # Local read: counts toward the category but not the fabric.
                self.cluster.meter.record(
                    category, block.nbytes, crosses_core=False, on_fabric=False
                )
            else:
                self.cluster.transfer(
                    replica, reader_node, block.nbytes, category, part_done
                )
        pending["all_started"] = True
        if pending["count"] == 0 and on_complete:
            self.cluster.sim.schedule(0.0, lambda: on_complete(meta))
        return meta

    # -- queries ----------------------------------------------------------

    def block_locations(self, path: str) -> list[tuple[int, ...]]:
        """Replica node tuples per block — the scheduler's locality input."""
        return [b.replicas for b in self.namenode.lookup(path).blocks]

    def _disk_bw(self, node_id: int) -> float:
        return self.cluster.topology.nodes[node_id].spec.disk_bandwidth
