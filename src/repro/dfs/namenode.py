"""Namenode: file/block metadata and replica placement policy."""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

import numpy as np

from repro.cluster.topology import Topology
from repro.util.rng import SeedLike, as_generator

DEFAULT_BLOCK_SIZE = 64 * 2**20  # Hadoop 0.20's default 64 MB


def _path_entropy(path: str) -> int:
    """Stable 64-bit entropy for one file path (platform-independent)."""
    return int.from_bytes(hashlib.sha256(path.encode("utf-8")).digest()[:8], "big")


@dataclass
class BlockMeta:
    """One block of a file and the nodes holding its replicas."""

    block_id: int
    nbytes: int
    replicas: tuple[int, ...]

    def __post_init__(self) -> None:
        if self.nbytes < 0:
            raise ValueError(f"block size must be non-negative, got {self.nbytes}")
        if len(set(self.replicas)) != len(self.replicas):
            raise ValueError(f"duplicate replica nodes: {self.replicas}")


@dataclass
class FileMeta:
    """A file: ordered blocks plus total size."""

    path: str
    blocks: list[BlockMeta] = field(default_factory=list)

    @property
    def nbytes(self) -> int:
        """Total file size across blocks."""
        return sum(b.nbytes for b in self.blocks)


class Namenode:
    """Tracks files, splits them into blocks, and places replicas.

    Placement follows HDFS's default policy:

    1. first replica on the writer node;
    2. second replica on a node in a *different* rack (when one exists);
    3. third replica on a different node in the second replica's rack;
    4. further replicas on random nodes not yet holding the block.
    """

    def __init__(
        self,
        topology: Topology,
        replication: int = 3,
        block_size: int = DEFAULT_BLOCK_SIZE,
        seed: SeedLike = 0,
    ) -> None:
        if replication < 1:
            raise ValueError(f"replication must be >= 1, got {replication}")
        if block_size <= 0:
            raise ValueError(f"block_size must be positive, got {block_size}")
        self.topology = topology
        self.replication = min(replication, topology.num_nodes)
        self.block_size = block_size
        self.rng = as_generator(seed)
        # Placement is a pure function of (seed, path): each create()
        # derives a per-file stream instead of drawing from one shared
        # cursor, so which of two same-timestamp writes registers first
        # cannot shift every later file's replica choices.
        if isinstance(seed, int):
            self._placement_entropy = seed
        else:
            self._placement_entropy = int(
                as_generator(seed).integers(0, 2**63 - 1)
            )
        self._files: dict[str, FileMeta] = {}
        self._next_block_id = 0
        self.stored_bytes_per_node: dict[int, float] = {
            n.node_id: 0.0 for n in topology.nodes
        }

    # -- metadata operations -------------------------------------------

    def exists(self, path: str) -> bool:
        """True when ``path`` is a registered file."""
        return path in self._files

    def lookup(self, path: str) -> FileMeta:
        """Metadata for ``path`` (FileNotFoundError when absent)."""
        if path not in self._files:
            raise FileNotFoundError(f"no such DFS file: {path}")
        return self._files[path]

    def listing(self) -> list[str]:
        """All registered paths, sorted."""
        return sorted(self._files)

    def delete(self, path: str) -> None:
        """Remove ``path`` and reclaim its replicas' accounting."""
        meta = self.lookup(path)
        for block in meta.blocks:
            for node in block.replicas:
                self.stored_bytes_per_node[node] -= block.nbytes
        del self._files[path]

    # -- allocation -----------------------------------------------------

    def create(
        self, path: str, nbytes: int, writer_node: int, replication: int | None = None
    ) -> FileMeta:
        """Register a new file of ``nbytes`` written from ``writer_node``.

        Returns the metadata with blocks and replica placements decided;
        the data-plane cost is the DFS layer's job.  ``replication``
        overrides the filesystem default for this file.
        """
        if nbytes < 0:
            raise ValueError(f"file size must be non-negative, got {nbytes}")
        if self.exists(path):
            raise FileExistsError(f"DFS file already exists: {path}")
        if not 0 <= writer_node < self.topology.num_nodes:
            raise ValueError(f"writer node {writer_node} out of range")
        if replication is None:
            replication = self.replication
        replication = min(replication, self.topology.num_nodes)
        if replication < 1:
            raise ValueError(f"replication must be >= 1, got {replication}")
        meta = FileMeta(path=path)
        rng = as_generator(
            np.random.SeedSequence([self._placement_entropy, _path_entropy(path)])
        )
        remaining = nbytes
        while True:
            chunk = min(remaining, self.block_size)
            replicas = self._place_replicas(writer_node, replication, rng)
            block = BlockMeta(
                block_id=self._next_block_id, nbytes=chunk, replicas=replicas
            )
            self._next_block_id += 1
            meta.blocks.append(block)
            for node in replicas:
                self.stored_bytes_per_node[node] += chunk
            remaining -= chunk
            if remaining <= 0:
                break
        self._files[path] = meta
        return meta

    def _place_replicas(
        self,
        writer_node: int,
        replication: int | None = None,
        rng: np.random.Generator | None = None,
    ) -> tuple[int, ...]:
        if replication is None:
            replication = self.replication
        if rng is None:
            rng = self.rng
        topo = self.topology
        placed = [writer_node]
        if replication >= 2:
            writer_rack = topo.nodes[writer_node].rack_id
            off_rack = [n.node_id for n in topo.nodes if n.rack_id != writer_rack]
            if off_rack:
                second = int(rng.choice(off_rack))
            else:
                candidates = [n.node_id for n in topo.nodes if n.node_id != writer_node]
                second = int(rng.choice(candidates)) if candidates else None
            if second is not None:
                placed.append(second)
        if replication >= 3 and len(placed) == 2:
            second_rack = topo.nodes[placed[1]].rack_id
            same_rack = [
                n.node_id
                for n in topo.nodes
                if n.rack_id == second_rack and n.node_id not in placed
            ]
            pool = same_rack or [
                n.node_id for n in topo.nodes if n.node_id not in placed
            ]
            if pool:
                placed.append(int(rng.choice(pool)))
        while len(placed) < replication:
            pool = [n.node_id for n in topo.nodes if n.node_id not in placed]
            if not pool:
                break
            placed.append(int(rng.choice(pool)))
        return tuple(placed)

    # -- replica selection for reads -------------------------------------

    def closest_replica(self, block: BlockMeta, reader_node: int) -> int:
        """Local replica if any, else same-rack, else any (deterministic)."""
        if reader_node in block.replicas:
            return reader_node
        reader_rack = self.topology.nodes[reader_node].rack_id
        same_rack = [
            r for r in block.replicas
            if self.topology.nodes[r].rack_id == reader_rack
        ]
        if same_rack:
            return min(same_rack)
        return min(block.replicas)
