"""HDFS-like distributed file system on the simulated cluster.

Files are split into fixed-size blocks; each block is replicated
(default 3×) using the HDFS placement policy (first replica on the
writer, second off-rack, third on the second's rack).  Writes are
charged as replication *pipelines* on the flow network — this is exactly
the "model is stored in the cluster file system with replicas" cost the
paper identifies as the model-update bottleneck.  Reads pick the closest
replica (local disk > same rack > cross rack).
"""

from repro.dfs.namenode import Namenode, FileMeta, BlockMeta
from repro.dfs.dfs import DistributedFileSystem

__all__ = ["DistributedFileSystem", "Namenode", "FileMeta", "BlockMeta"]
