"""Committed-baseline support for incremental burn-down.

A baseline file records fingerprints of accepted pre-existing findings
so ``pic-lint`` can gate on *new* findings only.  Fingerprints hash the
(path, rule, message) triple — deliberately not the line number, so
unrelated edits above a finding do not resurrect it — with a count per
fingerprint so duplicates of an accepted finding still fail the gate.
"""

from __future__ import annotations

import hashlib
import json
from collections import Counter
from pathlib import Path, PurePosixPath
from typing import Iterable, Sequence

from repro.lint.model import Finding

BASELINE_SCHEMA_VERSION = 1


def finding_fingerprint(finding: Finding) -> str:
    rel = PurePosixPath(*Path(finding.path).parts)
    basis = f"{rel}|{finding.rule}|{finding.message}"
    return hashlib.sha256(basis.encode("utf-8")).hexdigest()[:20]


def write_baseline(path: Path, findings: Sequence[Finding]) -> None:
    counts = Counter(finding_fingerprint(f) for f in findings)
    payload = {
        "version": BASELINE_SCHEMA_VERSION,
        "comment": (
            "pic-lint baseline: accepted pre-existing findings, keyed by "
            "sha256(path|rule|message). Regenerate with --write-baseline."
        ),
        "fingerprints": dict(sorted(counts.items())),
    }
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")


def load_baseline(path: Path) -> dict[str, int]:
    raw = json.loads(path.read_text(encoding="utf-8"))
    if not isinstance(raw, dict) or raw.get("version") != BASELINE_SCHEMA_VERSION:
        raise ValueError(f"{path}: unsupported baseline file")
    fingerprints = raw.get("fingerprints", {})
    return {str(k): int(v) for k, v in fingerprints.items()}


def split_by_baseline(
    findings: Iterable[Finding], baseline: dict[str, int]
) -> tuple[list[Finding], list[Finding]]:
    """Partition into (new, baselined), honouring per-fingerprint counts."""
    budget = dict(baseline)
    new: list[Finding] = []
    old: list[Finding] = []
    for finding in findings:
        fp = finding_fingerprint(finding)
        if budget.get(fp, 0) > 0:
            budget[fp] -= 1
            old.append(finding)
        else:
            new.append(finding)
    return new, old
