"""On-disk incremental cache for warm re-lints.

One JSON file maps each linted path to the sha256 of its byte content
plus everything the engine would otherwise recompute by parsing it:
the per-file findings (pre-noqa), the noqa suppression map, and the
module's dataflow IR (so whole-program analysis re-runs from IR alone).
A warm run over an unchanged tree therefore never calls ``ast.parse``.

Entries are salted with the active per-file rule IDs, the IR/JSON
schema versions and every whole-program pass version (typestate,
units, interference) — changing any of them invalidates the whole
cache rather than serving stale shapes.  Project findings are always
recomputed from the cached IR, so a warm run reproduces PIC4xx–7xx
findings with ``parsed=0``; the pass versions exist so that editing a
pass's *logic* cannot pair fresh code with a cache whose file-level
findings were filtered under the old logic.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Any, Sequence

from repro.lint.model import Finding
from repro.lint.project.interference import INTERFERENCE_PASS_VERSION
from repro.lint.project.ir import IR_SCHEMA_VERSION
from repro.lint.project.typestate import TYPESTATE_PASS_VERSION
from repro.lint.project.units import UNITS_PASS_VERSION

CACHE_SCHEMA_VERSION = 1
DEFAULT_CACHE_NAME = ".piclint-cache.json"


def content_hash(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def cache_salt(rule_ids: Sequence[str]) -> str:
    basis = json.dumps(
        {
            "cache": CACHE_SCHEMA_VERSION,
            "ir": IR_SCHEMA_VERSION,
            "passes": {
                "interference": INTERFERENCE_PASS_VERSION,
                "typestate": TYPESTATE_PASS_VERSION,
                "units": UNITS_PASS_VERSION,
            },
            "rules": sorted(rule_ids),
        },
        sort_keys=True,
    )
    return hashlib.sha256(basis.encode("utf-8")).hexdigest()[:16]


class LintCache:
    """Content-hash keyed store of per-file lint results."""

    def __init__(self, path: Path, salt: str) -> None:
        self.path = path
        self.salt = salt
        self.entries: dict[str, dict[str, Any]] = {}
        self.dirty = False
        self._load()

    def _load(self) -> None:
        try:
            raw = json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return
        if not isinstance(raw, dict) or raw.get("salt") != self.salt:
            return
        entries = raw.get("entries")
        if isinstance(entries, dict):
            self.entries = entries

    def lookup(self, path: str, digest: str) -> dict[str, Any] | None:
        entry = self.entries.get(path)
        if entry is not None and entry.get("sha256") == digest:
            return entry
        return None

    def store_ok(
        self,
        path: str,
        digest: str,
        findings: Sequence[Finding],
        suppressions: dict[int, frozenset[str] | None],
        ir: dict[str, Any],
    ) -> None:
        self.entries[path] = {
            "sha256": digest,
            "findings": [f.to_json() for f in findings],
            "suppressions": {
                str(line): (None if ids is None else sorted(ids))
                for line, ids in suppressions.items()
            },
            "ir": ir,
        }
        self.dirty = True

    def store_error(self, path: str, digest: str, error: str) -> None:
        self.entries[path] = {"sha256": digest, "error": error}
        self.dirty = True

    def prune(self, live_paths: set[str]) -> None:
        stale = [p for p in self.entries if p not in live_paths]
        for p in stale:
            del self.entries[p]
            self.dirty = True

    def save(self) -> None:
        if not self.dirty:
            return
        payload = {
            "version": CACHE_SCHEMA_VERSION,
            "salt": self.salt,
            "entries": self.entries,
        }
        try:
            self.path.write_text(
                json.dumps(payload, sort_keys=True), encoding="utf-8"
            )
        except OSError:
            return
        self.dirty = False


def findings_from_entry(entry: dict[str, Any]) -> list[Finding]:
    return [
        Finding(
            path=f["path"],
            line=f["line"],
            col=f["col"],
            rule=f["rule"],
            message=f["message"],
        )
        for f in entry.get("findings", [])
    ]


def suppressions_from_entry(entry: dict[str, Any]) -> dict[int, frozenset[str] | None]:
    return {
        int(line): (None if ids is None else frozenset(ids))
        for line, ids in entry.get("suppressions", {}).items()
    }
