"""Minimal bad/good example pairs for every shipped rule.

This is the fixture corpus behind ``pic-lint --explain RULE``: each
entry pairs the smallest program that *fires* the rule with the
smallest repair that stays *silent*.  The examples are real inputs,
not documentation strings — ``tests/lint/test_examples.py`` lints
every pair and fails if a bad example stops firing or a good example
starts to.
"""

from __future__ import annotations

import textwrap


class Example:
    """One rule's minimal bad/good pair."""

    __slots__ = ("rule_id", "bad", "good")

    def __init__(self, rule_id: str, bad: str, good: str) -> None:
        self.rule_id = rule_id
        self.bad = textwrap.dedent(bad).strip("\n") + "\n"
        self.good = textwrap.dedent(good).strip("\n") + "\n"


_EXAMPLES = [
    Example(
        "PIC001",
        """
        def stamp(record):
            import time
            record["at"] = time.time()
            return record
        """,
        """
        def stamp(record, sim):
            record["at"] = sim.now
            return record
        """,
    ),
    Example(
        "PIC002",
        """
        import random

        def sample(records):
            return random.choice(records)
        """,
        """
        import random

        def sample(records, seed):
            rng = random.Random(seed)
            return rng.choice(records)
        """,
    ),
    Example(
        "PIC003",
        """
        def keys_of(records):
            seen = set(r["key"] for r in records)
            return [k for k in seen]
        """,
        """
        def keys_of(records):
            seen = set(r["key"] for r in records)
            return sorted(seen)
        """,
    ),
    Example(
        "PIC101",
        """
        def run(pool, payloads):
            return pool.map(lambda p: p + 1, payloads)
        """,
        """
        def bump(p):
            return p + 1

        def run(pool, payloads):
            return pool.map(bump, payloads)
        """,
    ),
    Example(
        "PIC102",
        """
        class P(PICProgram):
            def map(self, ctx, key, value):
                print(key)
                ctx.emit(key, value)
        """,
        """
        class P(PICProgram):
            def map(self, ctx, key, value):
                ctx.emit(key, value)
        """,
    ),
    Example(
        "PIC201",
        """
        import sys

        def wire_size(record):
            return sys.getsizeof(record)
        """,
        """
        from repro.util.sizing import sizeof_record

        def wire_size(record):
            return sizeof_record(record)
        """,
    ),
    Example(
        "PIC202",
        """
        def ship(cluster, records):
            cluster.transfer("a", "b", len(records), "shuffle")
        """,
        """
        from repro.util.sizing import sizeof_records

        def ship(cluster, records):
            cluster.transfer("a", "b", sizeof_records(records), "shuffle")
        """,
    ),
    Example(
        "PIC301",
        """
        class P(PICProgram):
            def partition(self, records, model, k):
                return [(records, dict(model)) for _ in range(k)]
        """,
        """
        class P(PICProgram):
            def partition(self, records, model, k):
                return [(list(records), dict(model)) for _ in range(k)]
        """,
    ),
    Example(
        "PIC302",
        """
        class P(PICProgram):
            def merge(self, models):
                base = models[0]
                for other in models[1:]:
                    base.update(other)
                return base
        """,
        """
        class P(PICProgram):
            def merge(self, models):
                base = dict(models[0])
                for other in models[1:]:
                    base.update(other)
                return base
        """,
    ),
    Example(
        "PIC303",
        """
        class P(PICProgram):
            def map(self, ctx, key, value):
                value["seen"] = True
                ctx.emit(key, value)
        """,
        """
        class P(PICProgram):
            def map(self, ctx, key, value):
                marked = dict(value)
                marked["seen"] = True
                ctx.emit(key, marked)
        """,
    ),
    Example(
        "PIC304",
        """
        class P(PICProgram):
            def batch_map(self, ctx, records):
                records.values.fill(0)
                ctx.emit_batch(records)
        """,
        """
        class P(PICProgram):
            def batch_map(self, ctx, records):
                scaled = records.values.copy()
                scaled.fill(0)
                ctx.emit_batch(scaled)
        """,
    ),
    Example(
        "PIC401",
        """
        class Runner:
            def start(self, cluster):
                cluster.transfer("a", "b", 4096, "pull", self.done)
                self.done()

            def done(self):
                pass
        """,
        """
        class Runner:
            def start(self, cluster):
                cluster.transfer("a", "b", 4096, "pull", self.done)

            def done(self):
                pass
        """,
    ),
    Example(
        "PIC402",
        """
        class Runner:
            def start(self, sim):
                sim.schedule(1.0, self.on_tick)

            def on_tick(self, sim):
                sim._pending = []
        """,
        """
        class Runner:
            def start(self, sim):
                sim.schedule(1.0, self.on_tick)

            def on_tick(self, sim):
                sim.schedule(1.0, self.on_tick)
        """,
    ),
    Example(
        "PIC501",
        """
        from multiprocessing.shared_memory import SharedMemory

        def export(payload):
            shm = SharedMemory(create=True, size=len(payload))
            shm.buf[: len(payload)] = payload
            return shm.name
        """,
        """
        from multiprocessing.shared_memory import SharedMemory

        def export(payload):
            shm = SharedMemory(create=True, size=len(payload))
            try:
                shm.buf[: len(payload)] = payload
                return bytes(shm.buf[: len(payload)])
            finally:
                shm.close()
                shm.unlink()
        """,
    ),
    Example(
        "PIC502",
        """
        def read_all(path):
            fh = open(path)
            try:
                data = fh.read()
                fh.close()
            finally:
                fh.close()
            return data
        """,
        """
        def read_all(path):
            fh = open(path)
            try:
                data = fh.read()
            finally:
                fh.close()
            return data
        """,
    ),
    Example(
        "PIC503",
        """
        def read_all(path):
            fh = open(path)
            fh.close()
            return fh.read()
        """,
        """
        def read_all(path):
            with open(path) as fh:
                return fh.read()
        """,
    ),
    Example(
        "PIC601",
        """
        import time

        def lag(sim):
            started = time.perf_counter()  # noqa: PIC001
            return sim.now - started
        """,
        """
        import time

        def lag(sim, started_sim_time):
            return sim.now - started_sim_time
        """,
    ),
    Example(
        "PIC602",
        """
        import time

        def reschedule(sim, cb):
            t0 = time.perf_counter()  # noqa: PIC001
            t1 = time.perf_counter()  # noqa: PIC001
            sim.schedule(t1 - t0, cb)
        """,
        """
        def reschedule(sim, cluster, cb):
            eta = cluster.transfer_time("a", "b", 4096)
            sim.schedule(eta, cb)
        """,
    ),
    Example(
        "PIC701",
        """
        class _JobState:
            def __init__(self, app_id: int) -> None:
                self.app_id = app_id
                self.bucket_arrivals = 0

        class Runner:
            def submit(self, sim, sibling: _JobState) -> None:
                sim.schedule(1.0, lambda: self._on_map_done(sibling))

            def _on_map_done(self, sibling: _JobState) -> None:
                sibling.bucket_arrivals = sibling.bucket_arrivals + 1
        """,
        """
        class _JobState:
            def __init__(self, sim, app_id: int) -> None:
                self.app_id = app_id
                self.bucket_arrivals = 0
                sim.schedule(1.0, self._on_map_done)

            def _on_map_done(self) -> None:
                self.bucket_arrivals = self.bucket_arrivals + 1
        """,
    ),
    Example(
        "PIC702",
        """
        from repro.metrics import ShuffleStats

        class Tracker:
            def __init__(self, stats: ShuffleStats) -> None:
                self.stats = stats
                self.ticks = 0.0

            def start(self, sim) -> None:
                sim.schedule(1.0, lambda: self.on_map_done())
                sim.schedule(1.0, lambda: self.on_reduce_done())

            def on_map_done(self) -> None:
                self.stats.last_finished = self.ticks

            def on_reduce_done(self) -> None:
                self.stats.last_finished = self.ticks
        """,
        """
        from repro.metrics import ShuffleStats

        class Tracker:
            def __init__(self, stats: ShuffleStats) -> None:
                self.stats = stats
                self.ticks = 0.0

            def start(self, sim) -> None:
                sim.schedule(1.0, lambda: self.on_map_done())
                sim.schedule(1.0, lambda: self.on_reduce_done())

            def on_map_done(self) -> None:
                self.stats.by_phase["map"] = self.ticks

            def on_reduce_done(self) -> None:
                self.stats.by_phase["reduce"] = self.ticks
        """,
    ),
    Example(
        "PIC703",
        """
        from repro.mapreduce.scheduler import SlotScheduler

        class App:
            def __init__(self, sched: SlotScheduler) -> None:
                self.sched = sched

            def start(self, sim) -> None:
                sim.schedule(1.0, lambda: self.on_done(3))

            def on_done(self, node: int) -> None:
                self.sched._free[node] = 1
        """,
        """
        from repro.mapreduce.scheduler import SlotScheduler

        class App:
            def __init__(self, sched: SlotScheduler) -> None:
                self.sched = sched

            def start(self, sim) -> None:
                sim.schedule(1.0, lambda: self.on_done(3))

            def on_done(self, node: int) -> None:
                self.sched.release(node)
        """,
    ),
    Example(
        "PIC704",
        """
        class Driver:
            def kick(self, sim, handlers) -> None:
                pending = set(handlers)
                sim.schedule_batch(1.0, list(pending))
        """,
        """
        class Driver:
            def kick(self, sim, handlers) -> None:
                pending = set(handlers)
                sim.schedule_batch(1.0, sorted(pending))
        """,
    ),
]

EXAMPLES: dict[str, Example] = {ex.rule_id: ex for ex in _EXAMPLES}


def explain(rule_id: str) -> str | None:
    """Render the ``--explain`` text for ``rule_id`` (None if unknown)."""
    from repro.lint.rules import family_of, rules_by_id

    rule = rules_by_id().get(rule_id)
    if rule is None:
        return None
    doc = (rule.__doc__ or rule.summary).strip().splitlines()[0]
    lines = [
        f"{rule.rule_id}: {rule.summary}",
        f"family: {family_of(rule.rule_id)}",
        "",
        doc,
    ]
    example = EXAMPLES.get(rule_id)
    if example is not None:
        lines += [
            "",
            "bad (fires):",
            textwrap.indent(example.bad.rstrip("\n"), "    "),
            "",
            "good (silent):",
            textwrap.indent(example.good.rstrip("\n"), "    "),
        ]
    return "\n".join(lines)
