"""Parsed-module wrapper shared by every rule.

A :class:`LintModule` owns the AST plus the derived maps rules need:
parent links (``ast`` has none), an import-alias table for resolving
dotted call names back to canonical module paths, and scope-restricted
walking (so per-function name analysis does not leak across nested
functions).

The file's bytes are loaded exactly once: :meth:`LintModule.from_bytes`
decodes them (tolerating a UTF-8 BOM, which ``ast.parse`` would reject
as a stray ``U+FEFF``) and the decoded string is shared between the
parser and the tokenizer — the lazy :attr:`suppressions` property runs
the ``# pic: noqa`` scan over the same string instead of re-reading
the file.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.model import Finding, LintParseError

#: Scope-introducing statement nodes (lambdas carry no statements and
#: class bodies are their own namespace).
_SCOPE_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)


def decode_source(path: str, data: bytes) -> str:
    """Decode source bytes once, stripping a UTF-8 BOM if present."""
    try:
        return data.decode("utf-8-sig")
    except UnicodeDecodeError as exc:
        raise LintParseError(path, f"cannot decode: {exc}")


class LintModule:
    """One source file, parsed and indexed for rule checks."""

    def __init__(self, path: str, source: str) -> None:
        self.path = path
        if source.startswith("\ufeff"):
            source = source[1:]
        self.source = source
        try:
            self.tree = ast.parse(source)
        except SyntaxError as exc:
            raise LintParseError(path, f"syntax error: {exc.msg} (line {exc.lineno})")
        self.aliases = _import_aliases(self.tree)
        self.parents: dict[ast.AST, ast.AST] = {}
        for parent in ast.walk(self.tree):
            for child in ast.iter_child_nodes(parent):
                self.parents[child] = parent
        self._suppressions: dict[int, frozenset[str] | None] | None = None

    @classmethod
    def from_bytes(cls, path: str, data: bytes) -> "LintModule":
        """Parse from raw bytes — the single read the engine performs."""
        return cls(path, decode_source(path, data))

    @property
    def suppressions(self) -> dict[int, frozenset[str] | None]:
        """``# pic: noqa`` map, tokenized lazily from the shared source."""
        if self._suppressions is None:
            from repro.lint.noqa import suppressions

            self._suppressions = suppressions(self.path, self.source)
        return self._suppressions

    def parent(self, node: ast.AST) -> ast.AST | None:
        """The syntactic parent of ``node`` (None for the module)."""
        return self.parents.get(node)

    def resolve(self, node: ast.expr) -> str | None:
        """Canonical dotted name of an attribute chain rooted at an import.

        ``np.random.rand`` resolves to ``numpy.random.rand`` when the
        module did ``import numpy as np``; names that are not rooted at
        an imported binding resolve to ``None`` (so local variables that
        shadow module names cannot false-positive).
        """
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        base = self.aliases.get(node.id)
        if base is None:
            return None
        parts.append(base)
        return ".".join(reversed(parts))

    def finding(self, rule_id: str, node: ast.AST, message: str) -> Finding:
        """Build a :class:`Finding` anchored at ``node``."""
        return Finding(
            path=self.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule=rule_id,
            message=message,
        )


def _import_aliases(tree: ast.Module) -> dict[str, str]:
    """Map local names to the canonical dotted names they import."""
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for a in node.names:
                if a.asname is not None:
                    aliases[a.asname] = a.name
                else:
                    aliases[a.name.split(".")[0]] = a.name.split(".")[0]
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for a in node.names:
                if a.name == "*":
                    continue
                aliases[a.asname or a.name] = f"{node.module}.{a.name}"
    return aliases


def bare_name(node: ast.expr) -> str | None:
    """The identifier of a plain ``Name`` expression, else ``None``."""
    return node.id if isinstance(node, ast.Name) else None


def tail_name(node: ast.expr) -> str | None:
    """The final identifier of a name or attribute chain (``a.b.C`` → ``C``)."""
    if isinstance(node, ast.Attribute):
        return node.attr
    return bare_name(node)


def walk_scope(scope: ast.AST) -> Iterator[ast.AST]:
    """Walk ``scope`` without descending into nested scope bodies.

    Comprehensions are *not* treated as separate scopes: their iterable
    expressions belong, for our ordering analysis, to the enclosing
    function.
    """
    if isinstance(scope, _SCOPE_NODES):
        roots: list[ast.AST] = list(scope.body)
    else:
        roots = list(ast.iter_child_nodes(scope))
    stack = list(roots)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, _SCOPE_NODES):
            # Yield the nested scope node itself (above) but not its body.
            continue
        stack.extend(ast.iter_child_nodes(node))


def iter_scopes(tree: ast.Module) -> Iterator[ast.AST]:
    """Yield the module and every (possibly nested) function scope."""
    yield tree
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node
