"""Concurrency-interference analysis (PIC701–PIC704).

PR 8 made the simulator genuinely concurrent: many jobs interleave
through one event queue and share the runner's waiter queues, the slot
schedulers, the flow network and the node-memory cache.  Correctness
now rests on *schedule-order independence* — no observable result may
depend on which of two same-timestamp events happens to run first.
The ``PIC_SANITIZE`` schedule sanitizer checks that dynamically; this
pass checks the same invariant statically, over the converged
call-graph facts of :class:`~repro.lint.project.analysis.ProjectAnalysis`:

* **PIC701 — cross-job state write**: event-handler-reachable code
  mutates job-scoped state (a ``_JobState``/``JobHandle``-shaped class,
  or any class carrying an ``app_id``/``job_index``) through a receiver
  that is not its own instance.  A handler scheduled by job A writing
  job B's buckets is the archetypal interference bug.
* **PIC702 — order-dependent shared write**: two distinct handler
  seeds reach overlapping write/read effect sets on one shared
  abstract location ``(class, attr)`` with no canonical tiebreak — an
  unkeyed whole-attribute store (or an order-sensitive mutator call
  like ``append``) outside the owning class.  Keyed element writes are
  partitioned, augmented numeric updates commute, and constant stores
  are idempotent, so those stay silent; so do writes inside the owning
  class, whose serialization is that class's own contract (PIC703's
  business).  Co-schedulability is approximated as "any two handler
  seeds": the event queue gives no static phase separation.
* **PIC703 — aggregate mutated outside its serialization point**:
  runner/scheduler shared aggregates (per-node waiter queues, slot and
  capacity maps, the ``NodeMemoryCache`` tables, the flow network's
  dirty set) mutated from handler-reachable code outside the owning
  class/module.  The sanctioned path is the owner's request/release/
  acquire API, whose matching runs at a
  :meth:`~repro.cluster.events.Simulation.schedule_serialized` point.
* **PIC704 — unordered source reaches an order-sensitive sink**:
  ``set``/``frozenset`` construction or an ``id()``-keyed container
  flowing — interprocedurally, through returns and parameters — into
  ``schedule_batch`` callbacks, flow/submission batches, or a waiter
  queue.  Extends the per-file PIC003 to whole-program; ``sorted()``
  sanitizes.

Set *literals* are lowered to plain ``make`` descriptors by the IR, so
PIC704's sources are constructor calls and comprehensions over them —
the per-file PIC003 still owns the literal-iteration case.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterable

from repro.lint.project.analysis import MUTATOR_METHODS

if TYPE_CHECKING:
    from repro.lint.project.analysis import ProjectAnalysis

#: Bump when this pass's logic changes what it reports from unchanged
#: IR (see the cache-salt note in repro.lint.cache).
INTERFERENCE_PASS_VERSION = 1

#: Class-name shapes that denote per-job state even without an
#: ``app_id`` attribute (fixtures and ports included).
JOB_STATE_TAILS = frozenset({"_JobState", "JobState", "JobHandle"})
#: Attribute/parameter names that mark a class as job-scoped.
JOB_KEY_NAMES = frozenset({"app_id", "job_index"})

#: Shared-aggregate attribute leaves arbitrated at serialization
#: points: waiter queues, slot/capacity maps, cache tables, the flow
#: dirty set.  Mutating one from outside the owning class bypasses the
#: canonical matching pass (PIC703).
AGGREGATE_LEAVES = frozenset(
    {
        "_reduce_waiters",
        "_reduce_capacity",
        "_outstanding",
        "_free",
        "_capacity",
        "_queue",
        "_available",
        "_entries",
        "_used",
        "_dirty_links",
    }
)
#: Receiver-name fallback when no type is known: ``runner._queue``
#: reads as an aggregate owner even untyped.
AGGREGATE_OWNER_NAMES = frozenset(
    {"runner", "scheduler", "map_scheduler", "sched", "rm", "cache"}
)

#: Order-sensitive sinks: method tail -> positional index of the
#: iterable whose order is executed/submitted.
ORDER_SINKS: dict[str, int] = {
    "schedule_batch": 1,
    "transfer_batch": 0,
    "start_flows": 0,
    "submit_many": 0,
    "run_many": 0,
}
#: Waiter-queue leaves whose *insertion order* is a scheduling order.
WAITER_LEAVES = frozenset({"_reduce_waiters", "_waiters", "_queue"})

#: Calls whose result forgets iteration order (PIC704 sanitizers).
_SANITIZERS = frozenset({"sorted", "min", "max", "sum", "len", "any", "all"})
#: Calls preserving their argument's (non)order.
_ORDER_PROPAGATORS = frozenset(
    {"list", "tuple", "iter", "reversed", "enumerate", "filter", "map"}
)
_UNORDERED_CTORS = frozenset({"set", "frozenset"})

_U = "U"
Taint = frozenset  # of _U and ("param", name) markers
_EMPTY: Taint = frozenset()

#: PIC702 write kinds that have no canonical tiebreak.
_RACY_KINDS = frozenset({"store", "mutcall"})


class FnEffects:
    """One function's interference-relevant facts."""

    def __init__(self) -> None:
        #: [(loc, kind, line, col)] — loc is (owner_class_fq, leaf);
        #: kind in {"store", "keyed", "const", "aug", "mutcall"}.
        self.writes: list[tuple[tuple[str, str], str, int, int]] = []
        #: private attribute loads by location.
        self.reads: set[tuple[str, str]] = set()
        #: cross-job write candidates: (line, col, receiver class).
        self.cross_job: list[tuple[int, int, str]] = []
        #: aggregate-leaf write candidates: (line, col, owner, leaf).
        self.aggregate: list[tuple[int, int, str | None, str]] = []
        #: PIC704 return/parameter order-taint summary.
        self.ret_taint: Taint = _EMPTY
        self.param_sinks: dict[str, frozenset[str]] = {}

    def key(self) -> tuple:
        return (
            tuple(sorted(map(str, self.ret_taint))),
            tuple(
                sorted(
                    (p, tuple(sorted(s))) for p, s in self.param_sinks.items()
                )
            ),
        )


class InterferenceAnalysis:
    """Converged interference facts plus the findings they imply."""

    MAX_ROUNDS = 6

    def __init__(self, project: "ProjectAnalysis") -> None:
        self.project = project
        self.graph = project.graph
        self.callsites: dict[tuple[str, int, int], list[str]] = {}
        for fid in sorted(project.summaries):
            for callee, line, col in project.summaries[fid].direct_calls:
                self.callsites.setdefault((fid, line, col), []).append(callee)
        self.job_classes = self._find_job_classes()
        self.effects: dict[str, FnEffects] = {}
        self.findings: list[tuple[str, str, int, int, str]] = []
        self._converge()
        self._collect()

    # -- job-scope detection -------------------------------------------

    def _find_job_classes(self) -> frozenset:
        """Classes holding per-job state: name shape, job-key attr or
        ``__init__`` parameter, plus every subclass of one."""
        out: set[str] = set()
        for cfq in sorted(self.graph.classes):
            _modkey, cname, info = self.graph.classes[cfq]
            tail = cname.rpartition(".")[2]
            if tail in JOB_STATE_TAILS:
                out.add(cfq)
                continue
            if JOB_KEY_NAMES & set(info["attr_types"]):
                out.add(cfq)
                continue
            init_fid = info["methods"].get("__init__")
            init_fn = (
                self.graph.function_ir.get(init_fid) if init_fid else None
            )
            if init_fn is not None:
                if JOB_KEY_NAMES & set(init_fn["params"]):
                    out.add(cfq)
                    continue
                if self._init_stores_job_key(init_fn["ops"]):
                    out.add(cfq)
        for cfq in sorted(out):
            out |= self.graph.descendants(cfq)
        return frozenset(out)

    def _init_stores_job_key(self, ops: Iterable[list]) -> bool:
        for op in ops:
            if op[0] == "mutate" and op[3] == "store":
                target = op[1]
                if (
                    target[0] == "attr"
                    and target[1] == ["name", "self"]
                    and target[2] in JOB_KEY_NAMES
                ):
                    return True
            elif op[0] == "if":
                if self._init_stores_job_key(op[2]) or self._init_stores_job_key(
                    op[3]
                ):
                    return True
        return False

    def resolve_type(self, raw: str | None, modkey: str | None) -> str | None:
        """Resolve an annotation string seen in ``modkey`` to a class
        fq-name.  Unresolvable class-looking names (imports outside the
        linted set) are kept raw: they still make stable location keys.
        """
        if not raw:
            return None
        resolved = self.graph.resolve_class(raw)
        if resolved is None and modkey:
            resolved = self.graph.resolve_class(f"{modkey}.{raw}")
        if resolved is not None:
            return resolved
        tail = raw.rpartition(".")[2]
        return raw if tail[:1].isupper() else None

    def attr_type(self, cfq: str, attr: str) -> str | None:
        """Like ``graph.attr_type`` but resolving through the declaring
        class's own module aliases."""
        for cls in self.graph.ancestors(cfq):
            entry = self.graph.classes[cls]
            raw = entry[2]["attr_types"].get(attr)
            if raw is not None:
                return self.resolve_type(raw, entry[0])
        return None

    def _same_family(self, a: str | None, b: str | None) -> bool:
        """Do classes ``a`` and ``b`` share an inheritance chain?"""
        if a is None or b is None:
            return False
        return b in self.graph.ancestors(a) or a in self.graph.ancestors(b)

    def _attr_owner(self, cfq: str, leaf: str) -> str:
        """Nearest ancestor declaring ``leaf``, for location keys."""
        return self._declared_by(cfq, leaf) or cfq

    def _declared_by(self, cfq: str, leaf: str) -> str | None:
        """The class in ``cfq``'s MRO that declares ``leaf`` (annotation
        or ``__init__`` store), or None when nothing does."""
        for cls in self.graph.ancestors(cfq):
            if leaf in self.graph.classes[cls][2]["attr_types"]:
                return cls
            init_fid = self.graph.classes[cls][2]["methods"].get("__init__")
            init_fn = (
                self.graph.function_ir.get(init_fid) if init_fid else None
            )
            if init_fn is not None and self._init_stores_leaf(
                init_fn["ops"], leaf
            ):
                return cls
        return None

    def _init_stores_leaf(self, ops: Iterable[list], leaf: str) -> bool:
        for op in ops:
            if op[0] == "mutate":
                target = op[1]
                while target[0] in ("elem", "slice"):
                    target = target[1]
                if (
                    target[0] == "attr"
                    and target[1] == ["name", "self"]
                    and target[2] == leaf
                ):
                    return True
            elif op[0] == "if":
                if self._init_stores_leaf(op[2], leaf) or self._init_stores_leaf(
                    op[3], leaf
                ):
                    return True
        return False

    # -- fixpoint -------------------------------------------------------

    def _converge(self) -> None:
        fids = sorted(self.graph.function_ir)
        keys: dict[str, tuple] = {fid: () for fid in fids}
        for _round in range(self.MAX_ROUNDS):
            changed = False
            for fid in fids:
                effects = _InterferenceWalker(self, fid, report=False).run()
                self.effects[fid] = effects
                key = effects.key()
                if key != keys[fid]:
                    keys[fid] = key
                    changed = True
            if not changed:
                break

    def _collect(self) -> None:
        reachable = self.project.handler_reachable()
        self._collect_local(reachable)
        self._collect_shared_conflicts()

    def _collect_local(self, reachable: set) -> None:
        """PIC701/PIC703/PIC704: per-function candidates, gated on
        handler reachability where the rule demands it."""
        for fid in sorted(self.graph.function_ir):
            walker = _InterferenceWalker(self, fid, report=True)
            effects = walker.run()
            self.findings.extend(walker.findings)  # PIC704 sink hits
            if fid not in reachable:
                continue
            fn = self.graph.function_ir[fid]
            for line, col, recv in effects.cross_job:
                self.findings.append(
                    (
                        "PIC701",
                        fid,
                        line,
                        col,
                        f"event-handler-reachable code ({fn['qual']}) writes "
                        f"job-scoped state of another job's "
                        f"{recv.rpartition('.')[2]} instance; a handler may "
                        "only mutate the job that scheduled it — route "
                        "cross-job effects through the runner.",
                    )
                )
            for line, col, owner, leaf in effects.aggregate:
                noun = (
                    f"{owner.rpartition('.')[2]}.{leaf}"
                    if owner is not None
                    else leaf
                )
                self.findings.append(
                    (
                        "PIC703",
                        fid,
                        line,
                        col,
                        f"shared scheduling aggregate {noun} mutated from an "
                        "app callback; grants and releases must go through "
                        "the owner's serialization-point API "
                        "(request/release/acquire_reduce), which matches "
                        "canonically once per timestamp.",
                    )
                )

    def _collect_shared_conflicts(self) -> None:
        """PIC702: overlapping effect sets across handler seeds."""
        seeds = sorted(self.project.handler_seeds())
        closures: dict[str, frozenset] = {
            seed: self._closure(seed) for seed in seeds
        }
        writers: dict[tuple[str, str], dict[tuple, set]] = {}
        readers: dict[tuple[str, str], set] = {}
        for seed in seeds:
            for fid in sorted(closures[seed]):
                effects = self.effects.get(fid)
                if effects is None:
                    continue
                for loc, kind, line, col in effects.writes:
                    if kind not in _RACY_KINDS:
                        continue
                    site = (fid, line, col, loc)
                    writers.setdefault(loc, {}).setdefault(site, set()).add(
                        seed
                    )
                for loc in effects.reads:
                    readers.setdefault(loc, set()).add(seed)
        for loc in sorted(writers):
            sites = writers[loc]
            write_seeds: set = set()
            for seeds_at in sites.values():
                write_seeds |= seeds_at
            read_seeds = readers.get(loc, set()) - write_seeds
            if len(write_seeds) < 2 and not (write_seeds and read_seeds):
                continue
            owner, leaf = loc
            all_seeds = sorted(write_seeds | read_seeds)
            names = sorted({self._fn_name(s) for s in all_seeds})
            sample = " and ".join(names[:2])
            verb = "written" if len(write_seeds) >= 2 else "written and read"
            for fid, line, col, _loc in sorted(sites):
                self.findings.append(
                    (
                        "PIC702",
                        fid,
                        line,
                        col,
                        f"{owner.rpartition('.')[2]}.{leaf} is mutated here "
                        f"without a canonical tiebreak and is {verb} by "
                        f"{len(all_seeds)} co-schedulable handler paths "
                        f"(e.g. {sample}); same-timestamp handlers may "
                        "interleave either way, so the result is "
                        "schedule-dependent — key the write, make it "
                        "commutative, or arbitrate at a serialization "
                        "point.",
                    )
                )

    def _closure(self, seed: str) -> frozenset:
        reached = {seed}
        frontier = [seed]
        while frontier:
            fid = frontier.pop()
            summary = self.project.summaries.get(fid)
            if summary is None:
                continue
            for callee, _line, _col in summary.direct_calls:
                if callee not in reached:
                    reached.add(callee)
                    frontier.append(callee)
        return frozenset(reached)

    def _fn_name(self, fid: str) -> str:
        fn = self.graph.function_ir.get(fid)
        return fn["qual"] if fn is not None else fid


class _InterferenceWalker:
    """One pass over a function's ops (cf. units._UnitWalker)."""

    def __init__(
        self, an: InterferenceAnalysis, fid: str, report: bool
    ) -> None:
        self.an = an
        self.graph = an.graph
        self.fid = fid
        self.fn = self.graph.function_ir[fid]
        self.modkey = fid.split("::", 1)[0]
        self.report = report
        self.effects = FnEffects()
        self.findings: list[tuple[str, str, int, int, str]] = []
        self._seen: set[tuple] = set()
        #: order-taint environment (PIC704).
        self.env: dict[str, Taint] = {}
        #: name -> resolved class (params, self, tracked ctor binds).
        self.tenv: dict[str, str] = {}
        #: locals freshly constructed here — their writes are private.
        self.fresh: set[str] = set()
        self.cls = (
            f"{self.modkey}.{self.fn['class']}"
            if self.fn["class"] is not None
            else None
        )
        #: modules that define a class own its aggregates (helper
        #: functions are the implementation, not intruders).
        ir = self.graph.modules.get(self.modkey) or {"classes": {}}
        self._module_classes = {
            f"{self.modkey}.{c}" for c in ir.get("classes", {})
        }

    def run(self) -> FnEffects:
        for p in self.fn["params"]:
            self.env[p] = frozenset({("param", p)})
            cfq = self.an.resolve_type(
                self.fn["param_types"].get(p), self.modkey
            )
            if cfq:
                self.tenv[p] = cfq
        if self.cls is not None:
            self.tenv.setdefault("self", self.cls)
        self.walk(self.fn["ops"])
        return self.effects

    # -- ops -----------------------------------------------------------

    def walk(self, ops: Iterable[list]) -> None:
        for op in ops:
            self.op(op)

    def op(self, op: list) -> None:
        kind = op[0]
        if kind == "bind":
            _, name, desc, line = op
            self.env[name] = self.eval(desc, line)
            cfq = self._ctor_class(desc)
            if cfq is not None:
                self.tenv[name] = cfq
                self.fresh.add(name)
            else:
                self.tenv.pop(name, None)
                self.fresh.discard(name)
        elif kind == "unpack":
            _, names, desc, line = op
            self.eval(desc, line)
            for name in names:
                self.env[name] = _EMPTY
                self.tenv.pop(name, None)
                self.fresh.discard(name)
        elif kind == "eval":
            self.eval(op[1], op[2])
        elif kind == "mutate":
            _, target, value, how, line, col = op
            taint = self.eval(value, line) if value is not None else _EMPTY
            self.mutate(target, value, how, taint, line, col)
        elif kind == "ret":
            _, desc, line, _col = op
            self.effects.ret_taint = self.effects.ret_taint | self.eval(
                desc, line
            )
        elif kind == "raise":
            if op[1] is not None:
                self.eval(op[1], op[2])
        elif kind == "defl":
            self.env[op[1]] = _EMPTY
        elif kind == "kill":
            self.env.pop(op[1], None)
            self.tenv.pop(op[1], None)
            self.fresh.discard(op[1])
        elif kind == "if":
            self.eval(op[1], op[4])
            self.walk(op[2])
            self.walk(op[3])
        elif kind == "with":
            for ctx, var in op[1]:
                taint = self.eval(ctx, op[3])
                if var is not None:
                    self.env[var] = taint
            self.walk(op[2])
        elif kind == "try":
            self.walk(op[1])
            for _name, handler_ops in op[2]:
                self.walk(handler_ops)
            self.walk(op[3])
            self.walk(op[4])

    # -- writes ---------------------------------------------------------

    def mutate(
        self,
        target: list,
        value: Any,
        how: str,
        taint: Taint,
        line: int,
        col: int,
    ) -> None:
        site = self._write_site(target)
        if site is None:
            if target[0] == "name":
                self.env[target[1]] = self.env.get(target[1], _EMPTY) | taint
            return
        keyed, leaf, base, recv_type, root = site
        if how.startswith("aug:"):
            kind = "aug"
        elif keyed:
            kind = "keyed"
        elif how == "store" and _is_const(value):
            kind = "const"
        else:
            kind = "store"
        self._record_write(
            leaf, base, recv_type, root, kind, taint, line, col
        )

    def _record_write(
        self,
        leaf: str,
        base: list,
        recv_type: str | None,
        root: str | None,
        kind: str,
        taint: Taint,
        line: int,
        col: int,
    ) -> None:
        own = self._is_own_write(recv_type, root)
        if recv_type is not None and not own:
            owner = self.an._attr_owner(recv_type, leaf)
            # The module defining a class owns its instances' state the
            # way it owns its aggregates: FlowNetwork advancing a Flow's
            # row is the flow engine's internal serialization, not
            # cross-handler interference — PIC702 tracks only locations
            # shared *across* module boundaries.
            if owner not in self._module_classes:
                self.effects.writes.append(((owner, leaf), kind, line, col))
            if recv_type in self.an.job_classes:
                self.effects.cross_job.append((line, col, recv_type))
        if leaf in AGGREGATE_LEAVES:
            self._record_aggregate(leaf, base, recv_type, own, line, col)
        if (
            leaf in WAITER_LEAVES or "waiters" in leaf
        ) and _U in taint:
            self._report(
                "PIC704",
                line,
                col,
                f"value with nondeterministic iteration order stored into "
                f"waiter queue {leaf}; waiter order is a scheduling order — "
                "sort the source or use an ordered container.",
            )

    def _is_own_write(self, recv_type: str | None, root: str | None) -> bool:
        """Writes to our own instance or a fresh local are private."""
        if root is not None and root in self.fresh:
            return True
        if root == "self" and self.an._same_family(recv_type, self.cls):
            return True
        return False

    def _record_aggregate(
        self,
        leaf: str,
        base: list,
        recv_type: str | None,
        own: bool,
        line: int,
        col: int,
    ) -> None:
        if own:
            return
        if recv_type is not None:
            owner = self.an._attr_owner(recv_type, leaf)
            if self._same_module_owner(owner):
                return
            if self.an._same_family(recv_type, self.cls):
                return
            self.effects.aggregate.append((line, col, owner, leaf))
            return
        # Untyped receiver: name-based fallback (``runner._queue``).
        name = _base_tail_name(base)
        if name in AGGREGATE_OWNER_NAMES and not self._defines_leaf(leaf):
            self.effects.aggregate.append((line, col, None, leaf))

    def _same_module_owner(self, owner: str) -> bool:
        return owner in self._module_classes

    def _defines_leaf(self, leaf: str) -> bool:
        if self.cls is None:
            return False
        return self.an._declared_by(self.cls, leaf) is not None

    def _write_site(
        self, target: list
    ) -> tuple[bool, str, list, str | None, str | None] | None:
        keyed = False
        node = target
        while node[0] in ("elem", "slice"):
            keyed = True
            node = node[1]
        if node[0] != "attr":
            return None
        leaf = node[2]
        base = node[1]
        recv_type = self.type_of(base)
        root = _root_of(target)
        return keyed, leaf, base, recv_type, root

    # -- static types ----------------------------------------------------

    def type_of(self, desc: Any) -> str | None:
        if not isinstance(desc, list) or not desc:
            return None
        kind = desc[0]
        if kind == "name":
            return self.tenv.get(desc[1])
        if kind == "attr":
            base_t = self.type_of(desc[1])
            if base_t is None:
                return None
            return self.an.attr_type(base_t, desc[2])
        if kind == "call":
            return self._ctor_class(desc)
        if kind == "walrus":
            return self.type_of(desc[2])
        return None

    def _ctor_class(self, desc: Any) -> str | None:
        if not isinstance(desc, list) or not desc or desc[0] != "call":
            return None
        func = desc[1]
        dotted: str | None = None
        if func[0] == "ref":
            dotted = func[1]
        elif func[0] == "meth":
            # Module-qualified constructor (pkg.mod.Class(...)).
            parts = [func[2]]
            node = func[1]
            while node[0] == "attr":
                parts.append(node[2])
                node = node[1]
            if node[0] == "name":
                parts.append(node[1])
                dotted = ".".join(reversed(parts))
        if dotted is None:
            return None
        return self.graph.resolve_class(
            dotted
        ) or self.graph.resolve_class(f"{self.modkey}.{dotted}")

    # -- expressions (order taint + reads) -------------------------------

    def eval(self, desc: Any, line: int) -> Taint:
        if not isinstance(desc, list) or not desc:
            return _EMPTY
        kind = desc[0]
        if kind == "const":
            return _EMPTY
        if kind == "name":
            return self.env.get(desc[1], _EMPTY)
        if kind == "attr":
            self.eval(desc[1], line)
            recv_type = self.type_of(desc[1])
            if recv_type is not None and not self._is_own_write(
                recv_type, _root_of(desc)
            ):
                owner = self.an._attr_owner(recv_type, desc[2])
                if owner not in self._module_classes:
                    self.effects.reads.add((owner, desc[2]))
            return _EMPTY
        if kind in ("elem", "slice", "spread"):
            self.eval(desc[1], line)
            return _EMPTY
        if kind == "make":
            taint = _EMPTY
            for item in desc[1]:
                taint = taint | self.eval(item, line)
                if _is_id_call(item):
                    taint = taint | frozenset({_U})
            return taint
        if kind == "comp":
            saved = dict(self.env)
            try:
                taint = _EMPTY
                for names, it in desc[1]:
                    it_taint = self.eval(it, line)
                    taint = taint | it_taint
                    for name in names:
                        self.env[name] = _EMPTY
                for elt in desc[2]:
                    taint = taint | self.eval(elt, line)
                    if _is_id_call(elt):
                        taint = taint | frozenset({_U})
            finally:
                self.env = saved
            return taint
        if kind == "union":
            taint = _EMPTY
            for item in desc[1]:
                taint = taint | self.eval(item, line)
            return taint
        if kind == "bin":
            return self.eval(desc[2], desc[4]) | self.eval(desc[3], desc[4])
        if kind == "cmp":
            for item in desc[2]:
                self.eval(item, desc[3])
            return _EMPTY
        if kind == "seq":
            for item in desc[1]:
                self.eval(item, line)
            return _EMPTY
        if kind == "walrus":
            taint = self.eval(desc[2], line)
            self.env[desc[1]] = taint
            return taint
        if kind == "fnref":
            return _EMPTY
        if kind == "call":
            return self.eval_call(desc)
        return _EMPTY

    def eval_call(self, desc: list) -> Taint:
        _, func, args, kwargs, line, col = desc
        arg_taints = [self.eval(a, line) for a in args]
        kw_taints = {kw: self.eval(d, line) for kw, d in kwargs}
        tail = (
            func[2]
            if func[0] == "meth"
            else (func[1] if func[0] == "ref" else None)
        )
        if func[0] == "meth":
            self.eval(func[1], line)
            arg_union: Taint = _EMPTY
            for t in arg_taints:
                arg_union = arg_union | t
            self._check_mutator_call(func, tail, arg_union, line, col)
        elif func[0] == "desc":
            self.eval(func[1], line)

        self._check_order_sinks(tail, args, arg_taints, kw_taints, line, col)

        if func[0] == "ref" and tail in _UNORDERED_CTORS:
            return frozenset({_U})
        if func[0] == "ref" and tail in _SANITIZERS:
            return _EMPTY

        callees = self.an.callsites.get((self.fid, line, col), [])
        if callees:
            out: set = set()
            for callee in callees:
                out |= self._apply_summary(
                    callee, func, arg_taints, kw_taints, line, col
                )
            return frozenset(out)

        if func[0] == "ref" and tail in _ORDER_PROPAGATORS and arg_taints:
            taint = _EMPTY
            for t in arg_taints:
                taint = taint | t
            return taint
        if func[0] == "meth" and tail in ("items", "keys", "values", "copy"):
            return self.eval(func[1], line)
        return _EMPTY

    def _check_mutator_call(
        self, func: list, tail: str | None, taint: Taint, line: int, col: int
    ) -> None:
        """``x.append(...)``-style mutation of an attribute chain."""
        if tail not in MUTATOR_METHODS:
            return
        recv = func[1]
        site = self._write_site(recv) if isinstance(recv, list) else None
        if site is None:
            return
        keyed, leaf, base, recv_type, root = site
        kind = "keyed" if keyed else "mutcall"
        self._record_write(leaf, base, recv_type, root, kind, taint, line, col)

    def _check_order_sinks(
        self,
        tail: str | None,
        args: list,
        arg_taints: list[Taint],
        kw_taints: dict[str, Taint],
        line: int,
        col: int,
    ) -> None:
        if tail not in ORDER_SINKS:
            return
        index = ORDER_SINKS[tail]
        taint: Taint = _EMPTY
        if len(arg_taints) > index:
            taint = arg_taints[index]
        elif tail == "schedule_batch" and "callbacks" in kw_taints:
            taint = kw_taints["callbacks"]
        if _U in taint:
            self._report(
                "PIC704",
                line,
                col,
                f"iterable with nondeterministic iteration order (built "
                f"from a set or id()-keyed container) passed to {tail}(); "
                "its order becomes the execution/submission order — "
                "sorted(...) it first.",
            )
        for marker in sorted(
            m[1] for m in taint if isinstance(m, tuple) and m[0] == "param"
        ):
            done = self.effects.param_sinks.get(marker, frozenset())
            self.effects.param_sinks[marker] = done | {tail}

    def _apply_summary(
        self,
        fid: str,
        func: list,
        arg_taints: list[Taint],
        kw_taints: dict[str, Taint],
        line: int,
        col: int,
    ) -> set:
        callee = self.graph.function_ir.get(fid)
        effects = self.an.effects.get(fid)
        if callee is None or effects is None:
            return set()
        params = callee["params"]
        rest = (
            params[1:]
            if (
                callee["class"] is not None
                and params[:1] == ["self"]
                and func[0] in ("meth", "desc", "ref")
            )
            else params
        )
        argmap: dict[str, Taint] = {}
        for pname, taint in zip(rest, arg_taints):
            argmap[pname] = taint
        for kw, taint in kw_taints.items():
            if kw in params:
                argmap[kw] = taint

        for pname, sinks in sorted(effects.param_sinks.items()):
            taint = argmap.get(pname, _EMPTY)
            if _U in taint:
                self._report(
                    "PIC704",
                    line,
                    col,
                    f"unordered iterable flows through {callee['qual']}() "
                    f"into an order-sensitive sink "
                    f"({', '.join(sorted(sinks))}); its iteration order "
                    "becomes a schedule — sorted(...) it first.",
                )
            for marker in sorted(
                m[1] for m in taint if isinstance(m, tuple) and m[0] == "param"
            ):
                done = self.effects.param_sinks.get(marker, frozenset())
                self.effects.param_sinks[marker] = done | set(sinks)

        out: set = set()
        for marker in effects.ret_taint:
            if marker == _U:
                out.add(_U)
            elif isinstance(marker, tuple) and marker[0] == "param":
                out |= argmap.get(marker[1], _EMPTY)
        return out

    def _report(self, rule: str, line: int, col: int, message: str) -> None:
        if not self.report:
            return
        key = (rule, line, col, message)
        if key in self._seen:
            return
        self._seen.add(key)
        self.findings.append((rule, self.fid, line, col, message))


def _root_of(desc: list) -> str | None:
    node = desc
    while isinstance(node, list) and node and node[0] in (
        "elem",
        "slice",
        "attr",
    ):
        node = node[1]
    if isinstance(node, list) and node and node[0] == "name":
        return node[1]
    return None


def _base_tail_name(base: list) -> str | None:
    """The nearest name in a receiver chain (``runner`` in
    ``self.runner._queue``)."""
    node = base
    while isinstance(node, list) and node and node[0] in ("elem", "slice"):
        node = node[1]
    if not isinstance(node, list) or not node:
        return None
    if node[0] == "attr":
        return node[2]
    if node[0] == "name":
        return node[1]
    return None


def _is_const(value: Any) -> bool:
    return isinstance(value, list) and bool(value) and value[0] == "const"


def _is_id_call(desc: Any) -> bool:
    return (
        isinstance(desc, list)
        and bool(desc)
        and desc[0] == "call"
        and desc[1][0] == "ref"
        and desc[1][1] == "id"
    )
