"""Whole-program analysis layer (DESIGN.md §9).

The per-file pass (:mod:`repro.lint.project.ir`) lowers every module to
a compact, JSON-serializable IR: one record per function with a linear
list of binding/mutation/call/return operations, plus the module's
class table and import aliases.  The IR — not the AST — is what the
incremental cache stores, so warm re-lints never re-parse unchanged
files.

:mod:`repro.lint.project.graph` indexes the IRs into a project: module
names, fully-qualified class/function tables, base-class resolution
(including one-hop re-export chasing through package ``__init__``
files) and subclass closures.

:mod:`repro.lint.project.analysis` runs an intraprocedural alias /
escape / mutation abstract interpretation per function and propagates
the resulting summaries over the call graph to a fixpoint.  Project
rules (PIC3xx/PIC4xx) read only the converged summaries.
"""

from repro.lint.project.analysis import ProjectAnalysis, analyze_project
from repro.lint.project.graph import ProjectGraph
from repro.lint.project.ir import IR_SCHEMA_VERSION, build_module_ir

__all__ = [
    "IR_SCHEMA_VERSION",
    "ProjectAnalysis",
    "ProjectGraph",
    "analyze_project",
    "build_module_ir",
]
