"""Typestate / resource-lifecycle analysis (PIC501–PIC503).

Tracks acquire/release protocols over the block-structured IR
(schema v2) and the resolved call graph.  A *resource* is a local
binding produced by a known acquiring constructor:

=====================  =========================  ====================
kind                   acquired by                must release
=====================  =========================  ====================
``shm``                ``SharedMemory(...)``      ``close`` — plus
                                                  ``unlink`` when
                                                  ``create=`` was
                                                  passed (the block
                                                  outlives the process
                                                  otherwise)
``file``               ``open`` / ``io.open``     ``close``
``mmap``               ``mmap.mmap(...)``         ``close``
``pool``               ``ProcessPoolExecutor`` /  ``shutdown``
                       ``ThreadPoolExecutor``
=====================  =========================  ====================

The walk is path-sensitive enough to be useful: ``if`` branches fork
and join (must-release = intersection, may-release = union), ``with``
bodies run under the context manager's exit guarantee, and ``try``
bodies thread an exception edge into each handler while releases in
the ``finally`` protect every op the block covers.

Checks:

* **PIC501 — leak**: an op that may raise (any non-release call,
  subscript store, explicit ``raise``) executes while an acquired
  resource is unreleased and unprotected; or a ``return`` leaves one
  behind; or the function falls off the end without releasing on every
  path.
* **PIC502 — double release**: a release method runs again after it
  must already have run.
* **PIC503 — use after release**: a non-release method or attribute of
  a fully-released resource is used.

Interprocedural facts come from a small fixpoint over the call graph
(resolved call sites are reused from the alias analysis): a function
may *return* a fresh resource (``_attach`` → the caller owns an shm
mapping), *release* a parameter (``closer(f)`` counts as ``f.close()``)
or *store* a parameter (ownership transfer — the caller stops
tracking).  Passing a resource to any call without a release summary
transfers ownership; the analysis prefers silence to false positives.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterable

if TYPE_CHECKING:
    from repro.lint.project.analysis import ProjectAnalysis

#: Bump when this pass's logic changes what it reports from unchanged
#: IR — folded into the incremental-cache salt so warm runs never mix
#: old pass output with new pass code.
TYPESTATE_PASS_VERSION = 1

# ----------------------------------------------------------------------
# Protocol knowledge

#: Constructor (dotted name or trailing class name) -> resource kind.
_ACQUIRER_DOTTED = {
    "open": "file",
    "io.open": "file",
    "gzip.open": "file",
    "bz2.open": "file",
    "lzma.open": "file",
    "mmap.mmap": "mmap",
}
_ACQUIRER_TAILS = {
    "SharedMemory": "shm",
    "ProcessPoolExecutor": "pool",
    "ThreadPoolExecutor": "pool",
    # Node-memory cache pins: NodeMemoryCache.pin hands out an owned
    # eviction guard (or None); the method tail is specific enough to
    # treat any .pin(...) as an acquisition.
    "CachePin": "cachepin",
    "pin": "cachepin",
    # Host-side shm export cache: owns live blocks until released.
    "BatchExportCache": "batchcache",
}

#: kind -> methods that release (any subset order).
RELEASE_METHODS = {
    "shm": frozenset({"close", "unlink"}),
    "file": frozenset({"close"}),
    "mmap": frozenset({"close"}),
    "pool": frozenset({"shutdown"}),
    "cachepin": frozenset({"release"}),
    "batchcache": frozenset({"release"}),
}
#: kind -> the release every instance must see before it goes dead.
_REQUIRED_RELEASE = {
    "pool": frozenset({"shutdown"}),
    "cachepin": frozenset({"release"}),
    "batchcache": frozenset({"release"}),
}
_DEFAULT_REQUIRED = frozenset({"close"})
#: kind -> what a context manager's __exit__ performs.
_CM_RELEASE = {
    "shm": "close",
    "file": "close",
    "mmap": "close",
    "pool": "shutdown",
    "cachepin": "release",
    "batchcache": "release",
}
#: Every known release-method name (for parameter summaries).
RELEASE_ANY = frozenset({"close", "unlink", "shutdown", "release"})
#: Attribute reads that are safe on a released resource.
_BENIGN_ATTRS = frozenset({"closed", "name", "mode", "_closed"})

_KIND_NOUN = {
    "shm": "shared-memory block",
    "file": "file handle",
    "mmap": "mmap handle",
    "pool": "executor pool",
    "cachepin": "cache pin",
    "batchcache": "batch export cache",
}


class Res:
    """One tracked resource (shared between aliasing local names)."""

    __slots__ = (
        "kind", "line", "col", "required", "done_must", "done_may",
        "escaped", "param", "reported",
    )

    def __init__(
        self,
        kind: str,
        line: int,
        col: int,
        required: frozenset[str],
        param: str | None = None,
    ) -> None:
        self.kind = kind
        self.line = line
        self.col = col
        self.required = required
        self.done_must: set[str] = set()
        self.done_may: set[str] = set()
        self.escaped = bool(param)
        self.param = param
        self.reported: set[str] = set()

    def fork(self) -> "Res":
        twin = Res(self.kind, self.line, self.col, self.required, self.param)
        twin.done_must = set(self.done_must)
        twin.done_may = set(self.done_may)
        twin.escaped = self.escaped
        twin.reported = self.reported  # shared: one report per resource
        return twin

    def released(self) -> bool:
        """Fully released on every path walked so far."""
        if self.param is not None:
            return bool({"close", "shutdown", "release"} & self.done_must)
        return self.required <= self.done_must


class ResourceSummary:
    """Interprocedural facts one function exposes to its callers."""

    def __init__(self) -> None:
        self.releases_params: dict[str, frozenset[str]] = {}
        self.param_escapes: set[str] = set()
        #: (kind, required) when the return value is a fresh resource.
        self.returns_resource: tuple[str, list[str]] | None = None

    def key(self) -> tuple:
        return (
            tuple(sorted((p, tuple(sorted(m))) for p, m in self.releases_params.items())),
            tuple(sorted(self.param_escapes)),
            self.returns_resource if self.returns_resource is None
            else (self.returns_resource[0], tuple(self.returns_resource[1])),
        )


class TypestateAnalysis:
    """Converged lifecycle summaries plus the findings they imply."""

    MAX_ROUNDS = 6

    def __init__(self, project: "ProjectAnalysis") -> None:
        self.project = project
        self.graph = project.graph
        #: (caller fid, line, col) -> callee fids, from the alias pass.
        self.callsites: dict[tuple[str, int, int], list[str]] = {}
        for fid in sorted(project.summaries):
            for callee, line, col in project.summaries[fid].direct_calls:
                self.callsites.setdefault((fid, line, col), []).append(callee)
        self.summaries: dict[str, ResourceSummary] = {}
        self.findings: list[tuple[str, str, int, int, str]] = []
        self._converge()
        self._collect()

    def _converge(self) -> None:
        fids = sorted(self.graph.function_ir)
        keys: dict[str, tuple] = {fid: () for fid in fids}
        for _round in range(self.MAX_ROUNDS):
            changed = False
            for fid in fids:
                summary = _Walker(self, fid, report=False).run()
                self.summaries[fid] = summary
                key = summary.key()
                if key != keys[fid]:
                    keys[fid] = key
                    changed = True
            if not changed:
                break

    def _collect(self) -> None:
        for fid in sorted(self.graph.function_ir):
            walker = _Walker(self, fid, report=True)
            walker.run()
            self.findings.extend(walker.findings)


class _Walker:
    """One path-sensitive pass over a function's block-structured ops."""

    def __init__(self, an: TypestateAnalysis, fid: str, report: bool) -> None:
        self.an = an
        self.graph = an.graph
        self.fid = fid
        self.fn = self.graph.function_ir[fid]
        self.modkey = fid.split("::", 1)[0]
        ir = self.graph.modules.get(self.modkey) or {"aliases": {}}
        self.aliases: dict[str, str] = ir.get("aliases", {})
        self.report = report
        self.summary = ResourceSummary()
        self.findings: list[tuple[str, str, int, int, str]] = []
        #: Stack of (res-id -> protected methods) from enclosing
        #: finally blocks and with bodies.
        self._protection: list[dict[int, set[str]]] = []
        #: Depth of enclosing try statements that have except handlers.
        self._handled_depth = 0
        #: Calls seen while scanning the current op that are not pure
        #: release invocations (i.e. the op may raise mid-flight).
        self._risky_calls = 0

    # -- entry ---------------------------------------------------------

    def run(self) -> ResourceSummary:
        env: dict[str, Res] = {}
        for p in self.fn["params"]:
            env[p] = Res("param", self.fn["line"], 0, frozenset(), param=p)
        self.walk(self.fn["ops"], env)
        self._end_of_function(env)
        return self.summary

    def _end_of_function(self, env: dict[str, Res]) -> None:
        for res in self._live(env):
            if res.param is not None or res.escaped:
                continue
            missing = res.required - res.done_must
            if missing:
                self._report(
                    "PIC501",
                    res,
                    res.line,
                    res.col,
                    f"{_KIND_NOUN[res.kind]} acquired here is not "
                    f"{_methods_noun(missing)} on every path through the "
                    "function; release in a finally (or use a with block) "
                    "so no path can leak it.",
                )

    # -- op walking ----------------------------------------------------

    def walk(self, ops: Iterable[list], env: dict[str, Res]) -> None:
        for op in ops:
            self.op(op, env)

    def op(self, op: list, env: dict[str, Res]) -> None:
        kind = op[0]
        if kind == "bind":
            _, name, desc, line = op
            self._risky_calls = 0
            res = self.scan(desc, env, line)
            self._raise_check(env, line, exclude=res)
            if res is not None:
                env[name] = res
            else:
                env.pop(name, None)
        elif kind == "unpack":
            _, names, desc, line = op
            self._risky_calls = 0
            self.scan(desc, env, line)
            self._raise_check(env, line)
            for name in names:
                env.pop(name, None)
        elif kind == "eval":
            self._risky_calls = 0
            self.scan(op[1], env, op[2])
            self._raise_check(env, op[2])
        elif kind == "mutate":
            _, target, value, how, line, col = op
            self._risky_calls = 0
            # A subscript/attr store can raise; storing a resource into
            # a container or attribute transfers ownership.
            if target[0] in ("elem", "slice"):
                self._risky_calls += 1
                self.scan(target[1], env, line)
            elif target[0] == "attr":
                self.scan(target[1], env, line)
            if value is not None:
                self.scan(value, env, line, escape=True)
            self._raise_check(env, line)
        elif kind == "ret":
            _, desc, line, col = op
            self._risky_calls = 0
            # A resource that already escaped (stored in a global, a
            # container...) stays owned elsewhere — returning it hands
            # out a borrow, not ownership.
            pre_escaped = {id(r) for r in self._live(env) if r.escaped}
            returned = self.scan(desc, env, line, escape=True)
            if (
                returned is not None
                and returned.param is None
                and not returned.done_may
                and id(returned) not in pre_escaped
            ):
                self.summary.returns_resource = (
                    returned.kind,
                    sorted(returned.required),
                )
            self._return_check(env, line, col)
        elif kind == "raise":
            if op[1] is not None:
                self._risky_calls = 0
                self.scan(op[1], env, op[2])
            self._raise_check(env, op[2], explicit=True)
        elif kind == "defl":
            env.pop(op[1], None)
        elif kind == "kill":
            env.pop(op[1], None)
        elif kind == "if":
            self._risky_calls = 0
            self.scan(op[1], env, op[4])
            self._raise_check(env, op[4])
            left = _copy_env(env)
            self.walk(op[2], left)
            right = _copy_env(env)
            self.walk(op[3], right)
            env.clear()
            env.update(_join_env(left, right))
        elif kind == "with":
            self._with(op, env)
        elif kind == "try":
            self._try(op, env)

    def _with(self, op: list, env: dict[str, Res]) -> None:
        _, items, body, line = op
        managed: list[Res] = []
        frame: dict[int, set[str]] = {}
        for ctx, var in items:
            self._risky_calls = 0
            res = self.scan(ctx, env, line)
            self._raise_check(env, line)
            if res is not None:
                managed.append(res)
                frame[id(res)] = {_CM_RELEASE.get(res.kind, "close")}
                if var is not None:
                    env[var] = res
            elif var is not None:
                env.pop(var, None)
        self._protection.append(frame)
        try:
            self.walk(body, env)
        finally:
            self._protection.pop()
        for res in managed:
            method = _CM_RELEASE.get(res.kind, "close")
            res.done_must.add(method)
            res.done_may.add(method)

    def _try(self, op: list, env: dict[str, Res]) -> None:
        _, body, handlers, orelse, final, _line = op
        pre = _copy_env(env)
        frame = self._finally_releases(final, env)
        self._protection.append(frame)
        if handlers:
            self._handled_depth += 1
        try:
            # Exception edge: op k raising means ops 1..k-1 completed, so
            # a handler may enter in the state *before* any body op — the
            # post-body state is only reachable without an exception.
            entry = _copy_env(pre)
            for bop in body:
                entry = _join_env(entry, _copy_env(env))
                self.op(bop, env)
            outs = []
            for _name, handler_ops in handlers:
                henv = _copy_env(entry)
                self.walk(handler_ops, henv)
                outs.append(henv)
            self.walk(orelse, env)
        finally:
            if handlers:
                self._handled_depth -= 1
            self._protection.pop()
        merged = env
        for henv in outs:
            merged = _join_env(merged, henv)
        if merged is not env:
            env.clear()
            env.update(merged)
        self.walk(final, env)

    def _finally_releases(
        self, final_ops: list, env: dict[str, Res]
    ) -> dict[int, set[str]]:
        """Which releases the finally block guarantees, per resource."""
        frame: dict[int, set[str]] = {}

        def scan_ops(ops: Iterable[list]) -> None:
            for op in ops:
                kind = op[0]
                if kind in ("eval", "bind"):
                    desc = op[1] if kind == "eval" else op[2]
                    scan_desc(desc)
                elif kind == "try":
                    scan_ops(op[1])
                    for _n, hops in op[2]:
                        scan_ops(hops)
                    scan_ops(op[3])
                    scan_ops(op[4])
                elif kind == "with":
                    scan_ops(op[2])
                elif kind == "if":
                    # Conditional release does not protect.
                    continue

        def scan_desc(desc: list) -> None:
            if not isinstance(desc, list) or not desc:
                return
            if desc[0] == "call":
                func = desc[1]
                if (
                    func[0] == "meth"
                    and func[1][0] == "name"
                    and func[2] in RELEASE_ANY
                ):
                    res = env.get(func[1][1])
                    if res is not None:
                        frame.setdefault(id(res), set()).add(func[2])
                for callee, pname, res in self._project_call_args(desc, env):
                    methods = self.an.summaries.get(callee, ResourceSummary())
                    released = methods.releases_params.get(pname)
                    if released:
                        frame.setdefault(id(res), set()).update(released)
            elif desc[0] == "seq":
                for item in desc[1]:
                    scan_desc(item)

        scan_ops(final_ops)
        return frame

    # -- checks --------------------------------------------------------

    def _live(self, env: dict[str, Res]) -> list[Res]:
        seen: dict[int, Res] = {}
        for res in env.values():
            seen.setdefault(id(res), res)
        return [seen[k] for k in sorted(seen, key=lambda i: (seen[i].line, seen[i].col))]

    def _protected(self, res: Res) -> set[str]:
        out: set[str] = set()
        for frame in self._protection:
            out.update(frame.get(id(res), ()))
        return out

    def _raise_check(
        self, env: dict[str, Res], line: int, exclude: Res | None = None,
        explicit: bool = False,
    ) -> None:
        """PIC501 at an op that may raise with live unprotected resources."""
        if not explicit and self._risky_calls == 0:
            return
        if self._handled_depth > 0 and not explicit:
            return  # a handler may recover and release; prefer silence
        for res in self._live(env):
            if res is exclude or res.param is not None or res.escaped:
                continue
            missing = res.required - res.done_may - self._protected(res)
            if not missing:
                continue
            why = "this raise" if explicit else "an exception here"
            self._report(
                "PIC501",
                res,
                line,
                0,
                f"{why} leaks the {_KIND_NOUN[res.kind]} acquired at line "
                f"{res.line}: it is not yet {_methods_noun(missing)} and no "
                "enclosing finally releases it. Wrap the acquire in "
                "try/finally (or a with block).",
            )

    def _return_check(self, env: dict[str, Res], line: int, col: int) -> None:
        for res in self._live(env):
            if res.param is not None or res.escaped:
                continue
            missing = res.required - res.done_must - self._protected(res)
            if missing:
                self._report(
                    "PIC501",
                    res,
                    line,
                    col,
                    f"returning here leaks the {_KIND_NOUN[res.kind]} "
                    f"acquired at line {res.line}: it is never "
                    f"{_methods_noun(missing)} on this path.",
                )

    def _report(
        self, rule: str, res: Res, line: int, col: int, message: str
    ) -> None:
        if not self.report or rule in res.reported:
            return
        res.reported.add(rule)
        self.findings.append((rule, self.fid, line, col, message))

    # -- descriptor scanning -------------------------------------------

    def scan(
        self, desc: Any, env: dict[str, Res], line: int, escape: bool = False
    ) -> Res | None:
        """Process ``desc``: acquisitions, releases, uses, escapes.

        Returns the resource the descriptor's *value* is, if any.
        """
        if not isinstance(desc, list) or not desc:
            return None
        kind = desc[0]
        if kind == "name":
            res = env.get(desc[1])
            if res is not None and escape:
                self._escape(res)
            return res
        if kind == "attr":
            base = self.scan(desc[1], env, line)
            if base is not None and desc[2] not in _BENIGN_ATTRS:
                self._use_check(base, line, f".{desc[2]}")
            return None
        if kind in ("elem", "slice"):
            base = self.scan(desc[1], env, line)
            if base is not None:
                self._use_check(base, line, "[...]")
            return None
        if kind == "call":
            return self._call(desc, env, line, escape)
        if kind == "walrus":
            res = self.scan(desc[2], env, line, escape)
            if res is not None:
                env[desc[1]] = res
            return res
        if kind == "union":
            out: Res | None = None
            for item in desc[1]:
                res = self.scan(item, env, line, escape)
                out = out or res
            return out
        if kind == "make":
            for item in desc[1]:
                self.scan(item, env, line, escape=True)
            return None
        if kind == "spread":
            return self.scan(desc[1], env, line, escape)
        if kind == "bin":
            self.scan(desc[2], env, line)
            self.scan(desc[3], env, line)
            return None
        if kind == "cmp":
            for item in desc[2]:
                self.scan(item, env, line)
            return None
        if kind == "seq":
            for item in desc[1]:
                self.scan(item, env, line)
            return None
        if kind == "comp":
            for _names, it in desc[1]:
                self.scan(it, env, line)
            for elt in desc[2]:
                self.scan(elt, env, line)
            return None
        return None

    def _call(
        self, desc: list, env: dict[str, Res], line: int, escape: bool
    ) -> Res | None:
        _, func, args, kwargs, cline, col = desc
        # Method on a tracked resource: release or use.
        if func[0] == "meth" and func[1][0] == "name":
            res = env.get(func[1][1])
            if res is not None:
                attr = func[2]
                for a in args:
                    self.scan(a, env, line, escape=True)
                for _kw, d in kwargs:
                    self.scan(d, env, line, escape=True)
                if attr in RELEASE_ANY:
                    self._release(res, attr, cline, col)
                    return None
                self._risky_calls += 1
                self._use_check(res, cline, f".{attr}()")
                return None
        if func[0] == "meth":
            self.scan(func[1], env, line)
        elif func[0] == "desc":
            self.scan(func[1], env, line)

        # Arguments: releases through project callees, else escape.
        callees = self.an.callsites.get((self.fid, cline, col), [])
        handled: set[int] = set()
        for callee, pname, res in self._project_call_args(desc, env):
            summary = self.an.summaries.get(callee)
            if summary is None:
                continue
            released = summary.releases_params.get(pname)
            if released:
                for method in sorted(released):
                    self._release(res, method, cline, col)
                handled.add(id(res))
        for a in args:
            self._scan_arg(a, env, line, handled)
        for _kw, d in kwargs:
            self._scan_arg(d, env, line, handled)

        # Is this call itself an acquisition?
        acquired = self._acquisition(func, kwargs, cline, col)
        if acquired is None and callees:
            for callee in callees:
                summary = self.an.summaries.get(callee)
                if summary is not None and summary.returns_resource is not None:
                    rkind, required = summary.returns_resource
                    acquired = Res(rkind, cline, col, frozenset(required))
                    break
        if acquired is None:
            self._risky_calls += 1
        if acquired is not None and escape:
            self._escape(acquired)
        return acquired

    def _scan_arg(
        self, desc: Any, env: dict[str, Res], line: int, handled: set[int]
    ) -> None:
        if not isinstance(desc, list) or not desc:
            return
        if desc[0] == "name":
            res = env.get(desc[1])
            if res is not None and id(res) not in handled:
                self._escape(res)
            return
        self.scan(desc, env, line, escape=True)

    def _project_call_args(
        self, desc: list, env: dict[str, Res]
    ) -> list[tuple[str, str, Res]]:
        """(callee fid, callee param, resource) for tracked direct args."""
        _, func, args, kwargs, cline, col = desc
        out: list[tuple[str, str, Res]] = []
        callees = self.an.callsites.get((self.fid, cline, col), [])
        if not callees:
            return out
        for callee in callees:
            fn = self.graph.function_ir.get(callee)
            if fn is None:
                continue
            params = fn["params"]
            rest = params[1:] if (
                fn["class"] is not None and params[:1] == ["self"]
            ) else params
            for pname, a in zip(rest, args):
                if isinstance(a, list) and a and a[0] == "name":
                    res = env.get(a[1])
                    if res is not None:
                        out.append((callee, pname, res))
            for kw, d in kwargs:
                if kw in params and isinstance(d, list) and d and d[0] == "name":
                    res = env.get(d[1])
                    if res is not None:
                        out.append((callee, kw, res))
        return out

    def _acquisition(
        self, func: list, kwargs: list, line: int, col: int
    ) -> Res | None:
        dotted = self._dotted(func)
        kind: str | None = None
        if dotted is not None:
            kind = _ACQUIRER_DOTTED.get(dotted)
            if kind is None:
                kind = _ACQUIRER_TAILS.get(dotted.rpartition(".")[2])
        if kind is None and func[0] == "ref":
            kind = _ACQUIRER_DOTTED.get(func[1]) or _ACQUIRER_TAILS.get(func[1])
        if kind is None and func[0] == "meth":
            kind = _ACQUIRER_TAILS.get(func[2])
        if kind is None:
            return None
        required = set(_REQUIRED_RELEASE.get(kind, _DEFAULT_REQUIRED))
        if kind == "shm" and any(kw == "create" for kw, _d in kwargs):
            required.add("unlink")
        return Res(kind, line, col, frozenset(required))

    def _dotted(self, func: list) -> str | None:
        parts: list[str] = []
        node = func
        if node[0] == "meth":
            parts.append(node[2])
            node = node[1]
            while node[0] == "attr":
                parts.append(node[2])
                node = node[1]
        elif node[0] == "ref":
            return self.aliases.get(node[1], node[1])
        if node[0] != "name":
            return None
        head = self.aliases.get(node[1])
        if head is None:
            return None
        parts.append(head)
        return ".".join(reversed(parts))

    # -- state transitions ---------------------------------------------

    def _release(self, res: Res, method: str, line: int, col: int) -> None:
        if res.param is not None:
            if method in RELEASE_ANY:
                done = self.summary.releases_params.get(res.param, frozenset())
                self.summary.releases_params[res.param] = done | {method}
        if method in res.done_must and not res.escaped:
            self._report(
                "PIC502",
                res,
                line,
                col,
                f"'{method}' called again on the {_noun(res)} already "
                f"released this way (first release guaranteed before this "
                "line); double releases mask lifecycle bugs and can raise.",
            )
        res.done_must.add(method)
        res.done_may.add(method)

    def _use_check(self, res: Res, line: int, what: str) -> None:
        if res.escaped or not res.released():
            return
        self._report(
            "PIC503",
            res,
            line,
            0,
            f"'{what}' used after the {_noun(res)} was released; the "
            "handle no longer owns its underlying object, so this read "
            "fails or touches freed state.",
        )

    def _escape(self, res: Res) -> None:
        res.escaped = True
        if res.param is not None:
            self.summary.param_escapes.add(res.param)


# ----------------------------------------------------------------------
# Environment fork/join


def _copy_env(env: dict[str, Res]) -> dict[str, Res]:
    memo: dict[int, Res] = {}
    out: dict[str, Res] = {}
    for name, res in env.items():
        twin = memo.get(id(res))
        if twin is None:
            twin = memo[id(res)] = res.fork()
        out[name] = twin
    return out


def _join_env(a: dict[str, Res], b: dict[str, Res]) -> dict[str, Res]:
    out: dict[str, Res] = {}
    for name, left in a.items():
        right = b.get(name)
        if right is None:
            out[name] = left
            continue
        if (left.kind, left.line, left.col) != (right.kind, right.line, right.col):
            out[name] = left
            continue
        joined = left  # reuse one side; mutate to the join
        joined.done_must = set(left.done_must & right.done_must)
        joined.done_may = set(left.done_may | right.done_may)
        joined.escaped = left.escaped or right.escaped
        out[name] = joined
    for name, right in b.items():
        if name not in out:
            out[name] = right
    return out


def _methods_noun(methods: Iterable[str]) -> str:
    ordered = sorted(methods)
    if len(ordered) == 1:
        return f"{ordered[0]}()d"
    return " + ".join(f"{m}()" for m in ordered) + "'d"


def _noun(res: Res) -> str:
    if res.param is not None:
        return f"'{res.param}' argument"
    return _KIND_NOUN.get(res.kind, "resource")
