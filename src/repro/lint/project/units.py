"""Quantity-unit taint analysis (PIC601–PIC602).

The simulator's credibility rests on never mixing *simulated*
quantities with *host* quantities.  This pass seeds unit qualifiers at
known sources, propagates them through binds, arithmetic, containers
and project-function returns, and flags two violations:

* **PIC601 — cross-unit arithmetic/comparison**: adding, subtracting
  or ordering two values whose units conflict (``sim_seconds`` vs
  ``wall_seconds``, seconds vs bytes, seconds vs record counts).
  Multiplication and division never conflict — rates and scalings are
  the whole point of mixed units.
* **PIC602 — tainted value reaches a simulated sink**: a quantity with
  the wrong unit flows into a simulated-time or simulated-bytes API
  argument (``sim.schedule(delay)``, ``cluster.transfer(...,
  nbytes, ...)``, ``meter.record(...)``) — the classic bug being a
  ``time.perf_counter()`` difference fed into a simulated metric.

Sources
-------
=============== =======================================================
unit            seeded from
=============== =======================================================
``wall_s``      ``time.time/perf_counter/monotonic/process_time`` (and
                ``_ns`` variants), ``timeit.default_timer``
``sim_s``       ``.now``/``peek_time()`` on a simulation/cluster
                receiver, ``transfer_time(...)``
``sim_b``       ``sizeof_records/sizeof_record/sizeof_value``,
                ``nbytes_wire`` calls and attributes, ``.nbytes``
``count``       ``len(...)``
=============== =======================================================

``count`` + ``sim_b`` is deliberately *not* a conflict (byte totals
are legitimately built from ``len(encoded)``); the per-file PIC202
rule owns the raw ``len``-as-flow-size case.  Interprocedurally, each
function's summary carries the units its return value may hold (with
parameter-polymorphic pass-through) and which parameters flow into
simulated sinks, iterated to a fixpoint over the call graph.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterable

from repro.lint.project.graph import SUBSTRATE_NAMES

if TYPE_CHECKING:
    from repro.lint.project.analysis import ProjectAnalysis

#: Bump when this pass's logic changes what it reports from unchanged
#: IR (see the cache-salt note in repro.lint.cache).
UNITS_PASS_VERSION = 1

WALL_S = "wall_s"
SIM_S = "sim_s"
SIM_B = "sim_b"
COUNT = "count"

UNIT_NOUN = {
    WALL_S: "wall-clock seconds",
    SIM_S: "simulated seconds",
    SIM_B: "simulated wire bytes",
    COUNT: "a record count",
}

#: Unordered unit pairs whose +/-/comparison is always a bug.
CONFLICTS = frozenset(
    {
        frozenset({WALL_S, SIM_S}),
        frozenset({WALL_S, SIM_B}),
        frozenset({WALL_S, COUNT}),
        frozenset({SIM_S, SIM_B}),
        frozenset({SIM_S, COUNT}),
    }
)

_WALL_CALLS = frozenset(
    {
        "time.time", "time.time_ns", "time.perf_counter",
        "time.perf_counter_ns", "time.monotonic", "time.monotonic_ns",
        "time.process_time", "time.process_time_ns", "timeit.default_timer",
    }
)
#: Method tails returning simulated seconds on any receiver.
_SIM_S_METHODS = frozenset({"transfer_time", "peek_time"})
#: Attributes that are simulated clocks, on simulation-ish receivers.
_SIM_CLOCK_ATTRS = frozenset({"now"})
_SIM_RECEIVERS = SUBSTRATE_NAMES | frozenset({"self"})
_SIM_B_CALLS = frozenset(
    {"sizeof_records", "sizeof_record", "sizeof_value", "nbytes_wire"}
)
_SIM_B_ATTRS = frozenset({"nbytes", "nbytes_wire"})
_COUNT_CALLS = frozenset({"len"})

#: External calls whose result carries their first argument's units.
_PROPAGATORS = frozenset(
    {"sum", "min", "max", "abs", "round", "sorted", "float", "int"}
)

#: Arithmetic operators where mixed units are a bug.
_ADDITIVE_OPS = frozenset({"Add", "Sub"})
#: Comparison operators where mixed units are a bug.
_ORDERING_OPS = frozenset({"Lt", "LtE", "Gt", "GtE", "Eq", "NotEq"})

#: Simulated sinks: method tail -> (positional index, kw name, unit).
SINKS: dict[str, tuple[int, str, str]] = {
    "schedule": (0, "delay", SIM_S),
    "schedule_at": (0, "time", SIM_S),
    "run_until": (0, "time", SIM_S),
    "start_flow": (2, "nbytes", SIM_B),
    "transfer": (2, "nbytes", SIM_B),
    "record": (1, "nbytes", SIM_B),
}

Units = frozenset  # of unit tags and ("param", name) markers

_EMPTY: Units = frozenset()


class UnitSummary:
    """Units a function's return may carry; params feeding sim sinks."""

    def __init__(self) -> None:
        self.ret: Units = _EMPTY
        #: param name -> sink units it (transitively) flows into.
        self.param_sinks: dict[str, frozenset[str]] = {}

    def key(self) -> tuple:
        return (
            tuple(sorted(map(str, self.ret))),
            tuple(sorted((p, tuple(sorted(u))) for p, u in self.param_sinks.items())),
        )


class UnitAnalysis:
    """Converged unit summaries plus the findings they imply."""

    MAX_ROUNDS = 6

    def __init__(self, project: "ProjectAnalysis") -> None:
        self.project = project
        self.graph = project.graph
        self.callsites: dict[tuple[str, int, int], list[str]] = {}
        for fid in sorted(project.summaries):
            for callee, line, col in project.summaries[fid].direct_calls:
                self.callsites.setdefault((fid, line, col), []).append(callee)
        self.summaries: dict[str, UnitSummary] = {}
        self.findings: list[tuple[str, str, int, int, str]] = []
        self._converge()
        self._collect()

    def _converge(self) -> None:
        fids = sorted(self.graph.function_ir)
        keys: dict[str, tuple] = {fid: () for fid in fids}
        for _round in range(self.MAX_ROUNDS):
            changed = False
            for fid in fids:
                summary = _UnitWalker(self, fid, report=False).run()
                self.summaries[fid] = summary
                key = summary.key()
                if key != keys[fid]:
                    keys[fid] = key
                    changed = True
            if not changed:
                break

    def _collect(self) -> None:
        for fid in sorted(self.graph.function_ir):
            walker = _UnitWalker(self, fid, report=True)
            walker.run()
            self.findings.extend(walker.findings)


def _concrete(units: Units) -> frozenset:
    return frozenset(u for u in units if isinstance(u, str))


def _conflict(a: Units, b: Units) -> tuple[str, str] | None:
    for ua in sorted(_concrete(a)):
        for ub in sorted(_concrete(b)):
            if frozenset({ua, ub}) in CONFLICTS:
                return ua, ub
    return None


class _UnitWalker:
    """One taint pass over a function's ops (blocks walked in order)."""

    def __init__(self, an: UnitAnalysis, fid: str, report: bool) -> None:
        self.an = an
        self.graph = an.graph
        self.fid = fid
        self.fn = self.graph.function_ir[fid]
        self.modkey = fid.split("::", 1)[0]
        ir = self.graph.modules.get(self.modkey) or {"aliases": {}}
        self.aliases: dict[str, str] = ir.get("aliases", {})
        self.report = report
        self.summary = UnitSummary()
        self.findings: list[tuple[str, str, int, int, str]] = []
        self.env: dict[str, Units] = {}
        self._seen: set[tuple] = set()

    def run(self) -> UnitSummary:
        for p in self.fn["params"]:
            self.env[p] = frozenset({("param", p)})
        self.walk(self.fn["ops"])
        return self.summary

    # -- ops -----------------------------------------------------------

    def walk(self, ops: Iterable[list]) -> None:
        for op in ops:
            self.op(op)

    def op(self, op: list) -> None:
        kind = op[0]
        if kind == "bind":
            _, name, desc, line = op
            self.env[name] = self.eval(desc, line)
        elif kind == "unpack":
            _, names, desc, line = op
            units = self.eval(desc, line)
            for name in names:
                self.env[name] = units
        elif kind == "eval":
            self.eval(op[1], op[2])
        elif kind == "mutate":
            _, target, value, how, line, col = op
            value_units = self.eval(value, line) if value is not None else _EMPTY
            target_units = self.eval(target, line) if target is not None else _EMPTY
            if how.startswith("aug:") and how[4:] in _ADDITIVE_OPS:
                self._check_mix(target_units, value_units, how[4:], line, col)
            if target[0] == "name":
                self.env[target[1]] = self.env.get(target[1], _EMPTY) | value_units
        elif kind == "ret":
            _, desc, line, col = op
            self.summary.ret = self.summary.ret | self.eval(desc, line)
        elif kind == "raise":
            if op[1] is not None:
                self.eval(op[1], op[2])
        elif kind == "defl":
            self.env[op[1]] = _EMPTY
        elif kind == "kill":
            self.env.pop(op[1], None)
        elif kind == "if":
            self.eval(op[1], op[4])
            self.walk(op[2])
            self.walk(op[3])
        elif kind == "with":
            for ctx, var in op[1]:
                units = self.eval(ctx, op[3])
                if var is not None:
                    self.env[var] = units
            self.walk(op[2])
        elif kind == "try":
            self.walk(op[1])
            for _name, handler_ops in op[2]:
                self.walk(handler_ops)
            self.walk(op[3])
            self.walk(op[4])

    # -- expressions ---------------------------------------------------

    def eval(self, desc: Any, line: int) -> Units:
        if not isinstance(desc, list) or not desc:
            return _EMPTY
        kind = desc[0]
        if kind == "const":
            return _EMPTY
        if kind == "name":
            return self.env.get(desc[1], _EMPTY)
        if kind == "attr":
            base = self.eval(desc[1], line)
            attr = desc[2]
            if attr in _SIM_B_ATTRS:
                return frozenset({SIM_B})
            if attr in _SIM_CLOCK_ATTRS and self._sim_receiver(desc[1]):
                return frozenset({SIM_S})
            if attr in ("sim_seconds", "sim_time"):
                return frozenset({SIM_S})
            return _EMPTY if base is _EMPTY else _EMPTY
        if kind in ("elem", "slice", "spread"):
            # Elements of a tainted container carry the container's units.
            return self.eval(desc[1], line)
        if kind == "make":
            units = _EMPTY
            for item in desc[1]:
                units = units | self.eval(item, line)
            return units
        if kind == "comp":
            saved = dict(self.env)
            try:
                for names, it in desc[1]:
                    it_units = self.eval(it, line)
                    for name in names:
                        self.env[name] = it_units
                units = _EMPTY
                for elt in desc[2]:
                    units = units | self.eval(elt, line)
            finally:
                self.env = saved
            return units
        if kind == "union":
            units = _EMPTY
            for item in desc[1]:
                units = units | self.eval(item, line)
            return units
        if kind == "bin":
            _, op_name, left, right, bline, bcol = desc
            lu = self.eval(left, bline)
            ru = self.eval(right, bline)
            if op_name in _ADDITIVE_OPS:
                self._check_mix(lu, ru, op_name, bline, bcol)
                return lu | ru
            if op_name in ("Mult", "Div", "FloorDiv", "Mod", "Pow", "MatMult"):
                # Rates/scalings: result keeps no committed unit.
                return _EMPTY
            return lu | ru
        if kind == "cmp":
            _, op_names, items, cline, ccol = desc
            item_units = [self.eval(item, cline) for item in items]
            for i, op_name in enumerate(op_names):
                if op_name in _ORDERING_OPS and i + 1 < len(item_units):
                    self._check_mix(
                        item_units[i], item_units[i + 1], op_name, cline, ccol,
                        comparison=True,
                    )
            return _EMPTY
        if kind == "seq":
            for item in desc[1]:
                self.eval(item, line)
            return _EMPTY
        if kind == "walrus":
            units = self.eval(desc[2], line)
            self.env[desc[1]] = units
            return units
        if kind == "fnref":
            return _EMPTY
        if kind == "call":
            return self.eval_call(desc)
        return _EMPTY

    def eval_call(self, desc: list) -> Units:
        _, func, args, kwargs, line, col = desc
        arg_units = [self.eval(a, line) for a in args]
        kw_units = {kw: self.eval(d, line) for kw, d in kwargs}

        tail = func[2] if func[0] == "meth" else (func[1] if func[0] == "ref" else None)
        dotted = self._dotted(func)

        self._check_sinks(func, tail, arg_units, kw_units, line, col)

        # Seeds.
        if dotted in _WALL_CALLS:
            return frozenset({WALL_S})
        if tail in _SIM_B_CALLS or (
            dotted is not None and dotted.rpartition(".")[2] in _SIM_B_CALLS
        ):
            return frozenset({SIM_B})
        if func[0] == "meth" and tail in _SIM_S_METHODS:
            return frozenset({SIM_S})
        if func[0] == "ref" and tail in _COUNT_CALLS:
            return frozenset({COUNT})

        # Project callees: substitute the return summary.
        callees = self.an.callsites.get((self.fid, line, col), [])
        if callees:
            out: set = set()
            for callee in callees:
                out |= self._apply_summary(
                    callee, func, arg_units, kw_units, line, col
                )
            return frozenset(out)

        # Unit-preserving builtins.
        if func[0] == "ref" and tail in _PROPAGATORS and arg_units:
            units = arg_units[0]
            if tail in ("min", "max"):
                for u in arg_units[1:]:
                    units = units | u
            return units
        return _EMPTY

    def _apply_summary(
        self,
        fid: str,
        func: list,
        arg_units: list[Units],
        kw_units: dict[str, Units],
        line: int,
        col: int,
    ) -> set:
        callee = self.graph.function_ir.get(fid)
        summary = self.an.summaries.get(fid)
        if callee is None or summary is None:
            return set()
        params = callee["params"]
        rest = params[1:] if (
            callee["class"] is not None
            and params[:1] == ["self"]
            and func[0] in ("meth", "desc", "ref")
        ) else params
        argmap: dict[str, Units] = {}
        for pname, units in zip(rest, arg_units):
            argmap[pname] = units
        for kw, units in kw_units.items():
            if kw in params:
                argmap[kw] = units

        # Parameters that reach a simulated sink inside the callee.
        for pname, expected in sorted(summary.param_sinks.items()):
            units = argmap.get(pname)
            if units:
                for unit in sorted(expected):
                    self._check_sink_value(
                        units, unit, callee["name"], line, col, via=True
                    )

        out: set = set()
        for unit in summary.ret:
            if isinstance(unit, str):
                out.add(unit)
            else:  # ("param", name) pass-through
                out |= argmap.get(unit[1], _EMPTY)
        return out

    # -- checks --------------------------------------------------------

    def _check_mix(
        self,
        left: Units,
        right: Units,
        op_name: str,
        line: int,
        col: int,
        comparison: bool = False,
    ) -> None:
        hit = _conflict(left, right)
        if hit is None:
            return
        ua, ub = hit
        verb = "compares" if comparison else "mixes"
        self._report(
            "PIC601",
            line,
            col,
            f"{verb} {UNIT_NOUN[ua]} with {UNIT_NOUN[ub]}: these live on "
            "different clocks/scales, so the result is meaningless. "
            "Convert explicitly (or keep host measurements out of "
            "simulated quantities).",
        )

    def _check_sinks(
        self,
        func: list,
        tail: str | None,
        arg_units: list[Units],
        kw_units: dict[str, Units],
        line: int,
        col: int,
    ) -> None:
        if func[0] != "meth" or tail not in SINKS:
            return
        index, kw_name, expected = SINKS[tail]
        units: Units | None = None
        if len(arg_units) > index:
            units = arg_units[index]
        elif kw_name in kw_units:
            units = kw_units[kw_name]
        if units:
            self._check_sink_value(units, expected, tail, line, col)
        # Record the sink for parameter-polymorphic callers.
        for marker in _concrete_params(units):
            done = self.summary.param_sinks.get(marker, frozenset())
            self.summary.param_sinks[marker] = done | {expected}

    def _check_sink_value(
        self,
        units: Units,
        expected: str,
        sink: str,
        line: int,
        col: int,
        via: bool = False,
    ) -> None:
        # Only conflicting units are this rule's business: ``len()``
        # pieces flowing into a byte sink belong to PIC202.
        wrong = sorted(
            u for u in _concrete(units) if frozenset({u, expected}) in CONFLICTS
        )
        if not wrong:
            return
        # Propagate param sinks transitively.
        for marker in _concrete_params(units):
            done = self.summary.param_sinks.get(marker, frozenset())
            self.summary.param_sinks[marker] = done | {expected}
        through = f"via {sink}()" if via else f"passed to {sink}()"
        self._report(
            "PIC602",
            line,
            col,
            f"value carrying {UNIT_NOUN[wrong[0]]} {through}, which expects "
            f"{UNIT_NOUN[expected]}; host measurements must never enter "
            "simulated metrics (and vice versa) — recompute the quantity "
            "from simulated sources.",
        )

    def _report(self, rule: str, line: int, col: int, message: str) -> None:
        if not self.report:
            return
        key = (rule, line, col, message)
        if key in self._seen:
            return
        self._seen.add(key)
        self.findings.append((rule, self.fid, line, col, message))

    # -- helpers -------------------------------------------------------

    def _sim_receiver(self, base: Any) -> bool:
        """Is ``base`` a simulation/cluster-ish receiver (``sim.now``)?"""
        node = base
        while isinstance(node, list) and node and node[0] in ("elem", "slice"):
            node = node[1]
        if not isinstance(node, list) or not node:
            return False
        if node[0] == "name":
            return node[1] in _SIM_RECEIVERS
        if node[0] == "attr":
            return node[2] in SUBSTRATE_NAMES
        if node[0] == "call":
            return False
        return False

    def _dotted(self, func: list) -> str | None:
        parts: list[str] = []
        node = func
        if node[0] == "meth":
            parts.append(node[2])
            node = node[1]
            while node[0] == "attr":
                parts.append(node[2])
                node = node[1]
        elif node[0] == "ref":
            return self.aliases.get(node[1], node[1])
        if node[0] != "name":
            return None
        head = self.aliases.get(node[1])
        if head is None:
            return None
        parts.append(head)
        return ".".join(reversed(parts))


def _concrete_params(units: Units | None) -> list[str]:
    if not units:
        return []
    return sorted(u[1] for u in units if isinstance(u, tuple) and u[0] == "param")
