"""Lowering: one module's AST → a serializable dataflow IR.

The IR is deliberately tiny.  Each function becomes a list of *ops*
(source order; loop bodies are inlined and both branches of an ``if``
are kept visible — the alias analysis is a may-analysis, while the
typestate analysis walks the block structure) over nested *descriptors*
describing where a value came from:

========================  =============================================
descriptor                meaning
========================  =============================================
``["const"]``             an opaque fresh value (literal, unknown call)
``["name", x]``           the local binding ``x``
``["attr", b, a]``        attribute load ``b.a``
``["elem", b]``           an element of ``b`` (index, iteration, key)
``["slice", b]``          ``b[i:j]`` — a fresh container of b's elements
``["make", items]``       a display: list/tuple/set/dict literal
``["comp", gens, elts]``  a comprehension (own scratch scope)
``["union", items]``      either-of (``a or b``, ``x if c else y``)
``["bin", op, l, r, ln, c]``  ``a <op> b`` (op: ``Add``, ``Sub``, ...)
``["cmp", ops, items, ln, c]``  a comparison chain (ops: ``Lt``, ...)
``["seq", items]``        evaluate for effect, result fresh
``["walrus", x, d]``      ``x := d`` — binds and yields ``d``
``["spread", d]``         ``*d`` inside a display or call
``["fnref", fid]``        a reference to a nested def / lambda
``["call", f, a, k, l, c]``  a call; ``f`` is ``["ref", name]``,
                          ``["meth", base, attr]`` or ``["desc", d]``
========================  =============================================

Linear ops: ``["bind", name, d, line]``, ``["unpack", [names], d,
line]``, ``["eval", d, line]``, ``["mutate", target_d, value_d|None,
kind, line, col]`` (kind ``store``/``del``/``aug:<Op>``), ``["ret",
d, line, col]``, ``["defl", name, fid, line]``, ``["kill", name]``
and ``["raise", d|None, line]``.

Block ops carry nested op lists so path-sensitive analyses see
control structure and exception edges (schema v2):

* ``["if", test_d, body, orelse, line]``
* ``["with", [[ctx_d, var|None], ...], body, line]``
* ``["try", body, [[name|None, handler], ...], orelse, final, line]``

Everything is plain lists/dicts/strings so the incremental cache can
round-trip a module's IR through JSON without touching the AST again.
"""

from __future__ import annotations

import ast
from typing import Any, Sequence

#: Bump when the IR shape changes: invalidates every cache entry.
#: v2: exception-edge block ops (try/with/if), raise ops, operator
#: names on bin/cmp descriptors (typestate + unit-taint analyses).
IR_SCHEMA_VERSION = 2

Desc = list  # nested ["kind", ...] lists; JSON-serializable
Op = list


def build_module_ir(
    tree: ast.Module,
    path: str,
    module_name: str | None,
    is_package: bool = False,
) -> dict[str, Any]:
    """Lower ``tree`` to the module IR dict (see module docstring)."""
    builder = _ModuleLowering(path, module_name, is_package)
    builder.run(tree)
    return {
        "version": IR_SCHEMA_VERSION,
        "path": path,
        "module": module_name,
        "is_package": is_package,
        "aliases": builder.aliases,
        "classes": builder.classes,
        "functions": builder.functions,
    }


# ----------------------------------------------------------------------
# Alias table (absolute *and* relative imports, unlike LintModule's)


def _module_aliases(
    tree: ast.Module, module_name: str | None, is_package: bool
) -> dict[str, str]:
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for a in node.names:
                if a.asname is not None:
                    aliases[a.asname] = a.name
                else:
                    aliases[a.name.split(".")[0]] = a.name.split(".")[0]
        elif isinstance(node, ast.ImportFrom):
            base = _from_base(node, module_name, is_package)
            if base is None:
                continue
            for a in node.names:
                if a.name == "*":
                    continue
                aliases[a.asname or a.name] = f"{base}.{a.name}" if base else a.name
    return aliases


def _from_base(
    node: ast.ImportFrom, module_name: str | None, is_package: bool
) -> str | None:
    """The dotted package a ``from X import`` pulls names out of."""
    if node.level == 0:
        return node.module
    if module_name is None:
        return None
    parts = module_name.split(".")
    # level=1 in a package __init__ refers to the package itself.
    up = node.level - 1 if is_package else node.level
    if up > len(parts):
        return None
    base = parts[: len(parts) - up]
    if node.module:
        base.append(node.module)
    return ".".join(base)


# ----------------------------------------------------------------------
# Lowering


class _ModuleLowering:
    def __init__(self, path: str, module_name: str | None, is_package: bool) -> None:
        self.path = path
        self.module_name = module_name
        self.is_package = is_package
        self.modkey = module_name or path
        self.aliases: dict[str, str] = {}
        self.classes: dict[str, dict[str, Any]] = {}
        self.functions: dict[str, dict[str, Any]] = {}

    def run(self, tree: ast.Module) -> None:
        self.aliases = _module_aliases(tree, self.module_name, self.is_package)
        for node in tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._lower_function(node, qual=node.name, class_name=None)
            elif isinstance(node, ast.ClassDef):
                self._lower_class(node)

    # -- classes -------------------------------------------------------

    def _lower_class(self, node: ast.ClassDef) -> None:
        info: dict[str, Any] = {
            "line": node.lineno,
            "bases": [d for d in (self._dotted(b) for b in node.bases) if d],
            "methods": {},
            "attr_types": {},
        }
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                fid = self._lower_function(
                    stmt, qual=f"{node.name}.{stmt.name}", class_name=node.name
                )
                info["methods"][stmt.name] = fid
                if stmt.name == "__init__":
                    self._init_attr_types(stmt, info["attr_types"])
            elif isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.target, ast.Name
            ):
                # dataclass-style field declaration
                ann = self._annotation(stmt.annotation)
                if ann:
                    info["attr_types"].setdefault(stmt.target.id, ann)
        self.classes[node.name] = info

    def _init_attr_types(self, init: ast.FunctionDef, out: dict[str, str]) -> None:
        """``self.x = <annotated param | Ctor(...)>`` → attribute types."""
        annots: dict[str, str] = {}
        for arg in list(init.args.args) + list(init.args.kwonlyargs):
            if arg.annotation is not None:
                ann = self._annotation(arg.annotation)
                if ann:
                    annots[arg.arg] = ann
        for stmt in ast.walk(init):
            target: ast.expr | None = None
            value: ast.expr | None = None
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target, value = stmt.targets[0], stmt.value
            elif isinstance(stmt, ast.AnnAssign):
                target = stmt.target
                ann = self._annotation(stmt.annotation)
                if (
                    ann
                    and isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    out.setdefault(target.attr, ann)
                continue
            if not (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                continue
            if isinstance(value, ast.Name) and value.id in annots:
                out.setdefault(target.attr, annots[value.id])
            elif isinstance(value, ast.Call):
                ctor = self._dotted(value.func)
                if ctor:
                    out.setdefault(target.attr, ctor)

    # -- name resolution helpers ---------------------------------------

    def _dotted(self, node: ast.expr) -> str | None:
        """A base-class / annotation expression as a dotted name."""
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            try:
                node = ast.parse(node.value, mode="eval").body
            except SyntaxError:
                return None
        if isinstance(node, ast.Subscript):  # Optional[X], list[X] → X
            return self._dotted(node.value)
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        head = self.aliases.get(node.id)
        if head is None:
            # Locally defined or builtin: qualify with the module so the
            # project index can find local classes; leave bare otherwise.
            head = node.id
            if self.module_name and not parts:
                return f"{self.module_name}.{head}"
        parts.append(head)
        return ".".join(reversed(parts))

    def _annotation(self, node: ast.expr) -> str | None:
        return self._dotted(node)

    # -- functions -----------------------------------------------------

    def _lower_function(
        self,
        node: ast.FunctionDef | ast.AsyncFunctionDef | ast.Lambda,
        qual: str,
        class_name: str | None,
    ) -> str:
        fid = f"{self.modkey}::{qual}"
        fn = _FunctionLowering(self, fid, qual, class_name)
        fn.run(node)
        return fid


class _FunctionLowering:
    """Lower one function body to its op list (nested defs recurse)."""

    def __init__(
        self, mod: _ModuleLowering, fid: str, qual: str, class_name: str | None
    ) -> None:
        self.mod = mod
        self.fid = fid
        self.qual = qual
        self.class_name = class_name
        self.ops: list[Op] = []
        self._lambda_counter = 0

    def run(self, node: ast.FunctionDef | ast.AsyncFunctionDef | ast.Lambda) -> None:
        params: list[str] = []
        param_types: dict[str, str] = {}
        a = node.args
        for arg in list(a.posonlyargs) + list(a.args) + list(a.kwonlyargs):
            params.append(arg.arg)
            if arg.annotation is not None:
                ann = self.mod._annotation(arg.annotation)
                if ann:
                    param_types[arg.arg] = ann
        if isinstance(node, ast.Lambda):
            self.ops.append(["ret", self.conv(node.body), node.lineno, node.col_offset])
            name = f"<lambda:L{node.lineno}>"
            line = node.lineno
        else:
            self.stmts(node.body)
            name = node.name
            line = node.lineno
        self.mod.functions[self.fid] = {
            "name": name,
            "qual": self.qual,
            "line": line,
            "class": self.class_name,
            "params": params,
            "param_types": param_types,
            "ops": self.ops,
        }

    # -- statements ----------------------------------------------------

    def stmts(self, body: Sequence[ast.stmt]) -> None:
        for stmt in body:
            self.stmt(stmt)

    def stmt(self, node: ast.stmt) -> None:
        if isinstance(node, ast.Assign):
            value = self.conv(node.value)
            for target in node.targets:
                self.assign_target(target, value, node.lineno)
        elif isinstance(node, ast.AnnAssign):
            if node.value is not None:
                self.assign_target(node.target, self.conv(node.value), node.lineno)
        elif isinstance(node, ast.AugAssign):
            value = self.conv(node.value)
            target = self.conv_target_for_mutation(node.target)
            kind = f"aug:{type(node.op).__name__}"
            self.ops.append(
                ["mutate", target, value, kind, node.lineno, node.col_offset]
            )
        elif isinstance(node, ast.Expr):
            self.ops.append(["eval", self.conv(node.value), node.lineno])
        elif isinstance(node, ast.Return):
            d = self.conv(node.value) if node.value is not None else ["const"]
            self.ops.append(["ret", d, node.lineno, node.col_offset])
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            it = self.conv(node.iter)
            self.assign_target(node.target, ["elem", it], node.lineno)
            self.stmts(node.body)
            self.stmts(node.orelse)
        elif isinstance(node, ast.While):
            self.ops.append(["eval", self.conv(node.test), node.lineno])
            self.stmts(node.body)
            self.stmts(node.orelse)
        elif isinstance(node, ast.If):
            self.ops.append(
                [
                    "if",
                    self.conv(node.test),
                    self.block(node.body),
                    self.block(node.orelse),
                    node.lineno,
                ]
            )
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            items: list[list] = []
            for item in node.items:
                var: str | None = None
                if isinstance(item.optional_vars, ast.Name):
                    var = item.optional_vars.id
                elif item.optional_vars is not None:
                    # Tuple/attribute targets: keep the v1 binding, no var.
                    self.assign_target(item.optional_vars, ["const"], node.lineno)
                items.append([self.conv(item.context_expr), var])
            self.ops.append(["with", items, self.block(node.body), node.lineno])
        elif isinstance(node, ast.Try):
            handlers: list[list] = []
            for handler in node.handlers:
                hops: list[Op] = []
                if handler.name:
                    hops.append(["bind", handler.name, ["const"], handler.lineno])
                hops.extend(self.block(handler.body))
                handlers.append([handler.name, hops])
            self.ops.append(
                [
                    "try",
                    self.block(node.body),
                    handlers,
                    self.block(node.orelse),
                    self.block(node.finalbody),
                    node.lineno,
                ]
            )
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            fid = self.mod._lower_function(
                node, qual=f"{self.qual}.<locals>.{node.name}", class_name=self.class_name
            )
            self.ops.append(["defl", node.name, fid, node.lineno])
        elif isinstance(node, ast.ClassDef):
            for dec in node.decorator_list:
                self.ops.append(["eval", self.conv(dec), node.lineno])
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self.ops.append(["kill", target.id])
                elif isinstance(target, (ast.Subscript, ast.Attribute)):
                    self.ops.append(
                        [
                            "mutate",
                            self.conv_target_for_mutation(target),
                            None,
                            "del",
                            node.lineno,
                            node.col_offset,
                        ]
                    )
        elif isinstance(node, ast.Raise):
            exc = self.conv(node.exc) if node.exc is not None else None
            self.ops.append(["raise", exc, node.lineno])
        elif isinstance(node, ast.Assert):
            self.ops.append(["eval", self.conv(node.test), node.lineno])
        # Import/Global/Nonlocal/Pass/Break/Continue: no dataflow.

    def block(self, body: Sequence[ast.stmt]) -> list[Op]:
        """Lower ``body`` into its own op list (for block ops)."""
        saved = self.ops
        self.ops = []
        try:
            self.stmts(body)
            return self.ops
        finally:
            self.ops = saved

    def assign_target(self, target: ast.expr, value: Desc, line: int) -> None:
        if isinstance(target, ast.Name):
            self.ops.append(["bind", target.id, value, line])
        elif isinstance(target, ast.Starred):
            self.assign_target(target.value, ["slice", value], line)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self.assign_target(elt, ["elem", value], line)
        elif isinstance(target, (ast.Subscript, ast.Attribute)):
            self.ops.append(
                [
                    "mutate",
                    self.conv_target_for_mutation(target),
                    value,
                    "store",
                    target.lineno,
                    target.col_offset,
                ]
            )

    def conv_target_for_mutation(self, target: ast.expr) -> Desc:
        """Store targets keep their full chain for substrate detection."""
        if isinstance(target, ast.Subscript):
            return ["elem", self.conv(target.value)]
        if isinstance(target, ast.Attribute):
            return ["attr", self.conv(target.value), target.attr]
        return self.conv(target)

    # -- expressions ---------------------------------------------------

    def conv(self, node: ast.expr) -> Desc:
        if isinstance(node, ast.Name):
            return ["name", node.id]
        if isinstance(node, ast.Attribute):
            return ["attr", self.conv(node.value), node.attr]
        if isinstance(node, ast.Subscript):
            base = self.conv(node.value)
            if isinstance(node.slice, ast.Slice):
                return ["slice", base]
            return ["elem", base]
        if isinstance(node, ast.Call):
            return self.conv_call(node)
        if isinstance(node, ast.Lambda):
            self._lambda_counter += 1
            fid = self.mod._lower_function(
                node,
                qual=f"{self.qual}.<locals>.<lambda:L{node.lineno}#{self._lambda_counter}>",
                class_name=self.class_name,
            )
            return ["fnref", fid]
        if isinstance(node, (ast.List, ast.Tuple, ast.Set)):
            return ["make", [self.conv_item(e) for e in node.elts]]
        if isinstance(node, ast.Dict):
            items = [self.conv(k) for k in node.keys if k is not None]
            items += [self.conv_item(v) for v in node.values]
            return ["make", items]
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)):
            gens = []
            for gen in node.generators:
                names = _target_names(gen.target)
                gens.append([names, self.conv(gen.iter)])
                for cond in gen.ifs:
                    gens.append([[], self.conv(cond)])
            if isinstance(node, ast.DictComp):
                elts = [self.conv(node.key), self.conv(node.value)]
            else:
                elts = [self.conv(node.elt)]
            return ["comp", gens, elts]
        if isinstance(node, ast.BoolOp):
            return ["union", [self.conv(v) for v in node.values]]
        if isinstance(node, ast.IfExp):
            return [
                "union",
                [["seq", [self.conv(node.test)]], self.conv(node.body), self.conv(node.orelse)],
            ]
        if isinstance(node, ast.BinOp):
            return [
                "bin",
                type(node.op).__name__,
                self.conv(node.left),
                self.conv(node.right),
                node.lineno,
                node.col_offset,
            ]
        if isinstance(node, ast.UnaryOp):
            return ["seq", [self.conv(node.operand)]]
        if isinstance(node, ast.Compare):
            return [
                "cmp",
                [type(op).__name__ for op in node.ops],
                [self.conv(node.left)] + [self.conv(c) for c in node.comparators],
                node.lineno,
                node.col_offset,
            ]
        if isinstance(node, ast.NamedExpr) and isinstance(node.target, ast.Name):
            return ["walrus", node.target.id, self.conv(node.value)]
        if isinstance(node, ast.Starred):
            return ["spread", self.conv(node.value)]
        if isinstance(node, (ast.Await, ast.YieldFrom)):
            return self.conv(node.value) if node.value is not None else ["const"]
        if isinstance(node, ast.Yield):
            return self.conv(node.value) if node.value is not None else ["const"]
        if isinstance(node, ast.JoinedStr):
            return ["seq", [self.conv(v) for v in node.values]]
        if isinstance(node, ast.FormattedValue):
            return ["seq", [self.conv(node.value)]]
        return ["const"]

    def conv_item(self, node: ast.expr) -> Desc:
        if isinstance(node, ast.Starred):
            return ["spread", self.conv(node.value)]
        return self.conv(node)

    def conv_call(self, node: ast.Call) -> Desc:
        func = node.func
        if isinstance(func, ast.Name):
            f: Desc = ["ref", func.id]
        elif isinstance(func, ast.Attribute):
            f = ["meth", self.conv(func.value), func.attr]
        else:
            f = ["desc", self.conv(func)]
        args = [self.conv_item(a) for a in node.args]
        kwargs = [[kw.arg or "**", self.conv(kw.value)] for kw in node.keywords]
        return ["call", f, args, kwargs, node.lineno, node.col_offset]


def _target_names(target: ast.expr) -> list[str]:
    """Every plain name bound by a (possibly nested) loop target."""
    if isinstance(target, ast.Name):
        return [target.id]
    if isinstance(target, ast.Starred):
        return _target_names(target.value)
    if isinstance(target, (ast.Tuple, ast.List)):
        names: list[str] = []
        for elt in target.elts:
            names.extend(_target_names(elt))
        return names
    return []
